
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/hadoop_like.cc" "src/CMakeFiles/just.dir/baselines/hadoop_like.cc.o" "gcc" "src/CMakeFiles/just.dir/baselines/hadoop_like.cc.o.d"
  "/root/repo/src/baselines/spark_like.cc" "src/CMakeFiles/just.dir/baselines/spark_like.cc.o" "gcc" "src/CMakeFiles/just.dir/baselines/spark_like.cc.o.d"
  "/root/repo/src/cluster/region_cluster.cc" "src/CMakeFiles/just.dir/cluster/region_cluster.cc.o" "gcc" "src/CMakeFiles/just.dir/cluster/region_cluster.cc.o.d"
  "/root/repo/src/common/bytes.cc" "src/CMakeFiles/just.dir/common/bytes.cc.o" "gcc" "src/CMakeFiles/just.dir/common/bytes.cc.o.d"
  "/root/repo/src/common/json.cc" "src/CMakeFiles/just.dir/common/json.cc.o" "gcc" "src/CMakeFiles/just.dir/common/json.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/just.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/just.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/just.dir/common/status.cc.o" "gcc" "src/CMakeFiles/just.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/just.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/just.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/common/time_util.cc" "src/CMakeFiles/just.dir/common/time_util.cc.o" "gcc" "src/CMakeFiles/just.dir/common/time_util.cc.o.d"
  "/root/repo/src/compress/codec.cc" "src/CMakeFiles/just.dir/compress/codec.cc.o" "gcc" "src/CMakeFiles/just.dir/compress/codec.cc.o.d"
  "/root/repo/src/compress/lz77.cc" "src/CMakeFiles/just.dir/compress/lz77.cc.o" "gcc" "src/CMakeFiles/just.dir/compress/lz77.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/just.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/just.dir/core/engine.cc.o.d"
  "/root/repo/src/core/loader.cc" "src/CMakeFiles/just.dir/core/loader.cc.o" "gcc" "src/CMakeFiles/just.dir/core/loader.cc.o.d"
  "/root/repo/src/core/plugins.cc" "src/CMakeFiles/just.dir/core/plugins.cc.o" "gcc" "src/CMakeFiles/just.dir/core/plugins.cc.o.d"
  "/root/repo/src/core/result_set.cc" "src/CMakeFiles/just.dir/core/result_set.cc.o" "gcc" "src/CMakeFiles/just.dir/core/result_set.cc.o.d"
  "/root/repo/src/core/row_codec.cc" "src/CMakeFiles/just.dir/core/row_codec.cc.o" "gcc" "src/CMakeFiles/just.dir/core/row_codec.cc.o.d"
  "/root/repo/src/core/table.cc" "src/CMakeFiles/just.dir/core/table.cc.o" "gcc" "src/CMakeFiles/just.dir/core/table.cc.o.d"
  "/root/repo/src/curve/index_strategy.cc" "src/CMakeFiles/just.dir/curve/index_strategy.cc.o" "gcc" "src/CMakeFiles/just.dir/curve/index_strategy.cc.o.d"
  "/root/repo/src/curve/sfc.cc" "src/CMakeFiles/just.dir/curve/sfc.cc.o" "gcc" "src/CMakeFiles/just.dir/curve/sfc.cc.o.d"
  "/root/repo/src/curve/xz2.cc" "src/CMakeFiles/just.dir/curve/xz2.cc.o" "gcc" "src/CMakeFiles/just.dir/curve/xz2.cc.o.d"
  "/root/repo/src/curve/xz3.cc" "src/CMakeFiles/just.dir/curve/xz3.cc.o" "gcc" "src/CMakeFiles/just.dir/curve/xz3.cc.o.d"
  "/root/repo/src/curve/z2.cc" "src/CMakeFiles/just.dir/curve/z2.cc.o" "gcc" "src/CMakeFiles/just.dir/curve/z2.cc.o.d"
  "/root/repo/src/curve/z3.cc" "src/CMakeFiles/just.dir/curve/z3.cc.o" "gcc" "src/CMakeFiles/just.dir/curve/z3.cc.o.d"
  "/root/repo/src/curve/zorder.cc" "src/CMakeFiles/just.dir/curve/zorder.cc.o" "gcc" "src/CMakeFiles/just.dir/curve/zorder.cc.o.d"
  "/root/repo/src/exec/dataframe.cc" "src/CMakeFiles/just.dir/exec/dataframe.cc.o" "gcc" "src/CMakeFiles/just.dir/exec/dataframe.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/CMakeFiles/just.dir/exec/operators.cc.o" "gcc" "src/CMakeFiles/just.dir/exec/operators.cc.o.d"
  "/root/repo/src/exec/value.cc" "src/CMakeFiles/just.dir/exec/value.cc.o" "gcc" "src/CMakeFiles/just.dir/exec/value.cc.o.d"
  "/root/repo/src/geo/coord_transform.cc" "src/CMakeFiles/just.dir/geo/coord_transform.cc.o" "gcc" "src/CMakeFiles/just.dir/geo/coord_transform.cc.o.d"
  "/root/repo/src/geo/geometry.cc" "src/CMakeFiles/just.dir/geo/geometry.cc.o" "gcc" "src/CMakeFiles/just.dir/geo/geometry.cc.o.d"
  "/root/repo/src/geo/point.cc" "src/CMakeFiles/just.dir/geo/point.cc.o" "gcc" "src/CMakeFiles/just.dir/geo/point.cc.o.d"
  "/root/repo/src/kvstore/block.cc" "src/CMakeFiles/just.dir/kvstore/block.cc.o" "gcc" "src/CMakeFiles/just.dir/kvstore/block.cc.o.d"
  "/root/repo/src/kvstore/bloom.cc" "src/CMakeFiles/just.dir/kvstore/bloom.cc.o" "gcc" "src/CMakeFiles/just.dir/kvstore/bloom.cc.o.d"
  "/root/repo/src/kvstore/lsm_store.cc" "src/CMakeFiles/just.dir/kvstore/lsm_store.cc.o" "gcc" "src/CMakeFiles/just.dir/kvstore/lsm_store.cc.o.d"
  "/root/repo/src/kvstore/skiplist.cc" "src/CMakeFiles/just.dir/kvstore/skiplist.cc.o" "gcc" "src/CMakeFiles/just.dir/kvstore/skiplist.cc.o.d"
  "/root/repo/src/kvstore/sstable.cc" "src/CMakeFiles/just.dir/kvstore/sstable.cc.o" "gcc" "src/CMakeFiles/just.dir/kvstore/sstable.cc.o.d"
  "/root/repo/src/kvstore/wal.cc" "src/CMakeFiles/just.dir/kvstore/wal.cc.o" "gcc" "src/CMakeFiles/just.dir/kvstore/wal.cc.o.d"
  "/root/repo/src/meta/catalog.cc" "src/CMakeFiles/just.dir/meta/catalog.cc.o" "gcc" "src/CMakeFiles/just.dir/meta/catalog.cc.o.d"
  "/root/repo/src/spatial/grid_index.cc" "src/CMakeFiles/just.dir/spatial/grid_index.cc.o" "gcc" "src/CMakeFiles/just.dir/spatial/grid_index.cc.o.d"
  "/root/repo/src/spatial/quadtree.cc" "src/CMakeFiles/just.dir/spatial/quadtree.cc.o" "gcc" "src/CMakeFiles/just.dir/spatial/quadtree.cc.o.d"
  "/root/repo/src/spatial/rtree.cc" "src/CMakeFiles/just.dir/spatial/rtree.cc.o" "gcc" "src/CMakeFiles/just.dir/spatial/rtree.cc.o.d"
  "/root/repo/src/sql/analyzer.cc" "src/CMakeFiles/just.dir/sql/analyzer.cc.o" "gcc" "src/CMakeFiles/just.dir/sql/analyzer.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/just.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/just.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/executor.cc" "src/CMakeFiles/just.dir/sql/executor.cc.o" "gcc" "src/CMakeFiles/just.dir/sql/executor.cc.o.d"
  "/root/repo/src/sql/expr_eval.cc" "src/CMakeFiles/just.dir/sql/expr_eval.cc.o" "gcc" "src/CMakeFiles/just.dir/sql/expr_eval.cc.o.d"
  "/root/repo/src/sql/functions.cc" "src/CMakeFiles/just.dir/sql/functions.cc.o" "gcc" "src/CMakeFiles/just.dir/sql/functions.cc.o.d"
  "/root/repo/src/sql/justql.cc" "src/CMakeFiles/just.dir/sql/justql.cc.o" "gcc" "src/CMakeFiles/just.dir/sql/justql.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/just.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/just.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/optimizer.cc" "src/CMakeFiles/just.dir/sql/optimizer.cc.o" "gcc" "src/CMakeFiles/just.dir/sql/optimizer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/just.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/just.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/plan.cc" "src/CMakeFiles/just.dir/sql/plan.cc.o" "gcc" "src/CMakeFiles/just.dir/sql/plan.cc.o.d"
  "/root/repo/src/traj/dbscan.cc" "src/CMakeFiles/just.dir/traj/dbscan.cc.o" "gcc" "src/CMakeFiles/just.dir/traj/dbscan.cc.o.d"
  "/root/repo/src/traj/map_matching.cc" "src/CMakeFiles/just.dir/traj/map_matching.cc.o" "gcc" "src/CMakeFiles/just.dir/traj/map_matching.cc.o.d"
  "/root/repo/src/traj/preprocess.cc" "src/CMakeFiles/just.dir/traj/preprocess.cc.o" "gcc" "src/CMakeFiles/just.dir/traj/preprocess.cc.o.d"
  "/root/repo/src/traj/road_network.cc" "src/CMakeFiles/just.dir/traj/road_network.cc.o" "gcc" "src/CMakeFiles/just.dir/traj/road_network.cc.o.d"
  "/root/repo/src/traj/trajectory.cc" "src/CMakeFiles/just.dir/traj/trajectory.cc.o" "gcc" "src/CMakeFiles/just.dir/traj/trajectory.cc.o.d"
  "/root/repo/src/workload/generators.cc" "src/CMakeFiles/just.dir/workload/generators.cc.o" "gcc" "src/CMakeFiles/just.dir/workload/generators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
