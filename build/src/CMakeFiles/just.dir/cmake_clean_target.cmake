file(REMOVE_RECURSE
  "libjust.a"
)
