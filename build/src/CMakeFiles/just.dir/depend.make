# Empty dependencies file for just.
# This may be replaced when dependencies are built.
