# Empty compiler generated dependencies file for just_tests.
# This may be replaced when dependencies are built.
