
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/attr_index_test.cc" "tests/CMakeFiles/just_tests.dir/attr_index_test.cc.o" "gcc" "tests/CMakeFiles/just_tests.dir/attr_index_test.cc.o.d"
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/just_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/just_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/cluster_test.cc" "tests/CMakeFiles/just_tests.dir/cluster_test.cc.o" "gcc" "tests/CMakeFiles/just_tests.dir/cluster_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/just_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/just_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/compress_test.cc" "tests/CMakeFiles/just_tests.dir/compress_test.cc.o" "gcc" "tests/CMakeFiles/just_tests.dir/compress_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/just_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/just_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/curve_test.cc" "tests/CMakeFiles/just_tests.dir/curve_test.cc.o" "gcc" "tests/CMakeFiles/just_tests.dir/curve_test.cc.o.d"
  "/root/repo/tests/exec_test.cc" "tests/CMakeFiles/just_tests.dir/exec_test.cc.o" "gcc" "tests/CMakeFiles/just_tests.dir/exec_test.cc.o.d"
  "/root/repo/tests/geo_test.cc" "tests/CMakeFiles/just_tests.dir/geo_test.cc.o" "gcc" "tests/CMakeFiles/just_tests.dir/geo_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/just_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/just_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/kvstore_test.cc" "tests/CMakeFiles/just_tests.dir/kvstore_test.cc.o" "gcc" "tests/CMakeFiles/just_tests.dir/kvstore_test.cc.o.d"
  "/root/repo/tests/meta_test.cc" "tests/CMakeFiles/just_tests.dir/meta_test.cc.o" "gcc" "tests/CMakeFiles/just_tests.dir/meta_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/just_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/just_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/shape_test.cc" "tests/CMakeFiles/just_tests.dir/shape_test.cc.o" "gcc" "tests/CMakeFiles/just_tests.dir/shape_test.cc.o.d"
  "/root/repo/tests/spatial_test.cc" "tests/CMakeFiles/just_tests.dir/spatial_test.cc.o" "gcc" "tests/CMakeFiles/just_tests.dir/spatial_test.cc.o.d"
  "/root/repo/tests/sql_edge_test.cc" "tests/CMakeFiles/just_tests.dir/sql_edge_test.cc.o" "gcc" "tests/CMakeFiles/just_tests.dir/sql_edge_test.cc.o.d"
  "/root/repo/tests/sql_test.cc" "tests/CMakeFiles/just_tests.dir/sql_test.cc.o" "gcc" "tests/CMakeFiles/just_tests.dir/sql_test.cc.o.d"
  "/root/repo/tests/traj_test.cc" "tests/CMakeFiles/just_tests.dir/traj_test.cc.o" "gcc" "tests/CMakeFiles/just_tests.dir/traj_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/just.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
