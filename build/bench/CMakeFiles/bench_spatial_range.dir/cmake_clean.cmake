file(REMOVE_RECURSE
  "CMakeFiles/bench_spatial_range.dir/bench_spatial_range.cc.o"
  "CMakeFiles/bench_spatial_range.dir/bench_spatial_range.cc.o.d"
  "bench_spatial_range"
  "bench_spatial_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spatial_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
