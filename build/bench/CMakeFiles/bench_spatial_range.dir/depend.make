# Empty dependencies file for bench_spatial_range.
# This may be replaced when dependencies are built.
