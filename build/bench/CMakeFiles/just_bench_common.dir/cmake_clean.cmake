file(REMOVE_RECURSE
  "CMakeFiles/just_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/just_bench_common.dir/bench_common.cc.o.d"
  "libjust_bench_common.a"
  "libjust_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/just_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
