file(REMOVE_RECURSE
  "libjust_bench_common.a"
)
