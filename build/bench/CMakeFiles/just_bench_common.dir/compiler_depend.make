# Empty compiler generated dependencies file for just_bench_common.
# This may be replaced when dependencies are built.
