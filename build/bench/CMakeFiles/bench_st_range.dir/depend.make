# Empty dependencies file for bench_st_range.
# This may be replaced when dependencies are built.
