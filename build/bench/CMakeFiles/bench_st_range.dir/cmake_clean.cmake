file(REMOVE_RECURSE
  "CMakeFiles/bench_st_range.dir/bench_st_range.cc.o"
  "CMakeFiles/bench_st_range.dir/bench_st_range.cc.o.d"
  "bench_st_range"
  "bench_st_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_st_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
