file(REMOVE_RECURSE
  "CMakeFiles/bench_sql_optimizer.dir/bench_sql_optimizer.cc.o"
  "CMakeFiles/bench_sql_optimizer.dir/bench_sql_optimizer.cc.o.d"
  "bench_sql_optimizer"
  "bench_sql_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sql_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
