file(REMOVE_RECURSE
  "CMakeFiles/bench_indexing.dir/bench_indexing.cc.o"
  "CMakeFiles/bench_indexing.dir/bench_indexing.cc.o.d"
  "bench_indexing"
  "bench_indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
