# Empty dependencies file for bench_indexing.
# This may be replaced when dependencies are built.
