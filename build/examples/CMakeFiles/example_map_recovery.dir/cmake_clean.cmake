file(REMOVE_RECURSE
  "CMakeFiles/example_map_recovery.dir/map_recovery.cpp.o"
  "CMakeFiles/example_map_recovery.dir/map_recovery.cpp.o.d"
  "example_map_recovery"
  "example_map_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_map_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
