# Empty dependencies file for example_map_recovery.
# This may be replaced when dependencies are built.
