# Empty compiler generated dependencies file for example_knn_dispatch.
# This may be replaced when dependencies are built.
