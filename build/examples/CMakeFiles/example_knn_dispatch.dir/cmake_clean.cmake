file(REMOVE_RECURSE
  "CMakeFiles/example_knn_dispatch.dir/knn_dispatch.cpp.o"
  "CMakeFiles/example_knn_dispatch.dir/knn_dispatch.cpp.o.d"
  "example_knn_dispatch"
  "example_knn_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_knn_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
