# Empty compiler generated dependencies file for example_urban_block_indicator.
# This may be replaced when dependencies are built.
