file(REMOVE_RECURSE
  "CMakeFiles/example_urban_block_indicator.dir/urban_block_indicator.cpp.o"
  "CMakeFiles/example_urban_block_indicator.dir/urban_block_indicator.cpp.o.d"
  "example_urban_block_indicator"
  "example_urban_block_indicator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_urban_block_indicator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
