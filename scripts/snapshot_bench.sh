#!/usr/bin/env bash
# Regenerates the committed benchmark baselines (BENCH_<name>.json at the
# repo root). Each file is the google-benchmark JSON record plus the
# "obs_registry" member that RunBenchmarks injects, so a baseline carries
# both the timings and the storage/query counters that produced them.
#
# Usage:
#   scripts/snapshot_bench.sh [build_dir] [bench_target ...]
#
# Defaults: build_dir = <repo>/build, targets = bench_storage
# bench_sql_optimizer bench_secondary_index bench_stream. Extra
# google-benchmark flags can be passed through BENCH_FLAGS
# (e.g. BENCH_FLAGS="--benchmark_filter=Refine").
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
if [ "$#" -gt 0 ]; then shift; fi
BENCHES=("$@")
if [ "${#BENCHES[@]}" -eq 0 ]; then
  BENCHES=(bench_storage bench_sql_optimizer bench_secondary_index
    bench_stream)
fi

for bench in "${BENCHES[@]}"; do
  cmake --build "$BUILD" --target "$bench" >/dev/null
  out="$ROOT/BENCH_${bench#bench_}.json"
  echo "=== $bench -> $out"
  # min_time keeps the full sweep tractable on a laptop; baselines are for
  # trend-watching, not for publishing absolute numbers.
  "$BUILD/bench/$bench" \
    --benchmark_min_time=0.05 \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    ${BENCH_FLAGS:-}
done
