#!/usr/bin/env python3
"""Checks that every relative link in the repo's markdown files resolves.

Scans *.md at the repository root and everything under docs/, extracts
inline links/images ([text](target), ![alt](target)) and reference-style
definitions ([label]: target), and verifies that relative targets exist on
disk. Anchor fragments — both in-page (#section) and cross-file
(file.md#section) — are checked against the GitHub-style slugs of the
target file's headings, so a renamed heading breaks CI instead of readers.
External schemes (http, https, mailto) are skipped; fenced code blocks and
inline code spans are stripped first so example snippets cannot produce
false positives.

Stdlib only — no packages to install. Exit status 0 when every link
resolves, 1 otherwise (one line per broken link, file:line).
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
FENCED_BLOCK = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)
INLINE_CODE = re.compile(r"`[^`\n]*`")
EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # http:, https:, mailto:
ATX_HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*#*\s*$", re.MULTILINE)


def github_slug(heading):
    """The anchor GitHub generates for a heading (code spans contribute
    their text, punctuation other than hyphen/underscore is dropped,
    spaces become hyphens)."""
    text = heading.replace("`", "").lower()
    text = re.sub(r"[^\w\s-]", "", text)
    return re.sub(r"\s", "-", text.strip())


def heading_anchors(text):
    """All anchors a rendered markdown document exposes, with GitHub's
    -1/-2 deduplication for repeated headings. Headings inside fenced
    code blocks do not render and are excluded."""
    def blank(match):
        return re.sub(r"[^\n]", " ", match.group(0))

    stripped = FENCED_BLOCK.sub(blank, text)
    anchors = set()
    counts = {}
    for match in ATX_HEADING.finditer(stripped):
        slug = github_slug(match.group(1))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    return anchors


def markdown_files():
    files = sorted(REPO_ROOT.glob("*.md"))
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        files += sorted(docs.rglob("*.md"))
    return files


def anchors_of(md_path, _cache={}):
    if md_path not in _cache:
        _cache[md_path] = heading_anchors(md_path.read_text(encoding="utf-8"))
    return _cache[md_path]


def check_file(md_file):
    """Returns a list of (line_number, target, reason) for broken links."""
    text = md_file.read_text(encoding="utf-8")
    # Blank out code regions, preserving newlines so line numbers survive.
    def blank(match):
        return re.sub(r"[^\n]", " ", match.group(0))

    stripped = FENCED_BLOCK.sub(blank, text)
    stripped = INLINE_CODE.sub(blank, stripped)

    broken = []
    targets = []
    for pattern in (INLINE_LINK, REFERENCE_DEF):
        for match in pattern.finditer(stripped):
            line = stripped.count("\n", 0, match.start()) + 1
            targets.append((line, match.group(1)))

    for line, target in targets:
        if EXTERNAL.match(target):
            continue  # external URL: existence is not checkable offline
        path_part, _, fragment = target.partition("#")
        if not path_part:
            # Pure in-page anchor: must match a heading in this file.
            if fragment and fragment not in anchors_of(md_file):
                broken.append((line, target, "no heading with this anchor"))
            continue
        resolved = (md_file.parent / path_part).resolve()
        try:
            resolved.relative_to(REPO_ROOT)
        except ValueError:
            broken.append((line, target, "points outside the repository"))
            continue
        if not resolved.exists():
            broken.append((line, target, "target does not exist"))
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_of(resolved):
                broken.append(
                    (line, target,
                     f"no heading in {resolved.name} with this anchor"))
    return broken


def main():
    files = markdown_files()
    if not files:
        print("no markdown files found — wrong working tree?", file=sys.stderr)
        return 1
    failures = 0
    for md_file in files:
        for line, target, reason in check_file(md_file):
            rel = md_file.relative_to(REPO_ROOT)
            print(f"{rel}:{line}: broken link '{target}' ({reason})")
            failures += 1
    checked = len(files)
    if failures:
        print(f"\n{failures} broken link(s) across {checked} files")
        return 1
    print(f"OK: all relative links resolve across {checked} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
