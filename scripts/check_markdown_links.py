#!/usr/bin/env python3
"""Checks that every relative link in the repo's markdown files resolves.

Scans *.md at the repository root and everything under docs/, extracts
inline links/images ([text](target), ![alt](target)) and reference-style
definitions ([label]: target), and verifies that relative targets exist on
disk. External schemes (http, https, mailto) and pure in-page anchors are
skipped; fenced code blocks and inline code spans are stripped first so
example snippets cannot produce false positives.

Stdlib only — no packages to install. Exit status 0 when every link
resolves, 1 otherwise (one line per broken link, file:line).
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
FENCED_BLOCK = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)
INLINE_CODE = re.compile(r"`[^`\n]*`")
EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # http:, https:, mailto:


def markdown_files():
    files = sorted(REPO_ROOT.glob("*.md"))
    docs = REPO_ROOT / "docs"
    if docs.is_dir():
        files += sorted(docs.rglob("*.md"))
    return files


def check_file(md_file):
    """Returns a list of (line_number, target, reason) for broken links."""
    text = md_file.read_text(encoding="utf-8")
    # Blank out code regions, preserving newlines so line numbers survive.
    def blank(match):
        return re.sub(r"[^\n]", " ", match.group(0))

    stripped = FENCED_BLOCK.sub(blank, text)
    stripped = INLINE_CODE.sub(blank, stripped)

    broken = []
    targets = []
    for pattern in (INLINE_LINK, REFERENCE_DEF):
        for match in pattern.finditer(stripped):
            line = stripped.count("\n", 0, match.start()) + 1
            targets.append((line, match.group(1)))

    for line, target in targets:
        if EXTERNAL.match(target):
            continue  # external URL: existence is not checkable offline
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue  # pure in-page anchor
        resolved = (md_file.parent / path_part).resolve()
        try:
            resolved.relative_to(REPO_ROOT)
        except ValueError:
            broken.append((line, target, "points outside the repository"))
            continue
        if not resolved.exists():
            broken.append((line, target, "target does not exist"))
    return broken


def main():
    files = markdown_files()
    if not files:
        print("no markdown files found — wrong working tree?", file=sys.stderr)
        return 1
    failures = 0
    for md_file in files:
        for line, target, reason in check_file(md_file):
            rel = md_file.relative_to(REPO_ROOT)
            print(f"{rel}:{line}: broken link '{target}' ({reason})")
            failures += 1
    checked = len(files)
    if failures:
        print(f"\n{failures} broken link(s) across {checked} files")
        return 1
    print(f"OK: all relative links resolve across {checked} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
