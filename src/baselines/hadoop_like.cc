#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <map>
#include <set>
#include <thread>

#include "baselines/baseline.h"
#include "common/bytes.h"

namespace just::baselines {

namespace {

/// Shared machinery for the Hadoop-based look-alikes: the index is a set of
/// partition files on disk; every query runs as a simulated MapReduce job —
/// a fixed scheduling/startup cost plus real file reads of the candidate
/// partitions. This reproduces the paper's observations that the Hadoop
/// systems are orders of magnitude slower per query (Fig. 12b/12d) and take
/// very long to build and serialize their indexes (Fig. 10c/10d).
class HadoopLikeBase : public BaselineSystem {
 public:
  HadoopLikeBase(const BaselineOptions& options, const std::string& subdir)
      : options_(options), dir_(options.scratch_dir + "/" + subdir) {}

  size_t MemoryUsage() const override {
    return 0;  // disk-based: trivially scalable (Table I)
  }

 protected:
  // 16x16 spatial grid over the data extent.
  static constexpr int kGridCells = 16;

  int CellX(double lng) const {
    double frac = (lng - extent_.lng_min) / std::max(1e-9, extent_.Width());
    return std::clamp(static_cast<int>(frac * kGridCells), 0,
                      kGridCells - 1);
  }
  int CellY(double lat) const {
    double frac = (lat - extent_.lat_min) / std::max(1e-9, extent_.Height());
    return std::clamp(static_cast<int>(frac * kGridCells), 0,
                      kGridCells - 1);
  }

  std::string PartitionPath(int slice, int cx, int cy) const {
    return dir_ + "/p_" + std::to_string(slice) + "_" + std::to_string(cx) +
           "_" + std::to_string(cy) + ".part";
  }

  Status WritePartitions(
      const std::vector<BaselineRecord>& records,
      const std::function<int(const BaselineRecord&)>& slice_of) {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    std::filesystem::create_directories(dir_, ec);
    if (ec) return Status::IOError("cannot create " + dir_);
    extent_ = geo::Mbr::Empty();
    for (const BaselineRecord& r : records) extent_.Expand(r.box);
    if (extent_.IsEmpty()) extent_ = geo::Mbr::World();

    // Map phase: bucket records; Reduce phase: serialize partition files.
    std::map<std::string, std::string> buffers;
    for (const BaselineRecord& r : records) {
      int slice = slice_of(r);
      geo::Point c = r.box.Center();
      std::string& buf =
          buffers[PartitionPath(slice, CellX(c.lng), CellY(c.lat))];
      PutFixed64(&buf, r.id);
      PutFixed64(&buf, OrderedDoubleBits(r.box.lng_min));
      PutFixed64(&buf, OrderedDoubleBits(r.box.lat_min));
      PutFixed64(&buf, OrderedDoubleBits(r.box.lng_max));
      PutFixed64(&buf, OrderedDoubleBits(r.box.lat_max));
      PutFixed64(&buf, static_cast<uint64_t>(r.t_min));
      PutFixed64(&buf, static_cast<uint64_t>(r.t_max));
    }
    // Hadoop writes intermediate results to disk between map and reduce:
    // pay one extra full write+read pass.
    std::string staging = dir_ + "/staging.tmp";
    {
      std::FILE* f = std::fopen(staging.c_str(), "wb");
      if (f == nullptr) return Status::IOError("staging write failed");
      for (const auto& [path, buf] : buffers) {
        std::fwrite(buf.data(), 1, buf.size(), f);
      }
      std::fclose(f);
    }
    for (const auto& [path, buf] : buffers) {
      std::FILE* f = std::fopen(path.c_str(), "wb");
      if (f == nullptr) return Status::IOError("partition write failed");
      size_t n = std::fwrite(buf.data(), 1, buf.size(), f);
      std::fclose(f);
      if (n != buf.size()) return Status::IOError("partition short write");
    }
    ::remove(staging.c_str());
    slices_.clear();
    for (const BaselineRecord& r : records) {
      slices_.insert(slice_of(r));
    }
    return Status::OK();
  }

  void PayJobStartup() const {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.mapreduce_job_cost_ms));
  }

  Result<std::vector<BaselineRecord>> ReadPartition(int slice, int cx,
                                                    int cy) const {
    std::vector<BaselineRecord> out;
    std::string path = PartitionPath(slice, cx, cy);
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return out;  // empty partition
    std::string buf;
    char tmp[1 << 15];
    size_t n;
    while ((n = std::fread(tmp, 1, sizeof(tmp), f)) > 0) buf.append(tmp, n);
    std::fclose(f);
    const char* p = buf.data();
    const char* limit = p + buf.size();
    while (limit - p >= 56) {
      BaselineRecord r;
      r.id = GetFixed64(p);
      r.box.lng_min = OrderedBitsToDouble(GetFixed64(p + 8));
      r.box.lat_min = OrderedBitsToDouble(GetFixed64(p + 16));
      r.box.lng_max = OrderedBitsToDouble(GetFixed64(p + 24));
      r.box.lat_max = OrderedBitsToDouble(GetFixed64(p + 32));
      r.t_min = static_cast<TimestampMs>(GetFixed64(p + 40));
      r.t_max = static_cast<TimestampMs>(GetFixed64(p + 48));
      p += 56;
      out.push_back(r);
    }
    return out;
  }

  /// Runs a spatial "job" over the grid cells intersecting `box` in the
  /// given slices, returning the matching records.
  Result<std::vector<BaselineRecord>> RunSpatialJobRecords(
      const geo::Mbr& box, const std::set<int>& slices, TimestampMs t_min,
      TimestampMs t_max, bool check_time) const {
    PayJobStartup();
    std::vector<BaselineRecord> out;
    std::set<uint64_t> seen;
    int x0 = CellX(box.lng_min), x1 = CellX(box.lng_max);
    int y0 = CellY(box.lat_min), y1 = CellY(box.lat_max);
    for (int slice : slices) {
      for (int cx = x0; cx <= x1; ++cx) {
        for (int cy = y0; cy <= y1; ++cy) {
          JUST_ASSIGN_OR_RETURN(auto records, ReadPartition(slice, cx, cy));
          for (const BaselineRecord& r : records) {
            if (!r.box.Intersects(box)) continue;
            if (check_time && (r.t_min > t_max || r.t_max < t_min)) continue;
            if (seen.insert(r.id).second) out.push_back(r);
          }
        }
      }
    }
    return out;
  }

  Result<std::vector<uint64_t>> RunSpatialJob(const geo::Mbr& box,
                                              const std::set<int>& slices,
                                              TimestampMs t_min,
                                              TimestampMs t_max,
                                              bool check_time) const {
    JUST_ASSIGN_OR_RETURN(
        auto records,
        RunSpatialJobRecords(box, slices, t_min, t_max, check_time));
    std::vector<uint64_t> out;
    out.reserve(records.size());
    for (const BaselineRecord& r : records) out.push_back(r.id);
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Iterated expanding-window k-NN (SpatialHadoop runs k-NN as repeated
  /// range jobs until the k-th distance is certainly inside the window).
  Result<std::vector<uint64_t>> KnnByExpandingJobs(const geo::Point& q,
                                                   int k) {
    double radius = 0.01;
    for (int attempt = 0; attempt < 12; ++attempt) {
      geo::Mbr window = geo::Mbr::Of(q.lng - radius, q.lat - radius,
                                     q.lng + radius, q.lat + radius);
      JUST_ASSIGN_OR_RETURN(
          auto records,
          RunSpatialJobRecords(window, slices_, 0, 0, /*check_time=*/false));
      std::sort(records.begin(), records.end(),
                [&](const BaselineRecord& a, const BaselineRecord& b) {
                  return a.box.MinDistance(q) < b.box.MinDistance(q);
                });
      bool certain =
          static_cast<int>(records.size()) >= k &&
          records[k - 1].box.MinDistance(q) <= radius;
      if (certain || window.Contains(extent_)) {
        if (static_cast<int>(records.size()) > k) records.resize(k);
        std::vector<uint64_t> out;
        for (const BaselineRecord& r : records) out.push_back(r.id);
        return out;
      }
      radius *= 2;
    }
    return std::vector<uint64_t>{};
  }

  BaselineOptions options_;
  std::string dir_;
  geo::Mbr extent_ = geo::Mbr::World();
  std::set<int> slices_;
};

/// SpatialHadoop look-alike [Eldawy & Mokbel, ICDE 2015]: grid-partitioned
/// files, spatial range + k-NN, no time dimension.
class SpatialHadoopLike : public HadoopLikeBase {
 public:
  explicit SpatialHadoopLike(const BaselineOptions& options)
      : HadoopLikeBase(options, "spatialhadoop") {
    traits_ = {"SpatialHadoop", "Hadoop", /*scalable=*/true, /*sql=*/true,
               /*data_update=*/false, /*data_processing=*/false,
               /*spatio_temporal=*/false, /*non_point=*/false, /*knn=*/true};
  }

  const SystemTraits& traits() const override { return traits_; }

  Status BuildIndex(const std::vector<BaselineRecord>& records) override {
    return WritePartitions(records, [](const BaselineRecord&) { return 0; });
  }

  Result<std::vector<uint64_t>> SpatialRange(const geo::Mbr& box) override {
    return RunSpatialJob(box, slices_, 0, 0, /*check_time=*/false);
  }

  Result<std::vector<uint64_t>> StRange(const geo::Mbr&, TimestampMs,
                                        TimestampMs) override {
    return Status::NotSupported("SpatialHadoop does not index time");
  }

  Result<std::vector<uint64_t>> Knn(const geo::Point& q, int k) override {
    return KnnByExpandingJobs(q, k);
  }

 private:
  SystemTraits traits_;
};

/// ST-Hadoop look-alike [Alarabi et al.]: SpatialHadoop plus temporal
/// slicing (per-day partitions). Historical inserts fail — the slice layout
/// is fixed at load time (Table I: data update "Limited").
class StHadoopLike : public HadoopLikeBase {
 public:
  explicit StHadoopLike(const BaselineOptions& options)
      : HadoopLikeBase(options, "sthadoop") {
    traits_ = {"ST-Hadoop", "Hadoop", /*scalable=*/true, /*sql=*/true,
               /*data_update=*/false, /*data_processing=*/false,
               /*spatio_temporal=*/true, /*non_point=*/false, /*knn=*/true};
  }

  const SystemTraits& traits() const override { return traits_; }

  Status BuildIndex(const std::vector<BaselineRecord>& records) override {
    return WritePartitions(records, [](const BaselineRecord& r) {
      return static_cast<int>(TimePeriodNumber(r.t_min, kMillisPerDay) %
                              100000);
    });
  }

  Result<std::vector<uint64_t>> SpatialRange(const geo::Mbr& box) override {
    return RunSpatialJob(box, slices_, 0, 0, /*check_time=*/false);
  }

  Result<std::vector<uint64_t>> StRange(const geo::Mbr& box,
                                        TimestampMs t_min,
                                        TimestampMs t_max) override {
    std::set<int> qualified;
    int64_t first = TimePeriodNumber(t_min, kMillisPerDay) % 100000;
    int64_t last = TimePeriodNumber(t_max, kMillisPerDay) % 100000;
    for (int slice : slices_) {
      if (slice >= first && slice <= last) qualified.insert(slice);
    }
    return RunSpatialJob(box, qualified, t_min, t_max, /*check_time=*/true);
  }

  Result<std::vector<uint64_t>> Knn(const geo::Point& q, int k) override {
    return KnnByExpandingJobs(q, k);
  }

 private:
  SystemTraits traits_;
};

}  // namespace

namespace internal {
std::unique_ptr<BaselineSystem> MakeSparkLike(const std::string& name,
                                              const BaselineOptions& options);
}  // namespace internal

std::vector<std::string> BaselineNames() {
  return {"Simba",         "GeoSpark",      "SpatialSpark",
          "LocationSpark", "SpatialHadoop", "ST-Hadoop"};
}

Result<std::unique_ptr<BaselineSystem>> MakeBaseline(
    const std::string& name, const BaselineOptions& options) {
  auto spark = internal::MakeSparkLike(name, options);
  if (spark != nullptr) return spark;
  if (name == "SpatialHadoop") {
    return std::unique_ptr<BaselineSystem>(
        std::make_unique<SpatialHadoopLike>(options));
  }
  if (name == "ST-Hadoop") {
    return std::unique_ptr<BaselineSystem>(
        std::make_unique<StHadoopLike>(options));
  }
  return Status::InvalidArgument("unknown baseline system: " + name);
}

}  // namespace just::baselines
