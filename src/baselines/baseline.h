#ifndef JUST_BASELINES_BASELINE_H_
#define JUST_BASELINES_BASELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_util.h"
#include "exec/memory.h"
#include "geo/point.h"

namespace just::baselines {

/// A record fed to a baseline system: a point or an extent, with time.
struct BaselineRecord {
  geo::Mbr box;              ///< degenerate for points
  TimestampMs t_min = 0;
  TimestampMs t_max = 0;
  uint64_t id = 0;
  size_t payload_bytes = 0;  ///< extra bytes loaded into memory (GPS lists)
};

/// Capabilities mirroring Tables I and VI.
struct SystemTraits {
  std::string name;
  std::string category;      ///< "Spark", "Hadoop", "NoSQL", "MR/Hive"
  bool scalable = false;     ///< "Yes" rows of Table I
  bool sql = false;
  bool data_update = false;
  bool data_processing = false;
  bool spatio_temporal = false;  ///< "S/ST" column
  bool non_point = false;
  bool knn = false;              ///< Table VI k-NN column
};

/// The comparison interface for the six state-of-the-art systems of
/// Section VIII. Each look-alike implements its published architecture:
/// the Spark-likes hold everything in RAM under a MemoryBudget (so they OOM
/// exactly where the paper reports), the Hadoop-likes stage through disk
/// files and pay a MapReduce job-start cost.
class BaselineSystem {
 public:
  virtual ~BaselineSystem() = default;

  virtual const SystemTraits& traits() const = 0;

  /// Ingests + indexes the dataset (the Fig. 10c/10d "Indexing Time").
  /// Returns ResourceExhausted when the system would OOM.
  virtual Status BuildIndex(const std::vector<BaselineRecord>& records) = 0;

  /// Spatial range query: ids of records intersecting `box`.
  virtual Result<std::vector<uint64_t>> SpatialRange(const geo::Mbr& box) = 0;

  /// Spatio-temporal range query; NotSupported for spatial-only systems
  /// (Table VI).
  virtual Result<std::vector<uint64_t>> StRange(const geo::Mbr& box,
                                                TimestampMs t_min,
                                                TimestampMs t_max) = 0;

  /// k-NN query; NotSupported where Table VI says so.
  virtual Result<std::vector<uint64_t>> Knn(const geo::Point& q, int k) = 0;

  /// Estimated resident memory (for reporting).
  virtual size_t MemoryUsage() const = 0;
};

struct BaselineOptions {
  /// Per-system memory budget: the paper's nodes have 32 GB; scaled to the
  /// workload sizes used by the benches. 0 = unlimited.
  size_t memory_budget_bytes = 0;
  /// Simulated MapReduce job startup cost for the Hadoop-likes. The paper
  /// observes "it is expensive for ST-Hadoop to start a MapReduce job";
  /// 100 ms keeps bench runtimes sane while preserving the order-of-
  /// magnitude gap.
  int64_t mapreduce_job_cost_ms = 100;
  /// Per-query Spark task-scheduling overhead for the Spark-likes. Each of
  /// their queries launches tasks on executors; JUST amortizes this through
  /// its shared context (Section VII-A). Milliseconds.
  int64_t spark_task_cost_ms = 1;
  /// Scratch directory for the disk-based systems.
  std::string scratch_dir = "/tmp/just_baselines";
};

/// Factory for the six systems by paper name: "Simba", "GeoSpark",
/// "SpatialSpark", "LocationSpark", "SpatialHadoop", "ST-Hadoop".
Result<std::unique_ptr<BaselineSystem>> MakeBaseline(
    const std::string& name, const BaselineOptions& options);

/// All six names, in the paper's order.
std::vector<std::string> BaselineNames();

}  // namespace just::baselines

#endif  // JUST_BASELINES_BASELINE_H_
