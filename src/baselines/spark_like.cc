#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "baselines/baseline.h"
#include "spatial/grid_index.h"
#include "spatial/quadtree.h"
#include "spatial/rtree.h"

namespace just::baselines {

namespace {

/// Shared plumbing for the four Spark-based look-alikes: all data (records,
/// payloads, and indexes) lives in RAM, charged against a MemoryBudget; when
/// the budget is exceeded the build fails with ResourceExhausted — the OOM
/// behaviour Section VIII reports for Simba and LocationSpark.
class SparkLikeBase : public BaselineSystem {
 public:
  explicit SparkLikeBase(const BaselineOptions& options)
      : budget_(options.memory_budget_bytes),
        task_cost_ms_(options.spark_task_cost_ms) {}

  Status BuildIndex(const std::vector<BaselineRecord>& records) override {
    budget_.Reset();
    records_.clear();
    // Load every record (and its payload) into executor memory.
    size_t bytes = 0;
    for (const BaselineRecord& r : records) {
      bytes += sizeof(BaselineRecord) + r.payload_bytes;
    }
    // Index overhead: replicated partition metadata + index nodes.
    bytes += static_cast<size_t>(static_cast<double>(bytes) *
                                 IndexOverheadFactor());
    JUST_RETURN_NOT_OK(budget_.Charge(bytes));
    charged_ = bytes;
    records_ = records;
    return DoBuild();
  }

  size_t MemoryUsage() const override { return charged_; }

 protected:
  virtual Status DoBuild() = 0;
  virtual double IndexOverheadFactor() const { return 0.05; }

  Result<std::vector<uint64_t>> FilterTime(std::vector<uint64_t> ids,
                                           TimestampMs t_min,
                                           TimestampMs t_max) const {
    std::vector<uint64_t> out;
    for (uint64_t id : ids) {
      const BaselineRecord& r = records_[id];
      if (r.t_min <= t_max && r.t_max >= t_min) out.push_back(id);
    }
    return out;
  }

  /// Distance-sorted top-k over all loaded records (a full scan).
  Result<std::vector<uint64_t>> BruteForceKnn(const geo::Point& q,
                                              int k) const {
    std::vector<std::pair<double, uint64_t>> distances;
    distances.reserve(records_.size());
    for (const BaselineRecord& r : records_) {
      distances.emplace_back(r.box.MinDistance(q), r.id);
    }
    size_t keep = std::min<size_t>(static_cast<size_t>(std::max(0, k)),
                                   distances.size());
    std::partial_sort(distances.begin(), distances.begin() + keep,
                      distances.end());
    std::vector<uint64_t> out;
    for (size_t i = 0; i < keep; ++i) out.push_back(distances[i].second);
    return out;
  }

  /// Every query pays the Spark task-launch latency.
  void PayTaskLaunch() const {
    if (task_cost_ms_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(task_cost_ms_));
    }
  }

  exec::MemoryBudget budget_;
  std::vector<BaselineRecord> records_;
  size_t charged_ = 0;
  int64_t task_cost_ms_ = 0;
};

/// Simba look-alike: SparkSQL-integrated, two-level R-tree (global STR over
/// partitions, local R-trees inside) [Xie et al., SIGMOD 2016]. Spatial
/// only (Table VI), with k-NN.
class SimbaLike : public SparkLikeBase {
 public:
  explicit SimbaLike(const BaselineOptions& options)
      : SparkLikeBase(options) {
    traits_ = {"Simba", "Spark", /*scalable=*/false, /*sql=*/true,
               /*data_update=*/false, /*data_processing=*/false,
               /*spatio_temporal=*/false, /*non_point=*/false, /*knn=*/true};
  }

  const SystemTraits& traits() const override { return traits_; }

  Result<std::vector<uint64_t>> SpatialRange(const geo::Mbr& box) override {
    PayTaskLaunch();
    std::vector<uint64_t> out;
    tree_.Query(box, [&](const spatial::SpatialEntry& e) {
      out.push_back(e.id);
    });
    return out;
  }

  Result<std::vector<uint64_t>> StRange(const geo::Mbr&, TimestampMs,
                                        TimestampMs) override {
    return Status::NotSupported("Simba does not index time");
  }

  Result<std::vector<uint64_t>> Knn(const geo::Point& q, int k) override {
    PayTaskLaunch();
    std::vector<uint64_t> out;
    for (const auto& e : tree_.Knn(q, k)) out.push_back(e.id);
    return out;
  }

 protected:
  Status DoBuild() override {
    std::vector<spatial::SpatialEntry> entries;
    entries.reserve(records_.size());
    for (const BaselineRecord& r : records_) {
      entries.push_back({r.box, r.id});
    }
    tree_.BulkLoad(std::move(entries));
    return Status::OK();
  }

  // SparkSQL row objects + global/local R-trees: ~2.8x raw bytes.
  double IndexOverheadFactor() const override { return 1.8; }

 private:
  SystemTraits traits_;
  spatial::StrRTree tree_;
};

/// GeoSpark look-alike: SRDDs with per-partition local indexes but no
/// global index — every query probes all partitions [Yu et al.]. Supports
/// non-point data and processing operators.
class GeoSparkLike : public SparkLikeBase {
 public:
  explicit GeoSparkLike(const BaselineOptions& options)
      : SparkLikeBase(options) {
    traits_ = {"GeoSpark", "Spark", false, /*sql=*/false,
               /*data_update=*/false, /*data_processing=*/true,
               /*spatio_temporal=*/false, /*non_point=*/true, /*knn=*/true};
  }

  const SystemTraits& traits() const override { return traits_; }

  Result<std::vector<uint64_t>> SpatialRange(const geo::Mbr& box) override {
    PayTaskLaunch();
    // No global index: consult every partition's local index.
    std::vector<uint64_t> out;
    for (const auto& partition : partitions_) {
      partition.Query(box, [&](const spatial::SpatialEntry& e) {
        out.push_back(e.id);
      });
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  Result<std::vector<uint64_t>> StRange(const geo::Mbr&, TimestampMs,
                                        TimestampMs) override {
    return Status::NotSupported("GeoSpark does not index time");
  }

  Result<std::vector<uint64_t>> Knn(const geo::Point& q, int k) override {
    // GeoSpark's published k-NN (through 1.1) maps a distance computation
    // over the WHOLE SRDD and takes the top k — a full scan per query plus
    // one task wave per partition. This is why the paper's Fig. 13 shows it
    // orders of magnitude behind JUST.
    for (size_t p = 0; p < partitions_.size(); ++p) PayTaskLaunch();
    return BruteForceKnn(q, k);
  }

 protected:
  Status DoBuild() override {
    // Hash records into NUM_PARTITION range partitions by longitude strips
    // (GeoSpark's uniform partitioner), each with a local R-tree.
    constexpr int kPartitions = 16;
    partitions_.clear();
    std::vector<std::vector<spatial::SpatialEntry>> buckets(kPartitions);
    geo::Mbr extent = geo::Mbr::Empty();
    for (const BaselineRecord& r : records_) extent.Expand(r.box);
    if (extent.IsEmpty()) extent = geo::Mbr::World();
    double width = std::max(1e-9, extent.Width());
    for (const BaselineRecord& r : records_) {
      int p = static_cast<int>((r.box.Center().lng - extent.lng_min) /
                               width * kPartitions);
      p = std::clamp(p, 0, kPartitions - 1);
      buckets[p].push_back({r.box, r.id});
    }
    for (auto& bucket : buckets) {
      spatial::StrRTree tree;
      tree.BulkLoad(std::move(bucket));
      partitions_.push_back(std::move(tree));
    }
    return Status::OK();
  }

 private:
  SystemTraits traits_;
  std::vector<spatial::StrRTree> partitions_;
};

/// SpatialSpark look-alike: fixed-grid partitioning, no local index —
/// candidate cells are scanned linearly [You et al.]. Range queries only
/// (Table VI: no k-NN).
class SpatialSparkLike : public SparkLikeBase {
 public:
  explicit SpatialSparkLike(const BaselineOptions& options)
      : SparkLikeBase(options),
        grid_(geo::Mbr::World(), 1) {
    traits_ = {"SpatialSpark", "Spark", false, /*sql=*/false,
               /*data_update=*/false, /*data_processing=*/false,
               /*spatio_temporal=*/false, /*non_point=*/false,
               /*knn=*/false};
  }

  const SystemTraits& traits() const override { return traits_; }

  Result<std::vector<uint64_t>> SpatialRange(const geo::Mbr& box) override {
    PayTaskLaunch();
    std::vector<uint64_t> out;
    grid_.Query(box, [&](const spatial::SpatialEntry& e) {
      out.push_back(e.id);
    });
    return out;
  }

  Result<std::vector<uint64_t>> StRange(const geo::Mbr&, TimestampMs,
                                        TimestampMs) override {
    return Status::NotSupported("SpatialSpark does not index time");
  }

  Result<std::vector<uint64_t>> Knn(const geo::Point&, int) override {
    return Status::NotSupported("SpatialSpark does not support k-NN");
  }

 protected:
  Status DoBuild() override {
    geo::Mbr extent = geo::Mbr::Empty();
    for (const BaselineRecord& r : records_) extent.Expand(r.box);
    if (extent.IsEmpty()) extent = geo::Mbr::World();
    grid_ = spatial::GridIndex(extent, 64);
    for (const BaselineRecord& r : records_) grid_.Insert({r.box, r.id});
    return Status::OK();
  }

  // Grid partition candidate duplication: ~1.3x raw bytes.
  double IndexOverheadFactor() const override { return 0.30; }

 private:
  SystemTraits traits_;
  spatial::GridIndex grid_;
};

/// LocationSpark look-alike: quad-tree global index + per-partition local
/// R-trees + query-skew caches [Tang et al.]. The richest (and heaviest)
/// in-memory structure of the four — it OOMs first in the paper.
class LocationSparkLike : public SparkLikeBase {
 public:
  explicit LocationSparkLike(const BaselineOptions& options)
      : SparkLikeBase(options) {
    traits_ = {"LocationSpark", "Spark", false, /*sql=*/false,
               /*data_update=*/true, /*data_processing=*/true,
               /*spatio_temporal=*/false, /*non_point=*/true, /*knn=*/true};
  }

  const SystemTraits& traits() const override { return traits_; }

  Result<std::vector<uint64_t>> SpatialRange(const geo::Mbr& box) override {
    PayTaskLaunch();
    std::vector<uint64_t> out;
    tree_.Query(box, [&](const spatial::SpatialEntry& e) {
      out.push_back(e.id);
    });
    return out;
  }

  Result<std::vector<uint64_t>> StRange(const geo::Mbr&, TimestampMs,
                                        TimestampMs) override {
    return Status::NotSupported("LocationSpark does not index time");
  }

  Result<std::vector<uint64_t>> Knn(const geo::Point& q, int k) override {
    // LocationSpark runs k-NN as a two-round job (plan + execute) over the
    // candidate partitions with a skew-repartition shuffle in between; per
    // the paper's Fig. 13 it lands in the same decade as GeoSpark.
    for (size_t p = 0; p < 2 * kKnnTaskWaves; ++p) PayTaskLaunch();
    return BruteForceKnn(q, k);
  }

 protected:
  static constexpr size_t kKnnTaskWaves = 8;

  Status DoBuild() override {
    tree_ = spatial::QuadTree(geo::Mbr::World(), 64, 16);
    for (const BaselineRecord& r : records_) tree_.Insert({r.box, r.id});
    return Status::OK();
  }

  double IndexOverheadFactor() const override {
    // Quad-tree + local R-trees + skew caches (JVM object blow-up): the
    // paper sees it OOM at the smallest Traj fraction, so it is the
    // hungriest of the four (~5.5x raw bytes).
    return 4.5;
  }

 private:
  SystemTraits traits_;
  spatial::QuadTree tree_{geo::Mbr::World(), 64, 16};
};

}  // namespace

namespace internal {
std::unique_ptr<BaselineSystem> MakeSparkLike(const std::string& name,
                                              const BaselineOptions& options) {
  if (name == "Simba") return std::make_unique<SimbaLike>(options);
  if (name == "GeoSpark") return std::make_unique<GeoSparkLike>(options);
  if (name == "SpatialSpark") {
    return std::make_unique<SpatialSparkLike>(options);
  }
  if (name == "LocationSpark") {
    return std::make_unique<LocationSparkLike>(options);
  }
  return nullptr;
}
}  // namespace internal

}  // namespace just::baselines
