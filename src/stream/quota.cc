#include "stream/quota.h"

#include <algorithm>
#include <chrono>

namespace just::stream {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

obs::Counter* TenantCounter(const char* name, const std::string& tenant) {
  return obs::Registry::Global().GetCounter(
      obs::LabeledName(name, {{"tenant", tenant}}));
}

}  // namespace

QuotaManager::QuotaManager(ClockFn clock) : clock_(std::move(clock)) {
  if (!clock_) clock_ = SteadyNowNs;
}

void QuotaManager::SetQuota(const std::string& tenant,
                            const meta::TenantQuotaConfig& q) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState* st = EnsureTenantLocked(tenant);
  st->config = q;
  st->has_config = true;
  // Re-prime so the new burst ceiling takes effect immediately: a tightened
  // quota should not leave a bucket holding more tokens than its new burst.
  st->write.primed = false;
  st->scan.primed = false;
}

void QuotaManager::SetDefaultQuota(const meta::TenantQuotaConfig& q) {
  std::lock_guard<std::mutex> lock(mu_);
  default_quota_ = q;
  has_default_ = true;
}

bool QuotaManager::GetQuota(const std::string& tenant,
                            meta::TenantQuotaConfig* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it != tenants_.end() && it->second->has_config) {
    if (out != nullptr) *out = it->second->config;
    return true;
  }
  if (has_default_) {
    if (out != nullptr) *out = default_quota_;
    return true;
  }
  return false;
}

void QuotaManager::Refill(Bucket* bucket, double rate, double burst,
                          uint64_t now) {
  if (!bucket->primed) {
    bucket->tokens = burst;
    bucket->last_ns = now;
    bucket->primed = true;
    return;
  }
  if (now <= bucket->last_ns) return;
  double dt = static_cast<double>(now - bucket->last_ns) / 1e9;
  bucket->last_ns = now;
  bucket->tokens = std::min(burst, bucket->tokens + dt * rate);
}

QuotaManager::TenantState* QuotaManager::EnsureTenantLocked(
    const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return it->second.get();
  auto st = std::make_unique<TenantState>();
  if (has_default_) {
    st->config = default_quota_;
    st->has_config = true;
  }
  st->write_rows_counter = TenantCounter("just_tenant_write_rows_total", tenant);
  st->write_shed_counter = TenantCounter("just_tenant_write_shed_total", tenant);
  st->scan_bytes_counter = TenantCounter("just_tenant_scan_bytes_total", tenant);
  st->scan_shed_counter = TenantCounter("just_tenant_scan_shed_total", tenant);
  TenantState* raw = st.get();
  tenants_.emplace(tenant, std::move(st));
  return raw;
}

Status QuotaManager::AdmitWrite(const std::string& tenant, size_t rows) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState* st = EnsureTenantLocked(tenant);
  uint64_t rate = st->has_config ? st->config.write_rows_per_sec : 0;
  if (rate > 0) {
    uint64_t burst = st->config.write_burst_rows > 0
                         ? st->config.write_burst_rows
                         : rate;
    Refill(&st->write, static_cast<double>(rate), static_cast<double>(burst),
           clock_());
    if (st->write.tokens < static_cast<double>(rows)) {
      st->write_sheds++;
      st->write_shed_counter->Add(1);
      return Status::ResourceExhausted("tenant '" + tenant +
                                       "' write rate limit exceeded");
    }
    st->write.tokens -= static_cast<double>(rows);
  }
  st->write_rows_admitted += rows;
  st->write_rows_counter->Add(rows);
  return Status::OK();
}

Status QuotaManager::AdmitScan(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState* st = EnsureTenantLocked(tenant);
  uint64_t rate = st->has_config ? st->config.scan_bytes_per_sec : 0;
  if (rate > 0) {
    uint64_t burst = st->config.scan_burst_bytes > 0
                         ? st->config.scan_burst_bytes
                         : rate;
    Refill(&st->scan, static_cast<double>(rate), static_cast<double>(burst),
           clock_());
    // Post-paid: admit whenever the bucket is not in debt. A single scan may
    // overdraw; the debt then throttles the *next* scan, not this one.
    if (st->scan.tokens <= 0) {
      st->scan_sheds++;
      st->scan_shed_counter->Add(1);
      return Status::ResourceExhausted("tenant '" + tenant +
                                       "' scan byte budget exhausted");
    }
  }
  return Status::OK();
}

void QuotaManager::ChargeScanBytes(const std::string& tenant, size_t bytes) {
  if (bytes == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  TenantState* st = EnsureTenantLocked(tenant);
  uint64_t rate = st->has_config ? st->config.scan_bytes_per_sec : 0;
  if (rate > 0) {
    uint64_t burst = st->config.scan_burst_bytes > 0
                         ? st->config.scan_burst_bytes
                         : rate;
    Refill(&st->scan, static_cast<double>(rate), static_cast<double>(burst),
           clock_());
    st->scan.tokens -= static_cast<double>(bytes);
  }
  st->scan_bytes_charged += bytes;
  st->scan_bytes_counter->Add(bytes);
}

QuotaManager::TenantCounters QuotaManager::GetCounters(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  TenantCounters out;
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return out;
  out.write_rows_admitted = it->second->write_rows_admitted;
  out.write_sheds = it->second->write_sheds;
  out.scan_bytes_charged = it->second->scan_bytes_charged;
  out.scan_sheds = it->second->scan_sheds;
  return out;
}

std::vector<std::string> QuotaManager::Tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(tenants_.size());
  for (const auto& [name, st] : tenants_) out.push_back(name);
  return out;
}

}  // namespace just::stream
