#ifndef JUST_STREAM_QUOTA_H_
#define JUST_STREAM_QUOTA_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "meta/catalog.h"
#include "obs/metrics.h"

namespace just::stream {

/// Per-tenant admission control: one token bucket for write rows and one for
/// scan bytes per tenant (namespace/user). The multi-tenant guarantee is
/// *isolation by construction*: buckets never share tokens, so a tenant at
/// or under its configured rate always finds tokens regardless of how hard
/// any other tenant floods — the fair-scheduling property the stream tests
/// pin (an over-limit tenant is shed, an at-limit tenant is never starved).
///
/// Semantics:
///  - Writes are pre-paid: AdmitWrite() admits only when the bucket holds at
///    least `rows` tokens; otherwise it sheds with kResourceExhausted (not a
///    transient status, so cluster retry loops do not hammer a throttled
///    tenant).
///  - Scans are post-paid: AdmitScan() only checks the bucket is not
///    exhausted, and ChargeScanBytes() debits what the scan actually read
///    (possibly driving the bucket negative — one query may overshoot, and
///    the debt pays itself off at the refill rate before the next scan is
///    admitted). Pre-paying scans is impossible: the byte count is unknown
///    until the scan ran.
///  - A tenant with no quota configured (and no default) is unlimited; only
///    its usage counters are maintained.
///
/// Every decision lands in tenant-labeled registry metrics:
///   just_tenant_write_rows_total{tenant=...}   admitted write rows
///   just_tenant_write_shed_total{tenant=...}   shed write requests
///   just_tenant_scan_bytes_total{tenant=...}   scan bytes charged
///   just_tenant_scan_shed_total{tenant=...}    scans rejected on exhaustion
/// so /metrics and /statsz expose per-tenant pressure without new plumbing.
///
/// Thread-safe. The clock is injectable for deterministic tests.
class QuotaManager {
 public:
  /// Monotonic nanoseconds. The default uses std::chrono::steady_clock.
  using ClockFn = std::function<uint64_t()>;

  explicit QuotaManager(ClockFn clock = {});

  /// Sets (or replaces) a tenant's quota. Zero-valued rates are unlimited.
  void SetQuota(const std::string& tenant, const meta::TenantQuotaConfig& q);

  /// Applies to tenants without an explicit quota (the region server's
  /// blanket `--tenant-write-rps`). Explicit SetQuota wins.
  void SetDefaultQuota(const meta::TenantQuotaConfig& q);

  /// True (and fills `out`) when the tenant has an effective quota.
  bool GetQuota(const std::string& tenant, meta::TenantQuotaConfig* out) const;

  /// Admits or sheds a write of `rows` rows. OK always counts the rows.
  Status AdmitWrite(const std::string& tenant, size_t rows);

  /// Admits a scan unless the tenant's scan-byte bucket is exhausted.
  Status AdmitScan(const std::string& tenant);

  /// Debits bytes a finished scan actually read (post-paid; may overdraw).
  void ChargeScanBytes(const std::string& tenant, size_t bytes);

  /// Point-in-time per-tenant usage, for tests and /statsz assertions.
  struct TenantCounters {
    uint64_t write_rows_admitted = 0;
    uint64_t write_sheds = 0;
    uint64_t scan_bytes_charged = 0;
    uint64_t scan_sheds = 0;
  };
  TenantCounters GetCounters(const std::string& tenant) const;

  /// Tenants seen so far (configured or merely active), sorted.
  std::vector<std::string> Tenants() const;

 private:
  /// One token bucket. `tokens` refills at `rate`/sec up to `burst`.
  struct Bucket {
    double tokens = 0;
    uint64_t last_ns = 0;
    bool primed = false;  ///< first touch fills the bucket to burst
  };

  struct TenantState {
    meta::TenantQuotaConfig config;
    bool has_config = false;
    Bucket write;
    Bucket scan;
    // Local mirrors of the labeled registry counters (cheap test access).
    uint64_t write_rows_admitted = 0;
    uint64_t write_sheds = 0;
    uint64_t scan_bytes_charged = 0;
    uint64_t scan_sheds = 0;
    obs::Counter* write_rows_counter = nullptr;
    obs::Counter* write_shed_counter = nullptr;
    obs::Counter* scan_bytes_counter = nullptr;
    obs::Counter* scan_shed_counter = nullptr;
  };

  TenantState* EnsureTenantLocked(const std::string& tenant);
  /// Refills `bucket` to `now` and returns it ready for a take.
  static void Refill(Bucket* bucket, double rate, double burst, uint64_t now);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;
  meta::TenantQuotaConfig default_quota_;
  bool has_default_ = false;
  ClockFn clock_;
};

}  // namespace just::stream

#endif  // JUST_STREAM_QUOTA_H_
