#include "stream/continuous_query.h"

#include <algorithm>
#include <chrono>

#include "obs/trace.h"

namespace just::stream {

namespace {

obs::Counter* QueryCounter(const char* name, const std::string& query) {
  return obs::Registry::Global().GetCounter(
      obs::LabeledName(name, {{"query", query}}));
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int64_t StreamHub::Query::bucket_width_ms() const {
  int64_t w = spec.window_ms / kWindowBuckets;
  return w > 0 ? w : 1;
}

void StreamHub::Query::RetireOldBucketsLocked() {
  // The trailing window is [watermark - window_ms, watermark]; a bucket is
  // dead once its *end* falls before the window start.
  int64_t width = bucket_width_ms();
  int64_t window_start = watermark_ms - spec.window_ms;
  auto it = window_buckets.begin();
  while (it != window_buckets.end() && it->first + width <= window_start) {
    it = window_buckets.erase(it);
  }
}

StreamHub::~StreamHub() = default;

Status StreamHub::Register(ContinuousQuerySpec spec,
                           std::shared_ptr<exec::Schema> schema,
                           const sql::Expr* predicate,
                           const std::string& cache_tag, int fid_col,
                           int time_col) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("continuous query needs a name");
  }
  auto q = std::make_shared<Query>();
  if (predicate != nullptr) {
    JUST_ASSIGN_OR_RETURN(
        q->program, sql::PredicateProgramCache::Global().GetOrCompile(
                        {predicate}, *schema, cache_tag));
  }
  if (spec.window_ms > 0 && !spec.group_by.empty()) {
    q->group_col = schema->IndexOf(spec.group_by);
    if (q->group_col < 0) {
      return Status::InvalidArgument("unknown GROUP BY column '" +
                                     spec.group_by + "' in continuous query");
    }
  }
  if (spec.window_ms > 0 && time_col < 0) {
    return Status::InvalidArgument(
        "windowed continuous query requires a table with a time column");
  }
  q->fid_col = fid_col;
  q->time_col = time_col;
  q->schema = std::move(schema);
  q->matches_counter = QueryCounter("just_cq_matches_total", spec.name);
  q->notifications_counter =
      QueryCounter("just_cq_notifications_total", spec.name);
  q->dropped_counter = QueryCounter("just_cq_dropped_total", spec.name);
  q->spec = std::move(spec);

  std::lock_guard<std::mutex> lock(mu_);
  std::string key = Key(q->spec.user, q->spec.name);
  if (queries_.count(key) != 0) {
    return Status::AlreadyExists("continuous query '" + q->spec.name +
                                 "' already exists");
  }
  queries_.emplace(std::move(key), std::move(q));
  num_queries_.store(queries_.size(), std::memory_order_relaxed);
  obs::Registry::Global()
      .GetGauge("just_cq_registered")
      ->Set(static_cast<int64_t>(queries_.size()));
  return Status::OK();
}

Status StreamHub::Unregister(const std::string& user, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(Key(user, name));
  if (it == queries_.end()) {
    return Status::NotFound("continuous query '" + name + "' not found");
  }
  queries_.erase(it);
  num_queries_.store(queries_.size(), std::memory_order_relaxed);
  obs::Registry::Global()
      .GetGauge("just_cq_registered")
      ->Set(static_cast<int64_t>(queries_.size()));
  return Status::OK();
}

size_t StreamHub::DropQueriesForTable(const std::string& user,
                                      const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = queries_.begin(); it != queries_.end();) {
    if (it->second->spec.user == user && it->second->spec.table == table) {
      it = queries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped > 0) {
    num_queries_.store(queries_.size(), std::memory_order_relaxed);
    obs::Registry::Global()
        .GetGauge("just_cq_registered")
        ->Set(static_cast<int64_t>(queries_.size()));
  }
  return dropped;
}

std::vector<StreamHub::QueryInfo> StreamHub::List(
    const std::string& user) const {
  std::vector<QueryInfo> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, q] : queries_) {
    if (q->spec.user != user) continue;
    QueryInfo info;
    info.name = q->spec.name;
    info.table = q->spec.table;
    info.kind = q->spec.window_ms > 0 ? "window" : "alert";
    info.predicate_sql = q->spec.predicate_sql;
    info.group_by = q->spec.group_by;
    info.window_ms = q->spec.window_ms;
    {
      std::lock_guard<std::mutex> qlock(q->mu);
      info.matches = q->matches;
      info.notifications = q->notifications;
      info.dropped = q->dropped;
    }
    out.push_back(std::move(info));
  }
  return out;
}

Result<std::vector<Notification>> StreamHub::TakeNotifications(
    const std::string& user, const std::string& name, size_t max) {
  std::shared_ptr<Query> q;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(Key(user, name));
    if (it == queries_.end()) {
      return Status::NotFound("continuous query '" + name + "' not found");
    }
    q = it->second;
  }
  std::vector<Notification> out;
  std::lock_guard<std::mutex> qlock(q->mu);
  while (!q->pending.empty() && out.size() < max) {
    out.push_back(std::move(q->pending.front()));
    q->pending.pop_front();
  }
  return out;
}

Result<std::vector<StreamHub::WindowGroup>> StreamHub::WindowSnapshot(
    const std::string& user, const std::string& name) const {
  std::shared_ptr<Query> q;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(Key(user, name));
    if (it == queries_.end()) {
      return Status::NotFound("continuous query '" + name + "' not found");
    }
    q = it->second;
  }
  if (q->spec.window_ms <= 0) {
    return Status::InvalidArgument("continuous query '" + name +
                                   "' is an alert query, not a window");
  }
  std::map<std::string, uint64_t> totals;
  {
    std::lock_guard<std::mutex> qlock(q->mu);
    int64_t window_start = q->watermark_ms - q->spec.window_ms;
    int64_t width = q->bucket_width_ms();
    for (const auto& [bucket_start, groups] : q->window_buckets) {
      if (bucket_start + width <= window_start) continue;
      for (const auto& [group, count] : groups) totals[group] += count;
    }
  }
  std::vector<WindowGroup> out;
  out.reserve(totals.size());
  for (auto& [group, count] : totals) out.push_back({group, count});
  return out;
}

void StreamHub::EvaluateQuery(Query* q, exec::ColumnBatch* batch) {
  // Each query filters its own fresh selection over the shared batch:
  // PredicateProgram::Run starts from the current selection, so reset first.
  batch->ClearSelection();
  if (q->program != nullptr) {
    sql::PredicateStats pstats;
    if (!q->program->Run(batch, &pstats).ok()) return;
  }
  size_t active = batch->num_active();
  if (active == 0) return;
  const uint32_t* sel = batch->selection_data();

  std::lock_guard<std::mutex> qlock(q->mu);
  q->matches += active;
  q->matches_counter->Add(active);
  for (size_t i = 0; i < active; ++i) {
    size_t row = sel != nullptr ? sel[i] : i;
    int64_t event_ms = 0;
    if (q->time_col >= 0) {
      const exec::ColumnVector& tc = batch->column(q->time_col);
      if (!tc.IsNull(row)) {
        exec::Value tv = tc.ValueAt(row);
        if (auto r = tv.AsInt(); r.ok()) event_ms = r.value();
      }
    }
    if (q->spec.window_ms > 0) {
      // Window aggregate: fold into the event-time bucket and advance the
      // watermark. Late rows (inside the window) still count; rows older
      // than the whole window fall into already-retired buckets and are
      // dropped by the snapshot's window check.
      std::string group;
      if (q->group_col >= 0) {
        group = batch->column(q->group_col).ValueAt(row).ToString();
      }
      int64_t width = q->bucket_width_ms();
      int64_t bucket = event_ms - (((event_ms % width) + width) % width);
      q->window_buckets[bucket][group]++;
      if (event_ms > q->watermark_ms) {
        q->watermark_ms = event_ms;
        q->RetireOldBucketsLocked();
      }
    } else {
      Notification n;
      n.query = q->spec.name;
      n.user = q->spec.user;
      n.table = q->spec.table;
      n.seq = q->next_seq++;
      n.timestamp_ms = event_ms;
      if (q->fid_col >= 0) {
        const exec::ColumnVector& fc = batch->column(q->fid_col);
        if (!fc.IsNull(row)) n.fid = fc.ValueAt(row).ToString();
      }
      n.row = batch->MaterializeRow(row);
      if (q->spec.on_notify) q->spec.on_notify(n);
      q->notifications++;
      q->notifications_counter->Add(1);
      if (q->pending.size() >= kMaxPendingNotifications) {
        q->pending.pop_front();
        q->dropped++;
        q->dropped_counter->Add(1);
      }
      q->pending.push_back(std::move(n));
    }
  }
}

void StreamHub::OnInsert(const std::string& user, const std::string& table,
                         const std::vector<exec::Row>& rows) {
  if (num_queries_.load(std::memory_order_relaxed) == 0 || rows.empty()) {
    return;
  }
  std::vector<std::shared_ptr<Query>> matching;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, q] : queries_) {
      if (q->spec.user == user && q->spec.table == table) {
        matching.push_back(q);
      }
    }
  }
  if (matching.empty()) return;

  uint64_t start_us = NowUs();
  obs::ScopedSpan span("cq.eval");
  if (span.span() != nullptr) {
    span.span()->AddAttr("table", user + "." + table);
  }

  // Pack the inserted rows once; every query evaluates against this batch
  // with its own selection pass. No storage scan happens anywhere on this
  // path — that is the point.
  exec::ColumnBatch batch(matching[0]->schema);
  for (const exec::Row& row : rows) batch.AppendRow(row);

  for (auto& q : matching) EvaluateQuery(q.get(), &batch);

  obs::Registry::Global()
      .GetCounter("just_cq_eval_rows_total")
      ->Add(rows.size() * matching.size());
  obs::Registry::Global()
      .GetHistogram("just_cq_eval_us")
      ->Record(NowUs() - start_us);
  if (span.span() != nullptr) {
    span.span()->counters().rows_out.fetch_add(rows.size(),
                                               std::memory_order_relaxed);
  }
}

}  // namespace just::stream
