#ifndef JUST_STREAM_CONTINUOUS_QUERY_H_
#define JUST_STREAM_CONTINUOUS_QUERY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/column_batch.h"
#include "obs/metrics.h"
#include "sql/ast.h"
#include "sql/predicate_program.h"

namespace just::stream {

/// One event emitted by an alert-style continuous query: a streamed row
/// matched the standing predicate. Produced on the ingest path — no scan is
/// involved, which is what the `rows_scanned == 0` acceptance test pins.
struct Notification {
  std::string query;       ///< continuous-query name
  std::string user;        ///< owning namespace
  std::string table;
  uint64_t seq = 0;        ///< per-query sequence number (1-based)
  int64_t timestamp_ms = 0;  ///< row event time (0 when the table has none)
  std::string fid;         ///< matching row's feature id ("" when none)
  exec::Row row;           ///< the full matching row
};

/// Registration request for one standing query. `window_ms == 0` declares a
/// geofence-style *alert* query (every matching row becomes a Notification);
/// `window_ms > 0` declares a sliding-window *aggregate* (matching rows are
/// counted per `group_by` value over the trailing window — the live
/// per-district heatmap of the paper's urban scenario).
struct ContinuousQuerySpec {
  std::string name;
  std::string user;
  std::string table;
  std::string predicate_sql;  ///< normalized WHERE text, "" = match all
  std::string group_by;       ///< window queries: grouping column ("" = all)
  int64_t window_ms = 0;
  /// Optional synchronous callback invoked on the ingest thread for every
  /// notification (alert queries only) — the bench's latency probe. Must be
  /// cheap and must not call back into the engine.
  std::function<void(const Notification&)> on_notify;
};

/// The registry of standing queries plus the incremental evaluator that the
/// engine calls once per committed insert batch. Matching reuses the
/// compiled predicate programs of `src/sql/predicate_program` (shared LRU
/// cache, keyed by the table's catalog generation): streamed rows are packed
/// into one ColumnBatch and each query's program shrinks a fresh selection
/// over it — the ad-hoc scan's refinement kernel, pointed at the ingest
/// stream instead of storage.
///
/// Alert results queue in a bounded per-query ring (drop-oldest beyond
/// kMaxPendingNotifications, with a drop counter) consumed by
/// TakeNotifications; window aggregates fold into event-time buckets read by
/// WindowSnapshot. Per-query registry metrics:
///   just_cq_matches_total{query=...}        rows that matched
///   just_cq_notifications_total{query=...}  notifications enqueued
///   just_cq_dropped_total{query=...}        notifications dropped (ring full)
/// plus the globals just_cq_registered (gauge), just_cq_eval_rows_total,
/// and the just_cq_eval_us histogram.
class StreamHub {
 public:
  /// Alert notifications retained per query before drop-oldest kicks in.
  static constexpr size_t kMaxPendingNotifications = 1024;

  StreamHub() = default;
  StreamHub(const StreamHub&) = delete;
  StreamHub& operator=(const StreamHub&) = delete;
  ~StreamHub();

  /// Registers a standing query. `schema` is the table's column layout;
  /// `predicate` (nullable = match-all) is compiled immediately through the
  /// global predicate-program cache under `cache_tag`
  /// ("table_id:generation"), so a CQ shares its compiled program with
  /// ad-hoc scans of the same predicate. `fid_col`/`time_col`/-1 bind the
  /// table's special columns; window queries resolve `group_by` against the
  /// schema here. Fails on duplicate name or unresolvable columns.
  Status Register(ContinuousQuerySpec spec,
                  std::shared_ptr<exec::Schema> schema,
                  const sql::Expr* predicate, const std::string& cache_tag,
                  int fid_col, int time_col);

  /// Drops one query; NotFound when absent.
  Status Unregister(const std::string& user, const std::string& name);

  /// Drops every query standing on (user, table) — DROP TABLE cleanup.
  /// Returns how many were dropped.
  size_t DropQueriesForTable(const std::string& user, const std::string& table);

  /// Summary row for SHOW CONTINUOUS QUERIES.
  struct QueryInfo {
    std::string name;
    std::string table;
    std::string kind;  ///< "alert" or "window"
    std::string predicate_sql;
    std::string group_by;
    int64_t window_ms = 0;
    uint64_t matches = 0;
    uint64_t notifications = 0;
    uint64_t dropped = 0;
  };
  std::vector<QueryInfo> List(const std::string& user) const;

  /// Removes and returns up to `max` pending notifications (FIFO).
  /// NotFound for an unknown query.
  Result<std::vector<Notification>> TakeNotifications(const std::string& user,
                                                      const std::string& name,
                                                      size_t max = 128);

  /// One group's live aggregate over the trailing window.
  struct WindowGroup {
    std::string group;  ///< group_by value ("" when ungrouped)
    uint64_t count = 0;
  };
  /// Counts per group over the query's trailing window, as of the largest
  /// event time seen (the stream watermark). Sorted by group.
  Result<std::vector<WindowGroup>> WindowSnapshot(const std::string& user,
                                                  const std::string& name) const;

  /// The engine's post-commit hook: evaluates every standing query on
  /// (user, table) against `rows`. Cheap no-op (one relaxed atomic load)
  /// while nothing is registered, so tables without CQs pay nothing.
  void OnInsert(const std::string& user, const std::string& table,
                const std::vector<exec::Row>& rows);

  size_t NumQueries() const {
    return num_queries_.load(std::memory_order_relaxed);
  }

 private:
  struct Query {
    ContinuousQuerySpec spec;
    std::shared_ptr<exec::Schema> schema;
    std::shared_ptr<const sql::PredicateProgram> program;  ///< null = match all
    int fid_col = -1;
    int time_col = -1;
    int group_col = -1;  ///< resolved group_by column (window queries)

    std::mutex mu;  ///< guards everything below
    uint64_t next_seq = 1;
    uint64_t matches = 0;
    uint64_t notifications = 0;
    uint64_t dropped = 0;
    std::deque<Notification> pending;
    /// Sliding window as event-time buckets: bucket start -> group -> count.
    /// Bucket width = window_ms / kWindowBuckets (>= 1ms); buckets older
    /// than watermark - window_ms retire as the watermark advances, so the
    /// snapshot is the trailing-window count with bucket-width granularity.
    std::map<int64_t, std::map<std::string, uint64_t>> window_buckets;
    int64_t watermark_ms = INT64_MIN;

    obs::Counter* matches_counter = nullptr;
    obs::Counter* notifications_counter = nullptr;
    obs::Counter* dropped_counter = nullptr;

    int64_t bucket_width_ms() const;
    void RetireOldBucketsLocked();
  };

  static constexpr int64_t kWindowBuckets = 10;

  static std::string Key(const std::string& user, const std::string& name) {
    return user + "." + name;
  }

  /// Evaluates one query against a packed batch of the inserted rows.
  void EvaluateQuery(Query* q, exec::ColumnBatch* batch);

  mutable std::mutex mu_;  ///< guards queries_ map shape
  std::map<std::string, std::shared_ptr<Query>> queries_;
  std::atomic<size_t> num_queries_{0};
};

}  // namespace just::stream

#endif  // JUST_STREAM_CONTINUOUS_QUERY_H_
