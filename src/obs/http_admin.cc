#include "obs/http_admin.h"

#include <cstdio>
#include <utility>

#include "net/socket.h"
#include "obs/metrics.h"

namespace just::obs {

namespace {

/// Largest request we bother reading. Admin requests are one GET line plus
/// a few headers; anything bigger is a confused client.
constexpr size_t kMaxRequestBytes = 8 * 1024;
/// Per-connection socket timeout. Bounds how long one slow scraper can
/// hold the (serial) accept loop.
constexpr int kSocketTimeoutMs = 2000;

const char* ReasonPhrase(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Internal Server Error";
  }
}

std::string BuildResponse(int code, const std::string& content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " +
                    ReasonPhrase(code) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string TracezJson(const SlowQueryLog* log) {
  std::string out = "[";
  if (log != nullptr) {
    bool first = true;
    for (const SlowQueryEntry& e : log->Entries()) {
      if (!first) out.push_back(',');
      first = false;
      out += "{\"user\":";
      AppendJsonString(&out, e.user);
      out += ",\"sql\":";
      AppendJsonString(&out, e.sql);
      out += ",\"wall_us\":" + std::to_string(e.wall_us);
      out += ",\"rows\":" + std::to_string(e.rows);
      out += ",\"rows_scanned\":" + std::to_string(e.rows_scanned);
      out += ",\"key_ranges\":" + std::to_string(e.key_ranges);
      out += ",\"trace\":";
      // trace_json is TraceSpan::ToJson() output (already JSON) or empty.
      out += e.trace_json.empty() ? "null" : e.trace_json;
      out += "}";
    }
  }
  out += "]\n";
  return out;
}

}  // namespace

HttpAdminServer::HttpAdminServer(Options options)
    : options_(std::move(options)) {}

HttpAdminServer::~HttpAdminServer() { Stop(); }

Status HttpAdminServer::Start() {
  auto listener = net::Listener::Listen(options_.host, options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::make_unique<net::Listener>(std::move(listener.value()));
  port_ = listener_->port();
  thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::OK();
}

void HttpAdminServer::Stop() {
  if (!started_) return;
  started_ = false;
  listener_->Close();  // wakes the blocked Accept
  if (thread_.joinable()) thread_.join();
  listener_.reset();
}

int HttpAdminServer::Route(const std::string& method, const std::string& path,
                           std::string* body,
                           std::string* content_type) const {
  if (method != "GET") {
    *content_type = "text/plain";
    *body = "method not allowed\n";
    return 405;
  }
  if (path == "/healthz") {
    *content_type = "text/plain";
    *body = "ok\n";
    return 200;
  }
  if (path == "/metrics") {
    *content_type = "text/plain; version=0.0.4";
    *body = Registry::Global().TextExposition();
    return 200;
  }
  if (path == "/statsz") {
    *content_type = "application/json";
    *body = Registry::Global().JsonDump() + "\n";
    return 200;
  }
  if (path == "/tracez") {
    *content_type = "application/json";
    *body = TracezJson(options_.slow_log);
    return 200;
  }
  *content_type = "text/plain";
  *body = "not found\n";
  return 404;
}

void HttpAdminServer::AcceptLoop() {
  for (;;) {
    auto accepted = listener_->Accept();
    if (!accepted.ok()) return;  // listener closed: shutting down
    net::Socket sock = std::move(accepted.value());
    (void)sock.SetRecvTimeout(kSocketTimeoutMs);
    (void)sock.SetSendTimeout(kSocketTimeoutMs);
    // Read until the end of the header block (admin requests have no
    // body). Byte-at-a-time is fine at scrape rates.
    std::string request;
    bool complete = false;
    while (request.size() < kMaxRequestBytes) {
      char c;
      if (!sock.ReadFully(&c, 1).ok()) break;
      request.push_back(c);
      if (request.size() >= 4 &&
          request.compare(request.size() - 4, 4, "\r\n\r\n") == 0) {
        complete = true;
        break;
      }
      // Tolerate bare-LF clients (curl never sends them, test harnesses
      // might).
      if (request.size() >= 2 &&
          request.compare(request.size() - 2, 2, "\n\n") == 0) {
        complete = true;
        break;
      }
    }
    std::string response;
    if (!complete) {
      response = BuildResponse(400, "text/plain", "bad request\n");
    } else {
      // Request line: METHOD SP PATH SP VERSION.
      size_t line_end = request.find_first_of("\r\n");
      std::string line = request.substr(0, line_end);
      size_t sp1 = line.find(' ');
      size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                            : line.find(' ', sp1 + 1);
      if (sp1 == std::string::npos || sp2 == std::string::npos) {
        response = BuildResponse(400, "text/plain", "bad request\n");
      } else {
        std::string method = line.substr(0, sp1);
        std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
        // Ignore any query string: /metrics?x=y routes as /metrics.
        size_t q = path.find('?');
        if (q != std::string::npos) path.resize(q);
        std::string body, content_type;
        int code = Route(method, path, &body, &content_type);
        response = BuildResponse(code, content_type, body);
      }
    }
    (void)sock.WriteFully(response.data(), response.size());
  }
}

}  // namespace just::obs
