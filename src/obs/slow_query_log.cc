#include "obs/slow_query_log.h"

#include <cstdio>

#include "obs/metrics.h"

namespace just::obs {

SlowQueryLog::SlowQueryLog(int64_t threshold_us, size_t capacity,
                           bool log_to_stderr)
    : threshold_us_(threshold_us),
      capacity_(capacity == 0 ? 1 : capacity),
      log_to_stderr_(log_to_stderr) {}

void SlowQueryLog::MaybeRecord(SlowQueryEntry entry) {
  if (threshold_us_ < 0) return;
  if (static_cast<int64_t>(entry.wall_us) < threshold_us_) return;
  Registry::Global().GetCounter("just_sql_slow_queries_total")->Increment();
  if (log_to_stderr_) {
    std::fprintf(stderr,
                 "[slow-query] user=%s wall_ms=%.3f rows=%llu scanned=%llu "
                 "ranges=%llu sql=%s\n",
                 entry.user.c_str(),
                 static_cast<double>(entry.wall_us) / 1000.0,
                 static_cast<unsigned long long>(entry.rows),
                 static_cast<unsigned long long>(entry.rows_scanned),
                 static_cast<unsigned long long>(entry.key_ranges),
                 entry.sql.c_str());
  }
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
  while (entries_.size() > capacity_) entries_.pop_front();
}

std::vector<SlowQueryEntry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SlowQueryEntry>(entries_.begin(), entries_.end());
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace just::obs
