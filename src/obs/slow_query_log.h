#ifndef JUST_OBS_SLOW_QUERY_LOG_H_
#define JUST_OBS_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace just::obs {

/// One captured slow statement.
struct SlowQueryEntry {
  std::string user;
  std::string sql;
  uint64_t wall_us = 0;
  uint64_t rows = 0;
  uint64_t rows_scanned = 0;
  uint64_t key_ranges = 0;
  /// Span tree of the statement as TraceSpan::ToJson() output; empty when
  /// the statement ran untraced. Kept last so aggregate initializers that
  /// predate it stay valid. Served verbatim by the admin plane's /tracez.
  std::string trace_json;
};

/// Threshold-based slow-query log: the engine records every statement whose
/// wall time meets `threshold_us` into a bounded ring buffer (newest kept)
/// and counts it in the registry (`just_sql_slow_queries_total`). A negative
/// threshold disables the log; 0 captures everything (used by tests).
class SlowQueryLog {
 public:
  explicit SlowQueryLog(int64_t threshold_us, size_t capacity = 128,
                        bool log_to_stderr = true);

  /// Records the statement if it is slow enough. Thread-safe.
  void MaybeRecord(SlowQueryEntry entry);

  int64_t threshold_us() const { return threshold_us_; }
  void set_threshold_us(int64_t t) { threshold_us_ = t; }

  /// Snapshot, newest last.
  std::vector<SlowQueryEntry> Entries() const;
  size_t size() const;

 private:
  int64_t threshold_us_;
  const size_t capacity_;
  const bool log_to_stderr_;
  mutable std::mutex mu_;
  std::deque<SlowQueryEntry> entries_;
};

}  // namespace just::obs

#endif  // JUST_OBS_SLOW_QUERY_LOG_H_
