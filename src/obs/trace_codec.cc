#include "obs/trace_codec.h"

#include <string>

#include "common/bytes.h"

namespace just::obs {

namespace {

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed span tree: ") + what);
}

/// Stable wire ids for SpanCounters fields. Never renumber; new counters
/// append new ids and old decoders skip them.
enum CounterId : uint32_t {
  kBytesRead = 1,
  kReadOps = 2,
  kCacheHits = 3,
  kCacheMisses = 4,
  kBloomPrunes = 5,
  kBloomFallbacks = 6,
  kKeyRanges = 7,
  kRowsScanned = 8,
  kRowsMatched = 9,
  kRowsOut = 10,
  kBatches = 11,
  kEvalSpecializedNs = 12,
  kEvalInterpretedNs = 13,
};

uint64_t LoadCounter(const SpanCounters& c,
                     std::atomic<uint64_t> SpanCounters::*field) {
  return (c.*field).load(std::memory_order_relaxed);
}

void PutCounter(std::string* out, uint32_t id, uint64_t value) {
  if (value == 0) return;
  PutVarint32(out, id);
  PutVarint64(out, value);
}

uint32_t CountNonZero(const SpanCounters& c) {
  uint32_t n = 0;
  auto tick = [&n](uint64_t v) { n += (v != 0) ? 1 : 0; };
  tick(LoadCounter(c, &SpanCounters::bytes_read));
  tick(LoadCounter(c, &SpanCounters::read_ops));
  tick(LoadCounter(c, &SpanCounters::cache_hits));
  tick(LoadCounter(c, &SpanCounters::cache_misses));
  tick(LoadCounter(c, &SpanCounters::bloom_prunes));
  tick(LoadCounter(c, &SpanCounters::bloom_fallbacks));
  tick(LoadCounter(c, &SpanCounters::key_ranges));
  tick(LoadCounter(c, &SpanCounters::rows_scanned));
  tick(LoadCounter(c, &SpanCounters::rows_matched));
  tick(LoadCounter(c, &SpanCounters::rows_out));
  tick(LoadCounter(c, &SpanCounters::batches));
  tick(LoadCounter(c, &SpanCounters::eval_specialized_ns));
  tick(LoadCounter(c, &SpanCounters::eval_interpreted_ns));
  return n;
}

void EncodeSpan(const TraceSpan& span, std::string* out) {
  PutLengthPrefixed(out, span.name());
  PutVarint64(out, span.wall_ns());
  const SpanCounters& c = span.counters();
  PutVarint32(out, CountNonZero(c));
  PutCounter(out, kBytesRead, LoadCounter(c, &SpanCounters::bytes_read));
  PutCounter(out, kReadOps, LoadCounter(c, &SpanCounters::read_ops));
  PutCounter(out, kCacheHits, LoadCounter(c, &SpanCounters::cache_hits));
  PutCounter(out, kCacheMisses, LoadCounter(c, &SpanCounters::cache_misses));
  PutCounter(out, kBloomPrunes, LoadCounter(c, &SpanCounters::bloom_prunes));
  PutCounter(out, kBloomFallbacks,
             LoadCounter(c, &SpanCounters::bloom_fallbacks));
  PutCounter(out, kKeyRanges, LoadCounter(c, &SpanCounters::key_ranges));
  PutCounter(out, kRowsScanned, LoadCounter(c, &SpanCounters::rows_scanned));
  PutCounter(out, kRowsMatched, LoadCounter(c, &SpanCounters::rows_matched));
  PutCounter(out, kRowsOut, LoadCounter(c, &SpanCounters::rows_out));
  PutCounter(out, kBatches, LoadCounter(c, &SpanCounters::batches));
  PutCounter(out, kEvalSpecializedNs,
             LoadCounter(c, &SpanCounters::eval_specialized_ns));
  PutCounter(out, kEvalInterpretedNs,
             LoadCounter(c, &SpanCounters::eval_interpreted_ns));
  auto attrs = span.attrs();
  PutVarint32(out, static_cast<uint32_t>(attrs.size()));
  for (const auto& [key, value] : attrs) {
    PutLengthPrefixed(out, key);
    PutLengthPrefixed(out, value);
  }
  auto children = span.children();
  PutVarint32(out, static_cast<uint32_t>(children.size()));
  for (const TraceSpan* child : children) EncodeSpan(*child, out);
}

void StoreCounter(SpanCounters* c, uint32_t id, uint64_t value) {
  switch (id) {
    case kBytesRead:
      c->bytes_read.store(value, std::memory_order_relaxed);
      break;
    case kReadOps:
      c->read_ops.store(value, std::memory_order_relaxed);
      break;
    case kCacheHits:
      c->cache_hits.store(value, std::memory_order_relaxed);
      break;
    case kCacheMisses:
      c->cache_misses.store(value, std::memory_order_relaxed);
      break;
    case kBloomPrunes:
      c->bloom_prunes.store(value, std::memory_order_relaxed);
      break;
    case kBloomFallbacks:
      c->bloom_fallbacks.store(value, std::memory_order_relaxed);
      break;
    case kKeyRanges:
      c->key_ranges.store(value, std::memory_order_relaxed);
      break;
    case kRowsScanned:
      c->rows_scanned.store(value, std::memory_order_relaxed);
      break;
    case kRowsMatched:
      c->rows_matched.store(value, std::memory_order_relaxed);
      break;
    case kRowsOut:
      c->rows_out.store(value, std::memory_order_relaxed);
      break;
    case kBatches:
      c->batches.store(value, std::memory_order_relaxed);
      break;
    case kEvalSpecializedNs:
      c->eval_specialized_ns.store(value, std::memory_order_relaxed);
      break;
    case kEvalInterpretedNs:
      c->eval_interpreted_ns.store(value, std::memory_order_relaxed);
      break;
    default:
      break;  // unknown id from a newer writer: value already consumed
  }
}

/// One recursive descent over a serialized span. In the validation pass
/// (`into == nullptr`) it only checks structure against the limits; in the
/// build pass it also materializes spans under `into`'s parent-provided
/// node. Decode is two-pass so a tree that fails late leaves nothing
/// half-grafted in the caller's trace.
Status ParseSpan(const char** p, const char* limit, uint32_t depth,
                 uint32_t* spans_seen, TraceSpan* into) {
  if (depth > kTraceCodecMaxDepth) return Malformed("depth limit");
  if (++*spans_seen > kTraceCodecMaxSpans) return Malformed("span limit");
  std::string_view name;
  if (!GetLengthPrefixed(p, limit, &name)) return Malformed("span name");
  uint64_t wall_ns = 0;
  if (!GetVarint64(p, limit, &wall_ns)) return Malformed("wall_ns");
  if (into != nullptr) into->SetWallNs(wall_ns);
  uint32_t n_counters = 0;
  if (!GetVarint32(p, limit, &n_counters)) return Malformed("counter count");
  for (uint32_t i = 0; i < n_counters; ++i) {
    uint32_t id = 0;
    uint64_t value = 0;
    if (!GetVarint32(p, limit, &id)) return Malformed("counter id");
    if (!GetVarint64(p, limit, &value)) return Malformed("counter value");
    if (into != nullptr) StoreCounter(&into->counters(), id, value);
  }
  uint32_t n_attrs = 0;
  if (!GetVarint32(p, limit, &n_attrs)) return Malformed("attr count");
  for (uint32_t i = 0; i < n_attrs; ++i) {
    std::string_view key, value;
    if (!GetLengthPrefixed(p, limit, &key)) return Malformed("attr key");
    if (!GetLengthPrefixed(p, limit, &value)) return Malformed("attr value");
    if (into != nullptr) into->AddAttr(key, value);
  }
  uint32_t n_children = 0;
  if (!GetVarint32(p, limit, &n_children)) return Malformed("child count");
  for (uint32_t i = 0; i < n_children; ++i) {
    // Peek the child's name so the build pass can create it before
    // descending. Validation re-reads it inside the recursive call, so do
    // not advance `p` here.
    TraceSpan* child = nullptr;
    if (into != nullptr) {
      const char* peek = *p;
      std::string_view child_name;
      if (!GetLengthPrefixed(&peek, limit, &child_name)) {
        return Malformed("span name");
      }
      child = into->StartChild(std::string(child_name));
    }
    Status st = ParseSpan(p, limit, depth + 1, spans_seen, child);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace

std::string EncodeSpanTree(const TraceSpan& span) {
  std::string out;
  PutVarint32(&out, 1);  // version
  EncodeSpan(span, &out);
  return out;
}

TraceSpan* DecodeSpanTree(std::string_view data, TraceSpan* parent,
                          Status* st) {
  const char* p = data.data();
  const char* limit = p + data.size();
  uint32_t version = 0;
  if (!GetVarint32(&p, limit, &version)) {
    *st = Malformed("version");
    return nullptr;
  }
  if (version != 1) {
    *st = Malformed("unsupported version");
    return nullptr;
  }
  // Pass 1: validate without touching `parent`.
  const char* vp = p;
  uint32_t spans_seen = 0;
  *st = ParseSpan(&vp, limit, 0, &spans_seen, nullptr);
  if (!st->ok()) return nullptr;
  if (vp != limit) {
    *st = Malformed("trailing bytes");
    return nullptr;
  }
  // Pass 2: build. Cannot fail — the bytes just validated.
  const char* peek = p;
  std::string_view root_name;
  GetLengthPrefixed(&peek, limit, &root_name);
  TraceSpan* root = parent->StartChild(std::string(root_name));
  spans_seen = 0;
  *st = ParseSpan(&p, limit, 0, &spans_seen, root);
  return root;
}

}  // namespace just::obs
