#ifndef JUST_OBS_TRACE_CODEC_H_
#define JUST_OBS_TRACE_CODEC_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/trace.h"

namespace just::obs {

/// Compact binary encoding of a TraceSpan tree, carried in the wire
/// protocol's response extension field so a region server can ship its
/// per-RPC span tree back to the caller (docs/ARCHITECTURE.md
/// "Cross-process tracing").
///
/// Layout (all varints little-endian base-128, strings length-prefixed):
///   [version: varint32]          currently 1
///   [span]
/// span:
///   [name: lp-string]
///   [wall_ns: varint64]
///   [n_counters: varint32] then n_counters x [field_id: varint32]
///                                            [value: varint64]
///   [n_attrs: varint32]    then n_attrs x [key: lp-string][value: lp-string]
///   [n_children: varint32] then n_children x span
///
/// Only non-zero counters are written. Field ids are stable across
/// versions (new counters get new ids); a decoder skips ids it does not
/// know, so old readers tolerate new writers. Decoding enforces hard
/// limits (span count, depth) so a malicious or buggy peer cannot balloon
/// memory: violations return kInvalidArgument and never crash (covered by
/// the wire-protocol fuzz tests).

/// Decode-side hard limits.
constexpr uint32_t kTraceCodecMaxSpans = 4096;
constexpr uint32_t kTraceCodecMaxDepth = 64;

/// Serializes `span` and its subtree.
std::string EncodeSpanTree(const TraceSpan& span);

/// Decodes a serialized tree as a new child grafted under `parent` and
/// returns the grafted root. On any structural error nothing is grafted
/// and kInvalidArgument is returned via `st`; returns nullptr in that
/// case.
TraceSpan* DecodeSpanTree(std::string_view data, TraceSpan* parent,
                          Status* st);

}  // namespace just::obs

#endif  // JUST_OBS_TRACE_CODEC_H_
