#include "obs/trace.h"

#include <chrono>
#include <cstdio>

namespace just::obs {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

thread_local TraceSpan* tls_current_span = nullptr;

std::string FormatMs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

void AppendCounter(std::string* out, const char* name, uint64_t value) {
  if (value == 0) return;
  *out += " ";
  *out += name;
  *out += "=";
  *out += std::to_string(value);
}

}  // namespace

TraceSpan* CurrentSpan() { return tls_current_span; }

SpanScope::SpanScope(TraceSpan* span) : prev_(tls_current_span) {
  tls_current_span = span;
}

SpanScope::~SpanScope() { tls_current_span = prev_; }

ScopedSpan::ScopedSpan(std::string name) {
  TraceSpan* parent = tls_current_span;
  if (parent == nullptr) return;
  span_ = parent->StartChild(std::move(name));
  prev_ = parent;
  tls_current_span = span_;
}

ScopedSpan::~ScopedSpan() {
  if (span_ == nullptr) return;
  span_->End();
  tls_current_span = prev_;
}

TraceSpan::TraceSpan(std::string name)
    : name_(std::move(name)), start_ns_(NowNs()) {}

TraceSpan* TraceSpan::StartChild(std::string name) {
  auto child = std::make_unique<TraceSpan>(std::move(name));
  TraceSpan* raw = child.get();
  std::lock_guard<std::mutex> lock(mu_);
  children_.push_back(std::move(child));
  return raw;
}

void TraceSpan::End() {
  bool expected = false;
  if (ended_.compare_exchange_strong(expected, true)) {
    wall_ns_.store(NowNs() - start_ns_, std::memory_order_relaxed);
  }
}

void TraceSpan::SetWallNs(uint64_t ns) {
  wall_ns_.store(ns, std::memory_order_relaxed);
  ended_.store(true, std::memory_order_release);
}

uint64_t TraceSpan::wall_ns() const {
  if (ended_.load(std::memory_order_acquire)) {
    return wall_ns_.load(std::memory_order_relaxed);
  }
  return NowNs() - start_ns_;
}

void TraceSpan::AddAttr(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  attrs_.emplace_back(std::string(key), std::string(value));
}

std::vector<TraceSpan*> TraceSpan::children() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceSpan*> out;
  out.reserve(children_.size());
  for (const auto& child : children_) out.push_back(child.get());
  return out;
}

std::vector<std::pair<std::string, std::string>> TraceSpan::attrs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return attrs_;
}

template <typename Fn>
uint64_t TraceSpan::SubtreeSum(Fn fn) const {
  uint64_t total = fn(counters_);
  for (const TraceSpan* child : children()) {
    total += child->SubtreeSum(fn);
  }
  return total;
}

#define JUST_SPAN_TOTAL(Name, field)                                        \
  uint64_t TraceSpan::Name() const {                                        \
    return SubtreeSum([](const SpanCounters& c) {                           \
      return c.field.load(std::memory_order_relaxed);                       \
    });                                                                     \
  }

JUST_SPAN_TOTAL(TotalBytesRead, bytes_read)
JUST_SPAN_TOTAL(TotalKeyRanges, key_ranges)
JUST_SPAN_TOTAL(TotalCacheHits, cache_hits)
JUST_SPAN_TOTAL(TotalCacheMisses, cache_misses)
JUST_SPAN_TOTAL(TotalBloomPrunes, bloom_prunes)
JUST_SPAN_TOTAL(TotalBloomFallbacks, bloom_fallbacks)
JUST_SPAN_TOTAL(TotalRowsScanned, rows_scanned)

#undef JUST_SPAN_TOTAL

std::string TraceSpan::ToString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += name_;
  for (const auto& [key, value] : attrs()) {
    out += " " + key + "=" + value;
  }
  out += "  (time=" + FormatMs(wall_ns()) + "ms";
  const SpanCounters& c = counters_;
  AppendCounter(&out, "rows", c.rows_out.load(std::memory_order_relaxed));
  AppendCounter(&out, "ranges", c.key_ranges.load(std::memory_order_relaxed));
  AppendCounter(&out, "rows_scanned",
                c.rows_scanned.load(std::memory_order_relaxed));
  AppendCounter(&out, "rows_matched",
                c.rows_matched.load(std::memory_order_relaxed));
  AppendCounter(&out, "bytes_read",
                c.bytes_read.load(std::memory_order_relaxed));
  AppendCounter(&out, "read_ops", c.read_ops.load(std::memory_order_relaxed));
  uint64_t hits = c.cache_hits.load(std::memory_order_relaxed);
  uint64_t misses = c.cache_misses.load(std::memory_order_relaxed);
  AppendCounter(&out, "cache_hits", hits);
  AppendCounter(&out, "cache_misses", misses);
  if (hits + misses > 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " cache_hit_rate=%.2f",
                  static_cast<double>(hits) /
                      static_cast<double>(hits + misses));
    out += buf;
  }
  AppendCounter(&out, "bloom_prunes",
                c.bloom_prunes.load(std::memory_order_relaxed));
  AppendCounter(&out, "bloom_fallbacks",
                c.bloom_fallbacks.load(std::memory_order_relaxed));
  AppendCounter(&out, "batches", c.batches.load(std::memory_order_relaxed));
  AppendCounter(&out, "eval_specialized_us",
                c.eval_specialized_ns.load(std::memory_order_relaxed) / 1000);
  AppendCounter(&out, "eval_interpreted_us",
                c.eval_interpreted_ns.load(std::memory_order_relaxed) / 1000);
  out += ")\n";
  for (const TraceSpan* child : children()) {
    out += child->ToString(indent + 1);
  }
  return out;
}

std::string TraceSpan::ToJson() const {
  std::string out = "{\"name\":\"";
  for (char c : name_) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out += "\",\"wall_us\":" + std::to_string(wall_ns() / 1000);
  out += ",\"attrs\":{";
  bool first = true;
  for (const auto& [key, value] : attrs()) {
    if (!first) out.push_back(',');
    first = false;
    out += "\"" + key + "\":\"" + value + "\"";
  }
  out += "},\"counters\":{";
  const SpanCounters& c = counters_;
  auto add = [&out](const char* name, uint64_t v, bool* first_counter) {
    if (v == 0) return;
    if (!*first_counter) out.push_back(',');
    *first_counter = false;
    out += "\"" + std::string(name) + "\":" + std::to_string(v);
  };
  bool fc = true;
  add("rows", c.rows_out.load(std::memory_order_relaxed), &fc);
  add("key_ranges", c.key_ranges.load(std::memory_order_relaxed), &fc);
  add("rows_scanned", c.rows_scanned.load(std::memory_order_relaxed), &fc);
  add("rows_matched", c.rows_matched.load(std::memory_order_relaxed), &fc);
  add("bytes_read", c.bytes_read.load(std::memory_order_relaxed), &fc);
  add("read_ops", c.read_ops.load(std::memory_order_relaxed), &fc);
  add("cache_hits", c.cache_hits.load(std::memory_order_relaxed), &fc);
  add("cache_misses", c.cache_misses.load(std::memory_order_relaxed), &fc);
  add("bloom_prunes", c.bloom_prunes.load(std::memory_order_relaxed), &fc);
  add("bloom_fallbacks", c.bloom_fallbacks.load(std::memory_order_relaxed),
      &fc);
  add("batches", c.batches.load(std::memory_order_relaxed), &fc);
  add("eval_specialized_ns",
      c.eval_specialized_ns.load(std::memory_order_relaxed), &fc);
  add("eval_interpreted_ns",
      c.eval_interpreted_ns.load(std::memory_order_relaxed), &fc);
  out += "},\"children\":[";
  first = true;
  for (const TraceSpan* child : children()) {
    if (!first) out.push_back(',');
    first = false;
    out += child->ToJson();
  }
  out += "]}";
  return out;
}

}  // namespace just::obs
