#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <thread>

namespace just::obs {

namespace {

/// Stable per-thread shard index; consecutive threads land on different
/// shards so concurrent writers rarely share a cacheline.
size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % Counter::kShards;
  return shard;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void AppendJsonKey(std::string* out, const std::string& key) {
  out->push_back('"');
  for (char c : key) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->append("\":");
}

/// Splits "name{a=\"b\"}" into base "name" and inner label body
/// "a=\"b\"" (no braces). Plain names pass through with empty labels.
struct NameParts {
  std::string base;
  std::string labels;
};

NameParts SplitLabeledName(const std::string& name) {
  size_t pos = name.find('{');
  if (pos == std::string::npos || name.empty() || name.back() != '}') {
    return {name, std::string()};
  }
  return {name.substr(0, pos), name.substr(pos + 1, name.size() - pos - 2)};
}

std::string JoinLabels(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return a + "," + b;
}

std::string Series(const std::string& base, const char* suffix,
                   const std::string& labels) {
  std::string out = base + suffix;
  if (!labels.empty()) out += "{" + labels + "}";
  return out;
}

}  // namespace

std::string LabeledName(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return name;
  std::string out = name;
  out.push_back('{');
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += key;
    out += "=\"";
    for (char c : value) {
      if (c == '\\') {
        out += "\\\\";
      } else if (c == '"') {
        out += "\\\"";
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out.push_back(c);
      }
    }
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

void Counter::Add(uint64_t delta) {
  shards_[ThreadShard()].value.fetch_add(delta, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

namespace {
/// Bucket index for a value: 0 holds {0, 1}, bucket i holds
/// [2^(i-1), 2^i) for i >= 1, clamped to the last bucket.
size_t BucketFor(uint64_t value) {
  if (value <= 1) return 0;
  size_t bits = 64 - static_cast<size_t>(__builtin_clzll(value));
  return std::min(bits, Histogram::kBuckets - 1);
}
}  // namespace

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i == 0) return 2;
  if (i >= kBuckets - 1) return UINT64_MAX;
  return 1ull << i;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = min_.load(std::memory_order_relaxed);
  while (value < prev &&
         !min_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
  prev = max_.load(std::memory_order_relaxed);
  while (value > prev &&
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

uint64_t Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<uint64_t> Histogram::CumulativeBuckets() const {
  std::vector<uint64_t> out(kBuckets);
  uint64_t running = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    out[i] = running;
  }
  return out;
}

double Histogram::Quantile(double q) const {
  // A concurrent Record between reading count_ and the buckets only shifts
  // the estimate by one sample — acceptable for a monitoring quantile.
  uint64_t total = Count();
  if (total == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  double target = q * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      // Linear interpolation inside the bucket.
      double lo = i == 0 ? 0.0 : static_cast<double>(1ull << (i - 1));
      double hi = i >= kBuckets - 1
                      ? static_cast<double>(max_.load(std::memory_order_relaxed))
                      : static_cast<double>(BucketUpperBound(i));
      double frac = (target - static_cast<double>(seen)) /
                    static_cast<double>(in_bucket);
      double v = lo + frac * (hi - lo);
      // Clamp into the observed range so tiny histograms don't extrapolate.
      v = std::max(v, static_cast<double>(
                          std::min(min_.load(std::memory_order_relaxed),
                                   max_.load(std::memory_order_relaxed))));
      v = std::min(v,
                   static_cast<double>(max_.load(std::memory_order_relaxed)));
      return v;
    }
    seen += in_bucket;
  }
  return static_cast<double>(max_.load(std::memory_order_relaxed));
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = Count();
  snap.sum = Sum();
  uint64_t mn = min_.load(std::memory_order_relaxed);
  snap.min = snap.count == 0 ? 0 : mn;
  snap.max = max_.load(std::memory_order_relaxed);
  snap.p50 = Quantile(0.50);
  snap.p95 = Quantile(0.95);
  snap.p99 = Quantile(0.99);
  return snap;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

uint64_t Registry::RegisterSource(const std::string& name, SourceKind kind,
                                  std::function<uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_source_id_++;
  sources_[id] = Source{name, kind, std::move(fn)};
  return id;
}

void Registry::Unregister(uint64_t id) {
  std::function<uint64_t()> fn;
  std::string name;
  SourceKind kind;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sources_.find(id);
    if (it == sources_.end()) return;
    name = it->second.name;
    kind = it->second.kind;
    fn = std::move(it->second.fn);
    sources_.erase(it);
  }
  // Fold outside the lock: fn may take the owner's lock (e.g. an LsmStore
  // source reads store state under the store mutex).
  if (kind == SourceKind::kCumulative) {
    uint64_t last = fn();
    std::lock_guard<std::mutex> lock(mu_);
    folded_[name] += last;
  }
}

uint64_t Registry::SourceSumLocked(const std::string& name,
                                   bool cumulative_only) const {
  uint64_t total = 0;
  for (const auto& [id, source] : sources_) {
    (void)id;
    if (source.name != name) continue;
    if (cumulative_only && source.kind != SourceKind::kCumulative) continue;
    total += source.fn();
  }
  auto folded = folded_.find(name);
  if (folded != folded_.end()) total += folded->second;
  return total;
}

uint64_t Registry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = SourceSumLocked(name, /*cumulative_only=*/false);
  auto it = counters_.find(name);
  if (it != counters_.end()) total += it->second->Value();
  return total;
}

RegistrySnapshot Registry::GetSnapshot() const {
  RegistrySnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] += counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] += gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->Snapshot();
  }
  // Sources: cumulative sources read as counters, live sources as gauges.
  for (const auto& [id, source] : sources_) {
    (void)id;
    if (source.kind == SourceKind::kCumulative) {
      snap.counters[source.name] += source.fn();
    } else {
      snap.gauges[source.name] += static_cast<int64_t>(source.fn());
    }
  }
  for (const auto& [name, base] : folded_) {
    snap.counters[name] += base;
  }
  return snap;
}

std::string Registry::TextExposition() const {
  RegistrySnapshot snap = GetSnapshot();
  // Labeled series of one base name ("rpc_us{type=\"get\"}",
  // "rpc_us{type=\"scan\"}") must share a single `# TYPE` line with all
  // their samples adjacent, so render into per-family line buffers first
  // and emit families in name order at the end.
  struct Family {
    const char* type = nullptr;
    std::vector<std::string> lines;
  };
  std::map<std::string, Family> families;
  auto family = [&families](const std::string& base,
                            const char* type) -> Family& {
    Family& f = families[base];
    if (f.type == nullptr) f.type = type;
    return f;
  };
  for (const auto& [name, value] : snap.counters) {
    NameParts parts = SplitLabeledName(name);
    family(parts.base, "counter")
        .lines.push_back(Series(parts.base, "", parts.labels) + " " +
                         std::to_string(value) + "\n");
  }
  for (const auto& [name, value] : snap.gauges) {
    NameParts parts = SplitLabeledName(name);
    family(parts.base, "gauge")
        .lines.push_back(Series(parts.base, "", parts.labels) + " " +
                         std::to_string(value) + "\n");
  }
  {
    // Histograms need the live objects for their buckets; re-walk under
    // lock.
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, histogram] : histograms_) {
      NameParts parts = SplitLabeledName(name);
      Family& f = family(parts.base, "histogram");
      auto cumulative = histogram->CumulativeBuckets();
      uint64_t total = cumulative.empty() ? 0 : cumulative.back();
      // All finite buckets here; the +Inf bucket is emitted once below.
      for (size_t i = 0; i + 1 < cumulative.size(); ++i) {
        if (cumulative[i] == (i == 0 ? 0u : cumulative[i - 1])) {
          continue;  // skip empty buckets to keep the page readable
        }
        std::string le = std::to_string(Histogram::BucketUpperBound(i));
        f.lines.push_back(
            Series(parts.base, "_bucket",
                   JoinLabels(parts.labels, "le=\"" + le + "\"")) +
            " " + std::to_string(cumulative[i]) + "\n");
      }
      f.lines.push_back(Series(parts.base, "_bucket",
                               JoinLabels(parts.labels, "le=\"+Inf\"")) +
                        " " + std::to_string(total) + "\n");
      f.lines.push_back(Series(parts.base, "_sum", parts.labels) + " " +
                        std::to_string(histogram->Sum()) + "\n");
      f.lines.push_back(Series(parts.base, "_count", parts.labels) + " " +
                        std::to_string(total) + "\n");
      auto hsnap = histogram->Snapshot();
      f.lines.push_back(
          Series(parts.base, "",
                 JoinLabels(parts.labels, "quantile=\"0.5\"")) +
          " " + FormatDouble(hsnap.p50) + "\n");
      f.lines.push_back(
          Series(parts.base, "",
                 JoinLabels(parts.labels, "quantile=\"0.95\"")) +
          " " + FormatDouble(hsnap.p95) + "\n");
      f.lines.push_back(
          Series(parts.base, "",
                 JoinLabels(parts.labels, "quantile=\"0.99\"")) +
          " " + FormatDouble(hsnap.p99) + "\n");
    }
  }
  std::string out;
  for (const auto& [base, f] : families) {
    out += "# TYPE " + base + " " + f.type + "\n";
    for (const std::string& line : f.lines) out += line;
  }
  return out;
}

std::string Registry::JsonDump() const {
  RegistrySnapshot snap = GetSnapshot();
  std::string out = "{";
  out += "\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonKey(&out, name);
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonKey(&out, name);
    out += std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonKey(&out, name);
    out += "{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) +
           ",\"min\":" + std::to_string(h.min) +
           ",\"max\":" + std::to_string(h.max) + ",\"p50\":" +
           FormatDouble(h.p50) + ",\"p95\":" + FormatDouble(h.p95) +
           ",\"p99\":" + FormatDouble(h.p99) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace just::obs
