#ifndef JUST_OBS_TRACE_H_
#define JUST_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace just::obs {

/// Counters a span accumulates while it is the thread's current span. All
/// fields are relaxed atomics because ParallelScan fans one span out to many
/// worker threads. Counters are *not* rolled up into parents automatically;
/// TotalXxx() helpers aggregate a subtree at report time.
struct SpanCounters {
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> read_ops{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> bloom_prunes{0};     ///< lookups a bloom filter skipped
  std::atomic<uint64_t> bloom_fallbacks{0};  ///< lookups with no usable bloom
  std::atomic<uint64_t> key_ranges{0};       ///< SCANs issued
  std::atomic<uint64_t> rows_scanned{0};     ///< KV pairs before refinement
  std::atomic<uint64_t> rows_matched{0};     ///< rows surviving refinement
  std::atomic<uint64_t> rows_out{0};         ///< rows the operator emitted
  std::atomic<uint64_t> batches{0};          ///< column batches processed
  /// Time spent in compiled (type-specialized) predicate/projection kernels
  /// vs the interpreted EvaluateExpr fallback — the JIT papers' headline
  /// number, surfaced per operator by EXPLAIN ANALYZE.
  std::atomic<uint64_t> eval_specialized_ns{0};
  std::atomic<uint64_t> eval_interpreted_ns{0};
};

/// One node of a per-query trace: a named time interval with counters,
/// string attributes, and children. Spans are created via
/// Trace::root()->StartChild(...) or the ScopedSpan helper and live as long
/// as the owning Trace.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name);

  TraceSpan* StartChild(std::string name);
  /// Stops the clock (idempotent; the first End wins).
  void End();

  void AddAttr(std::string_view key, std::string_view value);

  const std::string& name() const { return name_; }
  /// Wall time in nanoseconds; measured up to now if the span is still open.
  uint64_t wall_ns() const;
  /// Forces the wall time (and marks the span ended). Only for spans rebuilt
  /// from a serialized tree (obs/trace_codec.h), whose clock ran in another
  /// process.
  void SetWallNs(uint64_t ns);
  SpanCounters& counters() { return counters_; }
  const SpanCounters& counters() const { return counters_; }

  std::vector<TraceSpan*> children() const;
  std::vector<std::pair<std::string, std::string>> attrs() const;

  /// Subtree totals (this span + descendants).
  uint64_t TotalBytesRead() const;
  uint64_t TotalKeyRanges() const;
  uint64_t TotalCacheHits() const;
  uint64_t TotalCacheMisses() const;
  uint64_t TotalBloomPrunes() const;
  uint64_t TotalBloomFallbacks() const;
  uint64_t TotalRowsScanned() const;

  /// Indented rendering: one line per span with wall time, attributes, and
  /// the non-zero counters (the EXPLAIN ANALYZE body).
  std::string ToString(int indent = 0) const;

  /// JSON object {"name":...,"wall_us":...,"counters":{...},"children":[...]}.
  std::string ToJson() const;

 private:
  template <typename Fn>
  uint64_t SubtreeSum(Fn fn) const;

  std::string name_;
  uint64_t start_ns_ = 0;
  std::atomic<uint64_t> wall_ns_{0};
  std::atomic<bool> ended_{false};
  SpanCounters counters_;
  mutable std::mutex mu_;  ///< guards children_ and attrs_
  std::vector<std::unique_ptr<TraceSpan>> children_;
  std::vector<std::pair<std::string, std::string>> attrs_;
};

/// A per-query trace: owns the span tree rooted at `root()`. Create one,
/// scope the root with SpanScope (or ScopedSpan children), run the query,
/// then render or export.
class Trace {
 public:
  explicit Trace(std::string name) : root_(std::move(name)) {}

  TraceSpan* root() { return &root_; }
  std::string ToString() const { return root_.ToString(); }
  std::string ToJson() const { return root_.ToJson(); }

 private:
  TraceSpan root_;
};

/// The current thread's active span; nullptr when no trace is running.
TraceSpan* CurrentSpan();

/// Makes `span` the thread's current span for the scope's lifetime (restores
/// the previous one on destruction). Pass the parent span into thread-pool
/// workers this way: capture CurrentSpan() before dispatch, SpanScope inside
/// the worker. Does NOT end the span.
class SpanScope {
 public:
  explicit SpanScope(TraceSpan* span);
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  TraceSpan* prev_;
};

/// Starts a child of the current span (no-op when no trace is active), makes
/// it current, and ends it on destruction — the one-liner for instrumenting
/// an operator or a phase.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// nullptr when tracing is inactive.
  TraceSpan* span() const { return span_; }

 private:
  TraceSpan* span_ = nullptr;
  TraceSpan* prev_ = nullptr;
};

// --- Hot-path attribution helpers -----------------------------------------
// Storage-layer code calls these unconditionally; they cost one TLS load and
// a branch when no trace is active.

inline void TraceAdd(std::atomic<uint64_t> SpanCounters::* field, uint64_t n) {
  TraceSpan* span = CurrentSpan();
  if (span != nullptr) {
    (span->counters().*field).fetch_add(n, std::memory_order_relaxed);
  }
}

inline void TraceBytesRead(uint64_t n) {
  TraceAdd(&SpanCounters::bytes_read, n);
  TraceAdd(&SpanCounters::read_ops, 1);
}
inline void TraceCacheHit() { TraceAdd(&SpanCounters::cache_hits, 1); }
inline void TraceCacheMiss() { TraceAdd(&SpanCounters::cache_misses, 1); }
inline void TraceBloomPrune() { TraceAdd(&SpanCounters::bloom_prunes, 1); }
inline void TraceBloomFallback() { TraceAdd(&SpanCounters::bloom_fallbacks, 1); }
inline void TraceKeyRanges(uint64_t n) { TraceAdd(&SpanCounters::key_ranges, n); }
inline void TraceRowsScanned(uint64_t n) {
  TraceAdd(&SpanCounters::rows_scanned, n);
}
inline void TraceRowsMatched(uint64_t n) {
  TraceAdd(&SpanCounters::rows_matched, n);
}
inline void TraceBatches(uint64_t n) { TraceAdd(&SpanCounters::batches, n); }
inline void TraceEvalSpecializedNs(uint64_t ns) {
  TraceAdd(&SpanCounters::eval_specialized_ns, ns);
}
inline void TraceEvalInterpretedNs(uint64_t ns) {
  TraceAdd(&SpanCounters::eval_interpreted_ns, ns);
}

}  // namespace just::obs

#endif  // JUST_OBS_TRACE_H_
