#ifndef JUST_OBS_HTTP_ADMIN_H_
#define JUST_OBS_HTTP_ADMIN_H_

#include <memory>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/slow_query_log.h"

namespace just::net {
class Listener;
}  // namespace just::net

namespace just::obs {

/// Minimal embedded HTTP/1.0 admin plane (docs/ARCHITECTURE.md
/// "Observability"): serves the process's metrics registry and slow-query
/// ring over plain GET so a running `just_region_server` (or an in-process
/// engine) can be scraped with curl/Prometheus without the binary wire
/// protocol. Endpoints:
///
///   GET /healthz   "ok\n" (text/plain)
///   GET /metrics   Registry::Global().TextExposition()  (Prometheus text)
///   GET /statsz    Registry::Global().JsonDump()        (application/json)
///   GET /tracez    recent slow-query span trees as JSON (from the
///                  configured SlowQueryLog; [] when none is attached)
///
/// Deliberately simple: one accept thread handles requests serially with
/// short socket timeouts, HTTP/1.0 `Connection: close` semantics, GET
/// only, 8 KiB request cap. Admin scrapes are rare and tiny; a stuck or
/// slow scraper can delay the next scrape but cannot wedge the data plane,
/// which runs on its own listener and threads.
class HttpAdminServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  ///< 0 picks an ephemeral port (see port())
    /// Source for /tracez; may be nullptr (endpoint serves an empty list).
    /// Must outlive the server.
    const SlowQueryLog* slow_log = nullptr;
  };

  explicit HttpAdminServer(Options options);
  ~HttpAdminServer();

  HttpAdminServer(const HttpAdminServer&) = delete;
  HttpAdminServer& operator=(const HttpAdminServer&) = delete;

  /// Binds and starts the accept thread. kUnavailable if the bind fails.
  Status Start();
  /// Stops accepting and joins the thread. Idempotent.
  void Stop();

  /// Bound port; valid after a successful Start().
  int port() const { return port_; }

  /// Routes one already-parsed request (method + path) to a response body;
  /// exposed for unit tests so routing is testable without sockets. Fills
  /// `content_type` and returns the HTTP status code (200/404/405).
  int Route(const std::string& method, const std::string& path,
            std::string* body, std::string* content_type) const;

 private:
  void AcceptLoop();

  Options options_;
  int port_ = 0;
  std::unique_ptr<net::Listener> listener_;
  std::thread thread_;
  bool started_ = false;
};

}  // namespace just::obs

#endif  // JUST_OBS_HTTP_ADMIN_H_
