#ifndef JUST_OBS_METRICS_H_
#define JUST_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace just::obs {

/// A monotonically increasing counter. Increments are striped over
/// cacheline-padded atomic shards (indexed by a per-thread hash) so hot-path
/// writers on different cores do not bounce the same cacheline; reads sum
/// the shards and are therefore O(shards) but exact.
class Counter {
 public:
  static constexpr size_t kShards = 16;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta);
  void Increment() { Add(1); }
  uint64_t Value() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kShards];
};

/// A settable instantaneous value (last write wins).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Summary of a histogram at one instant.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Latency histogram over exponential (power-of-two) buckets: bucket i
/// counts values in [2^(i-1), 2^i) with bucket 0 holding zeros/ones.
/// Quantiles interpolate linearly inside the winning bucket, which bounds
/// the relative error by the bucket width (2x) and in practice keeps it
/// within a few percent for smooth distributions. Units are whatever the
/// caller records (the registry's conventions use microseconds).
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value);
  uint64_t Count() const;
  uint64_t Sum() const;
  /// Quantile in [0, 1]; 0 when empty.
  double Quantile(double q) const;
  HistogramSnapshot Snapshot() const;

  /// Upper bound (exclusive) of bucket i — for exposition.
  static uint64_t BucketUpperBound(size_t i);

  /// Raw cumulative counts per bucket (for Prometheus le-buckets).
  std::vector<uint64_t> CumulativeBuckets() const;

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Builds a registry metric name carrying Prometheus labels:
/// `LabeledName("rpc_us", {{"type", "get"}})` -> `rpc_us{type="get"}`.
/// Label values are escaped per the exposition format (backslash, double
/// quote, newline). The registry treats the result as an ordinary metric
/// name; TextExposition() splits it back apart so all series of one base
/// name share a single `# TYPE` family and histogram suffixes/extra labels
/// merge correctly (`rpc_us_bucket{type="get",le="2"}`).
std::string LabeledName(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& labels);

/// Point-in-time view of the whole registry, used by benches (embedded into
/// BENCH_*.json records) and by tests comparing EXPLAIN ANALYZE output
/// against registry deltas.
struct RegistrySnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counter value by name; 0 when absent.
  uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  int64_t gauge(const std::string& name) const {
    auto it = gauges.find(name);
    return it == gauges.end() ? 0 : it->second;
  }
};

/// Process-wide metrics registry: named counters, gauges, and histograms,
/// plus *sources* — callback-backed values contributed by live objects
/// (e.g. one LsmStore's IoStats). Multiple sources may share a name; the
/// exposed value is the sum. Cumulative sources fold their final value into
/// a retained base on unregistration, so process-wide counters stay
/// monotonic across object lifetimes; live sources simply drop out.
///
/// Metric objects are never deleted once created — returned pointers are
/// stable for the process lifetime and safe to cache in hot paths.
class Registry {
 public:
  enum class SourceKind {
    kCumulative,  ///< counter-like: folds into a base when unregistered
    kLive,        ///< gauge-like: disappears when unregistered
  };

  static Registry& Global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates. Thread-safe; the pointer never invalidates.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Registers a callback contributing to `name`; returns an id for
  /// Unregister. The callback must stay valid until unregistered and must
  /// not call back into the registry.
  uint64_t RegisterSource(const std::string& name, SourceKind kind,
                          std::function<uint64_t()> fn);
  void Unregister(uint64_t id);

  /// Total for a counter-like name: owned counter + source sum + folded base.
  uint64_t CounterValue(const std::string& name) const;

  RegistrySnapshot GetSnapshot() const;

  /// Prometheus text exposition format (counters, gauges, histograms with
  /// cumulative le-buckets and quantile series).
  std::string TextExposition() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string JsonDump() const;

 private:
  struct Source {
    std::string name;
    SourceKind kind;
    std::function<uint64_t()> fn;
  };

  uint64_t SourceSumLocked(const std::string& name, bool cumulative_only) const;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<uint64_t, Source> sources_;
  std::map<std::string, uint64_t> folded_;  ///< bases of dead cumulative sources
  uint64_t next_source_id_ = 1;
};

/// RAII registration of a metric source into the global registry.
class ScopedSource {
 public:
  ScopedSource() = default;
  ScopedSource(const std::string& name, Registry::SourceKind kind,
               std::function<uint64_t()> fn)
      : id_(Registry::Global().RegisterSource(name, kind, std::move(fn))) {}
  ~ScopedSource() { reset(); }

  ScopedSource(ScopedSource&& o) noexcept : id_(o.id_) { o.id_ = 0; }
  ScopedSource& operator=(ScopedSource&& o) noexcept {
    if (this != &o) {
      reset();
      id_ = o.id_;
      o.id_ = 0;
    }
    return *this;
  }
  ScopedSource(const ScopedSource&) = delete;
  ScopedSource& operator=(const ScopedSource&) = delete;

  void reset() {
    if (id_ != 0) Registry::Global().Unregister(id_);
    id_ = 0;
  }

 private:
  uint64_t id_ = 0;
};

}  // namespace just::obs

#endif  // JUST_OBS_METRICS_H_
