#ifndef JUST_WORKLOAD_GENERATORS_H_
#define JUST_WORKLOAD_GENERATORS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time_util.h"
#include "geo/point.h"
#include "traj/trajectory.h"

namespace just::workload {

/// Synthetic stand-ins for the paper's proprietary JD datasets (Table II).
/// The generators match the properties the evaluation exercises: Traj has
/// few records with thousands of points each (886M points / 314k records
/// ~ 2800 points per trajectory); Order has many single-point records biased
/// around urban hotspots; Synthetic replicates Traj by copy & sample.

/// Roughly Beijing's urban extent; all datasets live here so query windows
/// in km² have the paper's selectivity character.
geo::Mbr DefaultCityArea();

struct TrajOptions {
  int num_trajectories = 1000;
  int points_per_traj = 300;    ///< scaled-down stand-in for ~2800
  int num_depots = 40;          ///< couriers start from depot hotspots
  geo::Mbr area = DefaultCityArea();
  std::string start_date = "2014-03-01";
  int num_days = 31;            ///< Table II: 2014/03/01 - 2014/03/31
  int interval_seconds = 15;    ///< GPS sampling period
  uint64_t seed = 42;
};

/// Courier-like trajectories: each starts near a random depot on a random
/// day and random-walks at delivery speeds, staying within one day (the Z2T
/// period used in Table III).
std::vector<traj::Trajectory> GenerateTrajectories(const TrajOptions& options);

struct OrderRecord {
  std::string fid;
  geo::Point point;
  TimestampMs time = 0;
};

struct OrderOptions {
  int num_orders = 50000;
  int num_hotspots = 60;
  geo::Mbr area = DefaultCityArea();
  std::string start_date = "2018-10-01";
  int num_days = 61;  ///< Table II: 2018/10/01 - 2018/11/30
  uint64_t seed = 7;
};

/// Purchase-order points: gaussian clusters around hotspots (the biased
/// delivery addresses), with a diurnal time profile.
std::vector<OrderRecord> GenerateOrders(const OrderOptions& options);

/// Copy & sample: replicates `base` `factor` times with positional jitter
/// and re-dated copies, extending the time span — how the paper builds the
/// 1TB Synthetic set from Traj.
std::vector<traj::Trajectory> CopyAndSample(
    const std::vector<traj::Trajectory>& base, int factor, uint64_t seed);

/// Query-parameter sampling per Table IV: centers drawn near the data.
struct QueryCenters {
  std::vector<geo::Point> centers;
  std::vector<TimestampMs> times;
};
QueryCenters SampleQueryCenters(const geo::Mbr& area,
                                const std::string& start_date, int num_days,
                                int count, uint64_t seed);

}  // namespace just::workload

#endif  // JUST_WORKLOAD_GENERATORS_H_
