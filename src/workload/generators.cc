#include "workload/generators.h"

#include <algorithm>
#include <cmath>

namespace just::workload {

geo::Mbr DefaultCityArea() {
  return geo::Mbr{116.10, 39.70, 116.70, 40.15};
}

std::vector<traj::Trajectory> GenerateTrajectories(
    const TrajOptions& options) {
  Rng rng(options.seed);
  auto start_ts = ParseTimestamp(options.start_date);
  TimestampMs base_time = start_ts.ok() ? start_ts.value() : 0;

  // Depots: courier stations scattered over the area.
  std::vector<geo::Point> depots;
  for (int i = 0; i < options.num_depots; ++i) {
    depots.push_back(geo::Point{
        rng.Uniform(options.area.lng_min, options.area.lng_max),
        rng.Uniform(options.area.lat_min, options.area.lat_max)});
  }

  std::vector<traj::Trajectory> out;
  out.reserve(options.num_trajectories);
  for (int t = 0; t < options.num_trajectories; ++t) {
    const geo::Point& depot = depots[rng.Uniform(depots.size())];
    int day = static_cast<int>(rng.Uniform(options.num_days));
    // Start between 07:00 and 16:00.
    TimestampMs when = base_time + day * kMillisPerDay + 7 * kMillisPerHour +
                       static_cast<int64_t>(rng.Uniform(9 * 60)) *
                           kMillisPerMinute;
    geo::Point pos{std::clamp(depot.lng + rng.NextGaussian() * 0.003,
                              options.area.lng_min, options.area.lng_max),
                   std::clamp(depot.lat + rng.NextGaussian() * 0.003,
                              options.area.lat_min, options.area.lat_max)};
    // Random-walk heading with occasional turns; courier speeds 2-8 m/s.
    double heading = rng.Uniform(0.0, 6.283185307179586);
    std::vector<traj::GpsPoint> points;
    points.reserve(options.points_per_traj);
    for (int i = 0; i < options.points_per_traj; ++i) {
      points.push_back(traj::GpsPoint{pos, when});
      double speed = 2.0 + rng.NextDouble() * 6.0;  // m/s
      double step_m = speed * options.interval_seconds;
      if (rng.NextDouble() < 0.15) {
        heading += rng.NextGaussian() * 1.2;  // turn at a corner
      }
      double dlat = (step_m * std::sin(heading)) / 111320.0;
      double dlng = (step_m * std::cos(heading)) /
                    (111320.0 * std::max(0.2, std::cos(pos.lat * M_PI / 180)));
      pos.lng = std::clamp(pos.lng + dlng, options.area.lng_min,
                           options.area.lng_max);
      pos.lat = std::clamp(pos.lat + dlat, options.area.lat_min,
                           options.area.lat_max);
      when += options.interval_seconds * kMillisPerSecond +
              static_cast<int64_t>(rng.Uniform(2000));
    }
    out.emplace_back("traj" + std::to_string(t), std::move(points));
  }
  return out;
}

std::vector<OrderRecord> GenerateOrders(const OrderOptions& options) {
  Rng rng(options.seed);
  auto start_ts = ParseTimestamp(options.start_date);
  TimestampMs base_time = start_ts.ok() ? start_ts.value() : 0;

  struct Hotspot {
    geo::Point center;
    double sigma;
    double weight;
  };
  std::vector<Hotspot> hotspots;
  double total_weight = 0;
  for (int i = 0; i < options.num_hotspots; ++i) {
    Hotspot h;
    h.center = geo::Point{
        rng.Uniform(options.area.lng_min, options.area.lng_max),
        rng.Uniform(options.area.lat_min, options.area.lat_max)};
    h.sigma = 0.002 + rng.NextDouble() * 0.01;
    h.weight = 0.2 + rng.NextDouble();
    total_weight += h.weight;
    hotspots.push_back(h);
  }

  std::vector<OrderRecord> out;
  out.reserve(options.num_orders);
  for (int i = 0; i < options.num_orders; ++i) {
    // Weighted hotspot choice.
    double pick = rng.NextDouble() * total_weight;
    const Hotspot* chosen = &hotspots.back();
    for (const Hotspot& h : hotspots) {
      pick -= h.weight;
      if (pick <= 0) {
        chosen = &h;
        break;
      }
    }
    OrderRecord order;
    order.fid = "order" + std::to_string(i);
    order.point = geo::Point{
        std::clamp(chosen->center.lng + rng.NextGaussian() * chosen->sigma,
                   options.area.lng_min, options.area.lng_max),
        std::clamp(chosen->center.lat + rng.NextGaussian() * chosen->sigma,
                   options.area.lat_min, options.area.lat_max)};
    // Diurnal profile: most orders 08:00-23:00, peak at ~20:30.
    int day = static_cast<int>(rng.Uniform(options.num_days));
    double hour = 15.5 + rng.NextGaussian() * 4.5;
    hour = std::clamp(hour, 0.0, 23.99);
    order.time = base_time + day * kMillisPerDay +
                 static_cast<int64_t>(hour * kMillisPerHour);
    out.push_back(std::move(order));
  }
  return out;
}

std::vector<traj::Trajectory> CopyAndSample(
    const std::vector<traj::Trajectory>& base, int factor, uint64_t seed) {
  Rng rng(seed);
  std::vector<traj::Trajectory> out;
  out.reserve(base.size() * static_cast<size_t>(factor));
  for (int copy = 0; copy < factor; ++copy) {
    for (const traj::Trajectory& t : base) {
      if (copy == 0) {
        out.push_back(t);
        continue;
      }
      // Jitter position slightly and shift each copy into later periods so
      // the time span grows with the data (Table II: Synthetic spans
      // 2014/03 - 2014/12).
      double dlng = rng.NextGaussian() * 0.002;
      double dlat = rng.NextGaussian() * 0.002;
      int64_t dt = static_cast<int64_t>(copy) * 31 * kMillisPerDay;
      std::vector<traj::GpsPoint> points = t.points();
      for (traj::GpsPoint& p : points) {
        p.position.lng += dlng;
        p.position.lat += dlat;
        p.time += dt;
      }
      out.emplace_back(t.oid() + "_c" + std::to_string(copy),
                       std::move(points));
    }
  }
  return out;
}

QueryCenters SampleQueryCenters(const geo::Mbr& area,
                                const std::string& start_date, int num_days,
                                int count, uint64_t seed) {
  Rng rng(seed);
  auto start_ts = ParseTimestamp(start_date);
  TimestampMs base_time = start_ts.ok() ? start_ts.value() : 0;
  QueryCenters out;
  for (int i = 0; i < count; ++i) {
    // Bias toward the middle of the area, where data density is higher.
    double lng = area.lng_min +
                 area.Width() * (0.5 + 0.35 * (rng.NextDouble() - 0.5) * 2);
    double lat = area.lat_min +
                 area.Height() * (0.5 + 0.35 * (rng.NextDouble() - 0.5) * 2);
    out.centers.push_back(geo::Point{lng, lat});
    out.times.push_back(base_time +
                        static_cast<int64_t>(rng.Uniform(num_days)) *
                            kMillisPerDay +
                        static_cast<int64_t>(rng.Uniform(24)) *
                            kMillisPerHour);
  }
  return out;
}

}  // namespace just::workload
