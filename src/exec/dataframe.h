#ifndef JUST_EXEC_DATAFRAME_H_
#define JUST_EXEC_DATAFRAME_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/value.h"

namespace just::exec {

struct Field {
  std::string name;
  DataType type = DataType::kNull;

  bool operator==(const Field& o) const {
    return name == o.name && type == o.type;
  }
};

/// Column layout of a table / view / intermediate result.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  /// Index of a column by name; -1 when absent. Case-insensitive, as JustQL
  /// identifiers are.
  int IndexOf(const std::string& name) const;

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  std::string ToString() const;

  bool operator==(const Schema& o) const { return fields_ == o.fields_; }

 private:
  std::vector<Field> fields_;
};

/// One record.
using Row = std::vector<Value>;

/// An in-memory table: the Spark DataFrame role in the paper's data flow
/// (Figure 2). View tables are DataFrames cached in memory (Section IV-D).
class DataFrame {
 public:
  DataFrame() : schema_(std::make_shared<Schema>()) {}
  explicit DataFrame(std::shared_ptr<Schema> schema)
      : schema_(std::move(schema)) {}
  DataFrame(std::shared_ptr<Schema> schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return *schema_; }
  const std::shared_ptr<Schema>& schema_ptr() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>* mutable_rows() { return &rows_; }
  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  void AddRow(Row row) { rows_.push_back(std::move(row)); }

  /// Estimated heap footprint, used for view caching / OOM simulation.
  size_t ApproxBytes() const;

  /// Renders up to `max_rows` rows as an aligned text table (for examples
  /// and the quickstart shell).
  std::string ToDisplayString(size_t max_rows = 20) const;

 private:
  std::shared_ptr<Schema> schema_;
  std::vector<Row> rows_;
};

}  // namespace just::exec

#endif  // JUST_EXEC_DATAFRAME_H_
