#include "exec/value.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <functional>

#include "common/bytes.h"

namespace just::exec {

std::string DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kBool:
      return "bool";
    case DataType::kInt:
      return "integer";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kTimestamp:
      return "date";
    case DataType::kGeometry:
      return "geometry";
    case DataType::kTrajectory:
      return "st_series";
  }
  return "?";
}

Result<DataType> ParseDataType(const std::string& name) {
  std::string lower;
  for (char c : name) lower += static_cast<char>(std::tolower(c));
  if (lower == "bool" || lower == "boolean") return DataType::kBool;
  if (lower == "int" || lower == "integer" || lower == "long" ||
      lower == "bigint") {
    return DataType::kInt;
  }
  if (lower == "double" || lower == "float" || lower == "real") {
    return DataType::kDouble;
  }
  if (lower == "string" || lower == "varchar" || lower == "text") {
    return DataType::kString;
  }
  if (lower == "date" || lower == "time" || lower == "timestamp") {
    return DataType::kTimestamp;
  }
  if (lower == "geometry" || lower == "point" || lower == "linestring" ||
      lower == "polygon" || lower == "geom") {
    return DataType::kGeometry;
  }
  if (lower == "st_series" || lower == "trajectory" || lower == "t_series") {
    return DataType::kTrajectory;
  }
  return Status::InvalidArgument("unknown data type: " + name);
}

Value Value::Bool(bool b) {
  Value v;
  v.type_ = DataType::kBool;
  v.data_ = b;
  return v;
}

Value Value::Int(int64_t i) {
  Value v;
  v.type_ = DataType::kInt;
  v.data_ = i;
  return v;
}

Value Value::Double(double d) {
  Value v;
  v.type_ = DataType::kDouble;
  v.data_ = d;
  return v;
}

Value Value::String(std::string s) {
  Value v;
  v.type_ = DataType::kString;
  v.data_ = std::move(s);
  return v;
}

Value Value::Timestamp(TimestampMs t) {
  Value v;
  v.type_ = DataType::kTimestamp;
  v.data_ = static_cast<int64_t>(t);
  return v;
}

Value Value::GeometryVal(geo::Geometry g) {
  Value v;
  v.type_ = DataType::kGeometry;
  v.data_ = std::move(g);
  return v;
}

Value Value::TrajectoryVal(std::shared_ptr<const traj::Trajectory> t) {
  Value v;
  v.type_ = DataType::kTrajectory;
  v.data_ = std::move(t);
  return v;
}

Result<double> Value::AsDouble() const {
  switch (type_) {
    case DataType::kBool:
      return bool_value() ? 1.0 : 0.0;
    case DataType::kInt:
    case DataType::kTimestamp:
      return static_cast<double>(std::get<int64_t>(data_));
    case DataType::kDouble:
      return double_value();
    default:
      return Status::InvalidArgument("value is not numeric: " + ToString());
  }
}

Result<int64_t> Value::AsInt() const {
  switch (type_) {
    case DataType::kBool:
      return static_cast<int64_t>(bool_value());
    case DataType::kInt:
    case DataType::kTimestamp:
      return std::get<int64_t>(data_);
    case DataType::kDouble:
      return static_cast<int64_t>(double_value());
    default:
      return Status::InvalidArgument("value is not numeric: " + ToString());
  }
}

namespace {
bool IsNumeric(DataType t) {
  return t == DataType::kBool || t == DataType::kInt ||
         t == DataType::kDouble || t == DataType::kTimestamp;
}
}  // namespace

int Value::Compare(const Value& other) const {
  if (type_ == DataType::kNull || other.type_ == DataType::kNull) {
    if (type_ == other.type_) return 0;
    return type_ == DataType::kNull ? -1 : 1;
  }
  if (IsNumeric(type_) && IsNumeric(other.type_)) {
    double a = AsDouble().value();
    double b = other.AsDouble().value();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (type_ != other.type_) {
    return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
  }
  switch (type_) {
    case DataType::kString: {
      int c = string_value().compare(other.string_value());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case DataType::kGeometry: {
      std::string a = geometry_value().Serialize();
      std::string b = other.geometry_value().Serialize();
      int c = a.compare(b);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case DataType::kTrajectory: {
      const auto& a = trajectory_value();
      const auto& b = other.trajectory_value();
      if (a == b) return 0;
      if (a == nullptr || b == nullptr) return a == nullptr ? -1 : 1;
      int c = a->oid().compare(b->oid());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;
  }
}

size_t Value::Hash() const {
  switch (type_) {
    case DataType::kNull:
      return 0x9E3779B9;
    case DataType::kBool:
    case DataType::kInt:
    case DataType::kTimestamp:
    case DataType::kDouble: {
      // Hash the numeric value as a double so 1 == 1.0 hash-match.
      double d = AsDouble().value();
      if (d == 0) d = 0;  // normalize -0.0
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      return std::hash<uint64_t>{}(bits);
    }
    case DataType::kString:
      return std::hash<std::string>{}(string_value());
    case DataType::kGeometry:
      return std::hash<std::string>{}(geometry_value().Serialize());
    case DataType::kTrajectory:
      return trajectory_value() == nullptr
                 ? 1
                 : std::hash<std::string>{}(trajectory_value()->oid());
  }
  return 0;
}

size_t Value::ApproxBytes() const {
  switch (type_) {
    case DataType::kString:
      return 32 + string_value().size();
    case DataType::kGeometry:
      return 32 + geometry_value().points().size() * sizeof(geo::Point);
    case DataType::kTrajectory:
      return 32 + (trajectory_value() == nullptr
                       ? 0
                       : trajectory_value()->size() * sizeof(traj::GpsPoint));
    default:
      return 16;
  }
}

std::string Value::ToString() const {
  switch (type_) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return bool_value() ? "true" : "false";
    case DataType::kInt:
      return std::to_string(int_value());
    case DataType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", double_value());
      return buf;
    }
    case DataType::kString:
      return string_value();
    case DataType::kTimestamp:
      return FormatTimestamp(timestamp_value());
    case DataType::kGeometry:
      return geometry_value().ToWkt();
    case DataType::kTrajectory: {
      const auto& t = trajectory_value();
      if (t == nullptr) return "TRAJECTORY()";
      return "TRAJECTORY(" + t->oid() + ", " + std::to_string(t->size()) +
             " pts)";
    }
  }
  return "?";
}

void Value::SerializeTo(std::string* out) const {
  out->push_back(static_cast<char>(type_));
  switch (type_) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      out->push_back(bool_value() ? 1 : 0);
      break;
    case DataType::kInt:
    case DataType::kTimestamp:
      PutVarintSigned(out, std::get<int64_t>(data_));
      break;
    case DataType::kDouble:
      PutFixed64(out, OrderedDoubleBits(double_value()));
      break;
    case DataType::kString:
      PutLengthPrefixed(out, string_value());
      break;
    case DataType::kGeometry:
      PutLengthPrefixed(out, geometry_value().Serialize());
      break;
    case DataType::kTrajectory: {
      const auto& t = trajectory_value();
      if (t == nullptr) {
        PutLengthPrefixed(out, "");
        PutLengthPrefixed(out, "");
      } else {
        PutLengthPrefixed(out, t->oid());
        PutLengthPrefixed(out, t->SerializeDelta());
      }
      break;
    }
  }
}

Result<Value> Value::Deserialize(const char** p, const char* limit) {
  if (*p >= limit) return Status::Corruption("truncated value");
  auto type = static_cast<DataType>(*(*p)++);
  switch (type) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool: {
      if (*p >= limit) return Status::Corruption("truncated bool");
      return Value::Bool(*(*p)++ != 0);
    }
    case DataType::kInt:
    case DataType::kTimestamp: {
      int64_t v;
      if (!GetVarintSigned(p, limit, &v)) {
        return Status::Corruption("truncated int");
      }
      return type == DataType::kInt ? Value::Int(v) : Value::Timestamp(v);
    }
    case DataType::kDouble: {
      if (limit - *p < 8) return Status::Corruption("truncated double");
      double d = OrderedBitsToDouble(GetFixed64(*p));
      *p += 8;
      return Value::Double(d);
    }
    case DataType::kString: {
      std::string_view s;
      if (!GetLengthPrefixed(p, limit, &s)) {
        return Status::Corruption("truncated string");
      }
      return Value::String(std::string(s));
    }
    case DataType::kGeometry: {
      std::string_view s;
      if (!GetLengthPrefixed(p, limit, &s)) {
        return Status::Corruption("truncated geometry");
      }
      JUST_ASSIGN_OR_RETURN(auto g,
                            geo::Geometry::Deserialize(std::string(s)));
      return Value::GeometryVal(std::move(g));
    }
    case DataType::kTrajectory: {
      std::string_view oid, payload;
      if (!GetLengthPrefixed(p, limit, &oid) ||
          !GetLengthPrefixed(p, limit, &payload)) {
        return Status::Corruption("truncated trajectory");
      }
      JUST_ASSIGN_OR_RETURN(
          auto t, traj::Trajectory::DeserializeDelta(std::string(oid),
                                                     payload));
      return Value::TrajectoryVal(
          std::make_shared<const traj::Trajectory>(std::move(t)));
    }
  }
  return Status::Corruption("unknown value type");
}

}  // namespace just::exec
