#ifndef JUST_EXEC_COLUMN_BATCH_H_
#define JUST_EXEC_COLUMN_BATCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/dataframe.h"

namespace just::exec {

/// One column of a ColumnBatch. Fixed-width types (bool/int/timestamp and
/// double) are unpacked into flat typed vectors so kernels run as tight
/// loops; strings get their own vector; geometry, trajectory, and any column
/// whose runtime values stray from the declared type fall back to a generic
/// Value vector ("object" storage). Nulls are tracked in a packed bitmap for
/// typed storages and as Value::Null() entries for object storage.
class ColumnVector {
 public:
  enum class Storage { kInt64, kDouble, kString, kObject };

  explicit ColumnVector(DataType declared);

  DataType declared_type() const { return declared_; }
  Storage storage() const { return storage_; }
  size_t size() const { return size_; }
  bool has_nulls() const { return has_nulls_; }

  // --- Append path (batch decoding / frame conversion) ---

  /// Appends a fixed-width cell to an int64-backed column (bool / int /
  /// timestamp). Caller must know the column's storage is kInt64.
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string s);
  void AppendNull();
  /// Appends any Value. A value whose type does not match the declared
  /// column type degrades the whole column to object storage (preserving
  /// the exact per-row Values, as row-at-a-time execution would see them).
  void AppendValue(const Value& v);
  void AppendValue(Value&& v);

  // --- Read path (kernels) ---

  bool IsNull(size_t row) const {
    if (storage_ == Storage::kObject) return obj_[row].is_null();
    if (!has_nulls_) return false;
    return (null_words_[row >> 6] >> (row & 63)) & 1;
  }
  int64_t Int64At(size_t row) const { return i64_[row]; }
  double DoubleAt(size_t row) const { return f64_[row]; }
  const std::string& StringAt(size_t row) const { return str_[row]; }
  const Value& ObjectAt(size_t row) const { return obj_[row]; }

  const int64_t* i64_data() const { return i64_.data(); }
  const double* f64_data() const { return f64_.data(); }

  /// Materializes the cell as a generic Value (declared-type aware: int64
  /// storage renders as Bool/Int/Timestamp per the declared type).
  Value ValueAt(size_t row) const;

  /// Compacted copy of the given physical rows, in order (the projection
  /// kernel: copying survivors column-wise instead of row-wise).
  ColumnVector Gather(const uint32_t* rows, size_t n) const;

  size_t ApproxBytes() const;

 private:
  void MarkNull(size_t row);
  /// Converts typed storage to object storage (on type-mismatch append).
  void DegradeToObject();

  DataType declared_;
  Storage storage_;
  size_t size_ = 0;
  bool has_nulls_ = false;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<std::string> str_;
  std::vector<Value> obj_;
  std::vector<uint64_t> null_words_;
};

/// A columnar batch: the unit the vectorized executor pipelines between
/// stages. Columns share one physical row count; a selection vector (when
/// present) names the active rows in ascending order — filters shrink the
/// selection instead of copying survivors, so a chain of predicates touches
/// only surviving rows.
class ColumnBatch {
 public:
  ColumnBatch() : schema_(std::make_shared<Schema>()) {}
  explicit ColumnBatch(std::shared_ptr<Schema> schema);

  const Schema& schema() const { return *schema_; }
  const std::shared_ptr<Schema>& schema_ptr() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  ColumnVector& column(size_t i) { return columns_[i]; }
  const ColumnVector& column(size_t i) const { return columns_[i]; }

  /// Physical rows (before selection).
  size_t num_rows() const { return num_rows_; }
  /// Rows surviving the selection vector.
  size_t num_active() const { return has_selection_ ? selection_.size() : num_rows_; }

  bool has_selection() const { return has_selection_; }
  const std::vector<uint32_t>& selection() const { return selection_; }
  /// nullptr when every physical row is active — kernels branch once and
  /// loop flat either way.
  const uint32_t* selection_data() const {
    return has_selection_ ? selection_.data() : nullptr;
  }
  /// Replaces the selection (indices must be ascending physical rows).
  void SetSelection(std::vector<uint32_t> selection);
  void ClearSelection();

  /// Marks that a row-append (via column appends) completed; keeps the
  /// physical row count in sync when callers write columns directly.
  void FinishRow() { ++num_rows_; }

  void AppendRow(const Row& row);
  void AppendRow(Row&& row);

  /// Materializes one physical row as generic Values (fallback eval path).
  Row MaterializeRow(size_t row) const;

  /// Appends the active rows to `out` (which must share the schema shape).
  void AppendTo(DataFrame* out) const;
  /// Materializes the active rows as a row-oriented DataFrame.
  DataFrame ToDataFrame() const;

  /// Converts a DataFrame; `&&` overload moves cell values instead of
  /// copying (strings / geometries / trajectories).
  static ColumnBatch FromDataFrame(const DataFrame& frame);
  static ColumnBatch FromDataFrame(DataFrame&& frame);

  /// Assembles a batch from pre-built columns (the projection path). All
  /// columns must share `num_rows`; no selection is set.
  static ColumnBatch FromColumns(std::shared_ptr<Schema> schema,
                                 std::vector<ColumnVector> columns,
                                 size_t num_rows);

  size_t ApproxBytes() const;

 private:
  std::shared_ptr<Schema> schema_;
  std::vector<ColumnVector> columns_;
  size_t num_rows_ = 0;
  bool has_selection_ = false;
  std::vector<uint32_t> selection_;
};

/// The executor's inter-stage currency: a run of batches. Scans chunk their
/// output at kBatchRows so per-stage working sets stay cache-sized and
/// EXPLAIN ANALYZE can report batch counts.
using BatchVector = std::vector<ColumnBatch>;

/// Rows per batch produced by scans and frame conversion.
inline constexpr size_t kBatchRows = 4096;

/// Total active rows across a run of batches.
size_t BatchesActiveRows(const BatchVector& batches);

/// Concatenates the active rows of every batch into a DataFrame.
DataFrame BatchesToDataFrame(const std::shared_ptr<Schema>& schema,
                             const BatchVector& batches);

/// Chunks a DataFrame into batches of at most kBatchRows rows. The `&&`
/// overload moves cell values out of the frame.
BatchVector BatchesFromDataFrame(const DataFrame& frame);
BatchVector BatchesFromDataFrame(DataFrame&& frame);

}  // namespace just::exec

#endif  // JUST_EXEC_COLUMN_BATCH_H_
