#ifndef JUST_EXEC_VALUE_H_
#define JUST_EXEC_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>

#include "common/status.h"
#include "common/time_util.h"
#include "geo/geometry.h"
#include "traj/trajectory.h"

namespace just::exec {

/// Column types supported by JUST tables (Section IV-D): primitives,
/// date/time, geometry, and the new st_series type (a trajectory GPS list).
enum class DataType {
  kNull,
  kBool,
  kInt,
  kDouble,
  kString,
  kTimestamp,   ///< milliseconds since epoch ("date" in JustQL)
  kGeometry,    ///< point / linestring / polygon
  kTrajectory,  ///< st_series
};

std::string DataTypeName(DataType type);
Result<DataType> ParseDataType(const std::string& name);

/// A dynamically-typed cell value. Trajectories are shared (they can be
/// megabytes); everything else is owned inline.
class Value {
 public:
  Value() : type_(DataType::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Int(int64_t v);
  static Value Double(double v);
  static Value String(std::string s);
  static Value Timestamp(TimestampMs t);
  static Value GeometryVal(geo::Geometry g);
  static Value TrajectoryVal(std::shared_ptr<const traj::Trajectory> t);

  DataType type() const { return type_; }
  bool is_null() const { return type_ == DataType::kNull; }

  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const std::string& string_value() const {
    return std::get<std::string>(data_);
  }
  TimestampMs timestamp_value() const { return std::get<int64_t>(data_); }
  const geo::Geometry& geometry_value() const {
    return std::get<geo::Geometry>(data_);
  }
  const std::shared_ptr<const traj::Trajectory>& trajectory_value() const {
    return std::get<std::shared_ptr<const traj::Trajectory>>(data_);
  }

  /// Numeric coercion: int/double/bool/timestamp as double.
  Result<double> AsDouble() const;
  /// Int coercion (doubles truncate).
  Result<int64_t> AsInt() const;

  /// Total order for ORDER BY / MIN / MAX; null sorts first; values of
  /// mismatched types order by type id. Numeric types compare numerically.
  int Compare(const Value& other) const;
  bool Equals(const Value& other) const { return Compare(other) == 0; }

  /// Hash consistent with Equals, for GROUP BY / hash join keys.
  size_t Hash() const;

  /// Rough heap footprint, for memory budgeting.
  size_t ApproxBytes() const;

  /// Display rendering (used by ResultSet and examples).
  std::string ToString() const;

  /// Compact binary encoding for storage cells.
  void SerializeTo(std::string* out) const;
  static Result<Value> Deserialize(const char** p, const char* limit);

 private:
  DataType type_;
  std::variant<std::monostate, bool, int64_t, double, std::string,
               geo::Geometry, std::shared_ptr<const traj::Trajectory>>
      data_;
};

}  // namespace just::exec

#endif  // JUST_EXEC_VALUE_H_
