#include "exec/dataframe.h"

#include <algorithm>
#include <cctype>

namespace just::exec {

namespace {
bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}
}  // namespace

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ", ";
    out += fields_[i].name + " " + DataTypeName(fields_[i].type);
  }
  return out + ")";
}

size_t DataFrame::ApproxBytes() const {
  size_t total = 0;
  for (const Row& row : rows_) {
    total += sizeof(Row);
    for (const Value& v : row) total += v.ApproxBytes();
  }
  return total;
}

std::string DataFrame::ToDisplayString(size_t max_rows) const {
  std::vector<size_t> widths;
  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> header;
  for (const Field& f : schema_->fields()) {
    header.push_back(f.name);
    widths.push_back(f.name.size());
  }
  size_t shown = std::min(max_rows, rows_.size());
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row_cells;
    for (size_t c = 0; c < rows_[r].size() && c < widths.size(); ++c) {
      std::string s = rows_[r][c].ToString();
      if (s.size() > 40) s = s.substr(0, 37) + "...";
      widths[c] = std::max(widths[c], s.size());
      row_cells.push_back(std::move(s));
    }
    cells.push_back(std::move(row_cells));
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";
  std::string out = sep + render_row(header) + sep;
  for (const auto& row : cells) out += render_row(row);
  out += sep;
  if (rows_.size() > shown) {
    out += "(" + std::to_string(rows_.size() - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace just::exec
