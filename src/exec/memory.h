#ifndef JUST_EXEC_MEMORY_H_
#define JUST_EXEC_MEMORY_H_

#include <atomic>
#include <cstddef>

#include "common/status.h"

namespace just::exec {

/// Tracks memory consumption against a fixed budget. JUST itself streams
/// from disk and needs little memory, but the Spark-based baselines load
/// all data (and large indexes) into RAM; this budget is how the benches
/// reproduce their out-of-memory failures (Section VIII: "Simba runs out of
/// memory when the data size of Traj is over 20%").
class MemoryBudget {
 public:
  /// `capacity_bytes` = 0 means unlimited.
  explicit MemoryBudget(size_t capacity_bytes = 0)
      : capacity_(capacity_bytes) {}

  /// Reserves `bytes`; fails with ResourceExhausted when the budget would
  /// be exceeded (the simulated OOM).
  Status Charge(size_t bytes) {
    size_t used = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (capacity_ != 0 && used > capacity_) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "out of memory: budget " + std::to_string(capacity_) +
          " bytes, requested " + std::to_string(bytes) + " with " +
          std::to_string(used - bytes) + " in use");
    }
    return Status::OK();
  }

  void Release(size_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  void Reset() { used_.store(0, std::memory_order_relaxed); }

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  std::atomic<size_t> used_{0};
};

}  // namespace just::exec

#endif  // JUST_EXEC_MEMORY_H_
