#ifndef JUST_EXEC_OPERATORS_H_
#define JUST_EXEC_OPERATORS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/dataframe.h"

namespace just::exec {

/// Relational operators over DataFrames: the Spark SQL subset JUST pushes
/// complex predicates, aggregates, and joins to (Section VI, SQL Execute).
/// All operators are pure: they build a new DataFrame.

/// Keeps rows for which `pred` returns true.
DataFrame Filter(const DataFrame& input,
                 const std::function<bool(const Row&)>& pred);

/// Keeps the named columns, in order.
Result<DataFrame> Project(const DataFrame& input,
                          const std::vector<std::string>& columns);

struct SortKey {
  std::string column;
  bool ascending = true;
};

/// Stable multi-key sort.
Result<DataFrame> Sort(const DataFrame& input,
                       const std::vector<SortKey>& keys);

DataFrame Limit(const DataFrame& input, size_t n);

/// Aggregate functions for GROUP BY.
enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

struct Aggregate {
  AggFunc func = AggFunc::kCount;
  std::string column;  ///< ignored for COUNT(*) — pass ""
  std::string output_name;
};

/// Hash aggregation; with empty `group_by` produces one global row.
Result<DataFrame> GroupBy(const DataFrame& input,
                          const std::vector<std::string>& group_by,
                          const std::vector<Aggregate>& aggregates);

/// Inner hash join on `left_col` == `right_col`. Right columns that clash
/// with left names get a "_r" suffix.
Result<DataFrame> HashJoin(const DataFrame& left, const DataFrame& right,
                           const std::string& left_col,
                           const std::string& right_col);

/// Per-row transform (1-1 analysis operations, e.g. coordinate transforms).
DataFrame MapRows(const DataFrame& input, std::shared_ptr<Schema> out_schema,
                  const std::function<Row(const Row&)>& fn);

/// Per-row expansion (1-N analysis operations, e.g. trajectory
/// segmentation), implemented with our own executor since Spark SQL UDFs
/// cannot return multiple rows (Section V-D).
DataFrame FlatMapRows(const DataFrame& input,
                      std::shared_ptr<Schema> out_schema,
                      const std::function<std::vector<Row>(const Row&)>& fn);

/// Whole-table transform (N-M analysis operations, e.g. st_DBSCAN).
DataFrame MapPartition(
    const DataFrame& input, std::shared_ptr<Schema> out_schema,
    const std::function<std::vector<Row>(const std::vector<Row>&)>& fn);

/// Concatenates frames with identical schemas.
Result<DataFrame> Union(const DataFrame& a, const DataFrame& b);

}  // namespace just::exec

#endif  // JUST_EXEC_OPERATORS_H_
