#include "exec/column_batch.h"

#include <utility>

namespace just::exec {

namespace {

ColumnVector::Storage StorageFor(DataType declared) {
  switch (declared) {
    case DataType::kBool:
    case DataType::kInt:
    case DataType::kTimestamp:
      return ColumnVector::Storage::kInt64;
    case DataType::kDouble:
      return ColumnVector::Storage::kDouble;
    case DataType::kString:
      return ColumnVector::Storage::kString;
    default:
      return ColumnVector::Storage::kObject;
  }
}

}  // namespace

ColumnVector::ColumnVector(DataType declared)
    : declared_(declared), storage_(StorageFor(declared)) {}

void ColumnVector::MarkNull(size_t row) {
  has_nulls_ = true;
  size_t word = row >> 6;
  if (null_words_.size() <= word) null_words_.resize(word + 1, 0);
  null_words_[word] |= uint64_t{1} << (row & 63);
}

void ColumnVector::AppendInt64(int64_t v) {
  i64_.push_back(v);
  ++size_;
}

void ColumnVector::AppendDouble(double v) {
  f64_.push_back(v);
  ++size_;
}

void ColumnVector::AppendString(std::string s) {
  str_.push_back(std::move(s));
  ++size_;
}

void ColumnVector::AppendNull() {
  switch (storage_) {
    case Storage::kInt64:
      i64_.push_back(0);
      break;
    case Storage::kDouble:
      f64_.push_back(0);
      break;
    case Storage::kString:
      str_.emplace_back();
      break;
    case Storage::kObject:
      obj_.emplace_back();
      ++size_;
      return;
  }
  MarkNull(size_);
  ++size_;
}

void ColumnVector::AppendValue(const Value& v) { AppendValue(Value(v)); }

void ColumnVector::AppendValue(Value&& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (storage_) {
    case Storage::kInt64:
      if (v.type() == declared_) {
        // Bool / Int / Timestamp all carry int64 payloads.
        AppendInt64(v.type() == DataType::kBool
                        ? static_cast<int64_t>(v.bool_value())
                        : v.type() == DataType::kInt ? v.int_value()
                                                     : v.timestamp_value());
        return;
      }
      break;
    case Storage::kDouble:
      if (v.type() == DataType::kDouble) {
        AppendDouble(v.double_value());
        return;
      }
      break;
    case Storage::kString:
      if (v.type() == DataType::kString) {
        // Moving out of the variant keeps large strings zero-copy.
        AppendString(std::move(const_cast<std::string&>(v.string_value())));
        return;
      }
      break;
    case Storage::kObject:
      obj_.push_back(std::move(v));
      ++size_;
      return;
  }
  // Runtime value strayed from the declared type (e.g. a Double in an
  // integer-typed computed column): keep exact row semantics by degrading.
  DegradeToObject();
  obj_.push_back(std::move(v));
  ++size_;
}

void ColumnVector::DegradeToObject() {
  std::vector<Value> values;
  values.reserve(size_);
  for (size_t row = 0; row < size_; ++row) values.push_back(ValueAt(row));
  storage_ = Storage::kObject;
  obj_ = std::move(values);
  i64_.clear();
  f64_.clear();
  str_.clear();
  null_words_.clear();
  has_nulls_ = false;
}

Value ColumnVector::ValueAt(size_t row) const {
  switch (storage_) {
    case Storage::kObject:
      return obj_[row];
    case Storage::kInt64:
      if (IsNull(row)) return Value::Null();
      switch (declared_) {
        case DataType::kBool:
          return Value::Bool(i64_[row] != 0);
        case DataType::kTimestamp:
          return Value::Timestamp(i64_[row]);
        default:
          return Value::Int(i64_[row]);
      }
    case Storage::kDouble:
      return IsNull(row) ? Value::Null() : Value::Double(f64_[row]);
    case Storage::kString:
      return IsNull(row) ? Value::Null() : Value::String(str_[row]);
  }
  return Value::Null();
}

ColumnVector ColumnVector::Gather(const uint32_t* rows, size_t n) const {
  ColumnVector out(declared_);
  out.storage_ = storage_;
  switch (storage_) {
    case Storage::kInt64:
      out.i64_.reserve(n);
      break;
    case Storage::kDouble:
      out.f64_.reserve(n);
      break;
    case Storage::kString:
      out.str_.reserve(n);
      break;
    case Storage::kObject:
      out.obj_.reserve(n);
      break;
  }
  for (size_t i = 0; i < n; ++i) {
    uint32_t row = rows[i];
    switch (storage_) {
      case Storage::kInt64:
        out.i64_.push_back(i64_[row]);
        break;
      case Storage::kDouble:
        out.f64_.push_back(f64_[row]);
        break;
      case Storage::kString:
        out.str_.push_back(str_[row]);
        break;
      case Storage::kObject:
        out.obj_.push_back(obj_[row]);
        break;
    }
    if (has_nulls_ && IsNull(row)) out.MarkNull(i);
    ++out.size_;
  }
  return out;
}

size_t ColumnVector::ApproxBytes() const {
  size_t bytes = i64_.capacity() * sizeof(int64_t) +
                 f64_.capacity() * sizeof(double) +
                 null_words_.capacity() * sizeof(uint64_t);
  for (const std::string& s : str_) bytes += 32 + s.size();
  for (const Value& v : obj_) bytes += v.ApproxBytes();
  return bytes;
}

ColumnBatch::ColumnBatch(std::shared_ptr<Schema> schema)
    : schema_(std::move(schema)) {
  columns_.reserve(schema_->num_fields());
  for (const Field& f : schema_->fields()) columns_.emplace_back(f.type);
}

void ColumnBatch::SetSelection(std::vector<uint32_t> selection) {
  selection_ = std::move(selection);
  has_selection_ = true;
}

void ColumnBatch::ClearSelection() {
  selection_.clear();
  has_selection_ = false;
}

void ColumnBatch::AppendRow(const Row& row) {
  for (size_t i = 0; i < columns_.size() && i < row.size(); ++i) {
    columns_[i].AppendValue(row[i]);
  }
  for (size_t i = row.size(); i < columns_.size(); ++i) {
    columns_[i].AppendNull();
  }
  ++num_rows_;
}

void ColumnBatch::AppendRow(Row&& row) {
  for (size_t i = 0; i < columns_.size() && i < row.size(); ++i) {
    columns_[i].AppendValue(std::move(row[i]));
  }
  for (size_t i = row.size(); i < columns_.size(); ++i) {
    columns_[i].AppendNull();
  }
  ++num_rows_;
}

Row ColumnBatch::MaterializeRow(size_t row) const {
  Row out;
  out.reserve(columns_.size());
  for (const ColumnVector& col : columns_) out.push_back(col.ValueAt(row));
  return out;
}

void ColumnBatch::AppendTo(DataFrame* out) const {
  if (has_selection_) {
    for (uint32_t row : selection_) out->AddRow(MaterializeRow(row));
  } else {
    for (size_t row = 0; row < num_rows_; ++row) {
      out->AddRow(MaterializeRow(row));
    }
  }
}

DataFrame ColumnBatch::ToDataFrame() const {
  DataFrame out(schema_);
  out.mutable_rows()->reserve(num_active());
  AppendTo(&out);
  return out;
}

ColumnBatch ColumnBatch::FromDataFrame(const DataFrame& frame) {
  ColumnBatch batch(frame.schema_ptr());
  for (const Row& row : frame.rows()) batch.AppendRow(row);
  return batch;
}

ColumnBatch ColumnBatch::FromDataFrame(DataFrame&& frame) {
  ColumnBatch batch(frame.schema_ptr());
  for (Row& row : *frame.mutable_rows()) batch.AppendRow(std::move(row));
  return batch;
}

ColumnBatch ColumnBatch::FromColumns(std::shared_ptr<Schema> schema,
                                     std::vector<ColumnVector> columns,
                                     size_t num_rows) {
  ColumnBatch batch;
  batch.schema_ = std::move(schema);
  batch.columns_ = std::move(columns);
  batch.num_rows_ = num_rows;
  return batch;
}

size_t ColumnBatch::ApproxBytes() const {
  size_t bytes = selection_.capacity() * sizeof(uint32_t);
  for (const ColumnVector& col : columns_) bytes += col.ApproxBytes();
  return bytes;
}

size_t BatchesActiveRows(const BatchVector& batches) {
  size_t rows = 0;
  for (const ColumnBatch& batch : batches) rows += batch.num_active();
  return rows;
}

DataFrame BatchesToDataFrame(const std::shared_ptr<Schema>& schema,
                             const BatchVector& batches) {
  DataFrame out(schema);
  out.mutable_rows()->reserve(BatchesActiveRows(batches));
  for (const ColumnBatch& batch : batches) batch.AppendTo(&out);
  return out;
}

namespace {

template <typename RowRange>
BatchVector ChunkRows(const std::shared_ptr<Schema>& schema, RowRange&& rows,
                      bool move_values) {
  BatchVector batches;
  ColumnBatch current(schema);
  for (auto& row : rows) {
    if (current.num_rows() >= kBatchRows) {
      batches.push_back(std::move(current));
      current = ColumnBatch(schema);
    }
    if (move_values) {
      current.AppendRow(std::move(const_cast<Row&>(row)));
    } else {
      current.AppendRow(row);
    }
  }
  if (current.num_rows() > 0 || batches.empty()) {
    batches.push_back(std::move(current));
  }
  return batches;
}

}  // namespace

BatchVector BatchesFromDataFrame(const DataFrame& frame) {
  return ChunkRows(frame.schema_ptr(), frame.rows(), /*move_values=*/false);
}

BatchVector BatchesFromDataFrame(DataFrame&& frame) {
  return ChunkRows(frame.schema_ptr(), *frame.mutable_rows(),
                   /*move_values=*/true);
}

}  // namespace just::exec
