#include "exec/operators.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace just::exec {

DataFrame Filter(const DataFrame& input,
                 const std::function<bool(const Row&)>& pred) {
  DataFrame out(input.schema_ptr());
  for (const Row& row : input.rows()) {
    if (pred(row)) out.AddRow(row);
  }
  return out;
}

Result<DataFrame> Project(const DataFrame& input,
                          const std::vector<std::string>& columns) {
  std::vector<int> indices;
  auto schema = std::make_shared<Schema>();
  for (const std::string& col : columns) {
    int idx = input.schema().IndexOf(col);
    if (idx < 0) return Status::InvalidArgument("no such column: " + col);
    indices.push_back(idx);
    schema->AddField(input.schema().field(idx));
  }
  DataFrame out(schema);
  for (const Row& row : input.rows()) {
    Row projected;
    projected.reserve(indices.size());
    for (int idx : indices) projected.push_back(row[idx]);
    out.AddRow(std::move(projected));
  }
  return out;
}

Result<DataFrame> Sort(const DataFrame& input,
                       const std::vector<SortKey>& keys) {
  struct ResolvedKey {
    int index;
    bool ascending;
  };
  std::vector<ResolvedKey> resolved;
  for (const SortKey& key : keys) {
    int idx = input.schema().IndexOf(key.column);
    if (idx < 0) {
      return Status::InvalidArgument("no such column: " + key.column);
    }
    resolved.push_back({idx, key.ascending});
  }
  std::vector<Row> rows = input.rows();
  std::stable_sort(rows.begin(), rows.end(),
                   [&](const Row& a, const Row& b) {
                     for (const ResolvedKey& k : resolved) {
                       int c = a[k.index].Compare(b[k.index]);
                       if (c != 0) return k.ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
  return DataFrame(input.schema_ptr(), std::move(rows));
}

DataFrame Limit(const DataFrame& input, size_t n) {
  std::vector<Row> rows(input.rows().begin(),
                        input.rows().begin() +
                            std::min(n, input.rows().size()));
  return DataFrame(input.schema_ptr(), std::move(rows));
}

namespace {
struct AggState {
  int64_t count = 0;
  double sum = 0;
  bool sum_valid = true;
  Value min, max;
  bool has_minmax = false;

  void Update(const Value& v) {
    if (v.is_null()) return;
    ++count;
    auto d = v.AsDouble();
    if (d.ok()) {
      sum += d.value();
    } else {
      sum_valid = false;
    }
    if (!has_minmax) {
      min = v;
      max = v;
      has_minmax = true;
    } else {
      if (v.Compare(min) < 0) min = v;
      if (v.Compare(max) > 0) max = v;
    }
  }

  Value Finish(AggFunc func) const {
    switch (func) {
      case AggFunc::kCount:
        return Value::Int(count);
      case AggFunc::kSum:
        return count == 0 || !sum_valid ? Value::Null() : Value::Double(sum);
      case AggFunc::kAvg:
        return count == 0 || !sum_valid
                   ? Value::Null()
                   : Value::Double(sum / static_cast<double>(count));
      case AggFunc::kMin:
        return has_minmax ? min : Value::Null();
      case AggFunc::kMax:
        return has_minmax ? max : Value::Null();
    }
    return Value::Null();
  }
};

struct RowKeyHash {
  size_t operator()(const Row& key) const {
    size_t h = 0;
    for (const Value& v : key) h = h * 1099511628211ull + v.Hash();
    return h;
  }
};

struct RowKeyEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].Equals(b[i])) return false;
    }
    return true;
  }
};
}  // namespace

Result<DataFrame> GroupBy(const DataFrame& input,
                          const std::vector<std::string>& group_by,
                          const std::vector<Aggregate>& aggregates) {
  std::vector<int> key_indices;
  for (const std::string& col : group_by) {
    int idx = input.schema().IndexOf(col);
    if (idx < 0) return Status::InvalidArgument("no such column: " + col);
    key_indices.push_back(idx);
  }
  struct AggSpec {
    AggFunc func;
    int index;  // -1 for COUNT(*)
  };
  std::vector<AggSpec> specs;
  for (const Aggregate& agg : aggregates) {
    int idx = -1;
    if (!agg.column.empty()) {
      idx = input.schema().IndexOf(agg.column);
      if (idx < 0) {
        return Status::InvalidArgument("no such column: " + agg.column);
      }
    }
    specs.push_back({agg.func, idx});
  }

  std::unordered_map<Row, std::vector<AggState>, RowKeyHash, RowKeyEq> groups;
  std::vector<Row> key_order;
  for (const Row& row : input.rows()) {
    Row key;
    key.reserve(key_indices.size());
    for (int idx : key_indices) key.push_back(row[idx]);
    auto [it, inserted] =
        groups.try_emplace(std::move(key), specs.size(), AggState());
    if (inserted) key_order.push_back(it->first);
    for (size_t a = 0; a < specs.size(); ++a) {
      if (specs[a].index < 0) {
        ++it->second[a].count;  // COUNT(*)
      } else {
        it->second[a].Update(row[specs[a].index]);
      }
    }
  }
  // Global aggregation over an empty input still yields one row.
  if (group_by.empty() && groups.empty()) {
    groups.try_emplace(Row{}, specs.size(), AggState());
    key_order.push_back(Row{});
  }

  auto schema = std::make_shared<Schema>();
  for (int idx : key_indices) schema->AddField(input.schema().field(idx));
  for (size_t a = 0; a < aggregates.size(); ++a) {
    DataType type = specs[a].func == AggFunc::kCount
                        ? DataType::kInt
                        : (specs[a].index >= 0 &&
                           (specs[a].func == AggFunc::kMin ||
                            specs[a].func == AggFunc::kMax)
                               ? input.schema().field(specs[a].index).type
                               : DataType::kDouble);
    schema->AddField(Field{aggregates[a].output_name, type});
  }
  DataFrame out(schema);
  for (const Row& key : key_order) {
    const auto& states = groups.at(key);
    Row row = key;
    for (size_t a = 0; a < specs.size(); ++a) {
      row.push_back(states[a].Finish(specs[a].func));
    }
    out.AddRow(std::move(row));
  }
  return out;
}

Result<DataFrame> HashJoin(const DataFrame& left, const DataFrame& right,
                           const std::string& left_col,
                           const std::string& right_col) {
  int li = left.schema().IndexOf(left_col);
  int ri = right.schema().IndexOf(right_col);
  if (li < 0) return Status::InvalidArgument("no such column: " + left_col);
  if (ri < 0) return Status::InvalidArgument("no such column: " + right_col);

  auto schema = std::make_shared<Schema>();
  for (const Field& f : left.schema().fields()) schema->AddField(f);
  for (const Field& f : right.schema().fields()) {
    Field out = f;
    if (left.schema().IndexOf(f.name) >= 0) out.name += "_r";
    schema->AddField(out);
  }

  std::unordered_map<Row, std::vector<const Row*>, RowKeyHash, RowKeyEq>
      build;
  for (const Row& row : right.rows()) {
    build[Row{row[ri]}].push_back(&row);
  }
  DataFrame out(schema);
  for (const Row& lrow : left.rows()) {
    auto it = build.find(Row{lrow[li]});
    if (it == build.end()) continue;
    for (const Row* rrow : it->second) {
      Row joined = lrow;
      joined.insert(joined.end(), rrow->begin(), rrow->end());
      out.AddRow(std::move(joined));
    }
  }
  return out;
}

DataFrame MapRows(const DataFrame& input, std::shared_ptr<Schema> out_schema,
                  const std::function<Row(const Row&)>& fn) {
  DataFrame out(std::move(out_schema));
  for (const Row& row : input.rows()) out.AddRow(fn(row));
  return out;
}

DataFrame FlatMapRows(const DataFrame& input,
                      std::shared_ptr<Schema> out_schema,
                      const std::function<std::vector<Row>(const Row&)>& fn) {
  DataFrame out(std::move(out_schema));
  for (const Row& row : input.rows()) {
    for (Row& produced : fn(row)) out.AddRow(std::move(produced));
  }
  return out;
}

DataFrame MapPartition(
    const DataFrame& input, std::shared_ptr<Schema> out_schema,
    const std::function<std::vector<Row>(const std::vector<Row>&)>& fn) {
  DataFrame out(std::move(out_schema));
  for (Row& produced : fn(input.rows())) out.AddRow(std::move(produced));
  return out;
}

Result<DataFrame> Union(const DataFrame& a, const DataFrame& b) {
  if (!(a.schema() == b.schema())) {
    return Status::InvalidArgument("UNION schema mismatch: " +
                                   a.schema().ToString() + " vs " +
                                   b.schema().ToString());
  }
  DataFrame out(a.schema_ptr(), a.rows());
  for (const Row& row : b.rows()) out.AddRow(row);
  return out;
}

}  // namespace just::exec
