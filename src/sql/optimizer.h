#ifndef JUST_SQL_OPTIMIZER_H_
#define JUST_SQL_OPTIMIZER_H_

#include <memory>

#include <string>

#include "common/status.h"
#include "sql/plan.h"

namespace just::core {
class JustEngine;
}  // namespace just::core

namespace just::sql {

/// Rule-based logical optimizer (Section VI, "SQL Optimize"), applying the
/// paper's three rule classes:
///   1. Calculate constant expressions (fid = 52*9 -> fid = 468;
///      st_makeMBR(literals) -> a geometry literal).
///   2. Push down selections toward the table scans.
///   3. Push down projections: prune unneeded fields and record the
///      required columns on each scan.
Result<std::unique_ptr<PlanNode>> Optimize(std::unique_ptr<PlanNode> plan);

/// Optimize, then annotate every table scan with the physical access path
/// the executor would choose for it ("access: secondary_index" in EXPLAIN's
/// rendering). Consults the engine because the curve-vs-secondary-index
/// intersection decision is a live cardinality probe; EXPLAIN's paths use
/// this overload, plain execution does not need the annotation.
Result<std::unique_ptr<PlanNode>> Optimize(std::unique_ptr<PlanNode> plan,
                                           core::JustEngine* engine,
                                           const std::string& user);

}  // namespace just::sql

#endif  // JUST_SQL_OPTIMIZER_H_
