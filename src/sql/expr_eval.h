#ifndef JUST_SQL_EXPR_EVAL_H_
#define JUST_SQL_EXPR_EVAL_H_

#include <unordered_map>

#include "common/status.h"
#include "exec/dataframe.h"
#include "sql/ast.h"

namespace just::sql {

/// Evaluates an expression against one row. Column references resolve
/// through `schema` (case-insensitive). Prefer BoundExpr in per-row loops:
/// this variant re-runs Schema::IndexOf (a case-insensitive string scan)
/// for every column reference on every row.
Result<exec::Value> EvaluateExpr(const Expr& expr, const exec::Schema& schema,
                                 const exec::Row& row);

/// An expression with its column references resolved against one schema at
/// plan/bind time: evaluation looks offsets up in a per-node table instead
/// of string-matching the schema per row. Borrows `expr`; the expression
/// (and the schema's shape) must outlive the binding.
class BoundExpr {
 public:
  BoundExpr() = default;

  /// Resolves every column node of `expr` against `schema`. Fails when a
  /// referenced column is absent, which surfaces bad plans at bind time
  /// instead of per-row.
  static Result<BoundExpr> Bind(const Expr& expr, const exec::Schema& schema);

  Result<exec::Value> Eval(const exec::Row& row) const;
  /// Boolean evaluation with the filter convention: NULL is false.
  Result<bool> EvalBool(const exec::Row& row) const;

  const Expr* expr() const { return expr_; }

 private:
  const Expr* expr_ = nullptr;
  /// Column node -> row offset, resolved once.
  std::unordered_map<const Expr*, int> offsets_;
};

/// Evaluates a constant (column-free) expression; used by the optimizer's
/// constant-folding rule (Section VI: "calculate constant expressions").
Result<exec::Value> EvaluateConstant(const Expr& expr);

/// True when the expression references no columns (and only pure scalar
/// functions), i.e. it is foldable.
bool IsConstantExpr(const Expr& expr);

/// Infers the static result type of an expression against a schema.
Result<exec::DataType> InferType(const Expr& expr, const exec::Schema& schema);

/// Collects the column names an expression references into `out`.
void CollectColumns(const Expr& expr, std::vector<std::string>* out);

}  // namespace just::sql

#endif  // JUST_SQL_EXPR_EVAL_H_
