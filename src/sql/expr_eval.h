#ifndef JUST_SQL_EXPR_EVAL_H_
#define JUST_SQL_EXPR_EVAL_H_

#include "common/status.h"
#include "exec/dataframe.h"
#include "sql/ast.h"

namespace just::sql {

/// Evaluates an expression against one row. Column references resolve
/// through `schema` (case-insensitive).
Result<exec::Value> EvaluateExpr(const Expr& expr, const exec::Schema& schema,
                                 const exec::Row& row);

/// Evaluates a constant (column-free) expression; used by the optimizer's
/// constant-folding rule (Section VI: "calculate constant expressions").
Result<exec::Value> EvaluateConstant(const Expr& expr);

/// True when the expression references no columns (and only pure scalar
/// functions), i.e. it is foldable.
bool IsConstantExpr(const Expr& expr);

/// Infers the static result type of an expression against a schema.
Result<exec::DataType> InferType(const Expr& expr, const exec::Schema& schema);

/// Collects the column names an expression references into `out`.
void CollectColumns(const Expr& expr, std::vector<std::string>* out);

}  // namespace just::sql

#endif  // JUST_SQL_EXPR_EVAL_H_
