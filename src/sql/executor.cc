#include "sql/executor.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <numeric>

#include "exec/operators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/access_path.h"
#include "sql/expr_eval.h"
#include "sql/functions.h"

namespace just::sql {

namespace {

/// Span label for one physical operator.
std::string PlanNodeLabel(const PlanNode& plan) {
  switch (plan.kind) {
    case PlanNode::Kind::kScanTable:
    case PlanNode::Kind::kScanView:
      return "";  // ExecuteScan opens its own span with access-path attrs
    case PlanNode::Kind::kFilter:
      return "Filter";
    case PlanNode::Kind::kProject:
      return "Project";
    case PlanNode::Kind::kAggregate:
      return "Aggregate";
    case PlanNode::Kind::kSort:
      return "Sort";
    case PlanNode::Kind::kLimit:
      return "Limit";
    case PlanNode::Kind::kJoin:
      return "Join";
  }
  return "Unknown";
}


/// The plan-cache tag scoping compiled programs to one catalog entry.
std::string TableCacheTag(const meta::TableMeta& table_meta) {
  return std::to_string(table_meta.table_id) + ":" +
         std::to_string(table_meta.generation);
}

}  // namespace

Result<exec::DataFrame> Executor::ExecuteScan(const PlanNode& scan,
                                              const Expr* predicate,
                                              core::QueryStats* stats) {
  obs::ScopedSpan span("Scan " + scan.name);
  auto result = ExecuteScanImpl(scan, predicate, stats, span.span());
  if (span.span() != nullptr && result.ok()) {
    span.span()->counters().rows_out.store(result->num_rows(),
                                           std::memory_order_relaxed);
  }
  return result;
}

Result<exec::DataFrame> Executor::ExecuteScanImpl(const PlanNode& scan,
                                                  const Expr* predicate,
                                                  core::QueryStats* stats,
                                                  obs::TraceSpan* span) {
  if (scan.kind == PlanNode::Kind::kScanView) {
    JUST_ASSIGN_OR_RETURN(auto frame, engine_->GetView(user_, scan.name));
    if (predicate != nullptr) {
      const Expr& pred = *predicate;
      frame = exec::Filter(frame, [&](const exec::Row& row) {
        auto v = EvaluateExpr(pred, frame.schema(), row);
        return v.ok() && v->type() == exec::DataType::kBool &&
               v->bool_value();
      });
    }
    if (!scan.required_columns.empty()) {
      return exec::Project(frame, scan.required_columns);
    }
    return frame;
  }

  JUST_ASSIGN_OR_RETURN(auto table_meta,
                        engine_->DescribeTable(user_, scan.name));
  // Pull index-answerable predicates out of the conjunction.
  std::vector<const Expr*> conjuncts;
  if (predicate != nullptr) SplitConjuncts(predicate, &conjuncts);
  JUST_ASSIGN_OR_RETURN(auto path,
                        ChooseAccessPath(engine_, user_, table_meta,
                                         conjuncts));

  core::QueryStats scan_stats;
  exec::DataFrame frame;
  switch (path.kind) {
    case AccessPath::Kind::kKnn: {
      JUST_ASSIGN_OR_RETURN(
          frame, engine_->KnnQuery(user_, scan.name, path.knn_query,
                                   path.knn_k, &scan_stats));
      break;
    }
    case AccessPath::Kind::kStRange: {
      JUST_ASSIGN_OR_RETURN(
          frame, engine_->StRangeQuery(user_, scan.name, path.box, path.t_min,
                                       path.t_max, &scan_stats));
      break;
    }
    case AccessPath::Kind::kSpatialRange: {
      JUST_ASSIGN_OR_RETURN(
          frame, engine_->SpatialRangeQuery(user_, scan.name, path.box,
                                            &scan_stats));
      break;
    }
    case AccessPath::Kind::kTemporalRange: {
      // Temporal-only: whole-earth spatio-temporal query.
      JUST_ASSIGN_OR_RETURN(
          frame, engine_->StRangeQuery(user_, scan.name, geo::Mbr::World(),
                                       path.t_min, path.t_max, &scan_stats));
      break;
    }
    case AccessPath::Kind::kSecondaryIndex:
    case AccessPath::Kind::kIndexIntersection: {
      JUST_ASSIGN_OR_RETURN(
          auto batches,
          engine_->SecondaryIndexQueryBatch(
              user_, scan.name, path.index_column, path.lower, path.upper,
              path.have_box ? &path.box : nullptr, path.have_time, path.t_min,
              path.t_max, &scan_stats));
      frame = exec::BatchesToDataFrame(table_meta.MakeSchema(),
                                       std::move(batches));
      break;
    }
    case AccessPath::Kind::kAttrIndex: {
      JUST_ASSIGN_OR_RETURN(
          frame, engine_->AttributeQuery(user_, scan.name, path.attr_column,
                                         path.attr_value, &scan_stats));
      break;
    }
    case AccessPath::Kind::kFullScan: {
      JUST_ASSIGN_OR_RETURN(frame, engine_->FullScan(user_, scan.name));
      break;
    }
  }
  if (span != nullptr) span->AddAttr("access", path.label);
  if (stats != nullptr) {
    stats->key_ranges += scan_stats.key_ranges;
    stats->rows_scanned += scan_stats.rows_scanned;
    stats->rows_matched += scan_stats.rows_matched;
  }
  // A spatial/temporal/knn path may leave an attr conjunct unhandled.
  if (path.have_attr && path.kind != AccessPath::Kind::kAttrIndex) {
    int attr_col = frame.schema().IndexOf(path.attr_column);
    if (attr_col >= 0) {
      const exec::Value& needle = path.attr_value;
      frame = exec::Filter(frame, [&, attr_col](const exec::Row& row) {
        return row[attr_col].Equals(needle);
      });
    }
  }

  if (!path.residual.empty()) {
    const auto& schema = frame.schema();
    const auto& residual = path.residual;
    frame = exec::Filter(frame, [&](const exec::Row& row) {
      for (const Expr* conjunct : residual) {
        auto v = EvaluateExpr(*conjunct, schema, row);
        if (!v.ok() || v->type() != exec::DataType::kBool ||
            !v->bool_value()) {
          return false;
        }
      }
      return true;
    });
  }
  if (!scan.required_columns.empty()) {
    return exec::Project(frame, scan.required_columns);
  }
  return frame;
}

Result<exec::DataFrame> Executor::ExecuteProject(const PlanNode& node,
                                                 core::QueryStats* stats) {
  // 1-N / N-M function projects.
  if (node.items.size() == 1 &&
      node.items[0].expr->kind == Expr::Kind::kCall) {
    const std::string& fn_name = node.items[0].expr->call_name;
    const TableFunction* tf = FindTableFunction(fn_name);
    const PartitionFunction* pf = FindPartitionFunction(fn_name);
    if (tf != nullptr || pf != nullptr) {
      JUST_ASSIGN_OR_RETURN(auto input, ExecuteInner(*node.children[0], stats));
      const Expr& call = *node.items[0].expr;
      if (call.args.empty()) {
        return Status::InvalidArgument(fn_name + " needs an input column");
      }
      // Extra args must be constants.
      std::vector<exec::Value> extra;
      for (size_t i = 1; i < call.args.size(); ++i) {
        JUST_ASSIGN_OR_RETURN(auto v, EvaluateConstant(*call.args[i]));
        extra.push_back(std::move(v));
      }
      if (tf != nullptr) {
        exec::DataFrame out(node.schema);
        for (const exec::Row& row : input.rows()) {
          JUST_ASSIGN_OR_RETURN(
              auto value, EvaluateExpr(*call.args[0], input.schema(), row));
          JUST_ASSIGN_OR_RETURN(auto produced, tf->fn(value, extra));
          for (auto& r : produced) out.AddRow(std::move(r));
        }
        return out;
      }
      std::vector<exec::Value> column;
      column.reserve(input.num_rows());
      for (const exec::Row& row : input.rows()) {
        JUST_ASSIGN_OR_RETURN(
            auto value, EvaluateExpr(*call.args[0], input.schema(), row));
        column.push_back(std::move(value));
      }
      JUST_ASSIGN_OR_RETURN(auto produced, pf->fn(column, extra));
      exec::DataFrame out(node.schema);
      for (auto& r : produced) out.AddRow(std::move(r));
      return out;
    }
  }

  JUST_ASSIGN_OR_RETURN(auto input, ExecuteInner(*node.children[0], stats));
  exec::DataFrame out(node.schema);
  for (const exec::Row& row : input.rows()) {
    exec::Row projected;
    projected.reserve(node.items.size());
    for (const auto& item : node.items) {
      JUST_ASSIGN_OR_RETURN(auto value,
                            EvaluateExpr(*item.expr, input.schema(), row));
      projected.push_back(std::move(value));
    }
    out.AddRow(std::move(projected));
  }
  return out;
}

Result<exec::DataFrame> Executor::Execute(const PlanNode& plan,
                                          core::QueryStats* stats) {
  return ExecuteInner(plan, stats);
}

bool Executor::CanExecuteBatch(const PlanNode& plan) const {
  if (options_.force_interpreted) return false;
  switch (plan.kind) {
    case PlanNode::Kind::kScanTable:
    case PlanNode::Kind::kScanView:
    case PlanNode::Kind::kFilter:
      return true;
    case PlanNode::Kind::kProject:
      // 1-N / N-M analysis functions reshape rows; they stay row-oriented.
      if (plan.items.size() == 1 &&
          plan.items[0].expr->kind == Expr::Kind::kCall) {
        const std::string& fn = plan.items[0].expr->call_name;
        if (FindTableFunction(fn) != nullptr ||
            FindPartitionFunction(fn) != nullptr) {
          return false;
        }
      }
      return true;
    case PlanNode::Kind::kAggregate:
      // Global (ungrouped) aggregation runs as column loops; grouped
      // aggregation hashes row keys and stays row-oriented.
      return plan.group_by.empty();
    default:
      return false;
  }
}

Result<exec::DataFrame> Executor::ExecuteInner(const PlanNode& plan,
                                               core::QueryStats* stats) {
  if (CanExecuteBatch(plan)) {
    JUST_ASSIGN_OR_RETURN(auto out, ExecuteBatch(plan, stats));
    return exec::BatchesToDataFrame(out.schema, out.batches);
  }
  // Scans open their own span (with access-path attributes) in ExecuteScan.
  if (plan.kind == PlanNode::Kind::kScanTable ||
      plan.kind == PlanNode::Kind::kScanView) {
    return ExecuteScan(plan, nullptr, stats);
  }
  obs::ScopedSpan span(PlanNodeLabel(plan));
  auto result = [&]() -> Result<exec::DataFrame> {
    switch (plan.kind) {
      case PlanNode::Kind::kScanTable:
      case PlanNode::Kind::kScanView:
        return Status::Internal("unreachable");
      case PlanNode::Kind::kFilter: {
        const PlanNode& child = *plan.children[0];
        if (child.kind == PlanNode::Kind::kScanTable ||
            child.kind == PlanNode::Kind::kScanView) {
          // Fuse: the scan translates index-answerable predicates into
          // key-range SCANs.
          return ExecuteScan(child, plan.predicate.get(), stats);
        }
        JUST_ASSIGN_OR_RETURN(auto input, ExecuteInner(child, stats));
        const auto& schema = input.schema();
        return exec::Filter(input, [&](const exec::Row& row) {
          auto v = EvaluateExpr(*plan.predicate, schema, row);
          return v.ok() && v->type() == exec::DataType::kBool &&
                 v->bool_value();
        });
      }
      case PlanNode::Kind::kProject:
        return ExecuteProject(plan, stats);
      case PlanNode::Kind::kAggregate: {
        JUST_ASSIGN_OR_RETURN(auto input,
                              ExecuteInner(*plan.children[0], stats));
        return exec::GroupBy(input, plan.group_by, plan.aggregates);
      }
      case PlanNode::Kind::kSort: {
        JUST_ASSIGN_OR_RETURN(auto input,
                              ExecuteInner(*plan.children[0], stats));
        std::vector<exec::SortKey> keys;
        for (const auto& item : plan.order_by) {
          keys.push_back({item.column, item.ascending});
        }
        return exec::Sort(input, keys);
      }
      case PlanNode::Kind::kLimit: {
        // LIMIT over a scan chain stops the scan after ~limit matching rows
        // instead of materializing the whole table first.
        JUST_ASSIGN_OR_RETURN(auto pushed, TryLimitPushdown(plan, stats));
        if (pushed.has_value()) return std::move(*pushed);
        JUST_ASSIGN_OR_RETURN(auto input,
                              ExecuteInner(*plan.children[0], stats));
        return exec::Limit(input, static_cast<size_t>(plan.limit));
      }
      case PlanNode::Kind::kJoin: {
        JUST_ASSIGN_OR_RETURN(auto left,
                              ExecuteInner(*plan.children[0], stats));
        JUST_ASSIGN_OR_RETURN(auto right,
                              ExecuteInner(*plan.children[1], stats));
        return exec::HashJoin(left, right, plan.join_left_col,
                              plan.join_right_col);
      }
    }
    return Status::Internal("bad plan node");
  }();
  if (span.span() != nullptr && result.ok()) {
    span.span()->counters().rows_out.store(result->num_rows(),
                                           std::memory_order_relaxed);
  }
  return result;
}

Result<std::optional<exec::DataFrame>> Executor::TryLimitPushdown(
    const PlanNode& limit_node, core::QueryStats* stats) {
  if (options_.force_interpreted || limit_node.limit <= 0) return std::optional<exec::DataFrame>{};
  const size_t limit = static_cast<size_t>(limit_node.limit);

  // Qualifying chain: Limit -> Project* (row-preserving) -> [Filter] -> table
  // scan. Anything else (views, sorts, joins, analysis functions that
  // reshape cardinality) keeps the materialize-then-truncate path.
  std::vector<const PlanNode*> projects;
  const PlanNode* node = limit_node.children[0].get();
  while (node->kind == PlanNode::Kind::kProject) {
    if (node->items.size() == 1 &&
        node->items[0].expr->kind == Expr::Kind::kCall) {
      const std::string& fn = node->items[0].expr->call_name;
      if (FindTableFunction(fn) != nullptr ||
          FindPartitionFunction(fn) != nullptr) {
        return std::optional<exec::DataFrame>{};  // 1-N / N-M: a row budget below it is wrong
      }
    }
    projects.push_back(node);
    node = node->children[0].get();
  }
  const Expr* predicate = nullptr;
  if (node->kind == PlanNode::Kind::kFilter) {
    predicate = node->predicate.get();
    node = node->children[0].get();
  }
  if (node->kind != PlanNode::Kind::kScanTable) return std::optional<exec::DataFrame>{};

  JUST_ASSIGN_OR_RETURN(auto scanned,
                        ExecuteScanBatch(*node, predicate, stats, limit));
  exec::DataFrame frame =
      exec::BatchesToDataFrame(scanned.schema, std::move(scanned.batches));
  // Replay the (row-preserving) projects innermost-first over the few
  // surviving rows.
  for (size_t pi = projects.size(); pi-- > 0;) {
    const PlanNode& proj = *projects[pi];
    exec::DataFrame out(proj.schema);
    for (const exec::Row& row : frame.rows()) {
      exec::Row projected;
      projected.reserve(proj.items.size());
      for (const auto& item : proj.items) {
        JUST_ASSIGN_OR_RETURN(
            auto value, EvaluateExpr(*item.expr, frame.schema(), row));
        projected.push_back(std::move(value));
      }
      out.AddRow(std::move(projected));
    }
    frame = std::move(out);
  }
  // The budgeted scan may overshoot within its last batch; truncate exactly.
  return std::optional<exec::DataFrame>(exec::Limit(frame, limit));
}

// --- Columnar pipeline ------------------------------------------------------

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedNs(Clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}

/// Per-stage batch accounting: process-wide counters plus the stage's span.
void RecordBatchStage(obs::TraceSpan* span, size_t batches, size_t rows) {
  static obs::Counter* batches_total =
      obs::Registry::Global().GetCounter("just_sql_batches_total");
  static obs::Counter* rows_total =
      obs::Registry::Global().GetCounter("just_sql_batch_rows_total");
  batches_total->Add(batches);
  rows_total->Add(rows);
  if (span != nullptr) {
    span->counters().batches.fetch_add(batches, std::memory_order_relaxed);
  }
}

/// The active physical rows of `batch` as a flat index array. `scratch`
/// backs the no-selection case.
const uint32_t* ActiveRows(const exec::ColumnBatch& batch,
                           std::vector<uint32_t>* scratch, size_t* n) {
  *n = batch.num_active();
  if (batch.has_selection()) return batch.selection().data();
  scratch->resize(batch.num_rows());
  std::iota(scratch->begin(), scratch->end(), 0);
  return scratch->data();
}

}  // namespace

Result<Executor::BatchResult> Executor::ExecuteBatchOrConvert(
    const PlanNode& plan, core::QueryStats* stats) {
  if (CanExecuteBatch(plan)) return ExecuteBatch(plan, stats);
  JUST_ASSIGN_OR_RETURN(auto frame, ExecuteInner(plan, stats));
  BatchResult out{frame.schema_ptr(), {}};
  out.batches = exec::BatchesFromDataFrame(std::move(frame));
  return out;
}

Result<Executor::BatchResult> Executor::ExecuteBatch(const PlanNode& plan,
                                                     core::QueryStats* stats) {
  switch (plan.kind) {
    case PlanNode::Kind::kScanTable:
    case PlanNode::Kind::kScanView:
      return ExecuteScanBatch(plan, nullptr, stats);
    case PlanNode::Kind::kFilter: {
      obs::ScopedSpan span("Filter");
      auto result = [&]() -> Result<BatchResult> {
        const PlanNode& child = *plan.children[0];
        if (child.kind == PlanNode::Kind::kScanTable ||
            child.kind == PlanNode::Kind::kScanView) {
          // Fuse: the scan translates index-answerable predicates into
          // key-range SCANs and refines the residual columnar-ly.
          return ExecuteScanBatch(child, plan.predicate.get(), stats);
        }
        JUST_ASSIGN_OR_RETURN(auto input, ExecuteBatchOrConvert(child, stats));
        std::vector<const Expr*> conjuncts;
        SplitConjuncts(plan.predicate.get(), &conjuncts);
        JUST_RETURN_NOT_OK(RunPredicate(conjuncts, &input, span.span()));
        RecordBatchStage(span.span(), input.batches.size(),
                         exec::BatchesActiveRows(input.batches));
        return input;
      }();
      if (span.span() != nullptr && result.ok()) {
        span.span()->counters().rows_out.store(
            exec::BatchesActiveRows(result->batches),
            std::memory_order_relaxed);
      }
      return result;
    }
    case PlanNode::Kind::kProject:
      return ExecuteProjectBatch(plan, stats);
    case PlanNode::Kind::kAggregate:
      return ExecuteAggregateBatch(plan, stats);
    default:
      return Status::Internal("plan node is not batch-capable");
  }
}

Status Executor::RunPredicate(const std::vector<const Expr*>& conjuncts,
                              BatchResult* input, obs::TraceSpan* span,
                              const std::string& cache_tag) {
  if (conjuncts.empty()) return Status::OK();
  JUST_ASSIGN_OR_RETURN(auto program,
                        PredicateProgramCache::Global().GetOrCompile(
                            conjuncts, *input->schema, cache_tag));
  PredicateStats pstats;
  for (exec::ColumnBatch& batch : input->batches) {
    JUST_RETURN_NOT_OK(program->Run(&batch, &pstats));
  }
  if (span != nullptr) {
    span->counters().eval_specialized_ns.fetch_add(pstats.specialized_ns,
                                                   std::memory_order_relaxed);
    span->counters().eval_interpreted_ns.fetch_add(pstats.interpreted_ns,
                                                   std::memory_order_relaxed);
    span->AddAttr("eval_mode", program->ModeLabel());
  }
  return Status::OK();
}

Result<Executor::BatchResult> Executor::ProjectColumns(
    BatchResult input, const std::vector<std::string>& columns) {
  std::vector<int> indices;
  auto schema = std::make_shared<exec::Schema>();
  for (const std::string& name : columns) {
    int idx = input.schema->IndexOf(name);
    if (idx < 0) return Status::InvalidArgument("no such column: " + name);
    indices.push_back(idx);
    schema->AddField(input.schema->field(static_cast<size_t>(idx)));
  }
  BatchResult out{schema, {}};
  out.batches.reserve(input.batches.size());
  std::vector<uint32_t> scratch;
  for (const exec::ColumnBatch& batch : input.batches) {
    size_t n = 0;
    const uint32_t* rows = ActiveRows(batch, &scratch, &n);
    std::vector<exec::ColumnVector> cols;
    cols.reserve(indices.size());
    for (int idx : indices) {
      cols.push_back(
          batch.column(static_cast<size_t>(idx)).Gather(rows, n));
    }
    out.batches.push_back(
        exec::ColumnBatch::FromColumns(schema, std::move(cols), n));
  }
  return out;
}

Result<Executor::BatchResult> Executor::ExecuteScanBatch(
    const PlanNode& scan, const Expr* predicate, core::QueryStats* stats,
    size_t limit) {
  obs::ScopedSpan span("Scan " + scan.name);
  auto result = ExecuteScanBatchImpl(scan, predicate, stats, span.span(),
                                     limit);
  if (span.span() != nullptr && result.ok()) {
    span.span()->counters().rows_out.store(
        exec::BatchesActiveRows(result->batches), std::memory_order_relaxed);
  }
  return result;
}

Result<Executor::BatchResult> Executor::ExecuteScanBatchImpl(
    const PlanNode& scan, const Expr* predicate, core::QueryStats* stats,
    obs::TraceSpan* span, size_t limit) {
  if (scan.kind == PlanNode::Kind::kScanView) {
    JUST_ASSIGN_OR_RETURN(auto frame, engine_->GetView(user_, scan.name));
    BatchResult result{frame.schema_ptr(), {}};
    result.batches = exec::BatchesFromDataFrame(std::move(frame));
    if (predicate != nullptr) {
      std::vector<const Expr*> conjuncts;
      SplitConjuncts(predicate, &conjuncts);
      JUST_RETURN_NOT_OK(RunPredicate(conjuncts, &result, span));
    }
    RecordBatchStage(span, result.batches.size(),
                     exec::BatchesActiveRows(result.batches));
    if (!scan.required_columns.empty()) {
      return ProjectColumns(std::move(result), scan.required_columns);
    }
    return result;
  }

  JUST_ASSIGN_OR_RETURN(auto table_meta,
                        engine_->DescribeTable(user_, scan.name));
  // Pull index-answerable predicates out of the conjunction (same selection
  // as the row-at-a-time path: both call ChooseAccessPath).
  std::vector<const Expr*> conjuncts;
  if (predicate != nullptr) SplitConjuncts(predicate, &conjuncts);
  JUST_ASSIGN_OR_RETURN(auto path,
                        ChooseAccessPath(engine_, user_, table_meta,
                                         conjuncts));
  const std::string cache_tag = TableCacheTag(table_meta);

  core::QueryStats scan_stats;
  BatchResult result{table_meta.MakeSchema(), {}};

  // LIMIT pushdown: budget the scan when every row surviving it is a final
  // row. The residual predicate compiles into the budget's per-batch filter;
  // paths that re-filter after the scan (attr recheck) or cannot stream
  // (knn, attr index) run unbudgeted.
  const bool budget_capable =
      path.kind != AccessPath::Kind::kKnn &&
      path.kind != AccessPath::Kind::kAttrIndex &&
      !(path.have_attr && path.kind != AccessPath::Kind::kAttrIndex);
  core::ScanBudget budget;
  const core::ScanBudget* budget_ptr = nullptr;
  std::shared_ptr<const PredicateProgram> budget_program;
  auto budget_pstats = std::make_shared<PredicateStats>();
  if (limit > 0 && budget_capable) {
    budget.limit = limit;
    if (!path.residual.empty()) {
      JUST_ASSIGN_OR_RETURN(budget_program,
                            PredicateProgramCache::Global().GetOrCompile(
                                path.residual, *result.schema, cache_tag));
      budget.residual = [program = budget_program,
                         pstats = budget_pstats](exec::ColumnBatch* batch) {
        return program->Run(batch, pstats.get());
      };
    }
    budget_ptr = &budget;
  }

  switch (path.kind) {
    case AccessPath::Kind::kKnn: {
      // k-NN keeps its row-oriented heap expansion; batches start afterwards.
      JUST_ASSIGN_OR_RETURN(
          auto frame, engine_->KnnQuery(user_, scan.name, path.knn_query,
                                        path.knn_k, &scan_stats));
      result.batches = exec::BatchesFromDataFrame(std::move(frame));
      break;
    }
    case AccessPath::Kind::kStRange: {
      JUST_ASSIGN_OR_RETURN(
          result.batches,
          engine_->StRangeQueryBatch(user_, scan.name, path.box, path.t_min,
                                     path.t_max, &scan_stats, budget_ptr));
      break;
    }
    case AccessPath::Kind::kSpatialRange: {
      JUST_ASSIGN_OR_RETURN(
          result.batches,
          engine_->SpatialRangeQueryBatch(user_, scan.name, path.box,
                                          &scan_stats, budget_ptr));
      break;
    }
    case AccessPath::Kind::kTemporalRange: {
      // Temporal-only: whole-earth spatio-temporal query.
      JUST_ASSIGN_OR_RETURN(
          result.batches,
          engine_->StRangeQueryBatch(user_, scan.name, geo::Mbr::World(),
                                     path.t_min, path.t_max, &scan_stats,
                                     budget_ptr));
      break;
    }
    case AccessPath::Kind::kSecondaryIndex:
    case AccessPath::Kind::kIndexIntersection: {
      JUST_ASSIGN_OR_RETURN(
          result.batches,
          engine_->SecondaryIndexQueryBatch(
              user_, scan.name, path.index_column, path.lower, path.upper,
              path.have_box ? &path.box : nullptr, path.have_time, path.t_min,
              path.t_max, &scan_stats, budget_ptr));
      break;
    }
    case AccessPath::Kind::kAttrIndex: {
      JUST_ASSIGN_OR_RETURN(
          result.batches,
          engine_->AttributeQueryBatch(user_, scan.name, path.attr_column,
                                       path.attr_value, &scan_stats));
      break;
    }
    case AccessPath::Kind::kFullScan: {
      JUST_ASSIGN_OR_RETURN(
          result.batches,
          engine_->FullScanBatch(user_, scan.name, &scan_stats, budget_ptr));
      break;
    }
  }
  if (span != nullptr) span->AddAttr("access", path.label);
  if (stats != nullptr) {
    stats->key_ranges += scan_stats.key_ranges;
    stats->rows_scanned += scan_stats.rows_scanned;
    stats->rows_matched += scan_stats.rows_matched;
  }
  // A spatial/temporal/knn path may leave an attr conjunct unhandled:
  // vectorized equality recheck over the surviving selection.
  if (path.have_attr && path.kind != AccessPath::Kind::kAttrIndex) {
    int attr_col = result.schema->IndexOf(path.attr_column);
    if (attr_col >= 0) {
      const auto t0 = Clock::now();
      std::vector<uint32_t> scratch;
      for (exec::ColumnBatch& batch : result.batches) {
        size_t n = 0;
        const uint32_t* rows = ActiveRows(batch, &scratch, &n);
        const exec::ColumnVector& c =
            batch.column(static_cast<size_t>(attr_col));
        std::vector<uint32_t> sel;
        sel.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          if (c.ValueAt(rows[i]).Equals(path.attr_value)) {
            sel.push_back(rows[i]);
          }
        }
        batch.SetSelection(std::move(sel));
      }
      if (span != nullptr) {
        span->counters().eval_specialized_ns.fetch_add(
            ElapsedNs(t0), std::memory_order_relaxed);
      }
    }
  }

  if (budget_ptr != nullptr && budget_program != nullptr) {
    // The residual already ran inside the budgeted scan; attribute it.
    if (span != nullptr) {
      span->counters().eval_specialized_ns.fetch_add(
          budget_pstats->specialized_ns, std::memory_order_relaxed);
      span->counters().eval_interpreted_ns.fetch_add(
          budget_pstats->interpreted_ns, std::memory_order_relaxed);
      span->AddAttr("eval_mode", budget_program->ModeLabel());
    }
  } else {
    JUST_RETURN_NOT_OK(RunPredicate(path.residual, &result, span, cache_tag));
  }
  RecordBatchStage(span, result.batches.size(),
                   exec::BatchesActiveRows(result.batches));
  if (!scan.required_columns.empty()) {
    return ProjectColumns(std::move(result), scan.required_columns);
  }
  return result;
}

Result<Executor::BatchResult> Executor::ExecuteProjectBatch(
    const PlanNode& node, core::QueryStats* stats) {
  obs::ScopedSpan span("Project");
  JUST_ASSIGN_OR_RETURN(auto input,
                        ExecuteBatchOrConvert(*node.children[0], stats));

  // Bind items once per query: pure column references copy column-wise; any
  // other expression evaluates per surviving row with pre-bound offsets.
  struct ItemPlan {
    int col = -1;  ///< source column for a pure reference; -1 = expression
    BoundExpr bound;
  };
  std::vector<ItemPlan> item_plans;
  item_plans.reserve(node.items.size());
  bool any_expr = false;
  for (const auto& item : node.items) {
    ItemPlan ip;
    if (item.expr->kind == Expr::Kind::kColumn) {
      ip.col = input.schema->IndexOf(item.expr->column);
    }
    if (ip.col < 0) {
      JUST_ASSIGN_OR_RETURN(ip.bound,
                            BoundExpr::Bind(*item.expr, *input.schema));
      any_expr = true;
    }
    item_plans.push_back(std::move(ip));
  }

  BatchResult out{node.schema, {}};
  out.batches.reserve(input.batches.size());
  uint64_t specialized_ns = 0;
  uint64_t interpreted_ns = 0;
  std::vector<uint32_t> scratch;
  for (const exec::ColumnBatch& batch : input.batches) {
    size_t n = 0;
    const uint32_t* rows = ActiveRows(batch, &scratch, &n);
    std::vector<exec::ColumnVector> cols;
    cols.reserve(item_plans.size());
    for (size_t i = 0; i < item_plans.size(); ++i) {
      if (item_plans[i].col >= 0) {
        const auto t0 = Clock::now();
        cols.push_back(
            batch.column(static_cast<size_t>(item_plans[i].col))
                .Gather(rows, n));
        specialized_ns += ElapsedNs(t0);
      } else {
        cols.emplace_back(node.schema->field(i).type);
      }
    }
    if (any_expr) {
      const auto t0 = Clock::now();
      for (size_t r = 0; r < n; ++r) {
        exec::Row row = batch.MaterializeRow(rows[r]);
        for (size_t i = 0; i < item_plans.size(); ++i) {
          if (item_plans[i].col >= 0) continue;
          JUST_ASSIGN_OR_RETURN(auto value, item_plans[i].bound.Eval(row));
          cols[i].AppendValue(std::move(value));
        }
      }
      interpreted_ns += ElapsedNs(t0);
    }
    out.batches.push_back(
        exec::ColumnBatch::FromColumns(node.schema, std::move(cols), n));
  }
  RecordBatchStage(span.span(), out.batches.size(),
                   exec::BatchesActiveRows(out.batches));
  if (span.span() != nullptr) {
    span.span()->counters().eval_specialized_ns.fetch_add(
        specialized_ns, std::memory_order_relaxed);
    span.span()->counters().eval_interpreted_ns.fetch_add(
        interpreted_ns, std::memory_order_relaxed);
    span.span()->counters().rows_out.store(
        exec::BatchesActiveRows(out.batches), std::memory_order_relaxed);
  }
  return out;
}

Result<Executor::BatchResult> Executor::ExecuteAggregateBatch(
    const PlanNode& node, core::QueryStats* stats) {
  obs::ScopedSpan span("Aggregate");
  JUST_ASSIGN_OR_RETURN(auto input,
                        ExecuteBatchOrConvert(*node.children[0], stats));
  using Storage = exec::ColumnVector::Storage;

  struct Spec {
    exec::AggFunc func;
    int index;  // -1 for COUNT(*)
  };
  std::vector<Spec> specs;
  for (const exec::Aggregate& agg : node.aggregates) {
    int idx = -1;
    if (!agg.column.empty()) {
      idx = input.schema->IndexOf(agg.column);
      if (idx < 0) {
        return Status::InvalidArgument("no such column: " + agg.column);
      }
    }
    specs.push_back({agg.func, idx});
  }

  // Mirrors the row-at-a-time AggState exactly (null skipping, sum_valid,
  // Value-ordered min/max), but consumes columns: typed storages run flat
  // int64/double loops; everything else walks generic Values.
  struct State {
    int64_t count = 0;
    double sum = 0;
    bool sum_valid = true;
    exec::Value min, max;
    bool has_minmax = false;

    void Merge(const exec::Value& v) {
      if (!has_minmax) {
        min = v;
        max = v;
        has_minmax = true;
      } else {
        if (v.Compare(min) < 0) min = v;
        if (v.Compare(max) > 0) max = v;
      }
    }
  };
  std::vector<State> states(specs.size());

  uint64_t specialized_ns = 0;
  uint64_t interpreted_ns = 0;
  std::vector<uint32_t> scratch;
  for (const exec::ColumnBatch& batch : input.batches) {
    size_t n = 0;
    const uint32_t* rows = ActiveRows(batch, &scratch, &n);
    for (size_t a = 0; a < specs.size(); ++a) {
      State& st = states[a];
      if (specs[a].index < 0) {
        st.count += static_cast<int64_t>(n);  // COUNT(*)
        continue;
      }
      const exec::ColumnVector& col =
          batch.column(static_cast<size_t>(specs[a].index));
      if (col.storage() == Storage::kInt64) {
        const auto t0 = Clock::now();
        const int64_t* data = col.i64_data();
        int64_t lo = 0, hi = 0;
        bool any = false;
        for (size_t i = 0; i < n; ++i) {
          uint32_t row = rows[i];
          if (col.has_nulls() && col.IsNull(row)) continue;
          int64_t v = data[row];
          ++st.count;
          st.sum += static_cast<double>(v);
          if (!any) {
            lo = hi = v;
            any = true;
          } else {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
          }
        }
        if (any) {
          // Render extremes per the declared type, then merge Value-wise so
          // mixed (degraded) batches stay comparable.
          auto render = [&](int64_t v) {
            switch (col.declared_type()) {
              case exec::DataType::kBool:
                return exec::Value::Bool(v != 0);
              case exec::DataType::kTimestamp:
                return exec::Value::Timestamp(v);
              default:
                return exec::Value::Int(v);
            }
          };
          st.Merge(render(lo));
          st.Merge(render(hi));
        }
        specialized_ns += ElapsedNs(t0);
      } else if (col.storage() == Storage::kDouble) {
        const auto t0 = Clock::now();
        const double* data = col.f64_data();
        double lo = 0, hi = 0;
        bool any = false;
        for (size_t i = 0; i < n; ++i) {
          uint32_t row = rows[i];
          if (col.has_nulls() && col.IsNull(row)) continue;
          double v = data[row];
          ++st.count;
          st.sum += v;
          if (!any) {
            lo = hi = v;
            any = true;
          } else {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
          }
        }
        if (any) {
          st.Merge(exec::Value::Double(lo));
          st.Merge(exec::Value::Double(hi));
        }
        specialized_ns += ElapsedNs(t0);
      } else {
        const auto t0 = Clock::now();
        for (size_t i = 0; i < n; ++i) {
          exec::Value v = col.ValueAt(rows[i]);
          if (v.is_null()) continue;
          ++st.count;
          auto d = v.AsDouble();
          if (d.ok()) {
            st.sum += d.value();
          } else {
            st.sum_valid = false;
          }
          st.Merge(v);
        }
        interpreted_ns += ElapsedNs(t0);
      }
    }
  }

  // Output schema mirrors exec::GroupBy's global-aggregation shape.
  auto schema = std::make_shared<exec::Schema>();
  for (size_t a = 0; a < node.aggregates.size(); ++a) {
    exec::DataType type =
        specs[a].func == exec::AggFunc::kCount
            ? exec::DataType::kInt
            : (specs[a].index >= 0 &&
                       (specs[a].func == exec::AggFunc::kMin ||
                        specs[a].func == exec::AggFunc::kMax)
                   ? input.schema->field(static_cast<size_t>(specs[a].index))
                         .type
                   : exec::DataType::kDouble);
    schema->AddField(exec::Field{node.aggregates[a].output_name, type});
  }
  exec::Row row;
  row.reserve(specs.size());
  for (size_t a = 0; a < specs.size(); ++a) {
    const State& st = states[a];
    switch (specs[a].func) {
      case exec::AggFunc::kCount:
        row.push_back(exec::Value::Int(st.count));
        break;
      case exec::AggFunc::kSum:
        row.push_back(st.count == 0 || !st.sum_valid
                          ? exec::Value::Null()
                          : exec::Value::Double(st.sum));
        break;
      case exec::AggFunc::kAvg:
        row.push_back(st.count == 0 || !st.sum_valid
                          ? exec::Value::Null()
                          : exec::Value::Double(
                                st.sum / static_cast<double>(st.count)));
        break;
      case exec::AggFunc::kMin:
        row.push_back(st.has_minmax ? st.min : exec::Value::Null());
        break;
      case exec::AggFunc::kMax:
        row.push_back(st.has_minmax ? st.max : exec::Value::Null());
        break;
    }
  }
  BatchResult out{schema, {}};
  exec::ColumnBatch result_batch(schema);
  result_batch.AppendRow(std::move(row));
  out.batches.push_back(std::move(result_batch));
  RecordBatchStage(span.span(), 1, 1);
  if (span.span() != nullptr) {
    span.span()->counters().eval_specialized_ns.fetch_add(
        specialized_ns, std::memory_order_relaxed);
    span.span()->counters().eval_interpreted_ns.fetch_add(
        interpreted_ns, std::memory_order_relaxed);
    span.span()->counters().rows_out.store(1, std::memory_order_relaxed);
  }
  return out;
}

}  // namespace just::sql
