#include "sql/executor.h"

#include <algorithm>
#include <cctype>

#include "exec/operators.h"
#include "sql/expr_eval.h"
#include "sql/functions.h"

namespace just::sql {

namespace {

// Flattens an AND tree into conjuncts (borrowed pointers).
void SplitConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr->kind == Expr::Kind::kBinary && expr->op == BinaryOp::kAnd) {
    SplitConjuncts(expr->args[0].get(), out);
    SplitConjuncts(expr->args[1].get(), out);
    return;
  }
  out->push_back(expr);
}

bool IsGeometryLiteral(const Expr& e) {
  return e.kind == Expr::Kind::kLiteral &&
         e.literal.type() == exec::DataType::kGeometry;
}

bool IsTimeLiteral(const Expr& e, TimestampMs* out) {
  if (e.kind != Expr::Kind::kLiteral) return false;
  if (e.literal.type() == exec::DataType::kTimestamp) {
    *out = e.literal.timestamp_value();
    return true;
  }
  if (e.literal.type() == exec::DataType::kInt) {
    *out = e.literal.int_value();
    return true;
  }
  if (e.literal.type() == exec::DataType::kString) {
    auto parsed = ParseTimestamp(e.literal.string_value());
    if (!parsed.ok()) return false;
    *out = parsed.value();
    return true;
  }
  return false;
}

bool ColumnEquals(const Expr& e, const std::string& name) {
  if (e.kind != Expr::Kind::kColumn) return false;
  if (e.column.size() != name.size()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(e.column[i])) !=
        std::tolower(static_cast<unsigned char>(name[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<exec::DataFrame> Executor::ExecuteScan(const PlanNode& scan,
                                              const Expr* predicate) {
  if (scan.kind == PlanNode::Kind::kScanView) {
    JUST_ASSIGN_OR_RETURN(auto frame, engine_->GetView(user_, scan.name));
    if (predicate != nullptr) {
      const Expr& pred = *predicate;
      frame = exec::Filter(frame, [&](const exec::Row& row) {
        auto v = EvaluateExpr(pred, frame.schema(), row);
        return v.ok() && v->type() == exec::DataType::kBool &&
               v->bool_value();
      });
    }
    if (!scan.required_columns.empty()) {
      return exec::Project(frame, scan.required_columns);
    }
    return frame;
  }

  JUST_ASSIGN_OR_RETURN(auto table_meta,
                        engine_->DescribeTable(user_, scan.name));
  // Pull index-answerable predicates out of the conjunction.
  std::vector<const Expr*> conjuncts;
  if (predicate != nullptr) SplitConjuncts(predicate, &conjuncts);

  bool have_box = false;
  geo::Mbr box;
  bool have_time = false;
  TimestampMs t_min = 0, t_max = 0;
  bool have_knn = false;
  geo::Point knn_query{};
  int knn_k = 0;
  bool have_attr = false;
  std::string attr_column;
  exec::Value attr_value;
  std::vector<const Expr*> residual;

  for (const Expr* conjunct : conjuncts) {
    if (conjunct->kind == Expr::Kind::kBinary &&
        conjunct->op == BinaryOp::kWithin && !have_box &&
        ColumnEquals(*conjunct->args[0], table_meta.geom_column) &&
        IsGeometryLiteral(*conjunct->args[1])) {
      box = conjunct->args[1]->literal.geometry_value().Bounds();
      have_box = true;
      continue;
    }
    if (conjunct->kind == Expr::Kind::kBinary &&
        conjunct->op == BinaryOp::kBetween && !have_time &&
        ColumnEquals(*conjunct->args[0], table_meta.time_column)) {
      TimestampMs lo, hi;
      if (IsTimeLiteral(*conjunct->args[1], &lo) &&
          IsTimeLiteral(*conjunct->args[2], &hi)) {
        t_min = lo;
        t_max = hi;
        have_time = true;
        continue;
      }
    }
    if (conjunct->kind == Expr::Kind::kBinary &&
        conjunct->op == BinaryOp::kIn && !have_knn &&
        ColumnEquals(*conjunct->args[0], table_meta.geom_column) &&
        conjunct->args[1]->kind == Expr::Kind::kCall &&
        conjunct->args[1]->call_name == "st_knn" &&
        conjunct->args[1]->args.size() == 2) {
      const Expr& point_arg = *conjunct->args[1]->args[0];
      const Expr& k_arg = *conjunct->args[1]->args[1];
      if (IsGeometryLiteral(point_arg) &&
          k_arg.kind == Expr::Kind::kLiteral) {
        auto k = k_arg.literal.AsInt();
        if (k.ok()) {
          knn_query = point_arg.literal.geometry_value().Bounds().Center();
          knn_k = static_cast<int>(k.value());
          have_knn = true;
          continue;
        }
      }
    }
    if (conjunct->kind == Expr::Kind::kBinary &&
        conjunct->op == BinaryOp::kEq && !have_attr &&
        conjunct->args[0]->kind == Expr::Kind::kColumn &&
        conjunct->args[1]->kind == Expr::Kind::kLiteral) {
      // Equality on an attribute-indexed column (Figure 1's Attribute
      // Indexing) answers through the secondary index instead of a scan.
      bool indexed = false;
      for (const std::string& indexed_col : table_meta.attr_indexes) {
        if (ColumnEquals(*conjunct->args[0], indexed_col)) {
          indexed = true;
          attr_column = indexed_col;
        }
      }
      if (indexed) {
        attr_value = conjunct->args[1]->literal;
        have_attr = true;
        continue;
      }
    }
    residual.push_back(conjunct);
  }

  last_stats_ = core::QueryStats();
  exec::DataFrame frame;
  if (have_knn) {
    JUST_ASSIGN_OR_RETURN(
        frame, engine_->KnnQuery(user_, scan.name, knn_query, knn_k,
                                 &last_stats_));
  } else if (have_box && have_time) {
    JUST_ASSIGN_OR_RETURN(
        frame, engine_->StRangeQuery(user_, scan.name, box, t_min, t_max,
                                     &last_stats_));
  } else if (have_box) {
    JUST_ASSIGN_OR_RETURN(
        frame, engine_->SpatialRangeQuery(user_, scan.name, box,
                                          &last_stats_));
  } else if (have_time) {
    // Temporal-only: whole-earth spatio-temporal query.
    JUST_ASSIGN_OR_RETURN(
        frame, engine_->StRangeQuery(user_, scan.name, geo::Mbr::World(),
                                     t_min, t_max, &last_stats_));
  } else if (have_attr) {
    JUST_ASSIGN_OR_RETURN(
        frame, engine_->AttributeQuery(user_, scan.name, attr_column,
                                       attr_value, &last_stats_));
  } else {
    JUST_ASSIGN_OR_RETURN(frame, engine_->FullScan(user_, scan.name));
  }
  // A spatial/temporal/knn path may leave an attr conjunct unhandled.
  if (have_attr && (have_box || have_time || have_knn)) {
    int attr_col = frame.schema().IndexOf(attr_column);
    if (attr_col >= 0) {
      const exec::Value& needle = attr_value;
      frame = exec::Filter(frame, [&, attr_col](const exec::Row& row) {
        return row[attr_col].Equals(needle);
      });
    }
  }

  if (!residual.empty()) {
    const auto& schema = frame.schema();
    frame = exec::Filter(frame, [&](const exec::Row& row) {
      for (const Expr* conjunct : residual) {
        auto v = EvaluateExpr(*conjunct, schema, row);
        if (!v.ok() || v->type() != exec::DataType::kBool ||
            !v->bool_value()) {
          return false;
        }
      }
      return true;
    });
  }
  if (!scan.required_columns.empty()) {
    return exec::Project(frame, scan.required_columns);
  }
  return frame;
}

Result<exec::DataFrame> Executor::ExecuteProject(const PlanNode& node) {
  // 1-N / N-M function projects.
  if (node.items.size() == 1 &&
      node.items[0].expr->kind == Expr::Kind::kCall) {
    const std::string& fn_name = node.items[0].expr->call_name;
    const TableFunction* tf = FindTableFunction(fn_name);
    const PartitionFunction* pf = FindPartitionFunction(fn_name);
    if (tf != nullptr || pf != nullptr) {
      JUST_ASSIGN_OR_RETURN(auto input, Execute(*node.children[0]));
      const Expr& call = *node.items[0].expr;
      if (call.args.empty()) {
        return Status::InvalidArgument(fn_name + " needs an input column");
      }
      // Extra args must be constants.
      std::vector<exec::Value> extra;
      for (size_t i = 1; i < call.args.size(); ++i) {
        JUST_ASSIGN_OR_RETURN(auto v, EvaluateConstant(*call.args[i]));
        extra.push_back(std::move(v));
      }
      if (tf != nullptr) {
        exec::DataFrame out(node.schema);
        for (const exec::Row& row : input.rows()) {
          JUST_ASSIGN_OR_RETURN(
              auto value, EvaluateExpr(*call.args[0], input.schema(), row));
          JUST_ASSIGN_OR_RETURN(auto produced, tf->fn(value, extra));
          for (auto& r : produced) out.AddRow(std::move(r));
        }
        return out;
      }
      std::vector<exec::Value> column;
      column.reserve(input.num_rows());
      for (const exec::Row& row : input.rows()) {
        JUST_ASSIGN_OR_RETURN(
            auto value, EvaluateExpr(*call.args[0], input.schema(), row));
        column.push_back(std::move(value));
      }
      JUST_ASSIGN_OR_RETURN(auto produced, pf->fn(column, extra));
      exec::DataFrame out(node.schema);
      for (auto& r : produced) out.AddRow(std::move(r));
      return out;
    }
  }

  JUST_ASSIGN_OR_RETURN(auto input, Execute(*node.children[0]));
  exec::DataFrame out(node.schema);
  for (const exec::Row& row : input.rows()) {
    exec::Row projected;
    projected.reserve(node.items.size());
    for (const auto& item : node.items) {
      JUST_ASSIGN_OR_RETURN(auto value,
                            EvaluateExpr(*item.expr, input.schema(), row));
      projected.push_back(std::move(value));
    }
    out.AddRow(std::move(projected));
  }
  return out;
}

Result<exec::DataFrame> Executor::Execute(const PlanNode& plan) {
  switch (plan.kind) {
    case PlanNode::Kind::kScanTable:
    case PlanNode::Kind::kScanView:
      return ExecuteScan(plan, nullptr);
    case PlanNode::Kind::kFilter: {
      const PlanNode& child = *plan.children[0];
      if (child.kind == PlanNode::Kind::kScanTable ||
          child.kind == PlanNode::Kind::kScanView) {
        // Fuse: the scan translates index-answerable predicates into
        // key-range SCANs.
        return ExecuteScan(child, plan.predicate.get());
      }
      JUST_ASSIGN_OR_RETURN(auto input, Execute(child));
      const auto& schema = input.schema();
      return exec::Filter(input, [&](const exec::Row& row) {
        auto v = EvaluateExpr(*plan.predicate, schema, row);
        return v.ok() && v->type() == exec::DataType::kBool &&
               v->bool_value();
      });
    }
    case PlanNode::Kind::kProject:
      return ExecuteProject(plan);
    case PlanNode::Kind::kAggregate: {
      JUST_ASSIGN_OR_RETURN(auto input, Execute(*plan.children[0]));
      return exec::GroupBy(input, plan.group_by, plan.aggregates);
    }
    case PlanNode::Kind::kSort: {
      JUST_ASSIGN_OR_RETURN(auto input, Execute(*plan.children[0]));
      std::vector<exec::SortKey> keys;
      for (const auto& item : plan.order_by) {
        keys.push_back({item.column, item.ascending});
      }
      return exec::Sort(input, keys);
    }
    case PlanNode::Kind::kLimit: {
      JUST_ASSIGN_OR_RETURN(auto input, Execute(*plan.children[0]));
      return exec::Limit(input, static_cast<size_t>(plan.limit));
    }
    case PlanNode::Kind::kJoin: {
      JUST_ASSIGN_OR_RETURN(auto left, Execute(*plan.children[0]));
      JUST_ASSIGN_OR_RETURN(auto right, Execute(*plan.children[1]));
      return exec::HashJoin(left, right, plan.join_left_col,
                            plan.join_right_col);
    }
  }
  return Status::Internal("bad plan node");
}

}  // namespace just::sql
