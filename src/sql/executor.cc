#include "sql/executor.h"

#include <algorithm>
#include <cctype>

#include "exec/operators.h"
#include "obs/trace.h"
#include "sql/expr_eval.h"
#include "sql/functions.h"

namespace just::sql {

namespace {

/// Span label for one physical operator.
std::string PlanNodeLabel(const PlanNode& plan) {
  switch (plan.kind) {
    case PlanNode::Kind::kScanTable:
    case PlanNode::Kind::kScanView:
      return "";  // ExecuteScan opens its own span with access-path attrs
    case PlanNode::Kind::kFilter:
      return "Filter";
    case PlanNode::Kind::kProject:
      return "Project";
    case PlanNode::Kind::kAggregate:
      return "Aggregate";
    case PlanNode::Kind::kSort:
      return "Sort";
    case PlanNode::Kind::kLimit:
      return "Limit";
    case PlanNode::Kind::kJoin:
      return "Join";
  }
  return "Unknown";
}


// Flattens an AND tree into conjuncts (borrowed pointers).
void SplitConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr->kind == Expr::Kind::kBinary && expr->op == BinaryOp::kAnd) {
    SplitConjuncts(expr->args[0].get(), out);
    SplitConjuncts(expr->args[1].get(), out);
    return;
  }
  out->push_back(expr);
}

bool IsGeometryLiteral(const Expr& e) {
  return e.kind == Expr::Kind::kLiteral &&
         e.literal.type() == exec::DataType::kGeometry;
}

bool IsTimeLiteral(const Expr& e, TimestampMs* out) {
  if (e.kind != Expr::Kind::kLiteral) return false;
  if (e.literal.type() == exec::DataType::kTimestamp) {
    *out = e.literal.timestamp_value();
    return true;
  }
  if (e.literal.type() == exec::DataType::kInt) {
    *out = e.literal.int_value();
    return true;
  }
  if (e.literal.type() == exec::DataType::kString) {
    auto parsed = ParseTimestamp(e.literal.string_value());
    if (!parsed.ok()) return false;
    *out = parsed.value();
    return true;
  }
  return false;
}

bool ColumnEquals(const Expr& e, const std::string& name) {
  if (e.kind != Expr::Kind::kColumn) return false;
  if (e.column.size() != name.size()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(e.column[i])) !=
        std::tolower(static_cast<unsigned char>(name[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<exec::DataFrame> Executor::ExecuteScan(const PlanNode& scan,
                                              const Expr* predicate,
                                              core::QueryStats* stats) {
  obs::ScopedSpan span("Scan " + scan.name);
  auto result = ExecuteScanImpl(scan, predicate, stats, span.span());
  if (span.span() != nullptr && result.ok()) {
    span.span()->counters().rows_out.store(result->num_rows(),
                                           std::memory_order_relaxed);
  }
  return result;
}

Result<exec::DataFrame> Executor::ExecuteScanImpl(const PlanNode& scan,
                                                  const Expr* predicate,
                                                  core::QueryStats* stats,
                                                  obs::TraceSpan* span) {
  if (scan.kind == PlanNode::Kind::kScanView) {
    JUST_ASSIGN_OR_RETURN(auto frame, engine_->GetView(user_, scan.name));
    if (predicate != nullptr) {
      const Expr& pred = *predicate;
      frame = exec::Filter(frame, [&](const exec::Row& row) {
        auto v = EvaluateExpr(pred, frame.schema(), row);
        return v.ok() && v->type() == exec::DataType::kBool &&
               v->bool_value();
      });
    }
    if (!scan.required_columns.empty()) {
      return exec::Project(frame, scan.required_columns);
    }
    return frame;
  }

  JUST_ASSIGN_OR_RETURN(auto table_meta,
                        engine_->DescribeTable(user_, scan.name));
  // Pull index-answerable predicates out of the conjunction.
  std::vector<const Expr*> conjuncts;
  if (predicate != nullptr) SplitConjuncts(predicate, &conjuncts);

  bool have_box = false;
  geo::Mbr box;
  bool have_time = false;
  TimestampMs t_min = 0, t_max = 0;
  bool have_knn = false;
  geo::Point knn_query{};
  int knn_k = 0;
  bool have_attr = false;
  std::string attr_column;
  exec::Value attr_value;
  std::vector<const Expr*> residual;

  for (const Expr* conjunct : conjuncts) {
    if (conjunct->kind == Expr::Kind::kBinary &&
        conjunct->op == BinaryOp::kWithin && !have_box &&
        ColumnEquals(*conjunct->args[0], table_meta.geom_column) &&
        IsGeometryLiteral(*conjunct->args[1])) {
      box = conjunct->args[1]->literal.geometry_value().Bounds();
      have_box = true;
      continue;
    }
    if (conjunct->kind == Expr::Kind::kBinary &&
        conjunct->op == BinaryOp::kBetween && !have_time &&
        ColumnEquals(*conjunct->args[0], table_meta.time_column)) {
      TimestampMs lo, hi;
      if (IsTimeLiteral(*conjunct->args[1], &lo) &&
          IsTimeLiteral(*conjunct->args[2], &hi)) {
        t_min = lo;
        t_max = hi;
        have_time = true;
        continue;
      }
    }
    if (conjunct->kind == Expr::Kind::kBinary &&
        conjunct->op == BinaryOp::kIn && !have_knn &&
        ColumnEquals(*conjunct->args[0], table_meta.geom_column) &&
        conjunct->args[1]->kind == Expr::Kind::kCall &&
        conjunct->args[1]->call_name == "st_knn" &&
        conjunct->args[1]->args.size() == 2) {
      const Expr& point_arg = *conjunct->args[1]->args[0];
      const Expr& k_arg = *conjunct->args[1]->args[1];
      if (IsGeometryLiteral(point_arg) &&
          k_arg.kind == Expr::Kind::kLiteral) {
        auto k = k_arg.literal.AsInt();
        if (k.ok()) {
          knn_query = point_arg.literal.geometry_value().Bounds().Center();
          knn_k = static_cast<int>(k.value());
          have_knn = true;
          continue;
        }
      }
    }
    if (conjunct->kind == Expr::Kind::kBinary &&
        conjunct->op == BinaryOp::kEq && !have_attr &&
        conjunct->args[0]->kind == Expr::Kind::kColumn &&
        conjunct->args[1]->kind == Expr::Kind::kLiteral) {
      // Equality on an attribute-indexed column (Figure 1's Attribute
      // Indexing) answers through the secondary index instead of a scan.
      bool indexed = false;
      for (const std::string& indexed_col : table_meta.attr_indexes) {
        if (ColumnEquals(*conjunct->args[0], indexed_col)) {
          indexed = true;
          attr_column = indexed_col;
        }
      }
      if (indexed) {
        attr_value = conjunct->args[1]->literal;
        have_attr = true;
        continue;
      }
    }
    residual.push_back(conjunct);
  }

  core::QueryStats scan_stats;
  const char* access = "full_scan";
  exec::DataFrame frame;
  if (have_knn) {
    access = "knn";
    JUST_ASSIGN_OR_RETURN(
        frame, engine_->KnnQuery(user_, scan.name, knn_query, knn_k,
                                 &scan_stats));
  } else if (have_box && have_time) {
    access = "st_range";
    JUST_ASSIGN_OR_RETURN(
        frame, engine_->StRangeQuery(user_, scan.name, box, t_min, t_max,
                                     &scan_stats));
  } else if (have_box) {
    access = "spatial_range";
    JUST_ASSIGN_OR_RETURN(
        frame, engine_->SpatialRangeQuery(user_, scan.name, box,
                                          &scan_stats));
  } else if (have_time) {
    // Temporal-only: whole-earth spatio-temporal query.
    access = "temporal_range";
    JUST_ASSIGN_OR_RETURN(
        frame, engine_->StRangeQuery(user_, scan.name, geo::Mbr::World(),
                                     t_min, t_max, &scan_stats));
  } else if (have_attr) {
    access = "attr_index";
    JUST_ASSIGN_OR_RETURN(
        frame, engine_->AttributeQuery(user_, scan.name, attr_column,
                                       attr_value, &scan_stats));
  } else {
    JUST_ASSIGN_OR_RETURN(frame, engine_->FullScan(user_, scan.name));
  }
  if (span != nullptr) span->AddAttr("access", access);
  if (stats != nullptr) {
    stats->key_ranges += scan_stats.key_ranges;
    stats->rows_scanned += scan_stats.rows_scanned;
    stats->rows_matched += scan_stats.rows_matched;
  }
  // A spatial/temporal/knn path may leave an attr conjunct unhandled.
  if (have_attr && (have_box || have_time || have_knn)) {
    int attr_col = frame.schema().IndexOf(attr_column);
    if (attr_col >= 0) {
      const exec::Value& needle = attr_value;
      frame = exec::Filter(frame, [&, attr_col](const exec::Row& row) {
        return row[attr_col].Equals(needle);
      });
    }
  }

  if (!residual.empty()) {
    const auto& schema = frame.schema();
    frame = exec::Filter(frame, [&](const exec::Row& row) {
      for (const Expr* conjunct : residual) {
        auto v = EvaluateExpr(*conjunct, schema, row);
        if (!v.ok() || v->type() != exec::DataType::kBool ||
            !v->bool_value()) {
          return false;
        }
      }
      return true;
    });
  }
  if (!scan.required_columns.empty()) {
    return exec::Project(frame, scan.required_columns);
  }
  return frame;
}

Result<exec::DataFrame> Executor::ExecuteProject(const PlanNode& node,
                                                 core::QueryStats* stats) {
  // 1-N / N-M function projects.
  if (node.items.size() == 1 &&
      node.items[0].expr->kind == Expr::Kind::kCall) {
    const std::string& fn_name = node.items[0].expr->call_name;
    const TableFunction* tf = FindTableFunction(fn_name);
    const PartitionFunction* pf = FindPartitionFunction(fn_name);
    if (tf != nullptr || pf != nullptr) {
      JUST_ASSIGN_OR_RETURN(auto input, ExecuteInner(*node.children[0], stats));
      const Expr& call = *node.items[0].expr;
      if (call.args.empty()) {
        return Status::InvalidArgument(fn_name + " needs an input column");
      }
      // Extra args must be constants.
      std::vector<exec::Value> extra;
      for (size_t i = 1; i < call.args.size(); ++i) {
        JUST_ASSIGN_OR_RETURN(auto v, EvaluateConstant(*call.args[i]));
        extra.push_back(std::move(v));
      }
      if (tf != nullptr) {
        exec::DataFrame out(node.schema);
        for (const exec::Row& row : input.rows()) {
          JUST_ASSIGN_OR_RETURN(
              auto value, EvaluateExpr(*call.args[0], input.schema(), row));
          JUST_ASSIGN_OR_RETURN(auto produced, tf->fn(value, extra));
          for (auto& r : produced) out.AddRow(std::move(r));
        }
        return out;
      }
      std::vector<exec::Value> column;
      column.reserve(input.num_rows());
      for (const exec::Row& row : input.rows()) {
        JUST_ASSIGN_OR_RETURN(
            auto value, EvaluateExpr(*call.args[0], input.schema(), row));
        column.push_back(std::move(value));
      }
      JUST_ASSIGN_OR_RETURN(auto produced, pf->fn(column, extra));
      exec::DataFrame out(node.schema);
      for (auto& r : produced) out.AddRow(std::move(r));
      return out;
    }
  }

  JUST_ASSIGN_OR_RETURN(auto input, ExecuteInner(*node.children[0], stats));
  exec::DataFrame out(node.schema);
  for (const exec::Row& row : input.rows()) {
    exec::Row projected;
    projected.reserve(node.items.size());
    for (const auto& item : node.items) {
      JUST_ASSIGN_OR_RETURN(auto value,
                            EvaluateExpr(*item.expr, input.schema(), row));
      projected.push_back(std::move(value));
    }
    out.AddRow(std::move(projected));
  }
  return out;
}

Result<exec::DataFrame> Executor::Execute(const PlanNode& plan,
                                          core::QueryStats* stats) {
  return ExecuteInner(plan, stats);
}

Result<exec::DataFrame> Executor::ExecuteInner(const PlanNode& plan,
                                               core::QueryStats* stats) {
  // Scans open their own span (with access-path attributes) in ExecuteScan.
  if (plan.kind == PlanNode::Kind::kScanTable ||
      plan.kind == PlanNode::Kind::kScanView) {
    return ExecuteScan(plan, nullptr, stats);
  }
  obs::ScopedSpan span(PlanNodeLabel(plan));
  auto result = [&]() -> Result<exec::DataFrame> {
    switch (plan.kind) {
      case PlanNode::Kind::kScanTable:
      case PlanNode::Kind::kScanView:
        return Status::Internal("unreachable");
      case PlanNode::Kind::kFilter: {
        const PlanNode& child = *plan.children[0];
        if (child.kind == PlanNode::Kind::kScanTable ||
            child.kind == PlanNode::Kind::kScanView) {
          // Fuse: the scan translates index-answerable predicates into
          // key-range SCANs.
          return ExecuteScan(child, plan.predicate.get(), stats);
        }
        JUST_ASSIGN_OR_RETURN(auto input, ExecuteInner(child, stats));
        const auto& schema = input.schema();
        return exec::Filter(input, [&](const exec::Row& row) {
          auto v = EvaluateExpr(*plan.predicate, schema, row);
          return v.ok() && v->type() == exec::DataType::kBool &&
                 v->bool_value();
        });
      }
      case PlanNode::Kind::kProject:
        return ExecuteProject(plan, stats);
      case PlanNode::Kind::kAggregate: {
        JUST_ASSIGN_OR_RETURN(auto input,
                              ExecuteInner(*plan.children[0], stats));
        return exec::GroupBy(input, plan.group_by, plan.aggregates);
      }
      case PlanNode::Kind::kSort: {
        JUST_ASSIGN_OR_RETURN(auto input,
                              ExecuteInner(*plan.children[0], stats));
        std::vector<exec::SortKey> keys;
        for (const auto& item : plan.order_by) {
          keys.push_back({item.column, item.ascending});
        }
        return exec::Sort(input, keys);
      }
      case PlanNode::Kind::kLimit: {
        JUST_ASSIGN_OR_RETURN(auto input,
                              ExecuteInner(*plan.children[0], stats));
        return exec::Limit(input, static_cast<size_t>(plan.limit));
      }
      case PlanNode::Kind::kJoin: {
        JUST_ASSIGN_OR_RETURN(auto left,
                              ExecuteInner(*plan.children[0], stats));
        JUST_ASSIGN_OR_RETURN(auto right,
                              ExecuteInner(*plan.children[1], stats));
        return exec::HashJoin(left, right, plan.join_left_col,
                              plan.join_right_col);
      }
    }
    return Status::Internal("bad plan node");
  }();
  if (span.span() != nullptr && result.ok()) {
    span.span()->counters().rows_out.store(result->num_rows(),
                                           std::memory_order_relaxed);
  }
  return result;
}

}  // namespace just::sql
