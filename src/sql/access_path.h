#ifndef JUST_SQL_ACCESS_PATH_H_
#define JUST_SQL_ACCESS_PATH_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "sql/ast.h"

namespace just::sql {

/// The physical access path chosen for one table scan. Shared by the
/// row-at-a-time and columnar executors (which used to duplicate the
/// predicate extraction) and by EXPLAIN's plan annotation, so the path the
/// plan prints is the path the executor runs.
struct AccessPath {
  enum class Kind {
    kKnn,               ///< geom IN st_KNN(...) expansion
    kStRange,           ///< curve index, box + time window
    kSpatialRange,      ///< curve index, box only
    kTemporalRange,     ///< curve index, whole-earth + time window
    kSecondaryIndex,    ///< secondary index point/range lookup drives alone
    kIndexIntersection, ///< secondary index drives, spatio-temporal refines
    kAttrIndex,         ///< legacy USERDATA attr-index equality lookup
    kFullScan,
  };

  Kind kind = Kind::kFullScan;
  /// EXPLAIN's `access` attribute / plan annotation.
  const char* label = "full_scan";

  bool have_box = false;
  geo::Mbr box{};
  bool have_time = false;
  TimestampMs t_min = 0, t_max = 0;
  geo::Point knn_query{};
  int knn_k = 0;
  /// Legacy attr-index equality; when combined with a curve path the
  /// executor rechecks it over the scan output.
  bool have_attr = false;
  std::string attr_column;
  exec::Value attr_value;
  /// kSecondaryIndex / kIndexIntersection: the indexed column + bounds.
  std::string index_column;
  core::AttrBound lower, upper;
  /// Conjuncts the chosen path does not answer; the executor runs them as a
  /// residual filter.
  std::vector<const Expr*> residual;
};

/// Flattens an AND tree into conjuncts (borrowed pointers).
void SplitConjuncts(const Expr* expr, std::vector<const Expr*>* out);

/// Chooses the access path for `conjuncts` over `table_meta`. Priorities:
/// k-NN first (its expansion protocol subsumes everything), then a `ready`
/// secondary index over a bounded column — alone when no spatio-temporal
/// predicate competes, otherwise decided by a cardinality probe against
/// `index_intersection_threshold` (few index entries: the index drives and
/// spatio-temporal refinement filters; many: the curve index drives and the
/// attribute bounds demote to residual work) — then the curve paths, the
/// legacy attr index, and finally a full scan.
Result<AccessPath> ChooseAccessPath(core::JustEngine* engine,
                                    const std::string& user,
                                    const meta::TableMeta& table_meta,
                                    const std::vector<const Expr*>& conjuncts);

}  // namespace just::sql

#endif  // JUST_SQL_ACCESS_PATH_H_
