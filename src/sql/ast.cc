#include "sql/ast.h"

#include <cctype>

namespace just::sql {

std::string BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kWithin:
      return "WITHIN";
    case BinaryOp::kBetween:
      return "BETWEEN";
    case BinaryOp::kIn:
      return "IN";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::Literal(exec::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::Column(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumn;
  e->column = std::move(name);
  return e;
}

std::unique_ptr<Expr> Expr::Binary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                   std::unique_ptr<Expr> rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

std::unique_ptr<Expr> Expr::Call(std::string name,
                                 std::vector<std::unique_ptr<Expr>> args) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kCall;
  for (char& c : name) c = static_cast<char>(std::tolower(c));
  e->call_name = std::move(name);
  e->args = std::move(args);
  return e;
}

std::unique_ptr<Expr> Expr::Star() {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kStar;
  return e;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->column = column;
  e->op = op;
  e->call_name = call_name;
  for (const auto& arg : args) e->args.push_back(arg->Clone());
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.type() == exec::DataType::kString
                 ? "'" + literal.ToString() + "'"
                 : literal.ToString();
    case Kind::kColumn:
      return column;
    case Kind::kStar:
      return "*";
    case Kind::kBinary: {
      if (op == BinaryOp::kBetween && args.size() == 3) {
        return "(" + args[0]->ToString() + " BETWEEN " +
               args[1]->ToString() + " AND " + args[2]->ToString() + ")";
      }
      return "(" + args[0]->ToString() + " " + BinaryOpName(op) + " " +
             args[1]->ToString() + ")";
    }
    case Kind::kCall: {
      std::string out = call_name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace just::sql
