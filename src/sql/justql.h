#ifndef JUST_SQL_JUSTQL_H_
#define JUST_SQL_JUSTQL_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/engine.h"
#include "sql/plan.h"

namespace just::sql {

/// The outcome of one JustQL statement.
struct QueryResult {
  exec::DataFrame frame;  ///< rows for SELECT / SHOW / DESC
  std::string message;    ///< acknowledgement for DDL / DML
  /// Span tree (TraceSpan::ToJson()) when the statement ran under a trace
  /// (EXPLAIN ANALYZE); empty otherwise. Flows into the slow-query log so
  /// /tracez can show the full tree, remote subtrees included.
  std::string trace_json;
};

/// The complete SQL engine facade (Section VI): parse -> analyze ->
/// optimize -> execute, multiplexed over the shared engine with per-user
/// namespaces (Section VII-A). This is what the SDKs and the web portal
/// would submit statements to.
class JustQL {
 public:
  explicit JustQL(core::JustEngine* engine) : engine_(engine) {}

  /// Executes one statement on behalf of `user`.
  Result<QueryResult> Execute(const std::string& user, const std::string& sql);

  /// Renders the analyzed and optimized logical plans of a SELECT, for
  /// inspection (the Figure 8 views).
  Result<std::string> ExplainSelect(const std::string& user,
                                    const std::string& sql);

  core::JustEngine* engine() { return engine_; }

 private:
  /// Parses and runs one statement; `stats` accumulates indexed-scan
  /// statistics (for the slow-query log).
  Result<QueryResult> ExecuteParsed(const std::string& user,
                                    const std::string& sql,
                                    core::QueryStats* stats);

  core::JustEngine* engine_;
};

}  // namespace just::sql

#endif  // JUST_SQL_JUSTQL_H_
