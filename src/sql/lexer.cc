#include "sql/lexer.h"

#include <cctype>
#include <set>

namespace just::sql {

namespace {
const std::set<std::string>& Keywords() {
  static const std::set<std::string>* kKeywords = new std::set<std::string>{
      "SELECT", "FROM",  "WHERE",  "AND",    "OR",      "NOT",    "AS",
      "CREATE", "TABLE", "VIEW",   "DROP",   "SHOW",    "TABLES", "VIEWS",
      "DESC",   "LOAD",  "TO",     "CONFIG", "FILTER",  "STORE",  "INSERT",
      "INTO",   "VALUES", "GROUP", "ORDER",  "BY",      "LIMIT",  "ASC",
      "DESCENDING",       "WITHIN", "BETWEEN", "IN",    "USERDATA",
      "PRIMARY", "KEY",   "JOIN",  "ON",     "TRUE",    "FALSE",  "NULL",
      "EXPLAIN", "ANALYZE", "INDEX", "CONTINUOUS", "QUERY", "QUERIES",
      "STREAM", "WINDOW",
  };
  return *kKeywords;
}
}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: -- to end of line.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (c == '{') {
      // Balanced JSON blob (strings may contain braces).
      int depth = 0;
      size_t start = i;
      bool in_string = false;
      char quote = 0;
      for (; i < n; ++i) {
        char b = input[i];
        if (in_string) {
          if (b == '\\') {
            ++i;
          } else if (b == quote) {
            in_string = false;
          }
          continue;
        }
        if (b == '\'' || b == '"') {
          in_string = true;
          quote = b;
        } else if (b == '{') {
          ++depth;
        } else if (b == '}') {
          --depth;
          if (depth == 0) {
            ++i;
            break;
          }
        }
      }
      if (depth != 0) {
        return Status::InvalidArgument("unbalanced '{' at offset " +
                                       std::to_string(start));
      }
      token.type = TokenType::kJson;
      token.value = input.substr(start, i - start);
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      std::string value;
      while (i < n && input[i] != quote) {
        if (input[i] == '\\' && i + 1 < n) {
          ++i;
          value += input[i];
        } else {
          value += input[i];
        }
        ++i;
      }
      if (i >= n) {
        return Status::InvalidArgument("unterminated string literal");
      }
      ++i;  // closing quote
      token.type = TokenType::kString;
      token.value = std::move(value);
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.' || input[i] == 'e' ||
                       input[i] == 'E' ||
                       ((input[i] == '+' || input[i] == '-') && i > start &&
                        (input[i - 1] == 'e' || input[i - 1] == 'E')))) {
        ++i;
      }
      token.type = TokenType::kNumber;
      token.value = input.substr(start, i - start);
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      std::string word = input.substr(start, i - start);
      std::string upper;
      for (char w : word) upper += static_cast<char>(std::toupper(w));
      if (Keywords().count(upper) != 0) {
        token.type = TokenType::kKeyword;
        token.value = upper;
      } else {
        token.type = TokenType::kIdentifier;
        token.value = word;
      }
      tokens.push_back(std::move(token));
      continue;
    }
    // Multi-char operators first.
    auto two = input.substr(i, 2);
    if (two == "<=" || two == ">=" || two == "<>" || two == "!=" ||
        two == "==") {
      token.type = TokenType::kOperator;
      token.value = two == "==" ? "=" : (two == "<>" ? "!=" : two);
      i += 2;
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::string("=<>+-*/(),.;:|").find(c) != std::string::npos) {
      token.type = TokenType::kOperator;
      token.value = std::string(1, c);
      ++i;
      tokens.push_back(std::move(token));
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace just::sql
