#include "sql/optimizer.h"

#include <algorithm>
#include <set>

#include "sql/access_path.h"
#include "sql/expr_eval.h"

namespace just::sql {

namespace {

// --- Rule 1: constant folding -------------------------------------------

Status FoldConstants(Expr* expr) {
  for (auto& arg : expr->args) {
    JUST_RETURN_NOT_OK(FoldConstants(arg.get()));
  }
  if (expr->kind == Expr::Kind::kLiteral ||
      expr->kind == Expr::Kind::kColumn || expr->kind == Expr::Kind::kStar) {
    return Status::OK();
  }
  // Aggregates / table functions are not foldable; IsConstantExpr knows.
  if (!IsConstantExpr(*expr)) return Status::OK();
  JUST_ASSIGN_OR_RETURN(auto value, EvaluateConstant(*expr));
  expr->kind = Expr::Kind::kLiteral;
  expr->literal = std::move(value);
  expr->args.clear();
  expr->call_name.clear();
  return Status::OK();
}

Status FoldPlanConstants(PlanNode* node) {
  if (node->predicate != nullptr) {
    JUST_RETURN_NOT_OK(FoldConstants(node->predicate.get()));
  }
  for (auto& item : node->items) {
    // Keep table-function calls intact but fold their arguments.
    for (auto& arg : item.expr->args) {
      JUST_RETURN_NOT_OK(FoldConstants(arg.get()));
    }
    if (IsConstantExpr(*item.expr)) {
      JUST_RETURN_NOT_OK(FoldConstants(item.expr.get()));
    }
  }
  for (auto& child : node->children) {
    JUST_RETURN_NOT_OK(FoldPlanConstants(child.get()));
  }
  return Status::OK();
}

// --- Rule 2: predicate pushdown ------------------------------------------

// True if `project` only renames/passes through columns that the predicate
// uses, allowing the predicate to be rewritten beneath it.
bool RewritePredicateThroughProject(const PlanNode& project, Expr* predicate) {
  if (predicate->kind == Expr::Kind::kColumn) {
    for (const auto& item : project.items) {
      std::string alias = item.alias.empty() &&
                                  item.expr->kind == Expr::Kind::kColumn
                              ? item.expr->column
                              : item.alias;
      if (alias == predicate->column || (item.alias.empty() &&
                                         item.expr->ToString() ==
                                             predicate->column)) {
        if (item.expr->kind == Expr::Kind::kColumn) {
          predicate->column = item.expr->column;
          return true;
        }
        return false;  // computed column: cannot push below
      }
    }
    // Not produced by the project: unknown -> refuse.
    return false;
  }
  for (auto& arg : predicate->args) {
    if (!RewritePredicateThroughProject(project, arg.get())) return false;
  }
  return true;
}

// Pushes Filter nodes down as far as possible. Returns the new subtree root.
std::unique_ptr<PlanNode> PushFilters(std::unique_ptr<PlanNode> node) {
  for (auto& child : node->children) {
    child = PushFilters(std::move(child));
  }
  if (node->kind != PlanNode::Kind::kFilter) return node;

  PlanNode* child = node->children[0].get();
  switch (child->kind) {
    case PlanNode::Kind::kFilter: {
      // Merge: Filter(a, Filter(b, x)) -> Filter(a AND b, x).
      child->predicate = Expr::Binary(BinaryOp::kAnd,
                                      std::move(node->predicate),
                                      std::move(child->predicate));
      auto merged = std::move(node->children[0]);
      return PushFilters(std::move(merged));
    }
    case PlanNode::Kind::kSort:
    case PlanNode::Kind::kProject: {
      bool can_push = true;
      if (child->kind == PlanNode::Kind::kProject) {
        // Try rewriting on a clone first; commit only on success. Computed
        // columns (including 1-N / N-M function projects) fail the rewrite,
        // which keeps the filter above them.
        auto clone = node->predicate->Clone();
        can_push = RewritePredicateThroughProject(*child, clone.get());
        if (can_push) node->predicate = std::move(clone);
      }
      if (!can_push) return node;
      // Swap: Filter(Sort/Project(x)) -> Sort/Project(Filter(x)).
      auto inner = std::move(node->children[0]);      // sort/project
      node->children[0] = std::move(inner->children[0]);
      node->schema = node->children[0]->schema;
      inner->children[0] = PushFilters(std::move(node));
      return inner;
    }
    default:
      return node;
  }
}

// --- Rule 3: projection pushdown -----------------------------------------

// Walks the tree, accumulating which columns each subtree must produce.
// `needed` empty means "everything".
void PushRequiredColumns(PlanNode* node, std::set<std::string> needed) {
  switch (node->kind) {
    case PlanNode::Kind::kScanTable:
    case PlanNode::Kind::kScanView: {
      if (!needed.empty()) {
        node->required_columns.assign(needed.begin(), needed.end());
        // Preserve schema order for readability.
        std::vector<std::string> ordered;
        for (const auto& f : node->schema->fields()) {
          if (needed.count(f.name) != 0) ordered.push_back(f.name);
        }
        if (!ordered.empty()) node->required_columns = ordered;
      }
      return;
    }
    case PlanNode::Kind::kFilter: {
      std::set<std::string> child_needed = needed;
      if (!needed.empty()) {
        std::vector<std::string> cols;
        CollectColumns(*node->predicate, &cols);
        child_needed.insert(cols.begin(), cols.end());
      }
      PushRequiredColumns(node->children[0].get(), std::move(child_needed));
      return;
    }
    case PlanNode::Kind::kProject: {
      std::set<std::string> child_needed;
      for (const auto& item : node->items) {
        std::vector<std::string> cols;
        CollectColumns(*item.expr, &cols);
        child_needed.insert(cols.begin(), cols.end());
      }
      // An empty reference set (all literals) still needs one pass-through
      // column? No: scans can return full rows; keep as-is.
      PushRequiredColumns(node->children[0].get(), std::move(child_needed));
      return;
    }
    case PlanNode::Kind::kAggregate: {
      std::set<std::string> child_needed(node->group_by.begin(),
                                         node->group_by.end());
      for (const auto& agg : node->aggregates) {
        if (!agg.column.empty()) child_needed.insert(agg.column);
      }
      PushRequiredColumns(node->children[0].get(), std::move(child_needed));
      return;
    }
    case PlanNode::Kind::kSort: {
      std::set<std::string> child_needed = needed;
      if (!needed.empty()) {
        for (const auto& item : node->order_by) {
          child_needed.insert(item.column);
        }
      }
      PushRequiredColumns(node->children[0].get(), std::move(child_needed));
      return;
    }
    case PlanNode::Kind::kLimit:
      PushRequiredColumns(node->children[0].get(), std::move(needed));
      return;
    case PlanNode::Kind::kJoin: {
      std::set<std::string> left_needed, right_needed;
      if (!needed.empty()) {
        for (const auto& f : node->children[0]->schema->fields()) {
          if (needed.count(f.name) != 0) left_needed.insert(f.name);
        }
        for (const auto& f : node->children[1]->schema->fields()) {
          std::string produced = f.name;
          if (node->children[0]->schema->IndexOf(f.name) >= 0) {
            produced += "_r";
          }
          if (needed.count(produced) != 0) right_needed.insert(f.name);
        }
        left_needed.insert(node->join_left_col);
        right_needed.insert(node->join_right_col);
      }
      PushRequiredColumns(node->children[0].get(), std::move(left_needed));
      PushRequiredColumns(node->children[1].get(), std::move(right_needed));
      return;
    }
  }
}

// Removes Project nodes that are pure identity over their input schema.
std::unique_ptr<PlanNode> RemoveIdentityProjects(
    std::unique_ptr<PlanNode> node) {
  for (auto& child : node->children) {
    child = RemoveIdentityProjects(std::move(child));
  }
  if (node->kind != PlanNode::Kind::kProject) return node;
  const PlanNode& child = *node->children[0];
  if (child.schema == nullptr ||
      node->items.size() != child.schema->num_fields()) {
    return node;
  }
  for (size_t i = 0; i < node->items.size(); ++i) {
    const SelectItem& item = node->items[i];
    if (item.expr->kind != Expr::Kind::kColumn) return node;
    const std::string& out_name =
        item.alias.empty() ? item.expr->column : item.alias;
    if (item.expr->column != child.schema->field(i).name ||
        out_name != child.schema->field(i).name) {
      return node;
    }
  }
  return std::move(node->children[0]);
}

// Annotates each table scan with the access path ChooseAccessPath would
// pick. After PushFilters, a scan's predicate (if any) sits directly above
// it, so a Filter-over-scan pair is annotated as a unit; the scan child is
// then skipped below (its hint is already the filtered one).
void AnnotateAccessHints(PlanNode* node, core::JustEngine* engine,
                         const std::string& user) {
  if (node == nullptr) return;
  const Expr* predicate = nullptr;
  PlanNode* scan = nullptr;
  if (node->kind == PlanNode::Kind::kFilter && !node->children.empty() &&
      node->children[0]->kind == PlanNode::Kind::kScanTable) {
    predicate = node->predicate.get();
    scan = node->children[0].get();
  } else if (node->kind == PlanNode::Kind::kScanTable) {
    if (!node->access_hint.empty()) return;  // annotated by its Filter parent
    scan = node;
  }
  if (scan != nullptr) {
    auto table_meta = engine->DescribeTable(user, scan->name);
    if (table_meta.ok()) {
      std::vector<const Expr*> conjuncts;
      if (predicate != nullptr) SplitConjuncts(predicate, &conjuncts);
      auto path = ChooseAccessPath(engine, user, *table_meta, conjuncts);
      if (path.ok()) scan->access_hint = path->label;
    }
  }
  for (auto& child : node->children) {
    AnnotateAccessHints(child.get(), engine, user);
  }
}

}  // namespace

Result<std::unique_ptr<PlanNode>> Optimize(std::unique_ptr<PlanNode> plan) {
  JUST_RETURN_NOT_OK(FoldPlanConstants(plan.get()));
  plan = RemoveIdentityProjects(std::move(plan));
  plan = PushFilters(std::move(plan));
  PushRequiredColumns(plan.get(), {});
  return plan;
}

Result<std::unique_ptr<PlanNode>> Optimize(std::unique_ptr<PlanNode> plan,
                                           core::JustEngine* engine,
                                           const std::string& user) {
  JUST_ASSIGN_OR_RETURN(plan, Optimize(std::move(plan)));
  if (engine != nullptr) AnnotateAccessHints(plan.get(), engine, user);
  return plan;
}

}  // namespace just::sql
