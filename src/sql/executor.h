#ifndef JUST_SQL_EXECUTOR_H_
#define JUST_SQL_EXECUTOR_H_

#include <string>

#include "common/status.h"
#include "core/engine.h"
#include "sql/plan.h"

namespace just::sql {

/// Physical execution (Section VI, "SQL Execute"): spatial / spatio-temporal
/// / k-NN predicates adjacent to a table scan are translated into GeoMesa
/// key-range SCANs (the engine's indexed queries); everything else runs as
/// DataFrame operations (the Spark SQL role).
class Executor {
 public:
  Executor(core::JustEngine* engine, std::string user)
      : engine_(engine), user_(std::move(user)) {}

  Result<exec::DataFrame> Execute(const PlanNode& plan);

  /// Stats from the last indexed scan (for benches / EXPLAIN ANALYZE).
  const core::QueryStats& last_scan_stats() const { return last_stats_; }

 private:
  Result<exec::DataFrame> ExecuteScan(const PlanNode& scan,
                                      const Expr* predicate);
  Result<exec::DataFrame> ExecuteProject(const PlanNode& node);

  core::JustEngine* engine_;
  std::string user_;
  core::QueryStats last_stats_;
};

}  // namespace just::sql

#endif  // JUST_SQL_EXECUTOR_H_
