#ifndef JUST_SQL_EXECUTOR_H_
#define JUST_SQL_EXECUTOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "exec/column_batch.h"
#include "obs/trace.h"
#include "sql/plan.h"
#include "sql/predicate_program.h"

namespace just::sql {

/// Execution-mode knobs.
struct ExecOptions {
  /// Forces the legacy row-at-a-time path: every predicate and projection
  /// runs through the interpreted EvaluateExpr tree walk, no column batches,
  /// no predicate programs. Kept as the differential-testing oracle and the
  /// benchmark baseline for the vectorized path.
  bool force_interpreted = false;
};

/// Physical execution (Section VI, "SQL Execute"): spatial / spatio-temporal
/// / k-NN predicates adjacent to a table scan are translated into GeoMesa
/// key-range SCANs (the engine's indexed queries); everything else runs as
/// DataFrame operations (the Spark SQL role).
///
/// Post-scan refinement is columnar: scans produce ColumnBatches, residual
/// predicates compile once per query into flat type-specialized programs
/// (cached in PredicateProgramCache), and filter / plain-project / global-
/// aggregate stages run as tight loops over column vectors connected by
/// selection vectors. Sort, limit, join, and analysis functions materialize
/// rows at their input boundary and run row-at-a-time.
///
/// The executor holds no per-query state: scan statistics are returned
/// through the optional `stats` out-parameter, so one instance can run plans
/// from many threads concurrently. When a trace is active on the calling
/// thread (EXPLAIN ANALYZE), every operator contributes a span with batch
/// counts and interpreted-vs-specialized evaluation time.
class Executor {
 public:
  Executor(core::JustEngine* engine, std::string user,
           ExecOptions options = {})
      : engine_(engine), user_(std::move(user)), options_(options) {}

  /// Runs the plan. `stats`, when non-null, accumulates the key-range scan
  /// statistics of every indexed scan in the plan.
  Result<exec::DataFrame> Execute(const PlanNode& plan,
                                  core::QueryStats* stats = nullptr);

 private:
  /// A run of batches plus the schema they share (needed when the run is
  /// empty).
  struct BatchResult {
    std::shared_ptr<exec::Schema> schema;
    exec::BatchVector batches;
  };

  /// True when the node itself executes on the columnar path (children are
  /// converted at their boundary if they do not).
  bool CanExecuteBatch(const PlanNode& plan) const;

  Result<exec::DataFrame> ExecuteInner(const PlanNode& plan,
                                       core::QueryStats* stats);

  // --- Columnar pipeline ---
  Result<BatchResult> ExecuteBatch(const PlanNode& plan,
                                   core::QueryStats* stats);
  /// ExecuteBatch when capable, otherwise row-execute and convert.
  Result<BatchResult> ExecuteBatchOrConvert(const PlanNode& plan,
                                            core::QueryStats* stats);
  /// `limit` > 0 pushes a row budget into the scan (LIMIT pushdown): the
  /// scan stops fetching once that many rows survive the access path plus
  /// residual refinement, instead of materializing the whole table. The
  /// result may overshoot within the last batch; the caller truncates.
  Result<BatchResult> ExecuteScanBatch(const PlanNode& scan,
                                       const Expr* predicate,
                                       core::QueryStats* stats,
                                       size_t limit = 0);
  Result<BatchResult> ExecuteScanBatchImpl(const PlanNode& scan,
                                           const Expr* predicate,
                                           core::QueryStats* stats,
                                           obs::TraceSpan* span, size_t limit);
  Result<BatchResult> ExecuteProjectBatch(const PlanNode& node,
                                          core::QueryStats* stats);
  Result<BatchResult> ExecuteAggregateBatch(const PlanNode& node,
                                            core::QueryStats* stats);
  /// Compiles `conjuncts` through the plan cache and filters every batch,
  /// attributing batch counts and per-mode evaluation time to `span`.
  /// `cache_tag` scopes the cached program to a catalog entry (see
  /// PredicateProgramCache::GetOrCompile); "" for non-table inputs.
  Status RunPredicate(const std::vector<const Expr*>& conjuncts,
                      BatchResult* input, obs::TraceSpan* span,
                      const std::string& cache_tag = "");
  /// LIMIT pushdown: when the child chain is
  /// Limit -> Project* (row-preserving) -> [Filter] -> table scan, runs the
  /// scan with a row budget so LIMIT 10 over a huge table stops after ~10
  /// matching rows instead of materializing everything. Returns nullopt
  /// when the chain does not qualify (views, analysis functions,
  /// force_interpreted).
  Result<std::optional<exec::DataFrame>> TryLimitPushdown(
      const PlanNode& limit_node, core::QueryStats* stats);
  /// Keeps the named columns (scan projection pushdown), column-wise.
  Result<BatchResult> ProjectColumns(
      BatchResult input, const std::vector<std::string>& columns);

  // --- Row-at-a-time path (force_interpreted; also sort/limit/join) ---
  Result<exec::DataFrame> ExecuteScan(const PlanNode& scan,
                                      const Expr* predicate,
                                      core::QueryStats* stats);
  Result<exec::DataFrame> ExecuteScanImpl(const PlanNode& scan,
                                          const Expr* predicate,
                                          core::QueryStats* stats,
                                          obs::TraceSpan* span);
  Result<exec::DataFrame> ExecuteProject(const PlanNode& node,
                                         core::QueryStats* stats);

  core::JustEngine* engine_;
  std::string user_;
  ExecOptions options_;
};

}  // namespace just::sql

#endif  // JUST_SQL_EXECUTOR_H_
