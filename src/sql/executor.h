#ifndef JUST_SQL_EXECUTOR_H_
#define JUST_SQL_EXECUTOR_H_

#include <string>

#include "common/status.h"
#include "core/engine.h"
#include "obs/trace.h"
#include "sql/plan.h"

namespace just::sql {

/// Physical execution (Section VI, "SQL Execute"): spatial / spatio-temporal
/// / k-NN predicates adjacent to a table scan are translated into GeoMesa
/// key-range SCANs (the engine's indexed queries); everything else runs as
/// DataFrame operations (the Spark SQL role).
///
/// The executor holds no per-query state: scan statistics are returned
/// through the optional `stats` out-parameter, so one instance can run plans
/// from many threads concurrently. When a trace is active on the calling
/// thread (EXPLAIN ANALYZE), every operator contributes a span.
class Executor {
 public:
  Executor(core::JustEngine* engine, std::string user)
      : engine_(engine), user_(std::move(user)) {}

  /// Runs the plan. `stats`, when non-null, accumulates the key-range scan
  /// statistics of every indexed scan in the plan.
  Result<exec::DataFrame> Execute(const PlanNode& plan,
                                  core::QueryStats* stats = nullptr);

 private:
  Result<exec::DataFrame> ExecuteInner(const PlanNode& plan,
                                       core::QueryStats* stats);
  Result<exec::DataFrame> ExecuteScan(const PlanNode& scan,
                                      const Expr* predicate,
                                      core::QueryStats* stats);
  Result<exec::DataFrame> ExecuteScanImpl(const PlanNode& scan,
                                          const Expr* predicate,
                                          core::QueryStats* stats,
                                          obs::TraceSpan* span);
  Result<exec::DataFrame> ExecuteProject(const PlanNode& node,
                                         core::QueryStats* stats);

  core::JustEngine* engine_;
  std::string user_;
};

}  // namespace just::sql

#endif  // JUST_SQL_EXECUTOR_H_
