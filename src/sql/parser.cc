#include "sql/parser.h"

#include <cctype>
#include <cstdlib>

#include "sql/lexer.h"

namespace just::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> Parse() {
    JUST_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
    // Optional trailing semicolon.
    if (Cur().IsOperator(";")) Advance();
    if (Cur().type != TokenType::kEnd) {
      return Err("unexpected trailing input: '" + Cur().value + "'");
    }
    return stmt;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t ahead = 1) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Err(const std::string& message) const {
    return Status::InvalidArgument("parse error at offset " +
                                   std::to_string(Cur().offset) + ": " +
                                   message);
  }

  bool AcceptKeyword(const char* kw) {
    if (Cur().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Err(std::string("expected ") + kw + ", got '" + Cur().value +
                 "'");
    }
    return Status::OK();
  }

  bool AcceptOperator(const char* op) {
    if (Cur().IsOperator(op)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectOperator(const char* op) {
    if (!AcceptOperator(op)) {
      return Err(std::string("expected '") + op + "', got '" + Cur().value +
                 "'");
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier() {
    if (Cur().type != TokenType::kIdentifier) {
      return Err("expected identifier, got '" + Cur().value + "'");
    }
    std::string name = Cur().value;
    Advance();
    return name;
  }

  // Accepts identifiers and non-reserved-looking keywords as names.
  Result<std::string> ExpectName() {
    if (Cur().type == TokenType::kIdentifier ||
        Cur().type == TokenType::kKeyword) {
      std::string name = Cur().value;
      Advance();
      return name;
    }
    return Err("expected name, got '" + Cur().value + "'");
  }

  Result<Statement> ParseStatementInner() {
    if (Cur().IsKeyword("SELECT")) {
      Statement stmt;
      stmt.kind = Statement::Kind::kSelect;
      JUST_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
      return stmt;
    }
    if (Cur().IsKeyword("EXPLAIN")) {
      Advance();
      Statement stmt;
      stmt.kind = Statement::Kind::kExplain;
      stmt.explain = std::make_unique<ExplainStmt>();
      stmt.explain->analyze = AcceptKeyword("ANALYZE");
      if (!Cur().IsKeyword("SELECT")) {
        return Err("EXPLAIN supports SELECT only");
      }
      JUST_ASSIGN_OR_RETURN(stmt.explain->select, ParseSelect());
      return stmt;
    }
    if (Cur().IsKeyword("CREATE")) return ParseCreate();
    if (Cur().IsKeyword("DROP")) return ParseDrop();
    if (Cur().IsKeyword("SHOW")) return ParseShow();
    if (Cur().IsKeyword("DESC")) return ParseDesc();
    if (Cur().IsKeyword("LOAD")) return ParseLoad();
    if (Cur().IsKeyword("STORE")) return ParseStore();
    if (Cur().IsKeyword("INSERT")) return ParseInsert();
    return Err("unknown statement start: '" + Cur().value + "'");
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    JUST_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    auto select = std::make_unique<SelectStmt>();
    // Select list.
    for (;;) {
      SelectItem item;
      if (AcceptOperator("*")) {
        item.expr = Expr::Star();
      } else {
        JUST_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("AS")) {
          JUST_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
        } else if (Cur().type == TokenType::kIdentifier) {
          item.alias = Cur().value;  // bare alias
          Advance();
        }
      }
      select->items.push_back(std::move(item));
      if (!AcceptOperator(",")) break;
    }
    JUST_RETURN_NOT_OK(ExpectKeyword("FROM"));
    if (AcceptOperator("(")) {
      JUST_ASSIGN_OR_RETURN(select->subquery, ParseSelect());
      JUST_RETURN_NOT_OK(ExpectOperator(")"));
      AcceptKeyword("AS");
      if (Cur().type == TokenType::kIdentifier) {
        select->subquery_alias = Cur().value;
        Advance();
      }
    } else {
      JUST_ASSIGN_OR_RETURN(select->from_name, ExpectIdentifier());
    }
    if (AcceptKeyword("JOIN")) {
      JUST_ASSIGN_OR_RETURN(select->join_name, ExpectIdentifier());
      JUST_RETURN_NOT_OK(ExpectKeyword("ON"));
      JUST_ASSIGN_OR_RETURN(select->join_left_col, ExpectIdentifier());
      JUST_RETURN_NOT_OK(ExpectOperator("="));
      JUST_ASSIGN_OR_RETURN(select->join_right_col, ExpectIdentifier());
    }
    if (AcceptKeyword("WHERE")) {
      JUST_ASSIGN_OR_RETURN(select->where, ParseExpr());
    }
    if (AcceptKeyword("GROUP")) {
      JUST_RETURN_NOT_OK(ExpectKeyword("BY"));
      for (;;) {
        JUST_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        select->group_by.push_back(std::move(col));
        if (!AcceptOperator(",")) break;
      }
    }
    if (AcceptKeyword("ORDER")) {
      JUST_RETURN_NOT_OK(ExpectKeyword("BY"));
      for (;;) {
        OrderItem item;
        JUST_ASSIGN_OR_RETURN(item.column, ExpectIdentifier());
        if (AcceptKeyword("ASC")) {
          item.ascending = true;
        } else if (AcceptKeyword("DESC") || AcceptKeyword("DESCENDING")) {
          item.ascending = false;
        }
        select->order_by.push_back(std::move(item));
        if (!AcceptOperator(",")) break;
      }
    }
    if (AcceptKeyword("LIMIT")) {
      if (Cur().type != TokenType::kNumber) return Err("expected LIMIT count");
      select->limit = std::strtol(Cur().value.c_str(), nullptr, 10);
      Advance();
    }
    return select;
  }

  Result<Statement> ParseCreate() {
    Advance();  // CREATE
    if (AcceptKeyword("CONTINUOUS")) {
      JUST_RETURN_NOT_OK(ExpectKeyword("QUERY"));
      Statement stmt;
      stmt.kind = Statement::Kind::kCreateContinuousQuery;
      stmt.create_continuous_query =
          std::make_unique<CreateContinuousQueryStmt>();
      CreateContinuousQueryStmt& cq = *stmt.create_continuous_query;
      JUST_ASSIGN_OR_RETURN(cq.name, ExpectIdentifier());
      JUST_RETURN_NOT_OK(ExpectKeyword("ON"));
      JUST_ASSIGN_OR_RETURN(cq.table, ExpectIdentifier());
      if (AcceptKeyword("WHERE")) {
        JUST_ASSIGN_OR_RETURN(cq.where, ParseExpr());
      }
      if (AcceptKeyword("GROUP")) {
        JUST_RETURN_NOT_OK(ExpectKeyword("BY"));
        JUST_ASSIGN_OR_RETURN(cq.group_by, ExpectIdentifier());
      }
      if (AcceptKeyword("WINDOW")) {
        JUST_ASSIGN_OR_RETURN(cq.window_ms, ParseDuration());
      }
      if (!cq.group_by.empty() && cq.window_ms == 0) {
        return Err("GROUP BY on a continuous query requires WINDOW");
      }
      return stmt;
    }
    if (AcceptKeyword("INDEX")) {
      Statement stmt;
      stmt.kind = Statement::Kind::kCreateIndex;
      stmt.create_index = std::make_unique<CreateIndexStmt>();
      JUST_ASSIGN_OR_RETURN(stmt.create_index->name, ExpectIdentifier());
      JUST_RETURN_NOT_OK(ExpectKeyword("ON"));
      JUST_ASSIGN_OR_RETURN(stmt.create_index->table, ExpectIdentifier());
      JUST_RETURN_NOT_OK(ExpectOperator("("));
      JUST_ASSIGN_OR_RETURN(stmt.create_index->column, ExpectName());
      JUST_RETURN_NOT_OK(ExpectOperator(")"));
      return stmt;
    }
    if (AcceptKeyword("VIEW")) {
      Statement stmt;
      stmt.kind = Statement::Kind::kCreateView;
      stmt.create_view = std::make_unique<CreateViewStmt>();
      JUST_ASSIGN_OR_RETURN(stmt.create_view->name, ExpectIdentifier());
      JUST_RETURN_NOT_OK(ExpectKeyword("AS"));
      JUST_ASSIGN_OR_RETURN(stmt.create_view->select, ParseSelect());
      return stmt;
    }
    JUST_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    Statement stmt;
    stmt.kind = Statement::Kind::kCreateTable;
    stmt.create_table = std::make_unique<CreateTableStmt>();
    JUST_ASSIGN_OR_RETURN(stmt.create_table->name, ExpectIdentifier());
    if (AcceptKeyword("AS")) {
      JUST_ASSIGN_OR_RETURN(stmt.create_table->plugin, ExpectIdentifier());
    } else {
      JUST_RETURN_NOT_OK(ExpectOperator("("));
      for (;;) {
        ColumnDecl col;
        JUST_ASSIGN_OR_RETURN(col.name, ExpectName());
        JUST_ASSIGN_OR_RETURN(col.type_name, ExpectName());
        if (AcceptOperator(":")) {
          JUST_RETURN_NOT_OK(ParseColumnModifier(&col));
        }
        stmt.create_table->columns.push_back(std::move(col));
        if (AcceptOperator(",")) continue;
        JUST_RETURN_NOT_OK(ExpectOperator(")"));
        break;
      }
    }
    if (AcceptKeyword("USERDATA")) {
      if (Cur().type != TokenType::kJson) {
        return Err("USERDATA expects a {...} hint");
      }
      stmt.create_table->userdata_json = Cur().value;
      Advance();
    }
    return stmt;
  }

  Status ParseColumnModifier(ColumnDecl* col) {
    // `primary key` | `srid=4326` | `compress=gzip|zip`.
    if (AcceptKeyword("PRIMARY")) {
      JUST_RETURN_NOT_OK(ExpectKeyword("KEY"));
      col->primary_key = true;
      return Status::OK();
    }
    JUST_ASSIGN_OR_RETURN(std::string key, ExpectName());
    JUST_RETURN_NOT_OK(ExpectOperator("="));
    std::string value;
    if (Cur().type == TokenType::kIdentifier ||
        Cur().type == TokenType::kNumber ||
        Cur().type == TokenType::kKeyword) {
      value = Cur().value;
      Advance();
    } else {
      return Err("expected modifier value");
    }
    // Alternatives 'gzip|zip': keep the first.
    while (AcceptOperator("|")) {
      if (Cur().type == TokenType::kIdentifier ||
          Cur().type == TokenType::kKeyword) {
        Advance();
      }
    }
    std::string lower_key;
    for (char c : key) lower_key += static_cast<char>(std::tolower(c));
    if (lower_key == "srid") {
      col->srid = value;
    } else if (lower_key == "compress") {
      col->compress = value;
    } else {
      return Err("unknown column modifier: " + key);
    }
    return Status::OK();
  }

  /// `<n> <unit>` where unit is one of millisecond(s)/ms, second(s)/s,
  /// minute(s)/min, hour(s)/h, day(s)/d. Returns milliseconds.
  Result<int64_t> ParseDuration() {
    if (Cur().type != TokenType::kNumber) {
      return Err("expected duration count, got '" + Cur().value + "'");
    }
    int64_t count = std::strtoll(Cur().value.c_str(), nullptr, 10);
    Advance();
    JUST_ASSIGN_OR_RETURN(std::string unit, ExpectName());
    std::string lower;
    for (char c : unit) lower += static_cast<char>(std::tolower(c));
    if (!lower.empty() && lower.back() == 's' && lower != "ms" &&
        lower != "s") {
      lower.pop_back();  // plural
    }
    int64_t scale;
    if (lower == "ms" || lower == "millisecond") {
      scale = 1;
    } else if (lower == "s" || lower == "second" || lower == "sec") {
      scale = 1000;
    } else if (lower == "min" || lower == "minute") {
      scale = 60 * 1000;
    } else if (lower == "h" || lower == "hour") {
      scale = 60 * 60 * 1000;
    } else if (lower == "d" || lower == "day") {
      scale = 24 * 60 * 60 * 1000;
    } else {
      return Err("unknown duration unit: " + unit);
    }
    if (count <= 0) return Err("duration must be positive");
    return count * scale;
  }

  Result<Statement> ParseDrop() {
    Advance();  // DROP
    if (AcceptKeyword("CONTINUOUS")) {
      JUST_RETURN_NOT_OK(ExpectKeyword("QUERY"));
      Statement stmt;
      stmt.kind = Statement::Kind::kDropContinuousQuery;
      stmt.drop_continuous_query = std::make_unique<DropContinuousQueryStmt>();
      JUST_ASSIGN_OR_RETURN(stmt.drop_continuous_query->name,
                            ExpectIdentifier());
      return stmt;
    }
    if (AcceptKeyword("INDEX")) {
      Statement stmt;
      stmt.kind = Statement::Kind::kDropIndex;
      stmt.drop_index = std::make_unique<DropIndexStmt>();
      JUST_ASSIGN_OR_RETURN(stmt.drop_index->name, ExpectIdentifier());
      JUST_RETURN_NOT_OK(ExpectKeyword("ON"));
      JUST_ASSIGN_OR_RETURN(stmt.drop_index->table, ExpectIdentifier());
      return stmt;
    }
    Statement stmt;
    stmt.kind = Statement::Kind::kDrop;
    stmt.drop = std::make_unique<DropStmt>();
    if (AcceptKeyword("VIEW")) {
      stmt.drop->is_view = true;
    } else {
      JUST_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    }
    JUST_ASSIGN_OR_RETURN(stmt.drop->name, ExpectIdentifier());
    return stmt;
  }

  Result<Statement> ParseShow() {
    Advance();  // SHOW
    Statement stmt;
    stmt.kind = Statement::Kind::kShow;
    stmt.show = std::make_unique<ShowStmt>();
    if (AcceptKeyword("VIEWS")) {
      stmt.show->views = true;
    } else if (AcceptKeyword("CONTINUOUS")) {
      JUST_RETURN_NOT_OK(ExpectKeyword("QUERIES"));
      stmt.show->continuous_queries = true;
    } else {
      JUST_RETURN_NOT_OK(ExpectKeyword("TABLES"));
    }
    return stmt;
  }

  Result<Statement> ParseDesc() {
    Advance();  // DESC
    Statement stmt;
    stmt.kind = Statement::Kind::kDesc;
    stmt.desc = std::make_unique<DescStmt>();
    if (AcceptKeyword("VIEW")) {
      stmt.desc->is_view = true;
    } else {
      JUST_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    }
    JUST_ASSIGN_OR_RETURN(stmt.desc->name, ExpectIdentifier());
    return stmt;
  }

  Result<Statement> ParseLoad() {
    Advance();  // LOAD
    Statement stmt;
    stmt.kind = Statement::Kind::kLoad;
    stmt.load = std::make_unique<LoadStmt>();
    JUST_ASSIGN_OR_RETURN(stmt.load->source_kind, ExpectIdentifier());
    JUST_RETURN_NOT_OK(ExpectOperator(":"));
    JUST_ASSIGN_OR_RETURN(stmt.load->source_path, ParsePathLike());
    JUST_RETURN_NOT_OK(ExpectKeyword("TO"));
    // Optional 'geomesa:' target prefix.
    if (Cur().type == TokenType::kIdentifier &&
        Peek().IsOperator(":")) {
      Advance();
      Advance();
    }
    JUST_ASSIGN_OR_RETURN(stmt.load->target_table, ExpectIdentifier());
    if (AcceptKeyword("CONFIG")) {
      if (Cur().type != TokenType::kJson) {
        return Err("CONFIG expects a {...} mapping");
      }
      stmt.load->config_json = Cur().value;
      Advance();
    }
    if (AcceptKeyword("FILTER")) {
      if (Cur().type != TokenType::kString) {
        return Err("FILTER expects a string");
      }
      stmt.load->filter = Cur().value;
      Advance();
    }
    return stmt;
  }

  // A quoted path or dotted identifier chain (hive db.table).
  Result<std::string> ParsePathLike() {
    if (Cur().type == TokenType::kString) {
      std::string path = Cur().value;
      Advance();
      return path;
    }
    JUST_ASSIGN_OR_RETURN(std::string path, ExpectIdentifier());
    while (AcceptOperator(".")) {
      JUST_ASSIGN_OR_RETURN(std::string part, ExpectIdentifier());
      path += "." + part;
    }
    return path;
  }

  Result<Statement> ParseStore() {
    Advance();  // STORE
    JUST_RETURN_NOT_OK(ExpectKeyword("VIEW"));
    Statement stmt;
    stmt.kind = Statement::Kind::kStoreView;
    stmt.store_view = std::make_unique<StoreViewStmt>();
    JUST_ASSIGN_OR_RETURN(stmt.store_view->view, ExpectIdentifier());
    JUST_RETURN_NOT_OK(ExpectKeyword("TO"));
    JUST_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    JUST_ASSIGN_OR_RETURN(stmt.store_view->table, ExpectIdentifier());
    return stmt;
  }

  Result<Statement> ParseInsert() {
    Advance();  // INSERT
    Statement stmt;
    stmt.kind = Statement::Kind::kInsert;
    stmt.insert = std::make_unique<InsertStmt>();
    stmt.insert->stream = AcceptKeyword("STREAM");
    JUST_RETURN_NOT_OK(ExpectKeyword("INTO"));
    JUST_ASSIGN_OR_RETURN(stmt.insert->table, ExpectIdentifier());
    JUST_RETURN_NOT_OK(ExpectKeyword("VALUES"));
    for (;;) {
      JUST_RETURN_NOT_OK(ExpectOperator("("));
      std::vector<std::unique_ptr<Expr>> row;
      for (;;) {
        JUST_ASSIGN_OR_RETURN(auto expr, ParseExpr());
        row.push_back(std::move(expr));
        if (AcceptOperator(",")) continue;
        JUST_RETURN_NOT_OK(ExpectOperator(")"));
        break;
      }
      stmt.insert->rows.push_back(std::move(row));
      if (!AcceptOperator(",")) break;
    }
    return stmt;
  }

  // --- expressions ---

  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }

  Result<std::unique_ptr<Expr>> ParseOr() {
    JUST_ASSIGN_OR_RETURN(auto lhs, ParseAnd());
    while (AcceptKeyword("OR")) {
      JUST_ASSIGN_OR_RETURN(auto rhs, ParseAnd());
      lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    JUST_ASSIGN_OR_RETURN(auto lhs, ParseComparison());
    while (AcceptKeyword("AND")) {
      JUST_ASSIGN_OR_RETURN(auto rhs, ParseComparison());
      lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    JUST_ASSIGN_OR_RETURN(auto lhs, ParseAdditive());
    if (AcceptKeyword("WITHIN")) {
      JUST_ASSIGN_OR_RETURN(auto rhs, ParseAdditive());
      return Expr::Binary(BinaryOp::kWithin, std::move(lhs), std::move(rhs));
    }
    if (AcceptKeyword("IN")) {
      JUST_ASSIGN_OR_RETURN(auto rhs, ParseAdditive());
      return Expr::Binary(BinaryOp::kIn, std::move(lhs), std::move(rhs));
    }
    if (AcceptKeyword("BETWEEN")) {
      JUST_ASSIGN_OR_RETURN(auto lo, ParseAdditive());
      JUST_RETURN_NOT_OK(ExpectKeyword("AND"));
      JUST_ASSIGN_OR_RETURN(auto hi, ParseAdditive());
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kBinary;
      e->op = BinaryOp::kBetween;
      e->args.push_back(std::move(lhs));
      e->args.push_back(std::move(lo));
      e->args.push_back(std::move(hi));
      return e;
    }
    struct OpMap {
      const char* text;
      BinaryOp op;
    };
    static const OpMap kOps[] = {{"=", BinaryOp::kEq},  {"!=", BinaryOp::kNe},
                                 {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
                                 {"<", BinaryOp::kLt},  {">", BinaryOp::kGt}};
    for (const OpMap& entry : kOps) {
      if (AcceptOperator(entry.text)) {
        JUST_ASSIGN_OR_RETURN(auto rhs, ParseAdditive());
        return Expr::Binary(entry.op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    JUST_ASSIGN_OR_RETURN(auto lhs, ParseMultiplicative());
    for (;;) {
      if (AcceptOperator("+")) {
        JUST_ASSIGN_OR_RETURN(auto rhs, ParseMultiplicative());
        lhs = Expr::Binary(BinaryOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (AcceptOperator("-")) {
        JUST_ASSIGN_OR_RETURN(auto rhs, ParseMultiplicative());
        lhs = Expr::Binary(BinaryOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<std::unique_ptr<Expr>> ParseMultiplicative() {
    JUST_ASSIGN_OR_RETURN(auto lhs, ParseUnary());
    for (;;) {
      if (AcceptOperator("*")) {
        JUST_ASSIGN_OR_RETURN(auto rhs, ParseUnary());
        lhs = Expr::Binary(BinaryOp::kMul, std::move(lhs), std::move(rhs));
      } else if (AcceptOperator("/")) {
        JUST_ASSIGN_OR_RETURN(auto rhs, ParseUnary());
        lhs = Expr::Binary(BinaryOp::kDiv, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (AcceptOperator("-")) {
      JUST_ASSIGN_OR_RETURN(auto operand, ParseUnary());
      return Expr::Binary(BinaryOp::kSub,
                          Expr::Literal(exec::Value::Int(0)),
                          std::move(operand));
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& token = Cur();
    switch (token.type) {
      case TokenType::kNumber: {
        std::string text = token.value;
        Advance();
        if (text.find('.') != std::string::npos ||
            text.find('e') != std::string::npos ||
            text.find('E') != std::string::npos) {
          return Expr::Literal(
              exec::Value::Double(std::strtod(text.c_str(), nullptr)));
        }
        return Expr::Literal(
            exec::Value::Int(std::strtoll(text.c_str(), nullptr, 10)));
      }
      case TokenType::kString: {
        std::string text = token.value;
        Advance();
        return Expr::Literal(exec::Value::String(std::move(text)));
      }
      case TokenType::kKeyword: {
        if (token.value == "TRUE") {
          Advance();
          return Expr::Literal(exec::Value::Bool(true));
        }
        if (token.value == "FALSE") {
          Advance();
          return Expr::Literal(exec::Value::Bool(false));
        }
        if (token.value == "NULL") {
          Advance();
          return Expr::Literal(exec::Value::Null());
        }
        return Err("unexpected keyword in expression: " + token.value);
      }
      case TokenType::kIdentifier: {
        std::string name = token.value;
        Advance();
        if (AcceptOperator("(")) {
          std::vector<std::unique_ptr<Expr>> args;
          if (!AcceptOperator(")")) {
            for (;;) {
              if (AcceptOperator("*")) {
                args.push_back(Expr::Star());  // COUNT(*)
              } else {
                JUST_ASSIGN_OR_RETURN(auto arg, ParseExpr());
                args.push_back(std::move(arg));
              }
              if (AcceptOperator(",")) continue;
              JUST_RETURN_NOT_OK(ExpectOperator(")"));
              break;
            }
          }
          return Expr::Call(std::move(name), std::move(args));
        }
        // Qualified column a.b: keep the last component.
        while (AcceptOperator(".")) {
          JUST_ASSIGN_OR_RETURN(name, ExpectIdentifier());
        }
        return Expr::Column(std::move(name));
      }
      case TokenType::kOperator: {
        if (token.IsOperator("(")) {
          Advance();
          JUST_ASSIGN_OR_RETURN(auto inner, ParseExpr());
          JUST_RETURN_NOT_OK(ExpectOperator(")"));
          return inner;
        }
        return Err("unexpected operator in expression: '" + token.value +
                   "'");
      }
      default:
        return Err("unexpected end of expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(const std::string& sql) {
  JUST_ASSIGN_OR_RETURN(auto tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace just::sql
