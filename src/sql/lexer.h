#ifndef JUST_SQL_LEXER_H_
#define JUST_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace just::sql {

enum class TokenType {
  kIdentifier,  ///< unquoted word, not a keyword (value holds original case)
  kKeyword,     ///< reserved word (value upper-cased)
  kNumber,
  kString,      ///< quoted literal (value unescaped, quotes stripped)
  kJson,        ///< balanced {...} blob (value includes braces)
  kOperator,    ///< punctuation / comparison
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string value;
  size_t offset = 0;  ///< byte offset in the input, for error messages

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && value == kw;
  }
  bool IsOperator(const char* op) const {
    return type == TokenType::kOperator && value == op;
  }
};

/// Tokenizes a JustQL statement. Keywords are recognized case-insensitively;
/// `{...}` blobs (USERDATA / CONFIG hints) are captured as single kJson
/// tokens.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace just::sql

#endif  // JUST_SQL_LEXER_H_
