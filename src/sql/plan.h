#ifndef JUST_SQL_PLAN_H_
#define JUST_SQL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/dataframe.h"
#include "exec/operators.h"
#include "sql/ast.h"

namespace just::sql {

/// A logical plan node (Section VI). The analyzer builds the tree from a
/// parsed SELECT; the optimizer rewrites it; the executor translates it into
/// GeoMesa SCANs + DataFrame operations.
struct PlanNode {
  enum class Kind {
    kScanTable,
    kScanView,
    kFilter,
    kProject,
    kAggregate,
    kSort,
    kLimit,
    kJoin,
  };

  Kind kind = Kind::kScanTable;
  std::vector<std::unique_ptr<PlanNode>> children;
  /// Output schema, filled by the analyzer.
  std::shared_ptr<exec::Schema> schema;

  // kScanTable / kScanView:
  std::string name;
  /// Columns the executor must materialize; empty = all. Populated by the
  /// projection-pushdown rule (Section VI rule 3).
  std::vector<std::string> required_columns;
  /// The physical access path the executor would choose for this scan
  /// ("st_range", "secondary_index", ...). Filled only by the engine-aware
  /// Optimize overload (EXPLAIN); empty otherwise.
  std::string access_hint;

  // kFilter:
  std::unique_ptr<Expr> predicate;

  // kProject:
  std::vector<SelectItem> items;

  // kAggregate:
  std::vector<std::string> group_by;
  std::vector<exec::Aggregate> aggregates;

  // kSort:
  std::vector<OrderItem> order_by;

  // kLimit:
  long limit = 0;

  // kJoin:
  std::string join_left_col;
  std::string join_right_col;

  /// Indented rendering for tests / EXPLAIN (matches Figure 8's shape).
  std::string ToString(int indent = 0) const;
};

std::unique_ptr<PlanNode> MakePlanNode(PlanNode::Kind kind);

}  // namespace just::sql

#endif  // JUST_SQL_PLAN_H_
