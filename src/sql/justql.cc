#include "sql/justql.h"

#include <cctype>
#include <chrono>

#include "common/json.h"
#include "core/loader.h"
#include "core/plugins.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/analyzer.h"
#include "sql/executor.h"
#include "sql/expr_eval.h"
#include "sql/optimizer.h"
#include "sql/parser.h"

namespace just::sql {

namespace {

exec::DataFrame MessageFrame(const std::string& column,
                             const std::vector<std::string>& values) {
  auto schema = std::make_shared<exec::Schema>();
  schema->AddField({column, exec::DataType::kString});
  exec::DataFrame frame(schema);
  for (const std::string& v : values) {
    frame.AddRow({exec::Value::String(v)});
  }
  return frame;
}

Result<int64_t> ParsePeriodName(const std::string& name) {
  std::string lower;
  for (char c : name) lower += static_cast<char>(std::tolower(c));
  if (lower == "day") return kMillisPerDay;
  if (lower == "week") return kMillisPerWeek;
  if (lower == "month") return kMillisPerMonth;
  if (lower == "year") return kMillisPerYear;
  if (lower == "century") return kMillisPerCentury;
  return Status::InvalidArgument("unknown time period: " + name);
}

// Applies the USERDATA hint: {'geomesa.indices.enabled':'z3,xz2t'} selects
// indexes, {'just.period':'day|week|month|year|century'} the Eq. (1) bin.
Status ApplyUserdata(const std::string& json, meta::TableMeta* table) {
  if (json.empty()) return Status::OK();
  JUST_ASSIGN_OR_RETURN(auto doc, ParseJson(json));
  int64_t period = kMillisPerDay;
  std::string period_name = doc.GetString("just.period");
  if (!period_name.empty()) {
    JUST_ASSIGN_OR_RETURN(period, ParsePeriodName(period_name));
  }
  std::string attrs = doc.GetString("just.attr.indexes");
  if (!attrs.empty()) {
    std::string current;
    for (char c : attrs) {
      if (c == ',' || c == ' ') {
        if (!current.empty()) table->attr_indexes.push_back(current);
        current.clear();
      } else {
        current += c;
      }
    }
    if (!current.empty()) table->attr_indexes.push_back(current);
  }
  std::string enabled = doc.GetString("geomesa.indices.enabled");
  if (!enabled.empty()) {
    table->indexes.clear();
    std::string current;
    auto flush = [&]() -> Status {
      if (current.empty()) return Status::OK();
      JUST_ASSIGN_OR_RETURN(auto type, curve::ParseIndexType(current));
      table->indexes.push_back({type, period});
      current.clear();
      return Status::OK();
    };
    for (char c : enabled) {
      if (c == ',' || c == ' ') {
        JUST_RETURN_NOT_OK(flush());
      } else {
        current += c;
      }
    }
    JUST_RETURN_NOT_OK(flush());
  } else if (!period_name.empty()) {
    for (auto& index : table->indexes) index.period_len_ms = period;
  }
  return Status::OK();
}

// Renders the LSM level layout + compaction totals from the metrics
// registry: one line per level (summed across every live store in the
// process) and one compaction summary line. Appended to EXPLAIN ANALYZE so
// the storage shape behind the plan's I/O numbers is visible in place.
// Token names deliberately avoid the span-counter tokens (" bytes_read=",
// " rows_scanned=", ...) that explain_analyze_test sums over the output.
std::string LsmStorageSummary() {
  obs::RegistrySnapshot snap = obs::Registry::Global().GetSnapshot();
  std::string out = "=== Storage (LSM levels) ===\n";
  for (int level = 0;; ++level) {
    std::string files_name = "just_kv_level" + std::to_string(level) +
                             "_files";
    if (snap.gauges.find(files_name) == snap.gauges.end()) break;
    out += "L" + std::to_string(level) + ": files=" +
           std::to_string(snap.gauge(files_name)) + " size_bytes=" +
           std::to_string(snap.gauge("just_kv_level" + std::to_string(level) +
                                     "_bytes")) +
           "\n";
  }
  out += "compactions=" +
         std::to_string(snap.counter("just_kv_compactions_total")) +
         " compaction_in=" +
         std::to_string(snap.counter("just_kv_compaction_input_bytes_total")) +
         " compaction_out=" +
         std::to_string(
             snap.counter("just_kv_compaction_output_bytes_total")) +
         " flush_out=" +
         std::to_string(snap.counter("just_kv_flush_output_bytes_total")) +
         " write_amp_x100=" +
         std::to_string(snap.gauge("just_kv_write_amp_x100")) + "\n";
  return out;
}

}  // namespace

Result<std::string> JustQL::ExplainSelect(const std::string& user,
                                          const std::string& sql) {
  JUST_ASSIGN_OR_RETURN(auto stmt, ParseStatement(sql));
  if (stmt.kind != Statement::Kind::kSelect) {
    return Status::InvalidArgument("EXPLAIN supports SELECT only");
  }
  Analyzer analyzer(engine_, user);
  JUST_ASSIGN_OR_RETURN(auto plan, analyzer.Analyze(*stmt.select));
  std::string out = "=== Analyzed Logical Plan ===\n" + plan->ToString();
  JUST_ASSIGN_OR_RETURN(plan, Optimize(std::move(plan), engine_, user));
  out += "=== Optimized Logical Plan ===\n" + plan->ToString();
  return out;
}

Result<QueryResult> JustQL::Execute(const std::string& user,
                                    const std::string& sql) {
  static obs::Counter* statements =
      obs::Registry::Global().GetCounter("just_sql_statements_total");
  static obs::Histogram* latency =
      obs::Registry::Global().GetHistogram("just_sql_statement_us");
  statements->Increment();
  const auto start = std::chrono::steady_clock::now();
  core::QueryStats stats;
  auto result = ExecuteParsed(user, sql, &stats);
  const uint64_t wall_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  latency->Record(wall_us);
  if (engine_->slow_query_log() != nullptr) {
    obs::SlowQueryEntry entry;
    entry.user = user;
    entry.sql = sql;
    entry.wall_us = wall_us;
    entry.rows = result.ok() ? result->frame.num_rows() : 0;
    entry.rows_scanned = stats.rows_scanned;
    entry.key_ranges = stats.key_ranges;
    if (result.ok()) entry.trace_json = result->trace_json;
    engine_->slow_query_log()->MaybeRecord(std::move(entry));
  }
  return result;
}

Result<QueryResult> JustQL::ExecuteParsed(const std::string& user,
                                          const std::string& sql,
                                          core::QueryStats* stats) {
  JUST_ASSIGN_OR_RETURN(auto stmt, ParseStatement(sql));
  QueryResult result;
  switch (stmt.kind) {
    case Statement::Kind::kSelect: {
      Analyzer analyzer(engine_, user);
      JUST_ASSIGN_OR_RETURN(auto plan, analyzer.Analyze(*stmt.select));
      JUST_ASSIGN_OR_RETURN(plan, Optimize(std::move(plan)));
      Executor executor(engine_, user);
      JUST_ASSIGN_OR_RETURN(result.frame, executor.Execute(*plan, stats));
      return result;
    }
    case Statement::Kind::kExplain: {
      const ExplainStmt& explain = *stmt.explain;
      Analyzer analyzer(engine_, user);
      JUST_ASSIGN_OR_RETURN(auto plan, analyzer.Analyze(*explain.select));
      JUST_ASSIGN_OR_RETURN(plan, Optimize(std::move(plan), engine_, user));
      if (!explain.analyze) {
        result.message =
            "=== Optimized Logical Plan ===\n" + plan->ToString();
        return result;
      }
      // EXPLAIN ANALYZE: run the plan under a trace; every physical
      // operator (and the storage layers beneath it) contributes a span.
      obs::Trace trace("Query");
      {
        obs::SpanScope scope(trace.root());
        Executor executor(engine_, user);
        JUST_ASSIGN_OR_RETURN(result.frame, executor.Execute(*plan, stats));
      }
      trace.root()->counters().rows_out.store(result.frame.num_rows(),
                                              std::memory_order_relaxed);
      trace.root()->End();
      result.message =
          "=== EXPLAIN ANALYZE ===\n" + trace.ToString() + LsmStorageSummary();
      result.trace_json = trace.ToJson();
      return result;
    }
    case Statement::Kind::kCreateTable: {
      const CreateTableStmt& create = *stmt.create_table;
      if (!create.plugin.empty()) {
        if (!core::IsKnownPlugin(create.plugin)) {
          return Status::InvalidArgument("unknown plugin table type: " +
                                         create.plugin);
        }
        JUST_ASSIGN_OR_RETURN(
            auto table, core::MakePluginTable(create.plugin, user,
                                              create.name));
        JUST_RETURN_NOT_OK(ApplyUserdata(create.userdata_json, &table));
        JUST_RETURN_NOT_OK(engine_->catalog()->CreateTable(&table));
        result.message = "plugin table created: " + create.name;
        return result;
      }
      meta::TableMeta table;
      table.user = user;
      table.name = create.name;
      for (const ColumnDecl& decl : create.columns) {
        meta::ColumnDef col;
        col.name = decl.name;
        JUST_ASSIGN_OR_RETURN(col.type,
                              exec::ParseDataType(decl.type_name));
        col.primary_key = decl.primary_key;
        col.srid = decl.srid;
        col.compress = decl.compress;
        table.columns.push_back(std::move(col));
      }
      // Engine fills special columns + default indexes; USERDATA overrides.
      // Defaults must be computed before overrides, so create via engine
      // only when no USERDATA; otherwise prepare, apply, then create.
      if (create.userdata_json.empty()) {
        JUST_RETURN_NOT_OK(engine_->CreateTable(std::move(table)));
      } else {
        // Let the engine infer special columns by round-tripping through
        // its defaulting logic first.
        meta::TableMeta prepared = table;
        // Infer special columns the same way CreateTable does.
        for (const auto& col : prepared.columns) {
          if (prepared.fid_column.empty() && col.primary_key) {
            prepared.fid_column = col.name;
          }
          if (prepared.geom_column.empty() &&
              (col.type == exec::DataType::kGeometry ||
               col.type == exec::DataType::kTrajectory)) {
            prepared.geom_column = col.name;
          }
          if (prepared.time_column.empty() &&
              col.type == exec::DataType::kTimestamp) {
            prepared.time_column = col.name;
          }
        }
        JUST_RETURN_NOT_OK(ApplyUserdata(create.userdata_json, &prepared));
        JUST_RETURN_NOT_OK(engine_->CreateTable(std::move(prepared)));
      }
      result.message = "table created: " + create.name;
      return result;
    }
    case Statement::Kind::kCreateView: {
      Analyzer analyzer(engine_, user);
      JUST_ASSIGN_OR_RETURN(auto plan,
                            analyzer.Analyze(*stmt.create_view->select));
      JUST_ASSIGN_OR_RETURN(plan, Optimize(std::move(plan)));
      Executor executor(engine_, user);
      JUST_ASSIGN_OR_RETURN(auto frame, executor.Execute(*plan));
      JUST_RETURN_NOT_OK(
          engine_->CreateView(user, stmt.create_view->name, std::move(frame)));
      result.message = "view created: " + stmt.create_view->name;
      return result;
    }
    case Statement::Kind::kCreateIndex: {
      const CreateIndexStmt& ci = *stmt.create_index;
      // Synchronous from the caller's view, but never blocks writers: the
      // index registers as `building`, backfills online, and flips to
      // `ready` atomically (see JustEngine::CreateIndex).
      JUST_RETURN_NOT_OK(
          engine_->CreateIndex(user, ci.table, ci.name, ci.column));
      result.message = "index created: " + ci.name + " on " + ci.table +
                       "(" + ci.column + ")";
      return result;
    }
    case Statement::Kind::kDropIndex: {
      JUST_RETURN_NOT_OK(engine_->DropIndex(user, stmt.drop_index->table,
                                            stmt.drop_index->name));
      result.message = "index dropped: " + stmt.drop_index->name;
      return result;
    }
    case Statement::Kind::kCreateContinuousQuery: {
      const CreateContinuousQueryStmt& cq = *stmt.create_continuous_query;
      JUST_ASSIGN_OR_RETURN(auto table_meta,
                            engine_->DescribeTable(user, cq.table));
      stream::ContinuousQuerySpec spec;
      spec.name = cq.name;
      spec.user = user;
      spec.table = cq.table;
      if (cq.where != nullptr) spec.predicate_sql = cq.where->ToString();
      spec.group_by = cq.group_by;
      spec.window_ms = cq.window_ms;
      // Same cache tag as the executor's scans: the CQ shares the compiled
      // predicate program with ad-hoc queries of this catalog generation.
      const std::string cache_tag = std::to_string(table_meta.table_id) +
                                    ":" +
                                    std::to_string(table_meta.generation);
      int fid_col = table_meta.fid_column.empty()
                        ? -1
                        : table_meta.ColumnIndex(table_meta.fid_column);
      int time_col = table_meta.time_column.empty()
                         ? -1
                         : table_meta.ColumnIndex(table_meta.time_column);
      JUST_RETURN_NOT_OK(engine_->stream_hub()->Register(
          std::move(spec), table_meta.MakeSchema(), cq.where.get(),
          cache_tag, fid_col, time_col));
      result.message = "continuous query created: " + cq.name + " on " +
                       cq.table;
      return result;
    }
    case Statement::Kind::kDropContinuousQuery: {
      JUST_RETURN_NOT_OK(engine_->stream_hub()->Unregister(
          user, stmt.drop_continuous_query->name));
      result.message =
          "continuous query dropped: " + stmt.drop_continuous_query->name;
      return result;
    }
    case Statement::Kind::kDrop: {
      if (stmt.drop->is_view) {
        JUST_RETURN_NOT_OK(engine_->DropView(user, stmt.drop->name));
        result.message = "view dropped: " + stmt.drop->name;
      } else {
        JUST_RETURN_NOT_OK(engine_->DropTable(user, stmt.drop->name));
        result.message = "table dropped: " + stmt.drop->name;
      }
      return result;
    }
    case Statement::Kind::kShow: {
      if (stmt.show->continuous_queries) {
        auto schema = std::make_shared<exec::Schema>();
        schema->AddField({"name", exec::DataType::kString});
        schema->AddField({"table", exec::DataType::kString});
        schema->AddField({"kind", exec::DataType::kString});
        schema->AddField({"predicate", exec::DataType::kString});
        schema->AddField({"group_by", exec::DataType::kString});
        schema->AddField({"window_ms", exec::DataType::kInt});
        schema->AddField({"matches", exec::DataType::kInt});
        schema->AddField({"notifications", exec::DataType::kInt});
        schema->AddField({"dropped", exec::DataType::kInt});
        exec::DataFrame frame(schema);
        for (const auto& info : engine_->stream_hub()->List(user)) {
          frame.AddRow(
              {exec::Value::String(info.name), exec::Value::String(info.table),
               exec::Value::String(info.kind),
               exec::Value::String(info.predicate_sql),
               exec::Value::String(info.group_by),
               exec::Value::Int(info.window_ms),
               exec::Value::Int(static_cast<int64_t>(info.matches)),
               exec::Value::Int(static_cast<int64_t>(info.notifications)),
               exec::Value::Int(static_cast<int64_t>(info.dropped))});
        }
        result.frame = std::move(frame);
      } else if (stmt.show->views) {
        result.frame = MessageFrame("view", engine_->ShowViews(user));
      } else {
        result.frame = MessageFrame("table", engine_->ShowTables(user));
      }
      return result;
    }
    case Statement::Kind::kDesc: {
      auto schema = std::make_shared<exec::Schema>();
      schema->AddField({"column", exec::DataType::kString});
      schema->AddField({"type", exec::DataType::kString});
      schema->AddField({"modifiers", exec::DataType::kString});
      exec::DataFrame frame(schema);
      if (stmt.desc->is_view) {
        JUST_ASSIGN_OR_RETURN(auto view,
                              engine_->GetView(user, stmt.desc->name));
        for (const auto& f : view.schema().fields()) {
          frame.AddRow({exec::Value::String(f.name),
                        exec::Value::String(exec::DataTypeName(f.type)),
                        exec::Value::String("")});
        }
      } else {
        JUST_ASSIGN_OR_RETURN(auto table,
                              engine_->DescribeTable(user, stmt.desc->name));
        for (const auto& col : table.columns) {
          std::string mods;
          if (col.primary_key) mods += "primary key ";
          if (!col.srid.empty()) mods += "srid=" + col.srid + " ";
          if (!col.compress.empty()) mods += "compress=" + col.compress;
          frame.AddRow({exec::Value::String(col.name),
                        exec::Value::String(exec::DataTypeName(col.type)),
                        exec::Value::String(mods)});
        }
      }
      result.frame = std::move(frame);
      return result;
    }
    case Statement::Kind::kLoad: {
      const LoadStmt& load = *stmt.load;
      if (load.source_kind != "csv" && load.source_kind != "file") {
        return Status::NotSupported(
            "only csv:'<path>' sources are available in this build (got " +
            load.source_kind + ")");
      }
      core::LoadConfig config;
      if (!load.config_json.empty()) {
        JUST_ASSIGN_OR_RETURN(auto doc, ParseJson(load.config_json));
        for (const auto& [key, value] : doc.object_members()) {
          if (value.is_string()) {
            config.mapping[key] = value.string_value();
          }
        }
      }
      if (!load.filter.empty()) {
        // FILTER 'limit N' simplification.
        size_t pos = load.filter.find("limit");
        if (pos != std::string::npos) {
          config.limit = std::strtol(load.filter.c_str() + pos + 5, nullptr,
                                     10);
        }
      }
      JUST_ASSIGN_OR_RETURN(
          size_t loaded,
          core::LoadCsv(engine_, user, load.target_table, load.source_path,
                        config));
      result.message = "loaded " + std::to_string(loaded) + " rows into " +
                       load.target_table;
      return result;
    }
    case Statement::Kind::kStoreView: {
      JUST_RETURN_NOT_OK(engine_->StoreViewToTable(
          user, stmt.store_view->view, stmt.store_view->table));
      result.message = "view " + stmt.store_view->view + " stored to " +
                       stmt.store_view->table;
      return result;
    }
    case Statement::Kind::kInsert: {
      JUST_ASSIGN_OR_RETURN(auto table_meta,
                            engine_->DescribeTable(user, stmt.insert->table));
      std::vector<exec::Row> rows;
      for (const auto& value_list : stmt.insert->rows) {
        if (value_list.size() != table_meta.columns.size()) {
          return Status::InvalidArgument(
              "INSERT width mismatch: expected " +
              std::to_string(table_meta.columns.size()) + " values");
        }
        exec::Row row;
        for (size_t i = 0; i < value_list.size(); ++i) {
          JUST_ASSIGN_OR_RETURN(auto value,
                                EvaluateConstant(*value_list[i]));
          // Coerce strings to timestamps for date columns.
          if (table_meta.columns[i].type == exec::DataType::kTimestamp &&
              value.type() == exec::DataType::kString) {
            JUST_ASSIGN_OR_RETURN(auto ts,
                                  ParseTimestamp(value.string_value()));
            value = exec::Value::Timestamp(ts);
          }
          row.push_back(std::move(value));
        }
        rows.push_back(std::move(row));
      }
      if (stmt.insert->stream) {
        JUST_RETURN_NOT_OK(
            engine_->InsertStream(user, stmt.insert->table, rows));
        result.message =
            "streamed " + std::to_string(rows.size()) + " rows";
      } else {
        JUST_RETURN_NOT_OK(
            engine_->InsertBatch(user, stmt.insert->table, rows));
        result.message =
            "inserted " + std::to_string(rows.size()) + " rows";
      }
      return result;
    }
  }
  return Status::Internal("unhandled statement kind");
}

}  // namespace just::sql
