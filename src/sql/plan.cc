#include "sql/plan.h"

namespace just::sql {

std::unique_ptr<PlanNode> MakePlanNode(PlanNode::Kind kind) {
  auto node = std::make_unique<PlanNode>();
  node->kind = kind;
  return node;
}

std::string PlanNode::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad;
  switch (kind) {
    case Kind::kScanTable:
    case Kind::kScanView: {
      out += kind == Kind::kScanTable ? "Scan [" : "ScanView [";
      out += name;
      if (!required_columns.empty()) {
        out += " | columns: ";
        for (size_t i = 0; i < required_columns.size(); ++i) {
          if (i) out += ", ";
          out += required_columns[i];
        }
      }
      if (!access_hint.empty()) out += " | access: " + access_hint;
      out += "]\n";
      break;
    }
    case Kind::kFilter:
      out += "Filter [" + (predicate ? predicate->ToString() : "true") +
             "]\n";
      break;
    case Kind::kProject: {
      out += "Project [";
      for (size_t i = 0; i < items.size(); ++i) {
        if (i) out += ", ";
        out += items[i].expr->ToString();
        if (!items[i].alias.empty()) out += " AS " + items[i].alias;
      }
      out += "]\n";
      break;
    }
    case Kind::kAggregate: {
      out += "Aggregate [group by: ";
      for (size_t i = 0; i < group_by.size(); ++i) {
        if (i) out += ", ";
        out += group_by[i];
      }
      out += " | aggs: ";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i) out += ", ";
        out += aggregates[i].output_name;
      }
      out += "]\n";
      break;
    }
    case Kind::kSort: {
      out += "Sort [";
      for (size_t i = 0; i < order_by.size(); ++i) {
        if (i) out += ", ";
        out += order_by[i].column + (order_by[i].ascending ? "" : " DESC");
      }
      out += "]\n";
      break;
    }
    case Kind::kLimit:
      out += "Limit [" + std::to_string(limit) + "]\n";
      break;
    case Kind::kJoin:
      out += "Join [" + join_left_col + " = " + join_right_col + "]\n";
      break;
  }
  for (const auto& child : children) {
    out += child->ToString(indent + 1);
  }
  return out;
}

}  // namespace just::sql
