#include "sql/functions.h"

#include <cmath>
#include <map>
#include <mutex>

#include "geo/coord_transform.h"
#include "geo/geometry.h"
#include "traj/dbscan.h"
#include "traj/map_matching.h"
#include "traj/preprocess.h"

namespace just::sql {

namespace {

Status ArityError(const std::string& name, size_t want, size_t got) {
  return Status::InvalidArgument(name + " expects " + std::to_string(want) +
                                 " arguments, got " + std::to_string(got));
}

Result<double> NumArg(const std::string& fn, const std::vector<exec::Value>& a,
                      size_t i) {
  auto d = a[i].AsDouble();
  if (!d.ok()) {
    return Status::InvalidArgument(fn + ": argument " + std::to_string(i) +
                                   " must be numeric");
  }
  return d.value();
}

Result<geo::Geometry> GeomArg(const std::string& fn,
                              const std::vector<exec::Value>& a, size_t i) {
  if (a[i].type() == exec::DataType::kGeometry) return a[i].geometry_value();
  if (a[i].type() == exec::DataType::kTrajectory &&
      a[i].trajectory_value() != nullptr) {
    // Treat a trajectory as its path polyline.
    std::vector<geo::Point> pts;
    for (const auto& p : a[i].trajectory_value()->points()) {
      pts.push_back(p.position);
    }
    return geo::Geometry::MakeLineString(std::move(pts));
  }
  return Status::InvalidArgument(fn + ": argument " + std::to_string(i) +
                                 " must be a geometry");
}

Result<std::shared_ptr<const traj::Trajectory>> TrajArg(
    const std::string& fn, const exec::Value& v) {
  if (v.type() != exec::DataType::kTrajectory ||
      v.trajectory_value() == nullptr) {
    return Status::InvalidArgument(fn + " expects an st_series (item) value");
  }
  return v.trajectory_value();
}

std::vector<ScalarFunction> MakeScalarFunctions() {
  std::vector<ScalarFunction> fns;

  fns.push_back({"st_makembr", exec::DataType::kGeometry,
                 [](const std::vector<exec::Value>& a)
                     -> Result<exec::Value> {
                   if (a.size() != 4) return ArityError("st_makeMBR", 4,
                                                        a.size());
                   JUST_ASSIGN_OR_RETURN(double x0, NumArg("st_makeMBR", a, 0));
                   JUST_ASSIGN_OR_RETURN(double y0, NumArg("st_makeMBR", a, 1));
                   JUST_ASSIGN_OR_RETURN(double x1, NumArg("st_makeMBR", a, 2));
                   JUST_ASSIGN_OR_RETURN(double y1, NumArg("st_makeMBR", a, 3));
                   geo::Mbr box = geo::Mbr::Of(x0, y0, x1, y1);
                   return exec::Value::GeometryVal(geo::Geometry::MakePolygon(
                       {{box.lng_min, box.lat_min},
                        {box.lng_max, box.lat_min},
                        {box.lng_max, box.lat_max},
                        {box.lng_min, box.lat_max}}));
                 }});

  fns.push_back({"st_makepoint", exec::DataType::kGeometry,
                 [](const std::vector<exec::Value>& a)
                     -> Result<exec::Value> {
                   if (a.size() != 2) return ArityError("st_makePoint", 2,
                                                        a.size());
                   JUST_ASSIGN_OR_RETURN(double lng,
                                         NumArg("st_makePoint", a, 0));
                   JUST_ASSIGN_OR_RETURN(double lat,
                                         NumArg("st_makePoint", a, 1));
                   return exec::Value::GeometryVal(
                       geo::Geometry::MakePoint({lng, lat}));
                 }});

  fns.push_back({"st_within", exec::DataType::kBool,
                 [](const std::vector<exec::Value>& a)
                     -> Result<exec::Value> {
                   if (a.size() != 2) return ArityError("st_within", 2,
                                                        a.size());
                   JUST_ASSIGN_OR_RETURN(auto g, GeomArg("st_within", a, 0));
                   JUST_ASSIGN_OR_RETURN(auto box, GeomArg("st_within", a, 1));
                   return exec::Value::Bool(g.Within(box.Bounds()));
                 }});

  fns.push_back({"st_intersects", exec::DataType::kBool,
                 [](const std::vector<exec::Value>& a)
                     -> Result<exec::Value> {
                   if (a.size() != 2) return ArityError("st_intersects", 2,
                                                        a.size());
                   JUST_ASSIGN_OR_RETURN(auto g,
                                         GeomArg("st_intersects", a, 0));
                   JUST_ASSIGN_OR_RETURN(auto box,
                                         GeomArg("st_intersects", a, 1));
                   return exec::Value::Bool(g.Intersects(box.Bounds()));
                 }});

  fns.push_back({"st_distance", exec::DataType::kDouble,
                 [](const std::vector<exec::Value>& a)
                     -> Result<exec::Value> {
                   if (a.size() != 2) return ArityError("st_distance", 2,
                                                        a.size());
                   JUST_ASSIGN_OR_RETURN(auto g1, GeomArg("st_distance", a, 0));
                   JUST_ASSIGN_OR_RETURN(auto g2, GeomArg("st_distance", a, 1));
                   if (g2.is_point()) {
                     return exec::Value::Double(g1.Distance(g2.AsPoint()));
                   }
                   if (g1.is_point()) {
                     return exec::Value::Double(g2.Distance(g1.AsPoint()));
                   }
                   return exec::Value::Double(
                       g1.Bounds().MinDistance(g2.Bounds().Center()));
                 }});

  fns.push_back({"st_distancemeters", exec::DataType::kDouble,
                 [](const std::vector<exec::Value>& a)
                     -> Result<exec::Value> {
                   if (a.size() != 2) {
                     return ArityError("st_distanceMeters", 2, a.size());
                   }
                   JUST_ASSIGN_OR_RETURN(auto g1,
                                         GeomArg("st_distanceMeters", a, 0));
                   JUST_ASSIGN_OR_RETURN(auto g2,
                                         GeomArg("st_distanceMeters", a, 1));
                   return exec::Value::Double(geo::HaversineMeters(
                       g1.Bounds().Center(), g2.Bounds().Center()));
                 }});

  auto coord_fn = [](const char* name, geo::Point (*transform)(
                                           const geo::Point&)) {
    return ScalarFunction{
        name, exec::DataType::kGeometry,
        [name, transform](const std::vector<exec::Value>& a)
            -> Result<exec::Value> {
          // Accepts (geom) or (lng, lat), per the Section V-D example
          // SELECT st_WGS84ToGCJ02(lng, lat).
          if (a.size() == 1) {
            JUST_ASSIGN_OR_RETURN(auto g, GeomArg(name, a, 0));
            if (!g.is_point()) {
              return Status::InvalidArgument(
                  std::string(name) + " expects a point");
            }
            return exec::Value::GeometryVal(
                geo::Geometry::MakePoint(transform(g.AsPoint())));
          }
          if (a.size() == 2) {
            JUST_ASSIGN_OR_RETURN(double lng, NumArg(name, a, 0));
            JUST_ASSIGN_OR_RETURN(double lat, NumArg(name, a, 1));
            return exec::Value::GeometryVal(
                geo::Geometry::MakePoint(transform({lng, lat})));
          }
          return ArityError(name, 2, a.size());
        }};
  };
  fns.push_back(coord_fn("st_wgs84togcj02", &geo::Wgs84ToGcj02));
  fns.push_back(coord_fn("st_gcj02towgs84", &geo::Gcj02ToWgs84));
  fns.push_back(coord_fn("st_gcj02tobd09", &geo::Gcj02ToBd09));
  fns.push_back(coord_fn("st_bd09togcj02", &geo::Bd09ToGcj02));

  fns.push_back({"st_astext", exec::DataType::kString,
                 [](const std::vector<exec::Value>& a)
                     -> Result<exec::Value> {
                   if (a.size() != 1) return ArityError("st_asText", 1,
                                                        a.size());
                   JUST_ASSIGN_OR_RETURN(auto g, GeomArg("st_asText", a, 0));
                   return exec::Value::String(g.ToWkt());
                 }});

  fns.push_back({"st_geomfromtext", exec::DataType::kGeometry,
                 [](const std::vector<exec::Value>& a)
                     -> Result<exec::Value> {
                   if (a.size() != 1 ||
                       a[0].type() != exec::DataType::kString) {
                     return Status::InvalidArgument(
                         "st_geomFromText expects a WKT string");
                   }
                   JUST_ASSIGN_OR_RETURN(
                       auto g, geo::Geometry::FromWkt(a[0].string_value()));
                   return exec::Value::GeometryVal(std::move(g));
                 }});

  fns.push_back({"st_x", exec::DataType::kDouble,
                 [](const std::vector<exec::Value>& a)
                     -> Result<exec::Value> {
                   if (a.size() != 1) return ArityError("st_x", 1, a.size());
                   JUST_ASSIGN_OR_RETURN(auto g, GeomArg("st_x", a, 0));
                   return exec::Value::Double(g.Bounds().Center().lng);
                 }});

  fns.push_back({"st_y", exec::DataType::kDouble,
                 [](const std::vector<exec::Value>& a)
                     -> Result<exec::Value> {
                   if (a.size() != 1) return ArityError("st_y", 1, a.size());
                   JUST_ASSIGN_OR_RETURN(auto g, GeomArg("st_y", a, 0));
                   return exec::Value::Double(g.Bounds().Center().lat);
                 }});

  fns.push_back({"st_trajlengthmeters", exec::DataType::kDouble,
                 [](const std::vector<exec::Value>& a)
                     -> Result<exec::Value> {
                   if (a.size() != 1) {
                     return ArityError("st_trajLengthMeters", 1, a.size());
                   }
                   JUST_ASSIGN_OR_RETURN(
                       auto t, TrajArg("st_trajLengthMeters", a[0]));
                   return exec::Value::Double(t->LengthMeters());
                 }});

  fns.push_back({"st_numpoints", exec::DataType::kInt,
                 [](const std::vector<exec::Value>& a)
                     -> Result<exec::Value> {
                   if (a.size() != 1) return ArityError("st_numPoints", 1,
                                                        a.size());
                   if (a[0].type() == exec::DataType::kTrajectory &&
                       a[0].trajectory_value() != nullptr) {
                     return exec::Value::Int(
                         static_cast<int64_t>(a[0].trajectory_value()->size()));
                   }
                   JUST_ASSIGN_OR_RETURN(auto g, GeomArg("st_numPoints", a, 0));
                   return exec::Value::Int(
                       static_cast<int64_t>(g.points().size()));
                 }});

  fns.push_back({"to_timestamp", exec::DataType::kTimestamp,
                 [](const std::vector<exec::Value>& a)
                     -> Result<exec::Value> {
                   if (a.size() != 1 ||
                       a[0].type() != exec::DataType::kString) {
                     return Status::InvalidArgument(
                         "to_timestamp expects a date string");
                   }
                   JUST_ASSIGN_OR_RETURN(auto ts,
                                         ParseTimestamp(a[0].string_value()));
                   return exec::Value::Timestamp(ts);
                 }});

  fns.push_back({"abs", exec::DataType::kDouble,
                 [](const std::vector<exec::Value>& a)
                     -> Result<exec::Value> {
                   if (a.size() != 1) return ArityError("abs", 1, a.size());
                   JUST_ASSIGN_OR_RETURN(double v, NumArg("abs", a, 0));
                   return exec::Value::Double(std::fabs(v));
                 }});

  return fns;
}

std::shared_ptr<exec::Schema> TrajOutputSchema() {
  auto schema = std::make_shared<exec::Schema>();
  schema->AddField({"tid", exec::DataType::kString});
  schema->AddField({"start_time", exec::DataType::kTimestamp});
  schema->AddField({"end_time", exec::DataType::kTimestamp});
  schema->AddField({"item", exec::DataType::kTrajectory});
  return schema;
}

exec::Row TrajToRow(const traj::Trajectory& t) {
  return {exec::Value::String(t.oid()), exec::Value::Timestamp(t.start_time()),
          exec::Value::Timestamp(t.end_time()),
          exec::Value::TrajectoryVal(
              std::make_shared<const traj::Trajectory>(t))};
}

std::vector<TableFunction> MakeTableFunctions() {
  std::vector<TableFunction> fns;

  fns.push_back(
      {"st_trajnoisefilter", TrajOutputSchema(),
       [](const exec::Value& input, const std::vector<exec::Value>&)
           -> Result<std::vector<exec::Row>> {
         JUST_ASSIGN_OR_RETURN(auto t, TrajArg("st_trajNoiseFilter", input));
         return std::vector<exec::Row>{TrajToRow(traj::NoiseFilter(*t))};
       }});

  fns.push_back(
      {"st_trajsegmentation", TrajOutputSchema(),
       [](const exec::Value& input, const std::vector<exec::Value>&)
           -> Result<std::vector<exec::Row>> {
         JUST_ASSIGN_OR_RETURN(auto t,
                               TrajArg("st_trajSegmentation", input));
         std::vector<exec::Row> rows;
         for (const auto& segment : traj::Segmentation(*t)) {
           rows.push_back(TrajToRow(segment));
         }
         return rows;
       }});

  {
    auto schema = std::make_shared<exec::Schema>();
    schema->AddField({"tid", exec::DataType::kString});
    schema->AddField({"stay_point", exec::DataType::kGeometry});
    schema->AddField({"arrive", exec::DataType::kTimestamp});
    schema->AddField({"depart", exec::DataType::kTimestamp});
    fns.push_back(
        {"st_trajstaypoint", schema,
         [](const exec::Value& input, const std::vector<exec::Value>&)
             -> Result<std::vector<exec::Row>> {
           JUST_ASSIGN_OR_RETURN(auto t, TrajArg("st_trajStayPoint", input));
           std::vector<exec::Row> rows;
           for (const auto& sp : traj::DetectStayPoints(*t)) {
             rows.push_back({exec::Value::String(t->oid()),
                             exec::Value::GeometryVal(
                                 geo::Geometry::MakePoint(sp.center)),
                             exec::Value::Timestamp(sp.arrive),
                             exec::Value::Timestamp(sp.depart)});
           }
           return rows;
         }});
  }

  {
    auto schema = std::make_shared<exec::Schema>();
    schema->AddField({"tid", exec::DataType::kString});
    schema->AddField({"segment_id", exec::DataType::kInt});
    schema->AddField({"snapped", exec::DataType::kGeometry});
    schema->AddField({"time", exec::DataType::kTimestamp});
    fns.push_back(
        {"st_trajmapmatching", schema,
         [](const exec::Value& input, const std::vector<exec::Value>&)
             -> Result<std::vector<exec::Row>> {
           JUST_ASSIGN_OR_RETURN(auto t,
                                 TrajArg("st_trajMapMatching", input));
           auto network = GetMapMatchingNetwork();
           if (network == nullptr) {
             return Status::NotSupported(
                 "st_trajMapMatching: no road network registered");
           }
           std::vector<exec::Row> rows;
           for (const auto& m : traj::MapMatch(*t, *network)) {
             rows.push_back({exec::Value::String(t->oid()),
                             exec::Value::Int(m.segment_id),
                             exec::Value::GeometryVal(
                                 geo::Geometry::MakePoint(m.snapped)),
                             exec::Value::Timestamp(m.raw.time)});
           }
           return rows;
         }});
  }

  fns.push_back(
      {"st_trajsimplify", TrajOutputSchema(),
       [](const exec::Value& input, const std::vector<exec::Value>& extra)
           -> Result<std::vector<exec::Row>> {
         JUST_ASSIGN_OR_RETURN(auto t, TrajArg("st_trajSimplify", input));
         double tol = 1e-4;
         if (!extra.empty()) {
           JUST_ASSIGN_OR_RETURN(tol, extra[0].AsDouble());
         }
         return std::vector<exec::Row>{TrajToRow(traj::Simplify(*t, tol))};
       }});

  return fns;
}

std::vector<PartitionFunction> MakePartitionFunctions() {
  std::vector<PartitionFunction> fns;
  {
    auto schema = std::make_shared<exec::Schema>();
    schema->AddField({"cluster", exec::DataType::kInt});
    schema->AddField({"geom", exec::DataType::kGeometry});
    fns.push_back(
        {"st_dbscan", schema,
         [](const std::vector<exec::Value>& column_values,
            const std::vector<exec::Value>& extra)
             -> Result<std::vector<exec::Row>> {
           if (extra.size() != 2) {
             return Status::InvalidArgument(
                 "st_DBSCAN(geom, minPts, radius) expects 3 arguments");
           }
           std::vector<geo::Point> points;
           points.reserve(column_values.size());
           for (const auto& v : column_values) {
             if (v.type() != exec::DataType::kGeometry) {
               return Status::InvalidArgument(
                   "st_DBSCAN expects a geometry column");
             }
             points.push_back(v.geometry_value().Bounds().Center());
           }
           traj::DbscanOptions options;
           JUST_ASSIGN_OR_RETURN(auto min_pts, extra[0].AsInt());
           JUST_ASSIGN_OR_RETURN(options.radius, extra[1].AsDouble());
           options.min_pts = static_cast<int>(min_pts);
           auto result = traj::Dbscan(points, options);
           std::vector<exec::Row> rows;
           for (size_t i = 0; i < points.size(); ++i) {
             rows.push_back({exec::Value::Int(result.labels[i]),
                             exec::Value::GeometryVal(
                                 geo::Geometry::MakePoint(points[i]))});
           }
           return rows;
         }});
  }
  return fns;
}

std::mutex g_network_mu;
std::shared_ptr<const traj::RoadNetwork> g_network;  // NOLINT

}  // namespace

const ScalarFunction* FindScalarFunction(const std::string& name) {
  static const std::vector<ScalarFunction>* fns =
      new std::vector<ScalarFunction>(MakeScalarFunctions());
  for (const auto& fn : *fns) {
    if (fn.name == name) return &fn;
  }
  return nullptr;
}

bool FindAggregateFunction(const std::string& name, exec::AggFunc* out) {
  if (name == "count") {
    *out = exec::AggFunc::kCount;
  } else if (name == "sum") {
    *out = exec::AggFunc::kSum;
  } else if (name == "avg") {
    *out = exec::AggFunc::kAvg;
  } else if (name == "min") {
    *out = exec::AggFunc::kMin;
  } else if (name == "max") {
    *out = exec::AggFunc::kMax;
  } else {
    return false;
  }
  return true;
}

const TableFunction* FindTableFunction(const std::string& name) {
  static const std::vector<TableFunction>* fns =
      new std::vector<TableFunction>(MakeTableFunctions());
  for (const auto& fn : *fns) {
    if (fn.name == name) return &fn;
  }
  return nullptr;
}

const PartitionFunction* FindPartitionFunction(const std::string& name) {
  static const std::vector<PartitionFunction>* fns =
      new std::vector<PartitionFunction>(MakePartitionFunctions());
  for (const auto& fn : *fns) {
    if (fn.name == name) return &fn;
  }
  return nullptr;
}

void SetMapMatchingNetwork(
    std::shared_ptr<const traj::RoadNetwork> network) {
  std::lock_guard<std::mutex> lock(g_network_mu);
  g_network = std::move(network);
}

std::shared_ptr<const traj::RoadNetwork> GetMapMatchingNetwork() {
  std::lock_guard<std::mutex> lock(g_network_mu);
  return g_network;
}

}  // namespace just::sql
