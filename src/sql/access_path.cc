#include "sql/access_path.h"

#include <cctype>

#include "common/time_util.h"

namespace just::sql {

namespace {

bool IsGeometryLiteral(const Expr& e) {
  return e.kind == Expr::Kind::kLiteral &&
         e.literal.type() == exec::DataType::kGeometry;
}

bool IsTimeLiteral(const Expr& e, TimestampMs* out) {
  if (e.kind != Expr::Kind::kLiteral) return false;
  if (e.literal.type() == exec::DataType::kTimestamp) {
    *out = e.literal.timestamp_value();
    return true;
  }
  if (e.literal.type() == exec::DataType::kInt) {
    *out = e.literal.int_value();
    return true;
  }
  if (e.literal.type() == exec::DataType::kString) {
    auto parsed = ParseTimestamp(e.literal.string_value());
    if (!parsed.ok()) return false;
    *out = parsed.value();
    return true;
  }
  return false;
}

bool ColumnEquals(const Expr& e, const std::string& name) {
  if (e.kind != Expr::Kind::kColumn) return false;
  if (e.column.size() != name.size()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(e.column[i])) !=
        std::tolower(static_cast<unsigned char>(name[i]))) {
      return false;
    }
  }
  return true;
}

/// Coerces a bound literal into the indexed column's value domain so the
/// order-preserving key encoding compares like with like (a string date
/// against a timestamp column would otherwise land in the wrong key range).
bool CoerceBoundValue(exec::DataType column_type, exec::Value* value) {
  if (column_type != exec::DataType::kTimestamp) return true;
  if (value->type() == exec::DataType::kTimestamp) return true;
  if (value->type() == exec::DataType::kInt) {
    *value = exec::Value::Timestamp(value->int_value());
    return true;
  }
  if (value->type() == exec::DataType::kString) {
    auto parsed = ParseTimestamp(value->string_value());
    if (!parsed.ok()) return false;
    *value = exec::Value::Timestamp(parsed.value());
    return true;
  }
  return false;
}

/// The `ready` secondary index whose column `e` references, or nullptr.
const meta::SecondaryIndexDef* ReadyIndexFor(const meta::TableMeta& table_meta,
                                             const Expr& e) {
  for (const meta::SecondaryIndexDef& def : table_meta.secondary_indexes) {
    if (def.state == meta::IndexState::kReady && ColumnEquals(e, def.column)) {
      return &def;
    }
  }
  return nullptr;
}

}  // namespace

void SplitConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr->kind == Expr::Kind::kBinary && expr->op == BinaryOp::kAnd) {
    SplitConjuncts(expr->args[0].get(), out);
    SplitConjuncts(expr->args[1].get(), out);
    return;
  }
  out->push_back(expr);
}

Result<AccessPath> ChooseAccessPath(
    core::JustEngine* engine, const std::string& user,
    const meta::TableMeta& table_meta,
    const std::vector<const Expr*>& conjuncts) {
  AccessPath path;
  bool have_knn = false;
  std::vector<const Expr*> index_conjuncts;  ///< consumed by the bounds
  const Expr* attr_conjunct = nullptr;
  exec::DataType index_column_type = exec::DataType::kNull;

  for (const Expr* conjunct : conjuncts) {
    if (conjunct->kind != Expr::Kind::kBinary) {
      path.residual.push_back(conjunct);
      continue;
    }
    if (conjunct->op == BinaryOp::kWithin && !path.have_box &&
        ColumnEquals(*conjunct->args[0], table_meta.geom_column) &&
        IsGeometryLiteral(*conjunct->args[1])) {
      path.box = conjunct->args[1]->literal.geometry_value().Bounds();
      path.have_box = true;
      continue;
    }
    if (conjunct->op == BinaryOp::kBetween && !path.have_time &&
        ColumnEquals(*conjunct->args[0], table_meta.time_column)) {
      TimestampMs lo, hi;
      if (IsTimeLiteral(*conjunct->args[1], &lo) &&
          IsTimeLiteral(*conjunct->args[2], &hi)) {
        path.t_min = lo;
        path.t_max = hi;
        path.have_time = true;
        continue;
      }
    }
    if (conjunct->op == BinaryOp::kIn && !have_knn &&
        ColumnEquals(*conjunct->args[0], table_meta.geom_column) &&
        conjunct->args[1]->kind == Expr::Kind::kCall &&
        conjunct->args[1]->call_name == "st_knn" &&
        conjunct->args[1]->args.size() == 2) {
      const Expr& point_arg = *conjunct->args[1]->args[0];
      const Expr& k_arg = *conjunct->args[1]->args[1];
      if (IsGeometryLiteral(point_arg) && k_arg.kind == Expr::Kind::kLiteral) {
        auto k = k_arg.literal.AsInt();
        if (k.ok()) {
          path.knn_query = point_arg.literal.geometry_value().Bounds().Center();
          path.knn_k = static_cast<int>(k.value());
          have_knn = true;
          continue;
        }
      }
    }
    // Secondary-index bounds: column-vs-literal comparisons and BETWEEN on
    // a column carrying a `ready` CREATE INDEX index. One driving column;
    // at most one bound per side — everything else stays residual (the
    // range recheck inside the index scan keeps any split exact).
    if (conjunct->args[0]->kind == Expr::Kind::kColumn) {
      const meta::SecondaryIndexDef* def =
          ReadyIndexFor(table_meta, *conjunct->args[0]);
      if (def != nullptr &&
          (path.index_column.empty() || path.index_column == def->column)) {
        int col = table_meta.ColumnIndex(def->column);
        exec::DataType col_type =
            col >= 0 ? table_meta.columns[static_cast<size_t>(col)].type
                     : exec::DataType::kNull;
        bool consumed = false;
        if (conjunct->op == BinaryOp::kBetween &&
            conjunct->args[1]->kind == Expr::Kind::kLiteral &&
            conjunct->args[2]->kind == Expr::Kind::kLiteral &&
            !path.lower.present && !path.upper.present) {
          exec::Value lo = conjunct->args[1]->literal;
          exec::Value hi = conjunct->args[2]->literal;
          if (CoerceBoundValue(col_type, &lo) &&
              CoerceBoundValue(col_type, &hi)) {
            path.lower = {true, true, std::move(lo)};
            path.upper = {true, true, std::move(hi)};
            consumed = true;
          }
        } else if (conjunct->args.size() == 2 &&
                   conjunct->args[1]->kind == Expr::Kind::kLiteral) {
          exec::Value v = conjunct->args[1]->literal;
          if (CoerceBoundValue(col_type, &v)) {
            switch (conjunct->op) {
              case BinaryOp::kEq:
                if (!path.lower.present && !path.upper.present) {
                  path.lower = {true, true, v};
                  path.upper = {true, true, std::move(v)};
                  consumed = true;
                }
                break;
              case BinaryOp::kGt:
              case BinaryOp::kGe:
                if (!path.lower.present) {
                  path.lower = {true, conjunct->op == BinaryOp::kGe,
                                std::move(v)};
                  consumed = true;
                }
                break;
              case BinaryOp::kLt:
              case BinaryOp::kLe:
                if (!path.upper.present) {
                  path.upper = {true, conjunct->op == BinaryOp::kLe,
                                std::move(v)};
                  consumed = true;
                }
                break;
              default:
                break;
            }
          }
        }
        if (consumed) {
          path.index_column = def->column;
          index_column_type = col_type;
          index_conjuncts.push_back(conjunct);
          continue;
        }
      }
    }
    // Legacy attr-index equality (USERDATA 'just.attr.indexes').
    if (conjunct->op == BinaryOp::kEq && !path.have_attr &&
        conjunct->args[0]->kind == Expr::Kind::kColumn &&
        conjunct->args[1]->kind == Expr::Kind::kLiteral) {
      bool indexed = false;
      for (const std::string& indexed_col : table_meta.attr_indexes) {
        if (ColumnEquals(*conjunct->args[0], indexed_col)) {
          indexed = true;
          path.attr_column = indexed_col;
        }
      }
      if (indexed) {
        path.attr_value = conjunct->args[1]->literal;
        path.have_attr = true;
        attr_conjunct = conjunct;
        continue;
      }
    }
    path.residual.push_back(conjunct);
  }
  (void)index_column_type;

  auto demote_index_bounds = [&] {
    for (const Expr* c : index_conjuncts) path.residual.push_back(c);
    path.index_column.clear();
    path.lower = core::AttrBound{};
    path.upper = core::AttrBound{};
  };

  if (have_knn) {
    path.kind = AccessPath::Kind::kKnn;
    path.label = "knn";
    demote_index_bounds();
    return path;
  }

  if (!path.index_column.empty()) {
    bool use_index = false;
    if (!path.have_box && !path.have_time) {
      path.kind = AccessPath::Kind::kSecondaryIndex;
      path.label = "secondary_index";
      use_index = true;
    } else {
      // Intersection decision by bounded cardinality probe: the index
      // drives only when it narrows the candidate set below the threshold;
      // otherwise the curve index drives and the bounds demote to
      // residual refinement.
      size_t threshold = engine->options().index_intersection_threshold;
      auto probe = engine->SecondaryIndexProbe(
          user, table_meta.name, path.index_column, path.lower, path.upper,
          threshold + 1);
      if (probe.ok() && probe.value() <= threshold) {
        path.kind = AccessPath::Kind::kIndexIntersection;
        path.label = "index_intersection";
        use_index = true;
      }
    }
    if (use_index) {
      // The covering index scan does not recheck the legacy attr conjunct;
      // run it residually.
      if (path.have_attr && attr_conjunct != nullptr) {
        path.residual.push_back(attr_conjunct);
        path.have_attr = false;
      }
      return path;
    }
    demote_index_bounds();
  }

  if (path.have_box && path.have_time) {
    path.kind = AccessPath::Kind::kStRange;
    path.label = "st_range";
  } else if (path.have_box) {
    path.kind = AccessPath::Kind::kSpatialRange;
    path.label = "spatial_range";
  } else if (path.have_time) {
    path.kind = AccessPath::Kind::kTemporalRange;
    path.label = "temporal_range";
  } else if (path.have_attr) {
    path.kind = AccessPath::Kind::kAttrIndex;
    path.label = "attr_index";
  }
  return path;
}

}  // namespace just::sql
