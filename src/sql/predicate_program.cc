#include "sql/predicate_program.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>

#include "obs/metrics.h"

namespace just::sql {

namespace {

using Clock = std::chrono::steady_clock;

bool IsNumericType(exec::DataType t) {
  return t == exec::DataType::kBool || t == exec::DataType::kInt ||
         t == exec::DataType::kDouble || t == exec::DataType::kTimestamp;
}

// Flattens an AND tree into conjuncts (borrowed pointers).
void SplitConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr->kind == Expr::Kind::kBinary && expr->op == BinaryOp::kAnd) {
    SplitConjuncts(expr->args[0].get(), out);
    SplitConjuncts(expr->args[1].get(), out);
    return;
  }
  out->push_back(expr);
}

}  // namespace

/// Builds one Step per conjunct; shares the private Step type.
struct PredicateCompiler {
  using Step = PredicateProgram::Step;
  using CmpKind = PredicateProgram::CmpKind;
  using Op = Step::Op;

  const exec::Schema& schema;

  static CmpKind FlipCmp(CmpKind cmp) {
    switch (cmp) {
      case CmpKind::kLt:
        return CmpKind::kGt;
      case CmpKind::kLe:
        return CmpKind::kGe;
      case CmpKind::kGt:
        return CmpKind::kLt;
      case CmpKind::kGe:
        return CmpKind::kLe;
      default:
        return cmp;  // eq / ne are symmetric
    }
  }

  static bool BinaryCmpKind(BinaryOp op, CmpKind* out) {
    switch (op) {
      case BinaryOp::kEq:
        *out = CmpKind::kEq;
        return true;
      case BinaryOp::kNe:
        *out = CmpKind::kNe;
        return true;
      case BinaryOp::kLt:
        *out = CmpKind::kLt;
        return true;
      case BinaryOp::kLe:
        *out = CmpKind::kLe;
        return true;
      case BinaryOp::kGt:
        *out = CmpKind::kGt;
        return true;
      case BinaryOp::kGe:
        *out = CmpKind::kGe;
        return true;
      default:
        return false;
    }
  }

  /// Folds a column-free subtree to its constant Value. ok=false when the
  /// subtree is not constant; an error Status means the constant *errors*
  /// (division by zero and friends), which in filter context drops rows.
  static bool FoldConstant(const Expr& e, Result<exec::Value>* out) {
    if (!IsConstantExpr(e)) return false;
    *out = EvaluateConstant(e);
    return true;
  }

  /// A step that drops every row — what an always-false or always-erroring
  /// conjunct does under the filter convention (error == not matched).
  static Step ConstFalse() {
    Step step;
    step.op = Op::kConstFalse;
    step.cost = 0;
    return step;
  }

  Step Fallback(const Expr& conjunct) const {
    Step step;
    step.fallback = conjunct.Clone();
    auto bound = BoundExpr::Bind(*step.fallback, schema);
    if (!bound.ok()) {
      // Unknown column: interpreted evaluation errors on every row.
      return ConstFalse();
    }
    step.op = Op::kFallback;
    step.bound = std::move(bound.value());
    step.cost = 100;
    return step;
  }

  /// col CMP const. Picks the tightest kernel the types allow.
  Step ColumnCmpConst(int col, CmpKind cmp, exec::Value constant) const {
    exec::DataType col_type = schema.field(static_cast<size_t>(col)).type;
    Step step;
    step.cmp = cmp;
    step.col = col;
    if (IsNumericType(col_type) && IsNumericType(constant.type())) {
      step.op = Op::kNumericCmp;
      step.num_lo = constant.AsDouble().value();
      step.cost = 1;
      return step;
    }
    if (col_type == exec::DataType::kString &&
        constant.type() == exec::DataType::kString) {
      step.op = Op::kStringCmp;
      step.str_const = constant.string_value();
      step.cost = 4;
      return step;
    }
    // Mixed / null / geometry constants: generic Value::Compare kernel —
    // still a flat loop, no tree walk.
    step.op = Op::kValueCmp;
    step.value_lo = std::move(constant);
    step.cost = 6;
    return step;
  }

  Step Compile(const Expr& conjunct) const {
    // Constant conjunct: fold it away entirely.
    Result<exec::Value> folded = exec::Value::Null();
    if (FoldConstant(conjunct, &folded)) {
      if (folded.ok() && folded->type() == exec::DataType::kBool &&
          folded->bool_value()) {
        Step step;  // always true: cost-0 no-op, dropped by the caller
        step.op = Op::kConstFalse;
        step.col = -2;  // sentinel: "const true", see Compile() below
        return step;
      }
      return ConstFalse();
    }
    if (conjunct.kind != Expr::Kind::kBinary) return Fallback(conjunct);

    CmpKind cmp;
    if (BinaryCmpKind(conjunct.op, &cmp)) {
      const Expr& lhs = *conjunct.args[0];
      const Expr& rhs = *conjunct.args[1];
      Result<exec::Value> c = exec::Value::Null();
      if (lhs.kind == Expr::Kind::kColumn && FoldConstant(rhs, &c)) {
        int col = schema.IndexOf(lhs.column);
        if (col < 0) return ConstFalse();
        if (!c.ok()) return ConstFalse();  // erroring constant drops rows
        return ColumnCmpConst(col, cmp, std::move(c.value()));
      }
      if (rhs.kind == Expr::Kind::kColumn && FoldConstant(lhs, &c)) {
        int col = schema.IndexOf(rhs.column);
        if (col < 0) return ConstFalse();
        if (!c.ok()) return ConstFalse();
        return ColumnCmpConst(col, FlipCmp(cmp), std::move(c.value()));
      }
      if (lhs.kind == Expr::Kind::kColumn && rhs.kind == Expr::Kind::kColumn) {
        int col = schema.IndexOf(lhs.column);
        int col2 = schema.IndexOf(rhs.column);
        if (col < 0 || col2 < 0) return ConstFalse();
        Step step;
        step.op = Op::kColumnCmp;
        step.cmp = cmp;
        step.col = col;
        step.col2 = col2;
        step.cost = 6;
        return step;
      }
      return Fallback(conjunct);
    }

    if (conjunct.op == BinaryOp::kBetween &&
        conjunct.args[0]->kind == Expr::Kind::kColumn) {
      Result<exec::Value> lo = exec::Value::Null();
      Result<exec::Value> hi = exec::Value::Null();
      if (!FoldConstant(*conjunct.args[1], &lo) ||
          !FoldConstant(*conjunct.args[2], &hi)) {
        return Fallback(conjunct);
      }
      if (!lo.ok() || !hi.ok()) return ConstFalse();
      int col = schema.IndexOf(conjunct.args[0]->column);
      if (col < 0) return ConstFalse();
      Step step;
      step.col = col;
      exec::DataType col_type = schema.field(static_cast<size_t>(col)).type;
      if (IsNumericType(col_type) && IsNumericType(lo->type()) &&
          IsNumericType(hi->type())) {
        step.op = Op::kNumericBetween;
        step.num_lo = lo->AsDouble().value();
        step.num_hi = hi->AsDouble().value();
        step.cost = 2;
      } else {
        step.op = Op::kValueBetween;
        step.value_lo = std::move(lo.value());
        step.value_hi = std::move(hi.value());
        step.cost = 6;
      }
      return step;
    }

    if (conjunct.op == BinaryOp::kWithin &&
        conjunct.args[0]->kind == Expr::Kind::kColumn) {
      Result<exec::Value> region = exec::Value::Null();
      if (!FoldConstant(*conjunct.args[1], &region)) {
        return Fallback(conjunct);
      }
      if (!region.ok() || region->type() != exec::DataType::kGeometry) {
        return ConstFalse();  // "WITHIN expects a geometry region" per row
      }
      int col = schema.IndexOf(conjunct.args[0]->column);
      if (col < 0) return ConstFalse();
      Step step;
      step.op = Op::kWithinBox;
      step.col = col;
      step.box = region->geometry_value().Bounds();
      step.cost = 10;
      return step;
    }

    return Fallback(conjunct);
  }
};

Result<std::shared_ptr<const PredicateProgram>> PredicateProgram::Compile(
    const Expr& predicate, const exec::Schema& schema) {
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(&predicate, &conjuncts);
  return Compile(conjuncts, schema);
}

Result<std::shared_ptr<const PredicateProgram>> PredicateProgram::Compile(
    const std::vector<const Expr*>& conjuncts, const exec::Schema& schema) {
  PredicateCompiler compiler{schema};
  auto program = std::shared_ptr<PredicateProgram>(new PredicateProgram());
  for (const Expr* conjunct : conjuncts) {
    std::vector<const Expr*> nested;  // re-split: callers pass raw residuals
    SplitConjuncts(conjunct, &nested);
    for (const Expr* e : nested) {
      Step step = compiler.Compile(*e);
      if (step.op == Step::Op::kConstFalse && step.col == -2) {
        continue;  // constant-folded to true: no work at runtime
      }
      if (step.op == Step::Op::kFallback) ++program->fallback_steps_;
      program->steps_.push_back(std::move(step));
    }
  }
  // Short-circuit ordering: cheap selective kernels first, so geometry and
  // interpreted fallbacks see the smallest surviving selection. Stable, so
  // equal-cost steps keep the user's order.
  std::stable_sort(program->steps_.begin(), program->steps_.end(),
                   [](const Step& a, const Step& b) { return a.cost < b.cost; });
  return std::shared_ptr<const PredicateProgram>(std::move(program));
}

bool PredicateProgram::CmpHolds(CmpKind cmp, int c) {
  using CmpKind = PredicateProgram::CmpKind;
  switch (cmp) {
    case CmpKind::kEq:
      return c == 0;
    case CmpKind::kNe:
      return c != 0;
    case CmpKind::kLt:
      return c < 0;
    case CmpKind::kLe:
      return c <= 0;
    case CmpKind::kGt:
      return c > 0;
    case CmpKind::kGe:
      return c >= 0;
  }
  return false;
}

void PredicateProgram::RunStep(const Step& step,
                               const exec::ColumnBatch& batch,
                               const std::vector<uint32_t>& in,
                               std::vector<uint32_t>* out) const {
  using Storage = exec::ColumnVector::Storage;
  switch (step.op) {
    case Step::Op::kConstFalse:
      return;
    case Step::Op::kNumericCmp: {
      const exec::ColumnVector& col = batch.column(step.col);
      // A null cell compares below any non-null constant (Value::Compare's
      // null-sorts-first rule).
      const bool keep_null = CmpHolds(step.cmp, -1);
      if (col.storage() == Storage::kInt64) {
        const int64_t* data = col.i64_data();
        for (uint32_t row : in) {
          if (col.has_nulls() && col.IsNull(row)) {
            if (keep_null) out->push_back(row);
            continue;
          }
          double a = static_cast<double>(data[row]);
          int c = a < step.num_lo ? -1 : (a > step.num_lo ? 1 : 0);
          if (CmpHolds(step.cmp, c)) out->push_back(row);
        }
        return;
      }
      if (col.storage() == Storage::kDouble) {
        const double* data = col.f64_data();
        for (uint32_t row : in) {
          if (col.has_nulls() && col.IsNull(row)) {
            if (keep_null) out->push_back(row);
            continue;
          }
          int c = data[row] < step.num_lo ? -1
                                          : (data[row] > step.num_lo ? 1 : 0);
          if (CmpHolds(step.cmp, c)) out->push_back(row);
        }
        return;
      }
      // Column degraded to object storage: generic compare, still flat.
      exec::Value constant = exec::Value::Double(step.num_lo);
      for (uint32_t row : in) {
        if (CmpHolds(step.cmp, col.ObjectAt(row).Compare(constant))) {
          out->push_back(row);
        }
      }
      return;
    }
    case Step::Op::kNumericBetween: {
      const exec::ColumnVector& col = batch.column(step.col);
      if (col.storage() == Storage::kInt64) {
        const int64_t* data = col.i64_data();
        for (uint32_t row : in) {
          if (col.has_nulls() && col.IsNull(row)) continue;
          double a = static_cast<double>(data[row]);
          if (a >= step.num_lo && a <= step.num_hi) out->push_back(row);
        }
        return;
      }
      if (col.storage() == Storage::kDouble) {
        const double* data = col.f64_data();
        for (uint32_t row : in) {
          if (col.has_nulls() && col.IsNull(row)) continue;
          if (data[row] >= step.num_lo && data[row] <= step.num_hi) {
            out->push_back(row);
          }
        }
        return;
      }
      exec::Value lo = exec::Value::Double(step.num_lo);
      exec::Value hi = exec::Value::Double(step.num_hi);
      for (uint32_t row : in) {
        const exec::Value& v = col.ObjectAt(row);
        if (v.Compare(lo) >= 0 && v.Compare(hi) <= 0) out->push_back(row);
      }
      return;
    }
    case Step::Op::kStringCmp: {
      const exec::ColumnVector& col = batch.column(step.col);
      const bool keep_null = CmpHolds(step.cmp, -1);
      if (col.storage() == Storage::kString) {
        for (uint32_t row : in) {
          if (col.has_nulls() && col.IsNull(row)) {
            if (keep_null) out->push_back(row);
            continue;
          }
          int raw = col.StringAt(row).compare(step.str_const);
          int c = raw < 0 ? -1 : (raw > 0 ? 1 : 0);
          if (CmpHolds(step.cmp, c)) out->push_back(row);
        }
        return;
      }
      exec::Value constant = exec::Value::String(step.str_const);
      for (uint32_t row : in) {
        if (CmpHolds(step.cmp, col.ObjectAt(row).Compare(constant))) {
          out->push_back(row);
        }
      }
      return;
    }
    case Step::Op::kValueCmp: {
      const exec::ColumnVector& col = batch.column(step.col);
      for (uint32_t row : in) {
        if (CmpHolds(step.cmp,
                         col.ValueAt(row).Compare(step.value_lo))) {
          out->push_back(row);
        }
      }
      return;
    }
    case Step::Op::kValueBetween: {
      const exec::ColumnVector& col = batch.column(step.col);
      for (uint32_t row : in) {
        exec::Value v = col.ValueAt(row);
        if (v.Compare(step.value_lo) >= 0 && v.Compare(step.value_hi) <= 0) {
          out->push_back(row);
        }
      }
      return;
    }
    case Step::Op::kColumnCmp: {
      const exec::ColumnVector& a = batch.column(step.col);
      const exec::ColumnVector& b = batch.column(step.col2);
      for (uint32_t row : in) {
        if (CmpHolds(step.cmp, a.ValueAt(row).Compare(b.ValueAt(row)))) {
          out->push_back(row);
        }
      }
      return;
    }
    case Step::Op::kWithinBox: {
      const exec::ColumnVector& col = batch.column(step.col);
      if (col.storage() != Storage::kObject) return;  // never a geometry
      for (uint32_t row : in) {
        const exec::Value& v = col.ObjectAt(row);
        if (v.type() == exec::DataType::kGeometry) {
          if (v.geometry_value().Within(step.box)) out->push_back(row);
        } else if (v.type() == exec::DataType::kTrajectory &&
                   v.trajectory_value() != nullptr) {
          if (step.box.Intersects(v.trajectory_value()->Bounds())) {
            out->push_back(row);
          }
        }
        // Any other runtime type errors under the interpreter: row dropped.
      }
      return;
    }
    case Step::Op::kFallback: {
      for (uint32_t row : in) {
        exec::Row materialized = batch.MaterializeRow(row);
        auto v = step.bound.EvalBool(materialized);
        if (v.ok() && v.value()) out->push_back(row);
      }
      return;
    }
  }
}

Status PredicateProgram::Run(exec::ColumnBatch* batch,
                             PredicateStats* stats) const {
  std::vector<uint32_t> current;
  if (batch->has_selection()) {
    current = batch->selection();
  } else {
    current.resize(batch->num_rows());
    std::iota(current.begin(), current.end(), 0);
  }
  if (stats != nullptr) stats->rows_in += current.size();
  std::vector<uint32_t> next;
  next.reserve(current.size());
  for (const Step& step : steps_) {
    if (current.empty()) break;
    const auto t0 = Clock::now();
    next.clear();
    RunStep(step, *batch, current, &next);
    std::swap(current, next);
    if (stats != nullptr) {
      const uint64_t ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count());
      if (step.op == Step::Op::kFallback) {
        stats->interpreted_ns += ns;
      } else {
        stats->specialized_ns += ns;
      }
    }
  }
  batch->SetSelection(std::move(current));
  if (stats != nullptr) stats->rows_out += batch->num_active();
  return Status::OK();
}

const char* PredicateProgram::ModeLabel() const {
  if (steps_.empty() || fallback_steps_ == 0) return "specialized";
  if (fallback_steps_ == steps_.size()) return "interpreted";
  return "partial";
}

std::string PredicateProgram::DebugString() const {
  std::string out;
  for (const Step& step : steps_) {
    if (!out.empty()) out += "; ";
    switch (step.op) {
      case Step::Op::kConstFalse:
        out += "const_false";
        break;
      case Step::Op::kNumericCmp:
        out += "numeric_cmp(col=" + std::to_string(step.col) + ")";
        break;
      case Step::Op::kNumericBetween:
        out += "numeric_between(col=" + std::to_string(step.col) + ")";
        break;
      case Step::Op::kStringCmp:
        out += "string_cmp(col=" + std::to_string(step.col) + ")";
        break;
      case Step::Op::kValueCmp:
        out += "value_cmp(col=" + std::to_string(step.col) + ")";
        break;
      case Step::Op::kValueBetween:
        out += "value_between(col=" + std::to_string(step.col) + ")";
        break;
      case Step::Op::kColumnCmp:
        out += "column_cmp(" + std::to_string(step.col) + "," +
               std::to_string(step.col2) + ")";
        break;
      case Step::Op::kWithinBox:
        out += "within_box(col=" + std::to_string(step.col) + ")";
        break;
      case Step::Op::kFallback:
        out += "fallback(" + step.fallback->ToString() + ")";
        break;
    }
  }
  return out.empty() ? "pass" : out;
}

// --- Plan cache -----------------------------------------------------------

PredicateProgramCache& PredicateProgramCache::Global() {
  static PredicateProgramCache* cache = new PredicateProgramCache();
  return *cache;
}

PredicateProgramCache::PredicateProgramCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

Result<std::shared_ptr<const PredicateProgram>>
PredicateProgramCache::GetOrCompile(const std::vector<const Expr*>& conjuncts,
                                    const exec::Schema& schema,
                                    const std::string& cache_tag) {
  static obs::Counter* hits =
      obs::Registry::Global().GetCounter("just_sql_plan_cache_hits_total");
  static obs::Counter* misses =
      obs::Registry::Global().GetCounter("just_sql_plan_cache_misses_total");
  static obs::Counter* evictions = obs::Registry::Global().GetCounter(
      "just_sql_plan_cache_evictions_total");

  std::string key = cache_tag;
  key += '\x1e';
  key += schema.ToString();
  for (const Expr* conjunct : conjuncts) {
    key += '\x1f';
    key += conjunct->ToString();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      hits->Increment();
      return it->second->program;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  misses->Increment();
  JUST_ASSIGN_OR_RETURN(auto program,
                        PredicateProgram::Compile(conjuncts, schema));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) return it->second->program;  // raced: keep theirs
  lru_.push_front(Entry{key, program});
  map_[std::move(key)] = lru_.begin();
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    evictions->Increment();
  }
  return program;
}

size_t PredicateProgramCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void PredicateProgramCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
}

}  // namespace just::sql
