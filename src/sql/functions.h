#ifndef JUST_SQL_FUNCTIONS_H_
#define JUST_SQL_FUNCTIONS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/operators.h"
#include "exec/value.h"
#include "traj/road_network.h"

namespace just::sql {

/// A scalar (1-1) function: the paper's UDF-backed analysis operations plus
/// the query helpers (st_makeMBR, st_makePoint, ...).
struct ScalarFunction {
  std::string name;
  exec::DataType return_type;
  std::function<Result<exec::Value>(const std::vector<exec::Value>&)> fn;
};

/// Looks up a scalar function by lower-case name; nullptr when unknown.
const ScalarFunction* FindScalarFunction(const std::string& name);

/// Aggregate functions (COUNT/SUM/AVG/MIN/MAX) map to exec::AggFunc.
bool FindAggregateFunction(const std::string& name, exec::AggFunc* out);

/// 1-N table functions (Section V-D): one row in, many rows out. The
/// executor routes these through its own FlatMap operator since "the UDF
/// mechanism of Spark SQL is not supported for this case".
struct TableFunction {
  std::string name;
  /// Output schema given the call arguments.
  std::shared_ptr<exec::Schema> output_schema;
  /// Expands one input value (the evaluated first argument) plus literal
  /// extra args into output rows.
  std::function<Result<std::vector<exec::Row>>(
      const exec::Value& input, const std::vector<exec::Value>& extra_args)>
      fn;
};

const TableFunction* FindTableFunction(const std::string& name);

/// N-M partition functions (st_DBSCAN): all rows in, new rows out.
struct PartitionFunction {
  std::string name;
  std::shared_ptr<exec::Schema> output_schema;
  /// `column_values` holds the evaluated first-arg per row.
  std::function<Result<std::vector<exec::Row>>(
      const std::vector<exec::Value>& column_values,
      const std::vector<exec::Value>& extra_args)>
      fn;
};

const PartitionFunction* FindPartitionFunction(const std::string& name);

/// Registers the road network used by st_trajMapMatching (the Map Recovery
/// substrate). Process-wide; pass nullptr to clear.
void SetMapMatchingNetwork(std::shared_ptr<const traj::RoadNetwork> network);
std::shared_ptr<const traj::RoadNetwork> GetMapMatchingNetwork();

}  // namespace just::sql

#endif  // JUST_SQL_FUNCTIONS_H_
