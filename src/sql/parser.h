#ifndef JUST_SQL_PARSER_H_
#define JUST_SQL_PARSER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace just::sql {

/// Parses one JustQL statement (Section V / VI). The grammar covers the
/// paper's examples verbatim: CREATE TABLE with column modifiers
/// (`fid integer:primary key`, `geom point:srid=4326`,
/// `gpsList st_series:compress=gzip|zip`), plugin tables (CREATE TABLE x AS
/// trajectory), views, LOAD ... CONFIG {...} FILTER '...', STORE VIEW,
/// INSERT VALUES, and SELECT with WITHIN / BETWEEN / IN st_KNN predicates,
/// GROUP BY, ORDER BY, LIMIT, subqueries, and view JOINs.
Result<Statement> ParseStatement(const std::string& sql);

}  // namespace just::sql

#endif  // JUST_SQL_PARSER_H_
