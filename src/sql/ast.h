#ifndef JUST_SQL_AST_H_
#define JUST_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/value.h"

namespace just::sql {

/// Binary operators in JustQL expressions.
enum class BinaryOp {
  kAnd,
  kOr,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kWithin,   ///< geom WITHIN <geometry>
  kBetween,  ///< expanded to two comparisons during analysis
  kIn,       ///< geom IN st_KNN(...)
};

std::string BinaryOpName(BinaryOp op);

/// Expression tree: literals, column references, binary ops, calls.
struct Expr {
  enum class Kind { kLiteral, kColumn, kBinary, kCall, kStar };

  Kind kind = Kind::kLiteral;
  exec::Value literal;                       // kLiteral
  std::string column;                        // kColumn
  BinaryOp op = BinaryOp::kAnd;              // kBinary
  std::string call_name;                     // kCall (lower-cased)
  std::vector<std::unique_ptr<Expr>> args;   // kBinary: [lhs, rhs(, rhs2)]

  static std::unique_ptr<Expr> Literal(exec::Value v);
  static std::unique_ptr<Expr> Column(std::string name);
  static std::unique_ptr<Expr> Binary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                      std::unique_ptr<Expr> rhs);
  static std::unique_ptr<Expr> Call(std::string name,
                                    std::vector<std::unique_ptr<Expr>> args);
  static std::unique_ptr<Expr> Star();

  std::unique_ptr<Expr> Clone() const;
  std::string ToString() const;
};

/// One item of a SELECT list.
struct SelectItem {
  std::unique_ptr<Expr> expr;
  std::string alias;  ///< empty: derived from the expression
};

struct OrderItem {
  std::string column;
  bool ascending = true;
};

/// SELECT ... FROM <table | view | (subquery)> [WHERE] [GROUP BY]
/// [ORDER BY] [LIMIT].
struct SelectStmt {
  std::vector<SelectItem> items;
  std::string from_name;                  ///< table or view name
  std::unique_ptr<SelectStmt> subquery;   ///< set when FROM (SELECT ...)
  std::string subquery_alias;
  // Optional JOIN (views): FROM a JOIN b ON a_col = b_col.
  std::string join_name;
  std::string join_left_col;
  std::string join_right_col;
  std::unique_ptr<Expr> where;
  std::vector<std::string> group_by;
  std::vector<OrderItem> order_by;
  long limit = -1;
};

struct ColumnDecl {
  std::string name;
  std::string type_name;
  bool primary_key = false;
  std::string srid;
  std::string compress;
};

struct CreateTableStmt {
  std::string name;
  std::vector<ColumnDecl> columns;  ///< empty for plugin tables
  std::string plugin;               ///< CREATE TABLE x AS trajectory
  std::string userdata_json;        ///< USERDATA {...}
};

struct CreateViewStmt {
  std::string name;
  std::unique_ptr<SelectStmt> select;
};

/// CREATE INDEX <name> ON <table> (<column>): online, non-blocking build of
/// a secondary attribute index.
struct CreateIndexStmt {
  std::string name;
  std::string table;
  std::string column;
};

/// DROP INDEX <name> ON <table>.
struct DropIndexStmt {
  std::string name;
  std::string table;
};

/// CREATE CONTINUOUS QUERY <name> ON <table> [WHERE <pred>]
/// [GROUP BY <col>] [WINDOW <n> <unit>]: a standing query evaluated
/// incrementally against streamed inserts. Without WINDOW it is an alert
/// query (each matching row becomes a notification); with WINDOW it is a
/// sliding-window aggregate (matching rows counted per group over the
/// trailing window).
struct CreateContinuousQueryStmt {
  std::string name;
  std::string table;
  std::unique_ptr<Expr> where;  ///< null = match every row
  std::string group_by;         ///< optional; requires WINDOW
  int64_t window_ms = 0;        ///< 0 = alert query
};

/// DROP CONTINUOUS QUERY <name>.
struct DropContinuousQueryStmt {
  std::string name;
};

struct DropStmt {
  bool is_view = false;
  std::string name;
};

struct ShowStmt {
  bool views = false;  ///< SHOW TABLES vs SHOW VIEWS
  bool continuous_queries = false;  ///< SHOW CONTINUOUS QUERIES
};

struct DescStmt {
  bool is_view = false;
  std::string name;
};

struct LoadStmt {
  std::string source_kind;  ///< "csv", "hive", "hbase"
  std::string source_path;  ///< file path or db.table
  std::string target_table;
  std::string config_json;
  std::string filter;  ///< FILTER '...' passthrough
};

struct StoreViewStmt {
  std::string view;
  std::string table;
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<std::unique_ptr<Expr>>> rows;  ///< VALUES lists
  /// INSERT STREAM INTO: the streaming-ingest path — tenant-tagged write
  /// admission plus continuous-query evaluation on the inserted rows.
  bool stream = false;
};

/// EXPLAIN [ANALYZE] SELECT ...: logical plans only, or (with ANALYZE) the
/// executed physical plan annotated with per-operator runtime counters.
struct ExplainStmt {
  bool analyze = false;
  std::unique_ptr<SelectStmt> select;
};

/// A parsed JustQL statement (exactly one member set).
struct Statement {
  enum class Kind {
    kSelect,
    kCreateTable,
    kCreateView,
    kCreateIndex,
    kCreateContinuousQuery,
    kDrop,
    kDropIndex,
    kDropContinuousQuery,
    kShow,
    kDesc,
    kLoad,
    kStoreView,
    kInsert,
    kExplain,
  };

  Kind kind = Kind::kSelect;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<CreateViewStmt> create_view;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<CreateContinuousQueryStmt> create_continuous_query;
  std::unique_ptr<DropStmt> drop;
  std::unique_ptr<DropIndexStmt> drop_index;
  std::unique_ptr<DropContinuousQueryStmt> drop_continuous_query;
  std::unique_ptr<ShowStmt> show;
  std::unique_ptr<DescStmt> desc;
  std::unique_ptr<LoadStmt> load;
  std::unique_ptr<StoreViewStmt> store_view;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<ExplainStmt> explain;
};

}  // namespace just::sql

#endif  // JUST_SQL_AST_H_
