#ifndef JUST_SQL_ANALYZER_H_
#define JUST_SQL_ANALYZER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/engine.h"
#include "sql/ast.h"
#include "sql/plan.h"

namespace just::sql {

/// Builds an analyzed logical plan from a parsed SELECT (Section VI, "SQL
/// Parse"): resolves table/view schemas through the meta table, verifies
/// field names, expands `SELECT *`, and checks expression types.
class Analyzer {
 public:
  Analyzer(core::JustEngine* engine, std::string user)
      : engine_(engine), user_(std::move(user)) {}

  Result<std::unique_ptr<PlanNode>> Analyze(const SelectStmt& select);

 private:
  Result<std::unique_ptr<PlanNode>> AnalyzeSource(const SelectStmt& select);

  core::JustEngine* engine_;
  std::string user_;
};

}  // namespace just::sql

#endif  // JUST_SQL_ANALYZER_H_
