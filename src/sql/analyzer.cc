#include "sql/analyzer.h"

#include "sql/expr_eval.h"
#include "sql/functions.h"

namespace just::sql {

namespace {

// True if the expression contains an aggregate call at any depth.
bool ContainsAggregate(const Expr& expr) {
  if (expr.kind == Expr::Kind::kCall) {
    exec::AggFunc agg;
    if (FindAggregateFunction(expr.call_name, &agg)) return true;
  }
  for (const auto& arg : expr.args) {
    if (ContainsAggregate(*arg)) return true;
  }
  return false;
}

std::string DeriveAlias(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == Expr::Kind::kColumn) return item.expr->column;
  return item.expr->ToString();
}

}  // namespace

Result<std::unique_ptr<PlanNode>> Analyzer::AnalyzeSource(
    const SelectStmt& select) {
  std::unique_ptr<PlanNode> source;
  if (select.subquery != nullptr) {
    JUST_ASSIGN_OR_RETURN(source, Analyze(*select.subquery));
  } else if (engine_->ViewExists(user_, select.from_name)) {
    source = MakePlanNode(PlanNode::Kind::kScanView);
    source->name = select.from_name;
    JUST_ASSIGN_OR_RETURN(auto view, engine_->GetView(user_,
                                                      select.from_name));
    source->schema = view.schema_ptr();
  } else {
    JUST_ASSIGN_OR_RETURN(auto table_meta,
                          engine_->DescribeTable(user_, select.from_name));
    source = MakePlanNode(PlanNode::Kind::kScanTable);
    source->name = select.from_name;
    source->schema = table_meta.MakeSchema();
  }

  if (!select.join_name.empty()) {
    std::unique_ptr<PlanNode> right;
    if (engine_->ViewExists(user_, select.join_name)) {
      right = MakePlanNode(PlanNode::Kind::kScanView);
      right->name = select.join_name;
      JUST_ASSIGN_OR_RETURN(auto view,
                            engine_->GetView(user_, select.join_name));
      right->schema = view.schema_ptr();
    } else {
      JUST_ASSIGN_OR_RETURN(auto table_meta,
                            engine_->DescribeTable(user_, select.join_name));
      right = MakePlanNode(PlanNode::Kind::kScanTable);
      right->name = select.join_name;
      right->schema = table_meta.MakeSchema();
    }
    if (source->schema->IndexOf(select.join_left_col) < 0) {
      return Status::InvalidArgument("join column not in left input: " +
                                     select.join_left_col);
    }
    if (right->schema->IndexOf(select.join_right_col) < 0) {
      return Status::InvalidArgument("join column not in right input: " +
                                     select.join_right_col);
    }
    auto join = MakePlanNode(PlanNode::Kind::kJoin);
    join->join_left_col = select.join_left_col;
    join->join_right_col = select.join_right_col;
    auto joined_schema = std::make_shared<exec::Schema>();
    for (const auto& f : source->schema->fields()) {
      joined_schema->AddField(f);
    }
    for (const auto& f : right->schema->fields()) {
      exec::Field out = f;
      if (source->schema->IndexOf(f.name) >= 0) out.name += "_r";
      joined_schema->AddField(out);
    }
    join->schema = joined_schema;
    join->children.push_back(std::move(source));
    join->children.push_back(std::move(right));
    source = std::move(join);
  }
  return source;
}

Result<std::unique_ptr<PlanNode>> Analyzer::Analyze(const SelectStmt& select) {
  JUST_ASSIGN_OR_RETURN(auto node, AnalyzeSource(select));

  // WHERE.
  if (select.where != nullptr) {
    // Type-check against the source schema (verifies field names).
    JUST_ASSIGN_OR_RETURN(auto where_type,
                          InferType(*select.where, *node->schema));
    if (where_type != exec::DataType::kBool) {
      return Status::InvalidArgument("WHERE must be boolean");
    }
    auto filter = MakePlanNode(PlanNode::Kind::kFilter);
    filter->predicate = select.where->Clone();
    filter->schema = node->schema;
    filter->children.push_back(std::move(node));
    node = std::move(filter);
  }

  // Aggregation vs plain projection.
  bool has_aggregate = !select.group_by.empty();
  for (const auto& item : select.items) {
    if (item.expr->kind != Expr::Kind::kStar &&
        ContainsAggregate(*item.expr)) {
      has_aggregate = true;
    }
  }

  if (has_aggregate) {
    auto agg = MakePlanNode(PlanNode::Kind::kAggregate);
    agg->group_by = select.group_by;
    auto schema = std::make_shared<exec::Schema>();
    for (const auto& col : select.group_by) {
      int idx = node->schema->IndexOf(col);
      if (idx < 0) {
        return Status::InvalidArgument("no such column: " + col);
      }
      schema->AddField(node->schema->field(idx));
    }
    for (const auto& item : select.items) {
      if (item.expr->kind == Expr::Kind::kColumn) {
        // Must be a group-by column; it is already in the schema.
        bool found = false;
        for (const auto& g : select.group_by) {
          if (g == item.expr->column) found = true;
        }
        if (!found) {
          return Status::InvalidArgument(
              "column " + item.expr->column +
              " must appear in GROUP BY or inside an aggregate");
        }
        continue;
      }
      if (item.expr->kind != Expr::Kind::kCall) {
        return Status::InvalidArgument(
            "aggregate queries support only aggregate calls and group "
            "columns in SELECT");
      }
      exec::AggFunc func;
      if (!FindAggregateFunction(item.expr->call_name, &func)) {
        return Status::InvalidArgument("unknown aggregate: " +
                                       item.expr->call_name);
      }
      exec::Aggregate aggregate;
      aggregate.func = func;
      if (!item.expr->args.empty() &&
          item.expr->args[0]->kind == Expr::Kind::kColumn) {
        aggregate.column = item.expr->args[0]->column;
        if (node->schema->IndexOf(aggregate.column) < 0) {
          return Status::InvalidArgument("no such column: " +
                                         aggregate.column);
        }
      }
      aggregate.output_name = DeriveAlias(item);
      exec::DataType out_type =
          func == exec::AggFunc::kCount
              ? exec::DataType::kInt
              : (func == exec::AggFunc::kMin || func == exec::AggFunc::kMax) &&
                        !aggregate.column.empty()
                    ? node->schema
                          ->field(node->schema->IndexOf(aggregate.column))
                          .type
                    : exec::DataType::kDouble;
      schema->AddField({aggregate.output_name, out_type});
      agg->aggregates.push_back(std::move(aggregate));
    }
    agg->schema = schema;
    agg->children.push_back(std::move(node));
    node = std::move(agg);
  } else {
    // ORDER BY may reference pre-projection columns: sort below the project.
    if (!select.order_by.empty()) {
      for (const auto& item : select.order_by) {
        if (node->schema->IndexOf(item.column) < 0) {
          return Status::InvalidArgument("no such column: " + item.column);
        }
      }
      auto sort = MakePlanNode(PlanNode::Kind::kSort);
      sort->order_by = select.order_by;
      sort->schema = node->schema;
      sort->children.push_back(std::move(node));
      node = std::move(sort);
    }
    // Projection with * expansion.
    auto project = MakePlanNode(PlanNode::Kind::kProject);
    auto schema = std::make_shared<exec::Schema>();
    bool custom_schema = false;
    for (const auto& item : select.items) {
      if (item.expr->kind == Expr::Kind::kStar) {
        for (const auto& f : node->schema->fields()) {
          SelectItem expanded;
          expanded.expr = Expr::Column(f.name);
          expanded.alias = f.name;
          project->items.push_back(std::move(expanded));
          schema->AddField(f);
        }
        continue;
      }
      // 1-N / N-M functions carry their own output schema.
      if (item.expr->kind == Expr::Kind::kCall) {
        const TableFunction* tf = FindTableFunction(item.expr->call_name);
        const PartitionFunction* pf =
            FindPartitionFunction(item.expr->call_name);
        if (tf != nullptr || pf != nullptr) {
          if (select.items.size() != 1) {
            return Status::InvalidArgument(
                item.expr->call_name +
                " must be the only item in the SELECT list");
          }
          // Validate the input column reference.
          if (!item.expr->args.empty()) {
            for (const auto& arg : item.expr->args) {
              JUST_RETURN_NOT_OK(InferType(*arg, *node->schema).status());
            }
          }
          SelectItem copied;
          copied.expr = item.expr->Clone();
          copied.alias = item.alias;
          project->items.push_back(std::move(copied));
          project->schema = tf != nullptr ? tf->output_schema
                                          : pf->output_schema;
          custom_schema = true;
          break;
        }
      }
      JUST_ASSIGN_OR_RETURN(auto type, InferType(*item.expr, *node->schema));
      SelectItem copied;
      copied.expr = item.expr->Clone();
      copied.alias = item.alias;
      schema->AddField({DeriveAlias(item), type});
      project->items.push_back(std::move(copied));
    }
    if (!custom_schema) project->schema = schema;
    project->children.push_back(std::move(node));
    node = std::move(project);
  }

  // ORDER BY over aggregate output.
  if (has_aggregate && !select.order_by.empty()) {
    for (const auto& item : select.order_by) {
      if (node->schema->IndexOf(item.column) < 0) {
        return Status::InvalidArgument("no such column: " + item.column);
      }
    }
    auto sort = MakePlanNode(PlanNode::Kind::kSort);
    sort->order_by = select.order_by;
    sort->schema = node->schema;
    sort->children.push_back(std::move(node));
    node = std::move(sort);
  }

  if (select.limit >= 0) {
    auto limit = MakePlanNode(PlanNode::Kind::kLimit);
    limit->limit = select.limit;
    limit->schema = node->schema;
    limit->children.push_back(std::move(node));
    node = std::move(limit);
  }
  return node;
}

}  // namespace just::sql
