#ifndef JUST_SQL_PREDICATE_PROGRAM_H_
#define JUST_SQL_PREDICATE_PROGRAM_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "exec/column_batch.h"
#include "geo/geometry.h"
#include "sql/ast.h"
#include "sql/expr_eval.h"

namespace just::sql {

/// Timing/accounting for one program execution, split by evaluation mode so
/// EXPLAIN ANALYZE can show interpreted vs specialized time per operator.
struct PredicateStats {
  uint64_t specialized_ns = 0;  ///< time in flat type-specialized kernels
  uint64_t interpreted_ns = 0;  ///< time in the EvaluateExpr fallback
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
};

/// A predicate compiled once per query into a flat sequence of vectorized
/// steps (the retrieved JIT papers' lever: stop re-interpreting the
/// expression tree per tuple, without shipping LLVM). Compilation:
///   - splits the conjunction and compiles each conjunct separately,
///   - constant-folds column-free subtrees (constant conjuncts drop out or
///     collapse the program to "select nothing"),
///   - type-specializes each conjunct against the input schema with column
///     offsets bound at compile time,
///   - orders steps cheapest-kernel-first so expensive work (geometry,
///     interpreted fallback) runs on the smallest surviving selection,
///   - keeps any conjunct it cannot specialize as an interpreted fallback
///     step over the same selection pipeline (EvaluateExpr per surviving
///     row, with bound column offsets) — the differential-test oracle and
///     the guarantee that every expression shape still executes.
///
/// A program owns clones of the expressions it needs, so it can outlive the
/// query that compiled it (plan cache). Run() filters a batch's selection
/// vector in place; rows whose evaluation errors are dropped, matching the
/// row-at-a-time Filter convention.
class PredicateProgram {
 public:
  /// Compiles `conjuncts` (implicitly ANDed) against `schema`.
  static Result<std::shared_ptr<const PredicateProgram>> Compile(
      const std::vector<const Expr*>& conjuncts, const exec::Schema& schema);
  /// Splits `predicate` into conjuncts and compiles them.
  static Result<std::shared_ptr<const PredicateProgram>> Compile(
      const Expr& predicate, const exec::Schema& schema);

  /// Filters `batch`'s selection vector in place.
  Status Run(exec::ColumnBatch* batch, PredicateStats* stats = nullptr) const;

  size_t num_steps() const { return steps_.size(); }
  size_t num_fallback_steps() const { return fallback_steps_; }
  bool fully_specialized() const { return fallback_steps_ == 0; }
  /// "specialized", "partial", or "interpreted" — the EXPLAIN attribute.
  const char* ModeLabel() const;

  std::string DebugString() const;

  PredicateProgram(const PredicateProgram&) = delete;
  PredicateProgram& operator=(const PredicateProgram&) = delete;

 private:
  friend struct PredicateCompiler;
  PredicateProgram() = default;

  enum class CmpKind : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

  struct Step {
    enum class Op : uint8_t {
      kConstFalse,      ///< whole predicate folded to false
      kNumericCmp,      ///< numeric column vs non-null numeric constant
      kNumericBetween,  ///< numeric column BETWEEN numeric constants
      kStringCmp,       ///< string column vs string constant
      kValueCmp,        ///< any column vs constant via Value::Compare
      kValueBetween,    ///< any column BETWEEN constants via Value::Compare
      kColumnCmp,       ///< column vs column via Value::Compare
      kWithinBox,       ///< geometry/trajectory column WITHIN a constant box
      kFallback,        ///< interpreted EvaluateExpr over surviving rows
    };

    Op op = Op::kFallback;
    CmpKind cmp = CmpKind::kEq;
    int col = -1;
    int col2 = -1;
    double num_lo = 0;  ///< kNumericCmp constant / kNumericBetween low
    double num_hi = 0;
    exec::Value value_lo;  ///< kValueCmp constant / kValueBetween low
    exec::Value value_hi;
    std::string str_const;
    geo::Mbr box{};
    /// kFallback: the cloned conjunct plus its bound column offsets.
    std::unique_ptr<Expr> fallback;
    BoundExpr bound;
    int cost = 0;  ///< ordering key; higher = run later on fewer rows
  };

  /// cmp(c, 0) for a three-way compare result c.
  static bool CmpHolds(CmpKind cmp, int c);

  void RunStep(const Step& step, const exec::ColumnBatch& batch,
               const std::vector<uint32_t>& in,
               std::vector<uint32_t>* out) const;

  std::vector<Step> steps_;
  size_t fallback_steps_ = 0;
};

/// Process-wide cache of compiled predicate programs, keyed by
/// (catalog tag, schema shape, normalized predicate text). Entry-capped LRU
/// with hit/miss/eviction counters in the metrics registry
/// (just_sql_plan_cache_{hits,misses,evictions}_total).
class PredicateProgramCache {
 public:
  static PredicateProgramCache& Global();

  explicit PredicateProgramCache(size_t capacity = 128);

  /// Returns the cached program for (cache_tag, schema, conjuncts),
  /// compiling and inserting on miss. `cache_tag` folds the source table's
  /// identity and catalog generation into the key ("table_id:generation"),
  /// so dropping and recreating a same-shaped table — or any index DDL —
  /// can never serve a program compiled against the old catalog entry.
  /// Scans without a catalog-backed source (views, derived inputs) pass "".
  Result<std::shared_ptr<const PredicateProgram>> GetOrCompile(
      const std::vector<const Expr*>& conjuncts, const exec::Schema& schema,
      const std::string& cache_tag = "");

  size_t size() const;
  uint64_t hits() const { return hits_.load(); }
  uint64_t misses() const { return misses_.load(); }
  uint64_t evictions() const { return evictions_.load(); }
  void Clear();

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const PredicateProgram> program;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> map_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace just::sql

#endif  // JUST_SQL_PREDICATE_PROGRAM_H_
