#include "sql/expr_eval.h"

#include <cmath>

#include "sql/functions.h"

namespace just::sql {

namespace {

bool IsNumericType(exec::DataType t) {
  return t == exec::DataType::kBool || t == exec::DataType::kInt ||
         t == exec::DataType::kDouble || t == exec::DataType::kTimestamp;
}

/// Per-evaluation context: the schema, the row, and (optionally) the
/// bound-offset table a BoundExpr resolved at plan time. When `offsets` is
/// set, column references cost one pointer-keyed hash lookup instead of a
/// case-insensitive string scan of the schema per row.
struct EvalCtx {
  const exec::Schema* schema;
  const exec::Row* row;
  const std::unordered_map<const Expr*, int>* offsets = nullptr;
};

Result<exec::Value> EvalBinary(const Expr& expr, const EvalCtx& ctx);

Result<exec::Value> Eval(const Expr& expr, const EvalCtx& ctx) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kStar:
      return Status::InvalidArgument("'*' is not a value expression");
    case Expr::Kind::kColumn: {
      int idx;
      if (ctx.offsets != nullptr) {
        auto it = ctx.offsets->find(&expr);
        idx = it == ctx.offsets->end() ? -1 : it->second;
      } else {
        idx = ctx.schema->IndexOf(expr.column);
      }
      if (idx < 0) {
        return Status::InvalidArgument("no such column: " + expr.column);
      }
      if (static_cast<size_t>(idx) >= ctx.row->size()) {
        return Status::Internal("row narrower than schema");
      }
      return (*ctx.row)[idx];
    }
    case Expr::Kind::kBinary:
      return EvalBinary(expr, ctx);
    case Expr::Kind::kCall: {
      const ScalarFunction* fn = FindScalarFunction(expr.call_name);
      if (fn == nullptr) {
        return Status::InvalidArgument("unknown function: " + expr.call_name);
      }
      std::vector<exec::Value> args;
      args.reserve(expr.args.size());
      for (const auto& arg : expr.args) {
        JUST_ASSIGN_OR_RETURN(auto v, Eval(*arg, ctx));
        args.push_back(std::move(v));
      }
      return fn->fn(args);
    }
  }
  return Status::Internal("bad expression kind");
}

Result<bool> EvalBool(const Expr& expr, const EvalCtx& ctx) {
  JUST_ASSIGN_OR_RETURN(auto v, Eval(expr, ctx));
  if (v.type() == exec::DataType::kBool) return v.bool_value();
  if (v.is_null()) return false;
  return Status::InvalidArgument("expected boolean, got " + v.ToString());
}

Result<exec::Value> EvalBinary(const Expr& expr, const EvalCtx& ctx) {
  switch (expr.op) {
    case BinaryOp::kAnd: {
      JUST_ASSIGN_OR_RETURN(bool lhs, EvalBool(*expr.args[0], ctx));
      if (!lhs) return exec::Value::Bool(false);
      JUST_ASSIGN_OR_RETURN(bool rhs, EvalBool(*expr.args[1], ctx));
      return exec::Value::Bool(rhs);
    }
    case BinaryOp::kOr: {
      JUST_ASSIGN_OR_RETURN(bool lhs, EvalBool(*expr.args[0], ctx));
      if (lhs) return exec::Value::Bool(true);
      JUST_ASSIGN_OR_RETURN(bool rhs, EvalBool(*expr.args[1], ctx));
      return exec::Value::Bool(rhs);
    }
    case BinaryOp::kBetween: {
      JUST_ASSIGN_OR_RETURN(auto v, Eval(*expr.args[0], ctx));
      JUST_ASSIGN_OR_RETURN(auto lo, Eval(*expr.args[1], ctx));
      JUST_ASSIGN_OR_RETURN(auto hi, Eval(*expr.args[2], ctx));
      return exec::Value::Bool(v.Compare(lo) >= 0 && v.Compare(hi) <= 0);
    }
    case BinaryOp::kWithin: {
      JUST_ASSIGN_OR_RETURN(auto g, Eval(*expr.args[0], ctx));
      JUST_ASSIGN_OR_RETURN(auto region, Eval(*expr.args[1], ctx));
      if (region.type() != exec::DataType::kGeometry) {
        return Status::InvalidArgument("WITHIN expects a geometry region");
      }
      geo::Mbr box = region.geometry_value().Bounds();
      if (g.type() == exec::DataType::kGeometry) {
        return exec::Value::Bool(g.geometry_value().Within(box));
      }
      if (g.type() == exec::DataType::kTrajectory &&
          g.trajectory_value() != nullptr) {
        return exec::Value::Bool(box.Intersects(g.trajectory_value()->Bounds()));
      }
      return Status::InvalidArgument("WITHIN expects a geometry value");
    }
    case BinaryOp::kIn:
      // `geom IN st_KNN(...)` is handled by the physical planner; reaching
      // the generic evaluator means the query shape was unsupported.
      return Status::NotSupported(
          "IN is only supported as 'geom IN st_KNN(...)'");
    default:
      break;
  }

  JUST_ASSIGN_OR_RETURN(auto lhs, Eval(*expr.args[0], ctx));
  JUST_ASSIGN_OR_RETURN(auto rhs, Eval(*expr.args[1], ctx));
  switch (expr.op) {
    case BinaryOp::kEq:
      return exec::Value::Bool(lhs.Equals(rhs));
    case BinaryOp::kNe:
      return exec::Value::Bool(!lhs.Equals(rhs));
    case BinaryOp::kLt:
      return exec::Value::Bool(lhs.Compare(rhs) < 0);
    case BinaryOp::kLe:
      return exec::Value::Bool(lhs.Compare(rhs) <= 0);
    case BinaryOp::kGt:
      return exec::Value::Bool(lhs.Compare(rhs) > 0);
    case BinaryOp::kGe:
      return exec::Value::Bool(lhs.Compare(rhs) >= 0);
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      if (!IsNumericType(lhs.type()) || !IsNumericType(rhs.type())) {
        return Status::InvalidArgument("arithmetic needs numeric operands");
      }
      bool ints = lhs.type() == exec::DataType::kInt &&
                  rhs.type() == exec::DataType::kInt;
      double a = lhs.AsDouble().value();
      double b = rhs.AsDouble().value();
      double result;
      switch (expr.op) {
        case BinaryOp::kAdd:
          result = a + b;
          break;
        case BinaryOp::kSub:
          result = a - b;
          break;
        case BinaryOp::kMul:
          result = a * b;
          break;
        default:
          if (b == 0) return Status::InvalidArgument("division by zero");
          result = a / b;
          ints = ints && std::fmod(a, b) == 0;
          break;
      }
      if (ints) return exec::Value::Int(static_cast<int64_t>(result));
      return exec::Value::Double(result);
    }
    default:
      return Status::Internal("unhandled binary operator");
  }
}

}  // namespace

Result<exec::Value> EvaluateExpr(const Expr& expr, const exec::Schema& schema,
                                 const exec::Row& row) {
  return Eval(expr, EvalCtx{&schema, &row});
}

Result<exec::Value> EvaluateConstant(const Expr& expr) {
  static const exec::Schema* kEmpty = new exec::Schema();
  static const exec::Row* kNoRow = new exec::Row();
  return Eval(expr, EvalCtx{kEmpty, kNoRow});
}

namespace {

Status BindColumns(const Expr& expr, const exec::Schema& schema,
                   std::unordered_map<const Expr*, int>* out) {
  switch (expr.kind) {
    case Expr::Kind::kColumn: {
      int idx = schema.IndexOf(expr.column);
      if (idx < 0) {
        return Status::InvalidArgument("no such column: " + expr.column);
      }
      (*out)[&expr] = idx;
      return Status::OK();
    }
    case Expr::Kind::kBinary:
    case Expr::Kind::kCall:
      for (const auto& arg : expr.args) {
        JUST_RETURN_NOT_OK(BindColumns(*arg, schema, out));
      }
      return Status::OK();
    default:
      return Status::OK();
  }
}

}  // namespace

Result<BoundExpr> BoundExpr::Bind(const Expr& expr,
                                  const exec::Schema& schema) {
  BoundExpr bound;
  bound.expr_ = &expr;
  JUST_RETURN_NOT_OK(BindColumns(expr, schema, &bound.offsets_));
  return bound;
}

Result<exec::Value> BoundExpr::Eval(const exec::Row& row) const {
  // The schema is never consulted once offsets are bound; pass a dummy.
  static const exec::Schema* kEmpty = new exec::Schema();
  return sql::Eval(*expr_, EvalCtx{kEmpty, &row, &offsets_});
}

Result<bool> BoundExpr::EvalBool(const exec::Row& row) const {
  static const exec::Schema* kEmpty = new exec::Schema();
  return sql::EvalBool(*expr_, EvalCtx{kEmpty, &row, &offsets_});
}

bool IsConstantExpr(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return true;
    case Expr::Kind::kColumn:
    case Expr::Kind::kStar:
      return false;
    case Expr::Kind::kBinary: {
      // IN needs the planner; never fold it.
      if (expr.op == BinaryOp::kIn) return false;
      for (const auto& arg : expr.args) {
        if (!IsConstantExpr(*arg)) return false;
      }
      return true;
    }
    case Expr::Kind::kCall: {
      if (FindScalarFunction(expr.call_name) == nullptr) return false;
      for (const auto& arg : expr.args) {
        if (!IsConstantExpr(*arg)) return false;
      }
      return true;
    }
  }
  return false;
}

Result<exec::DataType> InferType(const Expr& expr,
                                 const exec::Schema& schema) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal.type();
    case Expr::Kind::kStar:
      return Status::InvalidArgument("'*' has no type");
    case Expr::Kind::kColumn: {
      int idx = schema.IndexOf(expr.column);
      if (idx < 0) {
        return Status::InvalidArgument("no such column: " + expr.column);
      }
      return schema.field(idx).type;
    }
    case Expr::Kind::kBinary:
      switch (expr.op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
        case BinaryOp::kWithin:
        case BinaryOp::kBetween:
        case BinaryOp::kIn:
          // Validate operands (field-name verification, Section VI "SQL
          // Parse"). The rhs of `IN st_KNN(...)` is planner-handled, so
          // only its arguments are checked.
          for (const auto& arg : expr.args) {
            if (expr.op == BinaryOp::kIn &&
                arg->kind == Expr::Kind::kCall &&
                arg->call_name == "st_knn") {
              for (const auto& knn_arg : arg->args) {
                JUST_RETURN_NOT_OK(InferType(*knn_arg, schema).status());
              }
              continue;
            }
            JUST_RETURN_NOT_OK(InferType(*arg, schema).status());
          }
          return exec::DataType::kBool;
        default: {
          JUST_ASSIGN_OR_RETURN(auto lt, InferType(*expr.args[0], schema));
          JUST_ASSIGN_OR_RETURN(auto rt, InferType(*expr.args[1], schema));
          if (lt == exec::DataType::kInt && rt == exec::DataType::kInt) {
            return exec::DataType::kInt;
          }
          return exec::DataType::kDouble;
        }
      }
    case Expr::Kind::kCall: {
      const ScalarFunction* fn = FindScalarFunction(expr.call_name);
      if (fn != nullptr) {
        // Validate argument columns exist.
        for (const auto& arg : expr.args) {
          if (arg->kind != Expr::Kind::kStar) {
            JUST_RETURN_NOT_OK(InferType(*arg, schema).status());
          }
        }
        return fn->return_type;
      }
      exec::AggFunc agg;
      if (FindAggregateFunction(expr.call_name, &agg)) {
        return agg == exec::AggFunc::kCount ? exec::DataType::kInt
                                            : exec::DataType::kDouble;
      }
      if (FindTableFunction(expr.call_name) != nullptr ||
          FindPartitionFunction(expr.call_name) != nullptr) {
        return exec::DataType::kNull;  // produces its own schema
      }
      return Status::InvalidArgument("unknown function: " + expr.call_name);
    }
  }
  return Status::Internal("bad expression kind");
}

void CollectColumns(const Expr& expr, std::vector<std::string>* out) {
  switch (expr.kind) {
    case Expr::Kind::kColumn:
      out->push_back(expr.column);
      return;
    case Expr::Kind::kBinary:
    case Expr::Kind::kCall:
      for (const auto& arg : expr.args) CollectColumns(*arg, out);
      return;
    default:
      return;
  }
}

}  // namespace just::sql
