#include "spatial/quadtree.h"

#include <queue>

namespace just::spatial {

QuadTree::QuadTree(geo::Mbr extent, int bucket_size, int max_depth)
    : extent_(extent),
      bucket_size_(std::max(1, bucket_size)),
      max_depth_(std::max(1, max_depth)) {
  Node root;
  root.box = extent_;
  nodes_.push_back(std::move(root));
}

void QuadTree::Split(uint32_t node_index) {
  geo::Mbr box = nodes_[node_index].box;
  int depth = nodes_[node_index].depth;
  double lng_mid = (box.lng_min + box.lng_max) / 2;
  double lat_mid = (box.lat_min + box.lat_max) / 2;
  for (int q = 0; q < 4; ++q) {
    Node child;
    child.box = geo::Mbr{
        (q & 1) ? lng_mid : box.lng_min,
        (q & 2) ? lat_mid : box.lat_min,
        (q & 1) ? box.lng_max : lng_mid,
        (q & 2) ? box.lat_max : lat_mid,
    };
    child.depth = depth + 1;
    nodes_[node_index].children[q] =
        static_cast<int32_t>(nodes_.size());
    nodes_.push_back(std::move(child));
  }
  std::vector<SpatialEntry> bucket;
  bucket.swap(nodes_[node_index].bucket);
  for (const SpatialEntry& e : bucket) {
    num_entries_ -= 1;  // re-inserted below
    InsertInto(node_index, e);
  }
}

void QuadTree::InsertInto(uint32_t node_index, const SpatialEntry& entry) {
  for (;;) {
    Node& node = nodes_[node_index];
    if (node.is_leaf()) {
      if (static_cast<int>(node.bucket.size()) >= bucket_size_ &&
          node.depth < max_depth_) {
        Split(node_index);
        continue;  // node is now internal; re-dispatch
      }
      node.bucket.push_back(entry);
      ++num_entries_;
      return;
    }
    // Route by box center; entries spanning children still live in exactly
    // one leaf, queried via box intersection.
    geo::Point c = entry.box.Center();
    double lng_mid = (node.box.lng_min + node.box.lng_max) / 2;
    double lat_mid = (node.box.lat_min + node.box.lat_max) / 2;
    int q = (c.lng >= lng_mid ? 1 : 0) | (c.lat >= lat_mid ? 2 : 0);
    node_index = static_cast<uint32_t>(node.children[q]);
  }
}

void QuadTree::Insert(const SpatialEntry& entry) { InsertInto(0, entry); }

void QuadTree::Query(
    const geo::Mbr& query,
    const std::function<void(const SpatialEntry&)>& fn) const {
  std::vector<uint32_t> stack{0};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (!node.box.Intersects(query)) continue;
    if (node.is_leaf()) {
      for (const SpatialEntry& e : node.bucket) {
        if (e.box.Intersects(query)) fn(e);
      }
    } else {
      for (int32_t c : node.children) {
        stack.push_back(static_cast<uint32_t>(c));
      }
    }
  }
}

std::vector<SpatialEntry> QuadTree::Knn(const geo::Point& q, int k) const {
  std::vector<SpatialEntry> result;
  if (k <= 0 || num_entries_ == 0) return result;
  struct Item {
    double dist;
    bool is_entry;
    uint32_t node;
    SpatialEntry entry;
    bool operator<(const Item& o) const { return dist > o.dist; }
  };
  std::priority_queue<Item> heap;
  heap.push({nodes_[0].box.MinDistance(q), false, 0, {}});
  while (!heap.empty() && static_cast<int>(result.size()) < k) {
    Item item = heap.top();
    heap.pop();
    if (item.is_entry) {
      result.push_back(item.entry);
      continue;
    }
    const Node& node = nodes_[item.node];
    if (node.is_leaf()) {
      for (const SpatialEntry& e : node.bucket) {
        heap.push({e.box.MinDistance(q), true, 0, e});
      }
    } else {
      for (int32_t c : node.children) {
        heap.push({nodes_[c].box.MinDistance(q), false,
                   static_cast<uint32_t>(c),
                   {}});
      }
    }
  }
  return result;
}

size_t QuadTree::MemoryBytes() const {
  size_t total = nodes_.capacity() * sizeof(Node);
  for (const Node& node : nodes_) {
    total += node.bucket.capacity() * sizeof(SpatialEntry);
  }
  return total;
}

}  // namespace just::spatial
