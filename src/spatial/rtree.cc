#include "spatial/rtree.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace just::spatial {

StrRTree::StrRTree(int fanout) : fanout_(std::max(2, fanout)) {}

void StrRTree::BulkLoad(std::vector<SpatialEntry> entries) {
  entries_ = std::move(entries);
  nodes_.clear();
  root_ = -1;
  num_entries_ = entries_.size();
  height_ = 0;
  if (entries_.empty()) return;

  // Level 0: STR-pack the entries into leaves.
  std::vector<uint32_t> order(entries_.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  size_t num_leaves =
      (entries_.size() + fanout_ - 1) / static_cast<size_t>(fanout_);
  size_t num_slices =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  size_t slice_size =
      (entries_.size() + num_slices - 1) / std::max<size_t>(1, num_slices);

  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return entries_[a].box.Center().lng < entries_[b].box.Center().lng;
  });
  for (size_t s = 0; s < order.size(); s += slice_size) {
    size_t end = std::min(order.size(), s + slice_size);
    std::sort(order.begin() + s, order.begin() + end,
              [&](uint32_t a, uint32_t b) {
                return entries_[a].box.Center().lat <
                       entries_[b].box.Center().lat;
              });
  }

  std::vector<uint32_t> level;  // node indices at the current level
  for (size_t i = 0; i < order.size(); i += fanout_) {
    Node leaf;
    leaf.leaf = true;
    size_t end = std::min(order.size(), i + fanout_);
    for (size_t j = i; j < end; ++j) {
      leaf.children.push_back(order[j]);
      leaf.box.Expand(entries_[order[j]].box);
    }
    level.push_back(static_cast<uint32_t>(nodes_.size()));
    nodes_.push_back(std::move(leaf));
  }
  height_ = 1;

  // Pack upward until a single root remains.
  while (level.size() > 1) {
    // STR at internal levels too: sort by center lng, slice by lat.
    std::sort(level.begin(), level.end(), [&](uint32_t a, uint32_t b) {
      return nodes_[a].box.Center().lng < nodes_[b].box.Center().lng;
    });
    size_t n_parents =
        (level.size() + fanout_ - 1) / static_cast<size_t>(fanout_);
    size_t slices = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(n_parents))));
    size_t chunk = (level.size() + slices - 1) / std::max<size_t>(1, slices);
    for (size_t s = 0; s < level.size(); s += chunk) {
      size_t end = std::min(level.size(), s + chunk);
      std::sort(level.begin() + s, level.begin() + end,
                [&](uint32_t a, uint32_t b) {
                  return nodes_[a].box.Center().lat <
                         nodes_[b].box.Center().lat;
                });
    }
    std::vector<uint32_t> parents;
    for (size_t i = 0; i < level.size(); i += fanout_) {
      Node parent;
      parent.leaf = false;
      size_t end = std::min(level.size(), i + fanout_);
      for (size_t j = i; j < end; ++j) {
        parent.children.push_back(level[j]);
        parent.box.Expand(nodes_[level[j]].box);
      }
      parents.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(std::move(parent));
    }
    level.swap(parents);
    ++height_;
  }
  root_ = static_cast<int32_t>(level[0]);
}

void StrRTree::Query(
    const geo::Mbr& query,
    const std::function<void(const SpatialEntry&)>& fn) const {
  if (root_ < 0) return;
  std::vector<uint32_t> stack{static_cast<uint32_t>(root_)};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (!node.box.Intersects(query)) continue;
    if (node.leaf) {
      for (uint32_t e : node.children) {
        if (entries_[e].box.Intersects(query)) fn(entries_[e]);
      }
    } else {
      for (uint32_t c : node.children) {
        if (nodes_[c].box.Intersects(query)) stack.push_back(c);
      }
    }
  }
}

std::vector<SpatialEntry> StrRTree::Knn(const geo::Point& q, int k) const {
  std::vector<SpatialEntry> result;
  if (root_ < 0 || k <= 0) return result;
  // Best-first search over (distance, is_entry, index).
  struct Item {
    double dist;
    bool is_entry;
    uint32_t index;
    bool operator<(const Item& o) const { return dist > o.dist; }  // min-heap
  };
  std::priority_queue<Item> heap;
  heap.push({nodes_[root_].box.MinDistance(q), false,
             static_cast<uint32_t>(root_)});
  while (!heap.empty() && static_cast<int>(result.size()) < k) {
    Item item = heap.top();
    heap.pop();
    if (item.is_entry) {
      result.push_back(entries_[item.index]);
      continue;
    }
    const Node& node = nodes_[item.index];
    if (node.leaf) {
      for (uint32_t e : node.children) {
        heap.push({entries_[e].box.MinDistance(q), true, e});
      }
    } else {
      for (uint32_t c : node.children) {
        heap.push({nodes_[c].box.MinDistance(q), false, c});
      }
    }
  }
  return result;
}

size_t StrRTree::MemoryBytes() const {
  size_t total = entries_.capacity() * sizeof(SpatialEntry) +
                 nodes_.capacity() * sizeof(Node);
  for (const Node& node : nodes_) {
    total += node.children.capacity() * sizeof(uint32_t);
  }
  return total;
}

}  // namespace just::spatial
