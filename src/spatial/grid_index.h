#ifndef JUST_SPATIAL_GRID_INDEX_H_
#define JUST_SPATIAL_GRID_INDEX_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "geo/point.h"
#include "spatial/rtree.h"  // SpatialEntry

namespace just::spatial {

/// A uniform grid over a fixed extent — the partitioning scheme of the
/// GeoSpark-like and SpatialSpark-like baselines (and Hadoop-GIS). Entries
/// with extents are registered in every overlapped cell; queries dedupe by
/// entry id.
class GridIndex {
 public:
  GridIndex(geo::Mbr extent, int cells_per_axis);

  void Insert(const SpatialEntry& entry);

  void Query(const geo::Mbr& query,
             const std::function<void(const SpatialEntry&)>& fn) const;

  /// k nearest by expanding ring search.
  std::vector<SpatialEntry> Knn(const geo::Point& q, int k) const;

  size_t size() const { return num_entries_; }
  size_t MemoryBytes() const;
  int cells_per_axis() const { return cells_; }

 private:
  int64_t CellIndex(int cx, int cy) const {
    return static_cast<int64_t>(cy) * cells_ + cx;
  }
  int ClampCellX(double lng) const;
  int ClampCellY(double lat) const;

  geo::Mbr extent_;
  int cells_;
  std::unordered_map<int64_t, std::vector<SpatialEntry>> cells_map_;
  size_t num_entries_ = 0;
};

}  // namespace just::spatial

#endif  // JUST_SPATIAL_GRID_INDEX_H_
