#ifndef JUST_SPATIAL_QUADTREE_H_
#define JUST_SPATIAL_QUADTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "geo/point.h"
#include "spatial/rtree.h"  // SpatialEntry

namespace just::spatial {

/// A region quadtree with bucketed leaves — the global index of the
/// LocationSpark-like baseline and MD-HBase's structure.
class QuadTree {
 public:
  explicit QuadTree(geo::Mbr extent = geo::Mbr::World(), int bucket_size = 64,
                    int max_depth = 16);

  void Insert(const SpatialEntry& entry);

  void Query(const geo::Mbr& query,
             const std::function<void(const SpatialEntry&)>& fn) const;

  std::vector<SpatialEntry> Knn(const geo::Point& q, int k) const;

  size_t size() const { return num_entries_; }
  size_t MemoryBytes() const;

 private:
  struct Node {
    geo::Mbr box;
    int depth = 0;
    std::vector<SpatialEntry> bucket;
    int32_t children[4] = {-1, -1, -1, -1};  // indices into nodes_
    bool is_leaf() const { return children[0] < 0; }
  };

  void Split(uint32_t node_index);
  void InsertInto(uint32_t node_index, const SpatialEntry& entry);

  geo::Mbr extent_;
  int bucket_size_;
  int max_depth_;
  std::vector<Node> nodes_;
  size_t num_entries_ = 0;
};

}  // namespace just::spatial

#endif  // JUST_SPATIAL_QUADTREE_H_
