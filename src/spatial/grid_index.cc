#include "spatial/grid_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace just::spatial {

GridIndex::GridIndex(geo::Mbr extent, int cells_per_axis)
    : extent_(extent), cells_(std::max(1, cells_per_axis)) {}

int GridIndex::ClampCellX(double lng) const {
  double frac = (lng - extent_.lng_min) / std::max(1e-12, extent_.Width());
  int c = static_cast<int>(frac * cells_);
  return std::clamp(c, 0, cells_ - 1);
}

int GridIndex::ClampCellY(double lat) const {
  double frac = (lat - extent_.lat_min) / std::max(1e-12, extent_.Height());
  int c = static_cast<int>(frac * cells_);
  return std::clamp(c, 0, cells_ - 1);
}

void GridIndex::Insert(const SpatialEntry& entry) {
  int x0 = ClampCellX(entry.box.lng_min);
  int x1 = ClampCellX(entry.box.lng_max);
  int y0 = ClampCellY(entry.box.lat_min);
  int y1 = ClampCellY(entry.box.lat_max);
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) {
      cells_map_[CellIndex(cx, cy)].push_back(entry);
    }
  }
  ++num_entries_;
}

void GridIndex::Query(
    const geo::Mbr& query,
    const std::function<void(const SpatialEntry&)>& fn) const {
  int x0 = ClampCellX(query.lng_min);
  int x1 = ClampCellX(query.lng_max);
  int y0 = ClampCellY(query.lat_min);
  int y1 = ClampCellY(query.lat_max);
  std::unordered_set<uint64_t> seen;
  for (int cy = y0; cy <= y1; ++cy) {
    for (int cx = x0; cx <= x1; ++cx) {
      auto it = cells_map_.find(CellIndex(cx, cy));
      if (it == cells_map_.end()) continue;
      for (const SpatialEntry& e : it->second) {
        if (!e.box.Intersects(query)) continue;
        if (seen.insert(e.id).second) fn(e);
      }
    }
  }
}

std::vector<SpatialEntry> GridIndex::Knn(const geo::Point& q, int k) const {
  std::vector<SpatialEntry> result;
  if (k <= 0 || num_entries_ == 0) return result;
  double cell_w = extent_.Width() / cells_;
  double cell_h = extent_.Height() / cells_;
  double step = std::max(cell_w, cell_h);
  double radius = step;
  // Expand the search window until k candidates are safely inside it.
  for (int attempt = 0; attempt < 40; ++attempt) {
    geo::Mbr window = geo::Mbr::Of(q.lng - radius, q.lat - radius,
                                   q.lng + radius, q.lat + radius);
    std::vector<SpatialEntry> candidates;
    Query(window, [&](const SpatialEntry& e) { candidates.push_back(e); });
    // Keep only candidates whose distance is certain (<= radius).
    std::sort(candidates.begin(), candidates.end(),
              [&](const SpatialEntry& a, const SpatialEntry& b) {
                return a.box.MinDistance(q) < b.box.MinDistance(q);
              });
    if (static_cast<int>(candidates.size()) >= k &&
        candidates[k - 1].box.MinDistance(q) <= radius) {
      candidates.resize(k);
      return candidates;
    }
    if (window.Contains(extent_)) {
      if (static_cast<int>(candidates.size()) > k) candidates.resize(k);
      return candidates;
    }
    radius *= 2;
  }
  return result;
}

size_t GridIndex::MemoryBytes() const {
  size_t total = 0;
  for (const auto& [key, bucket] : cells_map_) {
    total += sizeof(key) + bucket.capacity() * sizeof(SpatialEntry) + 48;
  }
  return total;
}

}  // namespace just::spatial
