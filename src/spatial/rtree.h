#ifndef JUST_SPATIAL_RTREE_H_
#define JUST_SPATIAL_RTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "geo/point.h"

namespace just::spatial {

/// An indexed spatial item: a bounding box plus the caller's record id.
struct SpatialEntry {
  geo::Mbr box;
  uint64_t id = 0;
};

/// A bulk-loaded R-tree using Sort-Tile-Recursive packing [Leutenegger et
/// al.] — the in-memory index the Simba-like and LocationSpark-like
/// baselines build over their partitions. Supports box queries and
/// best-first k-NN.
class StrRTree {
 public:
  explicit StrRTree(int fanout = 16);

  /// Builds the tree; replaces previous contents.
  void BulkLoad(std::vector<SpatialEntry> entries);

  /// Calls `fn` for every entry whose box intersects `query`.
  void Query(const geo::Mbr& query,
             const std::function<void(const SpatialEntry&)>& fn) const;

  /// The k entries nearest to `q` by box min-distance (exact for points).
  std::vector<SpatialEntry> Knn(const geo::Point& q, int k) const;

  size_t size() const { return num_entries_; }
  /// Heap bytes of the index structure (for OOM accounting).
  size_t MemoryBytes() const;
  int height() const { return height_; }

 private:
  struct Node {
    geo::Mbr box = geo::Mbr::Empty();
    bool leaf = true;
    /// Leaf: indices into entries_. Internal: indices into nodes_.
    std::vector<uint32_t> children;
  };

  int fanout_;
  std::vector<SpatialEntry> entries_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  size_t num_entries_ = 0;
  int height_ = 0;
};

}  // namespace just::spatial

#endif  // JUST_SPATIAL_RTREE_H_
