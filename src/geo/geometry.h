#ifndef JUST_GEO_GEOMETRY_H_
#define JUST_GEO_GEOMETRY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geo/point.h"

namespace just::geo {

/// Geometry kinds supported by JUST tables. Points use Z2/Z2T indexing;
/// non-point geometries (lines, polygons) use XZ2/XZ2T (Section IV).
enum class GeometryType { kPoint, kLineString, kPolygon };

/// A simple geometry: a point, a polyline, or a single-ring polygon.
class Geometry {
 public:
  Geometry() : type_(GeometryType::kPoint), points_{Point{}} {}

  static Geometry MakePoint(Point p);
  static Geometry MakeLineString(std::vector<Point> pts);
  /// The ring may be open; it is treated as closed (last->first edge).
  static Geometry MakePolygon(std::vector<Point> ring);

  GeometryType type() const { return type_; }
  bool is_point() const { return type_ == GeometryType::kPoint; }
  const std::vector<Point>& points() const { return points_; }
  const Point& AsPoint() const { return points_[0]; }

  /// Bounding box of the geometry.
  Mbr Bounds() const;

  /// True if the geometry is entirely inside `box` (the WITHIN predicate).
  bool Within(const Mbr& box) const;

  /// True if the geometry intersects `box`.
  bool Intersects(const Mbr& box) const;

  /// Point-in-polygon test (ray casting); only valid for polygons.
  bool ContainsPoint(const Point& p) const;

  /// Minimum degree-space distance from `q` to this geometry.
  double Distance(const Point& q) const;

  /// WKT rendering: POINT (...) / LINESTRING (...) / POLYGON ((...)).
  std::string ToWkt() const;

  /// Compact binary serialization for storage cells.
  std::string Serialize() const;
  static Result<Geometry> Deserialize(const std::string& bytes);

  /// Parses a WKT string (the three supported types).
  static Result<Geometry> FromWkt(const std::string& wkt);

  bool operator==(const Geometry& o) const {
    return type_ == o.type_ && points_ == o.points_;
  }

 private:
  GeometryType type_;
  std::vector<Point> points_;
};

}  // namespace just::geo

#endif  // JUST_GEO_GEOMETRY_H_
