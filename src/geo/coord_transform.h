#ifndef JUST_GEO_COORD_TRANSFORM_H_
#define JUST_GEO_COORD_TRANSFORM_H_

#include "geo/point.h"

namespace just::geo {

/// Coordinate-standard transforms backing the paper's 1-1 analysis operators
/// (st_WGS84ToGCJ02 etc., Section V-D). GCJ-02 is the Chinese national
/// obfuscated datum; the forward transform is the published algorithm and the
/// inverse is an iterative refinement.

/// Returns true if the point is clearly outside China, where GCJ-02 applies
/// no offset.
bool OutsideChina(const Point& p);

Point Wgs84ToGcj02(const Point& wgs);
Point Gcj02ToWgs84(const Point& gcj);

/// BD-09 (Baidu) transforms, included for API completeness.
Point Gcj02ToBd09(const Point& gcj);
Point Bd09ToGcj02(const Point& bd);

}  // namespace just::geo

#endif  // JUST_GEO_COORD_TRANSFORM_H_
