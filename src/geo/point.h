#ifndef JUST_GEO_POINT_H_
#define JUST_GEO_POINT_H_

#include <algorithm>
#include <cmath>
#include <string>

namespace just::geo {

/// A longitude/latitude point in degrees (WGS84, SRID 4326).
struct Point {
  double lng = 0;
  double lat = 0;

  bool operator==(const Point& o) const { return lng == o.lng && lat == o.lat; }
};

/// Axis-aligned minimum bounding rectangle in degrees.
struct Mbr {
  double lng_min = 0;
  double lat_min = 0;
  double lng_max = 0;
  double lat_max = 0;

  static Mbr Of(double lng_min, double lat_min, double lng_max,
                double lat_max) {
    return Mbr{std::min(lng_min, lng_max), std::min(lat_min, lat_max),
               std::max(lng_min, lng_max), std::max(lat_min, lat_max)};
  }

  /// The whole-earth extent used as the root search space.
  static Mbr World() { return Mbr{-180.0, -90.0, 180.0, 90.0}; }

  /// An "empty" MBR that expands from nothing.
  static Mbr Empty() {
    return Mbr{1e300, 1e300, -1e300, -1e300};
  }

  bool IsEmpty() const { return lng_min > lng_max || lat_min > lat_max; }

  bool Contains(const Point& p) const {
    return p.lng >= lng_min && p.lng <= lng_max && p.lat >= lat_min &&
           p.lat <= lat_max;
  }

  bool Contains(const Mbr& o) const {
    return o.lng_min >= lng_min && o.lng_max <= lng_max &&
           o.lat_min >= lat_min && o.lat_max <= lat_max;
  }

  bool Intersects(const Mbr& o) const {
    return !(o.lng_min > lng_max || o.lng_max < lng_min ||
             o.lat_min > lat_max || o.lat_max < lat_min);
  }

  void Expand(const Point& p) {
    lng_min = std::min(lng_min, p.lng);
    lat_min = std::min(lat_min, p.lat);
    lng_max = std::max(lng_max, p.lng);
    lat_max = std::max(lat_max, p.lat);
  }

  void Expand(const Mbr& o) {
    lng_min = std::min(lng_min, o.lng_min);
    lat_min = std::min(lat_min, o.lat_min);
    lng_max = std::max(lng_max, o.lng_max);
    lat_max = std::max(lat_max, o.lat_max);
  }

  double Width() const { return lng_max - lng_min; }
  double Height() const { return lat_max - lat_min; }
  Point Center() const {
    return Point{(lng_min + lng_max) / 2, (lat_min + lat_max) / 2};
  }

  /// Minimum euclidean (degree-space) distance from a point to this box;
  /// zero when the point is inside. This is Eq. (4)'s dA(q, a).
  double MinDistance(const Point& q) const {
    double dx = 0, dy = 0;
    if (q.lng < lng_min) {
      dx = lng_min - q.lng;
    } else if (q.lng > lng_max) {
      dx = q.lng - lng_max;
    }
    if (q.lat < lat_min) {
      dy = lat_min - q.lat;
    } else if (q.lat > lat_max) {
      dy = q.lat - lat_max;
    }
    return std::sqrt(dx * dx + dy * dy);
  }

  bool operator==(const Mbr& o) const {
    return lng_min == o.lng_min && lat_min == o.lat_min &&
           lng_max == o.lng_max && lat_max == o.lat_max;
  }

  std::string ToString() const;
};

/// Euclidean distance in degree space (the paper adopts euclidean distance
/// for k-NN simplicity; see Section V-C).
double EuclideanDistance(const Point& a, const Point& b);

/// Great-circle distance in meters (haversine), used by trajectory analysis
/// operators where physical speed matters.
double HaversineMeters(const Point& a, const Point& b);

/// Builds the MBR of a square spatial window of `side_km` kilometers centered
/// at `center` (approximate degree conversion; fine for query workloads).
Mbr SquareWindowKm(const Point& center, double side_km);

/// Distance from point p to segment [a, b] in degree space.
double PointSegmentDistance(const Point& p, const Point& a, const Point& b);

}  // namespace just::geo

#endif  // JUST_GEO_POINT_H_
