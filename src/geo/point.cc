#include "geo/point.h"

#include <cstdio>

namespace just::geo {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kEarthRadiusM = 6371008.8;
double Rad(double deg) { return deg * kPi / 180.0; }
}  // namespace

std::string Mbr::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%.6f,%.6f,%.6f,%.6f]", lng_min, lat_min,
                lng_max, lat_max);
  return buf;
}

double EuclideanDistance(const Point& a, const Point& b) {
  double dx = a.lng - b.lng;
  double dy = a.lat - b.lat;
  return std::sqrt(dx * dx + dy * dy);
}

double HaversineMeters(const Point& a, const Point& b) {
  double dlat = Rad(b.lat - a.lat);
  double dlng = Rad(b.lng - a.lng);
  double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
             std::cos(Rad(a.lat)) * std::cos(Rad(b.lat)) *
                 std::sin(dlng / 2) * std::sin(dlng / 2);
  return 2 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(s)));
}

Mbr SquareWindowKm(const Point& center, double side_km) {
  // 1 degree latitude ~ 111.32 km; longitude shrinks by cos(lat).
  double half_lat = side_km / 2.0 / 111.32;
  double cos_lat = std::max(0.1, std::cos(Rad(center.lat)));
  double half_lng = side_km / 2.0 / (111.32 * cos_lat);
  return Mbr::Of(center.lng - half_lng, center.lat - half_lat,
                 center.lng + half_lng, center.lat + half_lat);
}

double PointSegmentDistance(const Point& p, const Point& a, const Point& b) {
  double abx = b.lng - a.lng;
  double aby = b.lat - a.lat;
  double apx = p.lng - a.lng;
  double apy = p.lat - a.lat;
  double ab2 = abx * abx + aby * aby;
  double t = ab2 == 0 ? 0 : std::clamp((apx * abx + apy * aby) / ab2, 0.0, 1.0);
  Point proj{a.lng + t * abx, a.lat + t * aby};
  return EuclideanDistance(p, proj);
}

}  // namespace just::geo
