#include "geo/geometry.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/bytes.h"

namespace just::geo {

Geometry Geometry::MakePoint(Point p) {
  Geometry g;
  g.type_ = GeometryType::kPoint;
  g.points_ = {p};
  return g;
}

Geometry Geometry::MakeLineString(std::vector<Point> pts) {
  Geometry g;
  g.type_ = GeometryType::kLineString;
  g.points_ = std::move(pts);
  if (g.points_.empty()) g.points_.push_back(Point{});
  return g;
}

Geometry Geometry::MakePolygon(std::vector<Point> ring) {
  Geometry g;
  g.type_ = GeometryType::kPolygon;
  g.points_ = std::move(ring);
  if (g.points_.empty()) g.points_.push_back(Point{});
  // Normalize: drop an explicit closing point equal to the first.
  if (g.points_.size() > 1 && g.points_.front() == g.points_.back()) {
    g.points_.pop_back();
  }
  return g;
}

Mbr Geometry::Bounds() const {
  Mbr box = Mbr::Empty();
  for (const Point& p : points_) box.Expand(p);
  return box;
}

bool Geometry::Within(const Mbr& box) const { return box.Contains(Bounds()); }

bool Geometry::Intersects(const Mbr& box) const {
  if (!box.Intersects(Bounds())) return false;
  if (type_ == GeometryType::kPoint) return true;
  // Any vertex inside?
  for (const Point& p : points_) {
    if (box.Contains(p)) return true;
  }
  // Any edge crossing the box? Conservative: check segment-box overlap by
  // sampling the segment bounding boxes (sufficient for query refinement).
  size_t n = points_.size();
  size_t edges = type_ == GeometryType::kPolygon ? n : n - 1;
  for (size_t i = 0; i < edges; ++i) {
    const Point& a = points_[i];
    const Point& b = points_[(i + 1) % n];
    Mbr seg = Mbr::Of(a.lng, a.lat, b.lng, b.lat);
    if (box.Intersects(seg)) return true;
  }
  // Box fully inside a polygon?
  if (type_ == GeometryType::kPolygon && ContainsPoint(box.Center())) {
    return true;
  }
  return false;
}

bool Geometry::ContainsPoint(const Point& p) const {
  if (type_ != GeometryType::kPolygon || points_.size() < 3) return false;
  bool inside = false;
  size_t n = points_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = points_[i];
    const Point& b = points_[j];
    bool crosses = (a.lat > p.lat) != (b.lat > p.lat);
    if (crosses) {
      double x = (b.lng - a.lng) * (p.lat - a.lat) / (b.lat - a.lat) + a.lng;
      if (p.lng < x) inside = !inside;
    }
  }
  return inside;
}

double Geometry::Distance(const Point& q) const {
  switch (type_) {
    case GeometryType::kPoint:
      return EuclideanDistance(q, points_[0]);
    case GeometryType::kLineString: {
      double best = std::numeric_limits<double>::infinity();
      if (points_.size() == 1) return EuclideanDistance(q, points_[0]);
      for (size_t i = 0; i + 1 < points_.size(); ++i) {
        best = std::min(best,
                        PointSegmentDistance(q, points_[i], points_[i + 1]));
      }
      return best;
    }
    case GeometryType::kPolygon: {
      if (ContainsPoint(q)) return 0.0;
      double best = std::numeric_limits<double>::infinity();
      size_t n = points_.size();
      for (size_t i = 0; i < n; ++i) {
        best = std::min(
            best, PointSegmentDistance(q, points_[i], points_[(i + 1) % n]));
      }
      return best;
    }
  }
  return 0.0;
}

namespace {
void AppendCoord(std::string* out, const Point& p) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f %.6f", p.lng, p.lat);
  *out += buf;
}
}  // namespace

std::string Geometry::ToWkt() const {
  std::string out;
  switch (type_) {
    case GeometryType::kPoint:
      out = "POINT (";
      AppendCoord(&out, points_[0]);
      out += ")";
      return out;
    case GeometryType::kLineString: {
      out = "LINESTRING (";
      for (size_t i = 0; i < points_.size(); ++i) {
        if (i) out += ", ";
        AppendCoord(&out, points_[i]);
      }
      out += ")";
      return out;
    }
    case GeometryType::kPolygon: {
      out = "POLYGON ((";
      for (size_t i = 0; i < points_.size(); ++i) {
        if (i) out += ", ";
        AppendCoord(&out, points_[i]);
      }
      if (!points_.empty()) {
        out += ", ";
        AppendCoord(&out, points_[0]);  // close the ring
      }
      out += "))";
      return out;
    }
  }
  return out;
}

std::string Geometry::Serialize() const {
  std::string out;
  out.push_back(static_cast<char>(type_));
  PutVarint64(&out, points_.size());
  for (const Point& p : points_) {
    PutFixed64(&out, OrderedDoubleBits(p.lng));
    PutFixed64(&out, OrderedDoubleBits(p.lat));
  }
  return out;
}

Result<Geometry> Geometry::Deserialize(const std::string& bytes) {
  if (bytes.empty()) return Status::Corruption("empty geometry");
  const char* p = bytes.data();
  const char* limit = p + bytes.size();
  auto type = static_cast<GeometryType>(*p++);
  uint64_t n;
  if (!GetVarint64(&p, limit, &n)) return Status::Corruption("bad geometry");
  if (static_cast<uint64_t>(limit - p) < n * 16) {
    return Status::Corruption("truncated geometry");
  }
  std::vector<Point> pts;
  pts.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    double lng = OrderedBitsToDouble(GetFixed64(p));
    p += 8;
    double lat = OrderedBitsToDouble(GetFixed64(p));
    p += 8;
    pts.push_back(Point{lng, lat});
  }
  switch (type) {
    case GeometryType::kPoint:
      if (pts.empty()) return Status::Corruption("empty point");
      return Geometry::MakePoint(pts[0]);
    case GeometryType::kLineString:
      return Geometry::MakeLineString(std::move(pts));
    case GeometryType::kPolygon:
      return Geometry::MakePolygon(std::move(pts));
  }
  return Status::Corruption("unknown geometry type");
}

namespace {
// Parses "lng lat" pairs separated by commas until ')'.
Result<std::vector<Point>> ParseCoordList(const std::string& s, size_t* pos) {
  std::vector<Point> pts;
  while (*pos < s.size() && s[*pos] != ')') {
    char* end = nullptr;
    double lng = std::strtod(s.c_str() + *pos, &end);
    if (end == s.c_str() + *pos) {
      return Status::InvalidArgument("bad WKT coordinate");
    }
    *pos = end - s.c_str();
    double lat = std::strtod(s.c_str() + *pos, &end);
    if (end == s.c_str() + *pos) {
      return Status::InvalidArgument("bad WKT coordinate");
    }
    *pos = end - s.c_str();
    pts.push_back(Point{lng, lat});
    while (*pos < s.size() && (s[*pos] == ',' || std::isspace(
                                  static_cast<unsigned char>(s[*pos])))) {
      ++(*pos);
    }
  }
  if (*pos >= s.size()) return Status::InvalidArgument("unclosed WKT");
  ++(*pos);  // ')'
  return pts;
}
}  // namespace

Result<Geometry> Geometry::FromWkt(const std::string& wkt) {
  std::string upper;
  upper.reserve(wkt.size());
  for (char c : wkt) upper += static_cast<char>(std::toupper(c));

  auto skip_to_open = [&](size_t from) -> size_t {
    size_t p = upper.find('(', from);
    return p == std::string::npos ? upper.size() : p + 1;
  };

  if (upper.rfind("POINT", 0) == 0) {
    size_t pos = skip_to_open(5);
    JUST_ASSIGN_OR_RETURN(auto pts, ParseCoordList(wkt, &pos));
    if (pts.size() != 1) return Status::InvalidArgument("POINT needs 1 coord");
    return MakePoint(pts[0]);
  }
  if (upper.rfind("LINESTRING", 0) == 0) {
    size_t pos = skip_to_open(10);
    JUST_ASSIGN_OR_RETURN(auto pts, ParseCoordList(wkt, &pos));
    if (pts.empty()) return Status::InvalidArgument("empty LINESTRING");
    return MakeLineString(std::move(pts));
  }
  if (upper.rfind("POLYGON", 0) == 0) {
    size_t pos = skip_to_open(7);
    // POLYGON ((ring)) — skip the inner paren too.
    while (pos < wkt.size() &&
           std::isspace(static_cast<unsigned char>(wkt[pos]))) {
      ++pos;
    }
    if (pos < wkt.size() && wkt[pos] == '(') ++pos;
    JUST_ASSIGN_OR_RETURN(auto pts, ParseCoordList(wkt, &pos));
    if (pts.size() < 3) return Status::InvalidArgument("POLYGON needs a ring");
    return MakePolygon(std::move(pts));
  }
  return Status::InvalidArgument("unsupported WKT: " + wkt);
}

}  // namespace just::geo
