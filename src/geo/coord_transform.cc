#include "geo/coord_transform.h"

#include <cmath>

namespace just::geo {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kA = 6378245.0;              // Krasovsky 1940 semi-major axis
constexpr double kEe = 0.00669342162296594323;  // eccentricity^2

double TransformLat(double x, double y) {
  double ret = -100.0 + 2.0 * x + 3.0 * y + 0.2 * y * y + 0.1 * x * y +
               0.2 * std::sqrt(std::fabs(x));
  ret += (20.0 * std::sin(6.0 * x * kPi) + 20.0 * std::sin(2.0 * x * kPi)) *
         2.0 / 3.0;
  ret += (20.0 * std::sin(y * kPi) + 40.0 * std::sin(y / 3.0 * kPi)) * 2.0 /
         3.0;
  ret += (160.0 * std::sin(y / 12.0 * kPi) + 320 * std::sin(y * kPi / 30.0)) *
         2.0 / 3.0;
  return ret;
}

double TransformLng(double x, double y) {
  double ret = 300.0 + x + 2.0 * y + 0.1 * x * x + 0.1 * x * y +
               0.1 * std::sqrt(std::fabs(x));
  ret += (20.0 * std::sin(6.0 * x * kPi) + 20.0 * std::sin(2.0 * x * kPi)) *
         2.0 / 3.0;
  ret += (20.0 * std::sin(x * kPi) + 40.0 * std::sin(x / 3.0 * kPi)) * 2.0 /
         3.0;
  ret += (150.0 * std::sin(x / 12.0 * kPi) +
          300.0 * std::sin(x / 30.0 * kPi)) *
         2.0 / 3.0;
  return ret;
}
}  // namespace

bool OutsideChina(const Point& p) {
  return p.lng < 72.004 || p.lng > 137.8347 || p.lat < 0.8293 ||
         p.lat > 55.8271;
}

Point Wgs84ToGcj02(const Point& wgs) {
  if (OutsideChina(wgs)) return wgs;
  double dlat = TransformLat(wgs.lng - 105.0, wgs.lat - 35.0);
  double dlng = TransformLng(wgs.lng - 105.0, wgs.lat - 35.0);
  double rad_lat = wgs.lat / 180.0 * kPi;
  double magic = std::sin(rad_lat);
  magic = 1 - kEe * magic * magic;
  double sqrt_magic = std::sqrt(magic);
  dlat = (dlat * 180.0) / ((kA * (1 - kEe)) / (magic * sqrt_magic) * kPi);
  dlng = (dlng * 180.0) / (kA / sqrt_magic * std::cos(rad_lat) * kPi);
  return Point{wgs.lng + dlng, wgs.lat + dlat};
}

Point Gcj02ToWgs84(const Point& gcj) {
  if (OutsideChina(gcj)) return gcj;
  // Iterative inversion: wgs such that Wgs84ToGcj02(wgs) == gcj.
  Point wgs = gcj;
  for (int i = 0; i < 5; ++i) {
    Point forward = Wgs84ToGcj02(wgs);
    wgs.lng -= forward.lng - gcj.lng;
    wgs.lat -= forward.lat - gcj.lat;
  }
  return wgs;
}

Point Gcj02ToBd09(const Point& gcj) {
  constexpr double x_pi = kPi * 3000.0 / 180.0;
  double z = std::sqrt(gcj.lng * gcj.lng + gcj.lat * gcj.lat) +
             0.00002 * std::sin(gcj.lat * x_pi);
  double theta = std::atan2(gcj.lat, gcj.lng) + 0.000003 *
                     std::cos(gcj.lng * x_pi);
  return Point{z * std::cos(theta) + 0.0065, z * std::sin(theta) + 0.006};
}

Point Bd09ToGcj02(const Point& bd) {
  constexpr double x_pi = kPi * 3000.0 / 180.0;
  double x = bd.lng - 0.0065;
  double y = bd.lat - 0.006;
  double z = std::sqrt(x * x + y * y) - 0.00002 * std::sin(y * x_pi);
  double theta = std::atan2(y, x) - 0.000003 * std::cos(x * x_pi);
  return Point{z * std::cos(theta), z * std::sin(theta)};
}

}  // namespace just::geo
