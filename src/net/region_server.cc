#include "net/region_server.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "common/bytes.h"
#include "kvstore/wal.h"

namespace just::net {

namespace {

/// One decoded-enough request: the body is parsed by the worker so the
/// reader stays on the wire (admission only needs the header).
struct PendingRequest {
  MsgType type;
  uint64_t request_id;
  std::string body;
};

}  // namespace

struct RegionServer::Connection {
  Socket sock;
  std::mutex write_mu;  ///< serializes worker responses and reader sheds

  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<PendingRequest> queue;
  bool closed = false;

  std::thread reader;
  std::thread worker;
  std::atomic<bool> finished{false};  ///< both threads are done; reapable
};

RegionServer::RegionServer(const RegionServerOptions& options)
    : options_(options) {
  auto& reg = obs::Registry::Global();
  requests_counter_ = reg.GetCounter("just_net_server_requests_total");
  shed_counter_ = reg.GetCounter("just_net_server_shed_total");
  corrupt_counter_ = reg.GetCounter("just_net_server_corrupt_frames_total");
  connections_counter_ = reg.GetCounter("just_net_server_connections_total");
  active_conns_gauge_ = reg.GetGauge("just_net_server_active_connections");
  inflight_gauge_ = reg.GetGauge("just_net_server_inflight_requests");
  request_us_ = reg.GetHistogram("just_net_server_request_us");
}

Result<std::unique_ptr<RegionServer>> RegionServer::Start(
    const RegionServerOptions& options) {
  if (options.store.dir.empty()) {
    return Status::InvalidArgument("region server needs store.dir");
  }
  auto server = std::unique_ptr<RegionServer>(new RegionServer(options));
  JUST_ASSIGN_OR_RETURN(server->store_, kv::LsmStore::Open(options.store));
  JUST_ASSIGN_OR_RETURN(server->listener_,
                        Listener::Listen(options.host, options.port));
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

RegionServer::~RegionServer() { Stop(); }

void RegionServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Already stopped; wait for the first Stop() to have joined everything.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  listener_.Close();  // wakes Accept()
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    conn->sock.ShutdownBoth();
    {
      std::lock_guard<std::mutex> lock(conn->queue_mu);
      conn->closed = true;
    }
    conn->queue_cv.notify_all();
  }
  for (auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->worker.joinable()) conn->worker.join();
  }
}

void RegionServer::ReapFinishedLocked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      if ((*it)->worker.joinable()) (*it)->worker.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void RegionServer::AcceptLoop() {
  for (;;) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) return;  // listener closed (Stop) or fatal
    if (stopping_.load()) return;
    auto conn = std::make_shared<Connection>();
    conn->sock = std::move(*accepted);
    connections_counter_->Increment();
    active_connections_.fetch_add(1);
    active_conns_gauge_->Add(1);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      ReapFinishedLocked();
      conns_.push_back(conn);
    }
    conn->worker = std::thread([this, conn] { WorkerLoop(conn); });
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
  }
}

void RegionServer::SendFrame(Connection& conn, const std::string& frame) {
  std::lock_guard<std::mutex> lock(conn.write_mu);
  Status st = conn.sock.WriteFully(frame.data(), frame.size());
  if (!st.ok()) {
    // The peer is gone (or wedged past the send timeout): wake the reader
    // so the whole connection unwinds.
    conn.sock.ShutdownBoth();
  }
}

void RegionServer::ReaderLoop(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    std::string payload;
    Status st = ReadFramePayload(conn->sock, &payload,
                                 options_.max_frame_bytes);
    if (!st.ok()) {
      // Oversized or CRC-corrupt frames leave the byte stream unsynced:
      // count and drop the connection. Plain I/O errors / EOF just end it.
      if (st.IsCorruption() || st.IsInvalidArgument()) {
        corrupt_frames_total_.fetch_add(1);
        corrupt_counter_->Increment();
      }
      break;
    }
    FrameHeader header;
    std::string_view body;
    st = ParsePayload(payload, &header, &body);
    if (!st.ok() || !IsRequestType(header.type)) {
      // Framing was intact (CRC passed), so the stream is still synced:
      // answer with kInvalidArgument and keep serving. Without a parsable
      // header the id is best-effort zero.
      uint64_t id = payload.size() >= kPayloadHeaderBytes
                        ? GetFixed64(payload.data() + 1)
                        : 0;
      std::string out;
      EncodeStatusResponse(
          {st.ok() ? Status::InvalidArgument("not a request type") : st}, id,
          &out);
      SendFrame(*conn, out);
      continue;
    }
    requests_total_.fetch_add(1);
    requests_counter_->Increment();

    // Health checks and overload introspection bypass admission: they are
    // how clients *observe* shedding, so they must not themselves shed.
    bool exempt = header.type == MsgType::kPingReq ||
                  header.type == MsgType::kStatsReq;
    if (!exempt) {
      bool shed = false;
      {
        std::lock_guard<std::mutex> lock(conn->queue_mu);
        if (static_cast<int>(conn->queue.size()) >= options_.max_pipeline) {
          shed = true;  // per-connection pipeline queue full
        }
      }
      if (!shed &&
          inflight_.load(std::memory_order_relaxed) >= options_.max_inflight) {
        shed = true;  // server-wide admission cap
      }
      if (shed) {
        shed_total_.fetch_add(1);
        shed_counter_->Increment();
        std::string out;
        EncodeStatusResponse(
            {Status::Unavailable("server overloaded: request shed")},
            header.request_id, &out);
        SendFrame(*conn, out);
        continue;
      }
    }
    inflight_.fetch_add(1);
    inflight_gauge_->Add(1);
    {
      std::lock_guard<std::mutex> lock(conn->queue_mu);
      if (conn->closed) {
        inflight_.fetch_sub(1);
        inflight_gauge_->Add(-1);
        break;
      }
      conn->queue.push_back(
          PendingRequest{header.type, header.request_id, std::string(body)});
    }
    conn->queue_cv.notify_one();
  }
  // Reader exit means the connection is done (EOF, I/O error, or an
  // unsynced stream): send FIN now so the peer observes the close
  // immediately — the fd itself lives until the Connection is reaped.
  conn->sock.ShutdownBoth();
  {
    std::lock_guard<std::mutex> lock(conn->queue_mu);
    conn->closed = true;
  }
  conn->queue_cv.notify_all();
}

void RegionServer::WorkerLoop(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    PendingRequest req;
    {
      std::unique_lock<std::mutex> lock(conn->queue_mu);
      conn->queue_cv.wait(lock,
                          [&] { return conn->closed || !conn->queue.empty(); });
      if (conn->queue.empty()) break;  // closed and drained
      req = std::move(conn->queue.front());
      conn->queue.pop_front();
    }
    const auto start = std::chrono::steady_clock::now();
    std::string out;
    Execute(req.type, req.request_id, req.body, &out);
    request_us_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
    SendFrame(*conn, out);
    inflight_.fetch_sub(1);
    inflight_gauge_->Add(-1);
  }
  // Requests admitted but never executed still hold inflight slots.
  {
    std::lock_guard<std::mutex> lock(conn->queue_mu);
    for (size_t i = 0; i < conn->queue.size(); ++i) {
      inflight_.fetch_sub(1);
      inflight_gauge_->Add(-1);
    }
    conn->queue.clear();
  }
  active_connections_.fetch_sub(1);
  active_conns_gauge_->Add(-1);
  conn->finished.store(true, std::memory_order_release);
}

void RegionServer::HandleScan(const ScanRequest& req, ScanResponse* resp) {
  const uint32_t limit = std::min(req.limit_rows, options_.scan_limit_clamp);
  resp->rows.reserve(std::min<uint32_t>(limit, 1024));
  resp->status = store_->Scan(
      req.start_key, req.end_key,
      [&](std::string_view key, std::string_view value) {
        resp->rows.push_back(WireRow{std::string(key), std::string(value)});
        return resp->rows.size() < limit;
      });
  if (resp->status.ok() && resp->rows.size() == limit) {
    // The page filled: there may be more. The resume cursor is the smallest
    // key strictly after the last delivered one, so a client can continue
    // against a restarted server with no scan state held here.
    resp->has_more = true;
    resp->next_cursor = resp->rows.back().key + '\0';
  }
}

StatsResponse RegionServer::BuildStats() {
  StatsResponse resp;
  kv::LsmStore::Stats s = store_->GetStats();
  resp.disk_bytes = s.disk_bytes;
  resp.entries = s.sstable_entries + s.memtable_entries;
  resp.num_sstables = s.num_sstables;
  resp.requests_total = requests_total_.load();
  resp.shed_total = shed_total_.load();
  resp.corrupt_frames_total = corrupt_frames_total_.load();
  resp.active_connections =
      static_cast<uint64_t>(std::max<int64_t>(0, active_connections_.load()));
  return resp;
}

void RegionServer::Execute(MsgType type, uint64_t request_id,
                           std::string_view body, std::string* out) {
  switch (type) {
    case MsgType::kPingReq: {
      Status st = DecodeEmptyBody(body);
      EncodeStatusResponse({st}, request_id, out);
      return;
    }
    case MsgType::kGetReq: {
      GetRequest req;
      Status st = DecodeGetRequest(body, &req);
      GetResponse resp;
      resp.status = st.ok() ? store_->Get(req.key, &resp.value) : st;
      EncodeGetResponse(resp, request_id, out);
      return;
    }
    case MsgType::kPutReq: {
      PutRequest req;
      Status st = DecodePutRequest(body, &req);
      if (st.ok()) st = store_->Put(req.key, req.value);
      EncodeStatusResponse({st}, request_id, out);
      return;
    }
    case MsgType::kDeleteReq: {
      DeleteRequest req;
      Status st = DecodeDeleteRequest(body, &req);
      if (st.ok()) st = store_->Delete(req.key);
      EncodeStatusResponse({st}, request_id, out);
      return;
    }
    case MsgType::kWriteBatchReq: {
      WriteBatchRequest req;
      Status st = DecodeWriteBatchRequest(body, &req);
      if (st.ok()) st = store_->WriteBatch(req.ops);
      EncodeStatusResponse({st}, request_id, out);
      return;
    }
    case MsgType::kScanReq: {
      ScanRequest req;
      Status st = DecodeScanRequest(body, &req);
      ScanResponse resp;
      if (st.ok()) {
        HandleScan(req, &resp);
      } else {
        resp.status = st;
      }
      EncodeScanResponse(resp, request_id, out);
      return;
    }
    case MsgType::kFlushReq: {
      Status st = DecodeEmptyBody(body);
      if (st.ok()) st = store_->Flush();
      EncodeStatusResponse({st}, request_id, out);
      return;
    }
    case MsgType::kCompactReq: {
      Status st = DecodeEmptyBody(body);
      if (st.ok()) st = store_->CompactAll();
      EncodeStatusResponse({st}, request_id, out);
      return;
    }
    case MsgType::kWaitIdleReq: {
      Status st = DecodeEmptyBody(body);
      if (st.ok()) st = store_->WaitForBackgroundIdle();
      EncodeStatusResponse({st}, request_id, out);
      return;
    }
    case MsgType::kStatsReq: {
      Status st = DecodeEmptyBody(body);
      StatsResponse resp;
      if (st.ok()) {
        resp = BuildStats();
      } else {
        resp.status = st;
      }
      EncodeStatsResponse(resp, request_id, out);
      return;
    }
    default:
      EncodeStatusResponse({Status::InvalidArgument("unhandled request type")},
                           request_id, out);
      return;
  }
}

}  // namespace just::net
