#include "net/region_server.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/bytes.h"
#include "kvstore/wal.h"
#include "obs/trace.h"
#include "obs/trace_codec.h"

namespace just::net {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

struct RegionServer::Connection {
  Socket sock;
  std::mutex write_mu;  ///< serializes worker responses and reader sheds

  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<PendingRequest> queue;
  bool closed = false;

  std::thread reader;
  std::thread worker;
  std::atomic<bool> finished{false};  ///< both threads are done; reapable
};

RegionServer::RegionServer(const RegionServerOptions& options)
    : options_(options) {
  auto& reg = obs::Registry::Global();
  requests_counter_ = reg.GetCounter("just_net_server_requests_total");
  shed_counter_ = reg.GetCounter("just_net_server_shed_total");
  corrupt_counter_ = reg.GetCounter("just_net_server_corrupt_frames_total");
  connections_counter_ = reg.GetCounter("just_net_server_connections_total");
  active_conns_gauge_ = reg.GetGauge("just_net_server_active_connections");
  inflight_gauge_ = reg.GetGauge("just_net_server_inflight_requests");
  request_us_ = reg.GetHistogram("just_net_server_request_us");
  for (uint8_t t = static_cast<uint8_t>(MsgType::kPingReq);
       t <= static_cast<uint8_t>(MsgType::kIngestReq); ++t) {
    rpc_us_by_type_[t] = reg.GetHistogram(obs::LabeledName(
        "just_net_server_rpc_us",
        {{"type", MsgTypeName(static_cast<MsgType>(t))}}));
  }
  if (options.slow_rpc_threshold_us >= 0) {
    slow_log_ = std::make_unique<obs::SlowQueryLog>(
        options.slow_rpc_threshold_us, /*capacity=*/128,
        /*log_to_stderr=*/false);
  }
  if (options.tenant_write_rps > 0) {
    quota_ = std::make_unique<stream::QuotaManager>();
    meta::TenantQuotaConfig q;
    q.write_rows_per_sec = options.tenant_write_rps;
    q.write_burst_rows = options.tenant_write_burst;
    quota_->SetDefaultQuota(q);
  }
}

Result<std::unique_ptr<RegionServer>> RegionServer::Start(
    const RegionServerOptions& options) {
  if (options.store.dir.empty()) {
    return Status::InvalidArgument("region server needs store.dir");
  }
  auto server = std::unique_ptr<RegionServer>(new RegionServer(options));
  JUST_ASSIGN_OR_RETURN(server->store_, kv::LsmStore::Open(options.store));
  JUST_ASSIGN_OR_RETURN(server->listener_,
                        Listener::Listen(options.host, options.port));
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

RegionServer::~RegionServer() { Stop(); }

void RegionServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Already stopped; wait for the first Stop() to have joined everything.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  listener_.Close();  // wakes Accept()
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    conn->sock.ShutdownBoth();
    {
      std::lock_guard<std::mutex> lock(conn->queue_mu);
      conn->closed = true;
    }
    conn->queue_cv.notify_all();
  }
  for (auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->worker.joinable()) conn->worker.join();
  }
}

void RegionServer::ReapFinishedLocked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      if ((*it)->worker.joinable()) (*it)->worker.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void RegionServer::AcceptLoop() {
  for (;;) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) return;  // listener closed (Stop) or fatal
    if (stopping_.load()) return;
    auto conn = std::make_shared<Connection>();
    conn->sock = std::move(*accepted);
    connections_counter_->Increment();
    active_connections_.fetch_add(1);
    active_conns_gauge_->Add(1);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      ReapFinishedLocked();
      conns_.push_back(conn);
    }
    conn->worker = std::thread([this, conn] { WorkerLoop(conn); });
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
  }
}

void RegionServer::SendFrame(Connection& conn, const std::string& frame) {
  std::lock_guard<std::mutex> lock(conn.write_mu);
  Status st = conn.sock.WriteFully(frame.data(), frame.size());
  if (!st.ok()) {
    // The peer is gone (or wedged past the send timeout): wake the reader
    // so the whole connection unwinds.
    conn.sock.ShutdownBoth();
  }
}

void RegionServer::ReaderLoop(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    std::string payload;
    Status st = ReadFramePayload(conn->sock, &payload,
                                 options_.max_frame_bytes);
    if (!st.ok()) {
      // Oversized or CRC-corrupt frames leave the byte stream unsynced:
      // count and drop the connection. Plain I/O errors / EOF just end it.
      if (st.IsCorruption() || st.IsInvalidArgument()) {
        corrupt_frames_total_.fetch_add(1);
        corrupt_counter_->Increment();
      }
      break;
    }
    FrameHeader header;
    std::string_view body;
    st = ParsePayload(payload, &header, &body);
    if (!st.ok() || !IsRequestType(header.type)) {
      // Framing was intact (CRC passed), so the stream is still synced:
      // answer with kInvalidArgument and keep serving. Without a parsable
      // header the id is best-effort zero.
      uint64_t id = payload.size() >= kPayloadHeaderBytes
                        ? GetFixed64(payload.data() + 1)
                        : 0;
      std::string out;
      EncodeStatusResponse(
          {st.ok() ? Status::InvalidArgument("not a request type") : st}, id,
          &out);
      SendFrame(*conn, out);
      continue;
    }
    bool traced = false;
    if (header.has_ext) {
      TraceContext ctx;
      st = DecodeTraceContext(header.ext, &ctx);
      if (!st.ok()) {
        // The extension was framed correctly (ParsePayload accepted it) but
        // its contents are garbage: reject the request, keep the stream.
        std::string out;
        EncodeStatusResponse({st}, header.request_id, &out);
        SendFrame(*conn, out);
        continue;
      }
      traced = ctx.sampled;
    }
    requests_total_.fetch_add(1);
    requests_counter_->Increment();

    // Health checks and overload introspection bypass admission: they are
    // how clients *observe* shedding, so they must not themselves shed.
    bool exempt = header.type == MsgType::kPingReq ||
                  header.type == MsgType::kStatsReq;
    if (!exempt) {
      bool shed = false;
      {
        std::lock_guard<std::mutex> lock(conn->queue_mu);
        if (static_cast<int>(conn->queue.size()) >= options_.max_pipeline) {
          shed = true;  // per-connection pipeline queue full
        }
      }
      if (!shed &&
          inflight_.load(std::memory_order_relaxed) >= options_.max_inflight) {
        shed = true;  // server-wide admission cap
      }
      if (shed) {
        shed_total_.fetch_add(1);
        shed_counter_->Increment();
        std::string out;
        EncodeStatusResponse(
            {Status::Unavailable("server overloaded: request shed")},
            header.request_id, &out);
        SendFrame(*conn, out);
        continue;
      }
    }
    inflight_.fetch_add(1);
    inflight_gauge_->Add(1);
    {
      std::lock_guard<std::mutex> lock(conn->queue_mu);
      if (conn->closed) {
        inflight_.fetch_sub(1);
        inflight_gauge_->Add(-1);
        break;
      }
      conn->queue.push_back(PendingRequest{header.type, header.request_id,
                                           std::string(body), traced,
                                           NowNs()});
    }
    conn->queue_cv.notify_one();
  }
  // Reader exit means the connection is done (EOF, I/O error, or an
  // unsynced stream): send FIN now so the peer observes the close
  // immediately — the fd itself lives until the Connection is reaped.
  conn->sock.ShutdownBoth();
  {
    std::lock_guard<std::mutex> lock(conn->queue_mu);
    conn->closed = true;
  }
  conn->queue_cv.notify_all();
}

void RegionServer::WorkerLoop(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    PendingRequest req;
    {
      std::unique_lock<std::mutex> lock(conn->queue_mu);
      conn->queue_cv.wait(lock,
                          [&] { return conn->closed || !conn->queue.empty(); });
      if (conn->queue.empty()) break;  // closed and drained
      req = std::move(conn->queue.front());
      conn->queue.pop_front();
    }
    const uint64_t start_ns = NowNs();
    std::string out;
    Execute(req, &out);
    const uint64_t us = (NowNs() - start_ns) / 1000;
    request_us_->Record(us);
    const uint8_t t = static_cast<uint8_t>(req.type);
    if (t < sizeof(rpc_us_by_type_) / sizeof(rpc_us_by_type_[0]) &&
        rpc_us_by_type_[t] != nullptr) {
      rpc_us_by_type_[t]->Record(us);
    }
    SendFrame(*conn, out);
    inflight_.fetch_sub(1);
    inflight_gauge_->Add(-1);
  }
  // Requests admitted but never executed still hold inflight slots.
  {
    std::lock_guard<std::mutex> lock(conn->queue_mu);
    for (size_t i = 0; i < conn->queue.size(); ++i) {
      inflight_.fetch_sub(1);
      inflight_gauge_->Add(-1);
    }
    conn->queue.clear();
  }
  active_connections_.fetch_sub(1);
  active_conns_gauge_->Add(-1);
  conn->finished.store(true, std::memory_order_release);
}

void RegionServer::HandleScan(const ScanRequest& req, ScanResponse* resp) {
  const uint32_t limit = std::min(req.limit_rows, options_.scan_limit_clamp);
  resp->rows.reserve(std::min<uint32_t>(limit, 1024));
  obs::TraceKeyRanges(1);
  resp->status = store_->Scan(
      req.start_key, req.end_key,
      [&](std::string_view key, std::string_view value) {
        resp->rows.push_back(WireRow{std::string(key), std::string(value)});
        return resp->rows.size() < limit;
      });
  obs::TraceRowsScanned(resp->rows.size());
  if (resp->status.ok() && resp->rows.size() == limit) {
    // The page filled: there may be more. The resume cursor is the smallest
    // key strictly after the last delivered one, so a client can continue
    // against a restarted server with no scan state held here.
    resp->has_more = true;
    resp->next_cursor = resp->rows.back().key + '\0';
  }
}

StatsResponse RegionServer::BuildStats() {
  StatsResponse resp;
  kv::LsmStore::Stats s = store_->GetStats();
  resp.disk_bytes = s.disk_bytes;
  resp.entries = s.sstable_entries + s.memtable_entries;
  resp.num_sstables = s.num_sstables;
  resp.requests_total = requests_total_.load();
  resp.shed_total = shed_total_.load();
  resp.corrupt_frames_total = corrupt_frames_total_.load();
  resp.active_connections =
      static_cast<uint64_t>(std::max<int64_t>(0, active_connections_.load()));
  return resp;
}

void RegionServer::Execute(const PendingRequest& req, std::string* out) {
  // A trace is opened when the client asked for one (req.traced) or when
  // the slow-RPC log needs trees; otherwise this whole block is two branch
  // tests and the handlers run exactly as before — the pay-as-you-go
  // guarantee the bench_wire acceptance criterion pins.
  const bool want_trace = req.traced || slow_log_ != nullptr;
  std::optional<obs::Trace> trace;
  std::optional<obs::SpanScope> scope;
  if (want_trace) {
    trace.emplace(std::string("rpc.") + MsgTypeName(req.type));
    if (req.enqueue_ns != 0) {
      // Queue wait: admission-to-execution. The span's own wall clock only
      // starts here, so the wait rides along as an attribute.
      trace->root()->AddAttr(
          "queue_us", std::to_string((NowNs() - req.enqueue_ns) / 1000));
    }
    // All handler work — store reads/writes, scan attribution, block
    // fetches in kvstore — lands on this one span, so the client-side
    // graft shows per-server totals on a single labeled node.
    scope.emplace(trace->root());
  }

  // Handlers fill a response value; encoding happens after the span ends so
  // its serialized tree can ride in the response's extension field.
  enum class Kind { kStatus, kGet, kScan, kStats };
  Kind kind = Kind::kStatus;
  Status status;
  GetResponse get_resp;
  ScanResponse scan_resp;
  StatsResponse stats_resp;
  const std::string_view body = req.body;
  switch (req.type) {
    case MsgType::kPingReq: {
      status = DecodeEmptyBody(body);
      break;
    }
    case MsgType::kGetReq: {
      kind = Kind::kGet;
      GetRequest get_req;
      Status st = DecodeGetRequest(body, &get_req);
      get_resp.status =
          st.ok() ? store_->Get(get_req.key, &get_resp.value) : st;
      break;
    }
    case MsgType::kPutReq: {
      PutRequest put_req;
      status = DecodePutRequest(body, &put_req);
      if (status.ok()) status = store_->Put(put_req.key, put_req.value);
      break;
    }
    case MsgType::kDeleteReq: {
      DeleteRequest del_req;
      status = DecodeDeleteRequest(body, &del_req);
      if (status.ok()) status = store_->Delete(del_req.key);
      break;
    }
    case MsgType::kWriteBatchReq: {
      WriteBatchRequest batch_req;
      status = DecodeWriteBatchRequest(body, &batch_req);
      if (status.ok()) status = store_->WriteBatch(batch_req.ops);
      break;
    }
    case MsgType::kIngestReq: {
      IngestRequest ingest_req;
      status = DecodeIngestRequest(body, &ingest_req);
      if (status.ok() && quota_ != nullptr) {
        status = quota_->AdmitWrite(ingest_req.tenant, ingest_req.ops.size());
        if (status.IsResourceExhausted()) {
          // A quota shed is admission control just like the pipeline caps:
          // surface it through the same counters (and thus /statsz and the
          // wire StatsResponse), distinguished by its status code.
          shed_total_.fetch_add(1);
          shed_counter_->Increment();
        }
      }
      if (status.ok()) status = store_->WriteBatch(ingest_req.ops);
      break;
    }
    case MsgType::kScanReq: {
      kind = Kind::kScan;
      ScanRequest scan_req;
      Status st = DecodeScanRequest(body, &scan_req);
      if (st.ok()) {
        HandleScan(scan_req, &scan_resp);
      } else {
        scan_resp.status = st;
      }
      break;
    }
    case MsgType::kFlushReq: {
      status = DecodeEmptyBody(body);
      if (status.ok()) status = store_->Flush();
      break;
    }
    case MsgType::kCompactReq: {
      status = DecodeEmptyBody(body);
      if (status.ok()) status = store_->CompactAll();
      break;
    }
    case MsgType::kWaitIdleReq: {
      status = DecodeEmptyBody(body);
      if (status.ok()) status = store_->WaitForBackgroundIdle();
      break;
    }
    case MsgType::kStatsReq: {
      kind = Kind::kStats;
      Status st = DecodeEmptyBody(body);
      if (st.ok()) {
        stats_resp = BuildStats();
      } else {
        stats_resp.status = st;
      }
      break;
    }
    default:
      status = Status::InvalidArgument("unhandled request type");
      break;
  }

  scope.reset();
  std::string ext;
  if (trace.has_value()) {
    trace->root()->End();
    // Only traced requests pay for serialization; slow-log-only traces
    // stay server-side.
    if (req.traced) ext = obs::EncodeSpanTree(*trace->root());
  }
  switch (kind) {
    case Kind::kStatus:
      EncodeStatusResponse({status}, req.request_id, out, ext);
      break;
    case Kind::kGet:
      EncodeGetResponse(get_resp, req.request_id, out, ext);
      break;
    case Kind::kScan:
      EncodeScanResponse(scan_resp, req.request_id, out, ext);
      break;
    case Kind::kStats:
      EncodeStatsResponse(stats_resp, req.request_id, out, ext);
      break;
  }
  if (trace.has_value() && slow_log_ != nullptr) {
    obs::SlowQueryEntry entry;
    entry.sql = std::string("rpc:") + MsgTypeName(req.type);
    entry.wall_us = trace->root()->wall_ns() / 1000;
    entry.rows = kind == Kind::kScan ? scan_resp.rows.size() : 0;
    entry.rows_scanned = trace->root()->TotalRowsScanned();
    entry.key_ranges = trace->root()->TotalKeyRanges();
    entry.trace_json = trace->ToJson();
    slow_log_->MaybeRecord(std::move(entry));
  }
}

}  // namespace just::net
