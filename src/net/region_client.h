#ifndef JUST_NET_REGION_CLIENT_H_
#define JUST_NET_REGION_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "kvstore/lsm_store.h"
#include "net/socket.h"
#include "net/wire_protocol.h"

namespace just::net {

struct RegionClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Bounds how long one RPC may block on the socket. A timeout surfaces as
  /// kUnavailable and drops the connection (the stream is unsynced); the
  /// next call reconnects. 0 = block forever.
  int io_timeout_ms = 10000;
  /// Page size for the paged Scan(); also sent as ScanRequest::limit_rows.
  uint32_t scan_page_rows = 512;
  size_t max_frame_bytes = kMaxFrameBytes;
};

/// Synchronous client stub for one region server. Every RPC is single-shot:
/// connection failures, timeouts, and torn responses return kUnavailable
/// (IsTransient), and retry policy stays with the caller — RegionCluster
/// funnels these through its existing WithRetry path. Reconnection is
/// lazy: a failed call marks the connection dead and the next call redials.
///
/// Trace propagation: when the calling thread has an active obs span
/// (obs::CurrentSpan()), each RPC carries a trace context in the frame's
/// extension field; the server answers with its serialized span tree,
/// which is grafted under the caller's span with a `server=host:port`
/// attribute — this is how EXPLAIN ANALYZE shows remote per-server work.
/// A pre-extension server rejects the flagged frame with kInvalidArgument
/// ("unknown message type"); the client then marks the peer, retries the
/// RPC once without the extension, and stays untraced for the connection's
/// lifetime (old-server compatibility). With no active span nothing is
/// added to the frame at all.
///
/// Not thread-safe: use one client per thread (connections are cheap; the
/// server runs a thread per connection).
class RegionClient {
 public:
  explicit RegionClient(RegionClientOptions options)
      : options_(std::move(options)) {}

  Status Ping();
  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);
  /// NotFound when the key is absent (mirrors LsmStore::Get).
  Status Get(std::string_view key, std::string* value);
  Status WriteBatch(const std::vector<kv::WriteOp>& ops);
  /// Tenant-tagged streaming write batch (kIngestReq). The server may shed
  /// it with kResourceExhausted when the tenant is over its write quota —
  /// not transient, so callers must not retry-loop it.
  Status Ingest(const std::string& tenant, const std::vector<kv::WriteOp>& ops);

  /// One page of a scan; resume by re-sending with
  /// `req.start_key = resp->next_cursor` while `resp->has_more`.
  Status ScanPage(const ScanRequest& req, ScanResponse* resp);

  /// Paged scan over [start, end): streams pages of scan_page_rows through
  /// `fn` (return false to stop early). No internal retry — a transient
  /// page failure aborts the scan with that status, and rows already
  /// delivered this call may be re-delivered by a caller-level retry
  /// (RegionCluster buffers per attempt for exactly this reason).
  Status Scan(std::string_view start, std::string_view end,
              const std::function<bool(std::string_view, std::string_view)>&
                  fn);

  Status Flush();
  Status CompactAll();
  Status WaitForBackgroundIdle();
  Status GetStats(StatsResponse* resp);

  // --- Low-level access (pipelining tests and the loadgen bench) ---

  /// Sends pre-encoded frame bytes without waiting for a response.
  Status RawSend(std::string_view frame);
  /// Reads one response payload (CRC-verified, header not yet parsed).
  Status RawRecvPayload(std::string* payload);
  uint64_t NextRequestId() { return ++last_request_id_; }

  const RegionClientOptions& options() const { return options_; }
  bool connected() const { return sock_.valid(); }
  void Disconnect() { sock_.Close(); }
  /// Dials if not connected (RPCs do this implicitly).
  Status EnsureConnected();

  /// True once the peer rejected an extension-flagged frame: subsequent
  /// RPCs stop sending trace context (the compat degrade is sticky).
  bool peer_trace_unsupported() const { return peer_trace_unsupported_; }

 private:
  /// Appends one complete request frame for `request_id` to `frame`; `ext`
  /// is the extension blob to embed (empty = pre-extension layout).
  using FrameBuilder = std::function<void(
      uint64_t request_id, std::string_view ext, std::string* frame)>;

  /// One RPC round: builds the frame (with a trace-context extension when
  /// a span is active and the peer supports it), sends it, matches the
  /// response id, grafts any returned span tree, and records per-type
  /// client latency. Retries exactly once without the extension when the
  /// peer proves to be pre-extension. Any transport failure disconnects
  /// and returns kUnavailable.
  Status CallRpc(MsgType req_type, const FrameBuilder& build,
                 FrameHeader* header, std::string* payload,
                 std::string_view* body);
  /// Shared epilogue for RPCs whose response is a bare StatusResponse.
  Status StatusCall(MsgType req_type, const FrameBuilder& build);
  /// Decodes a response's extension as a span tree under the caller's
  /// current span, tagged `server=host:port`. Decode failures count in
  /// just_net_client_trace_decode_errors_total and are otherwise ignored —
  /// a bad trace must not fail a good response.
  void GraftResponseTrace(const FrameHeader& header);
  Status Fail(Status st);

  RegionClientOptions options_;
  Socket sock_;
  uint64_t last_request_id_ = 0;
  bool peer_trace_unsupported_ = false;
};

}  // namespace just::net

#endif  // JUST_NET_REGION_CLIENT_H_
