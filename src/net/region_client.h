#ifndef JUST_NET_REGION_CLIENT_H_
#define JUST_NET_REGION_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "kvstore/lsm_store.h"
#include "net/socket.h"
#include "net/wire_protocol.h"

namespace just::net {

struct RegionClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Bounds how long one RPC may block on the socket. A timeout surfaces as
  /// kUnavailable and drops the connection (the stream is unsynced); the
  /// next call reconnects. 0 = block forever.
  int io_timeout_ms = 10000;
  /// Page size for the paged Scan(); also sent as ScanRequest::limit_rows.
  uint32_t scan_page_rows = 512;
  size_t max_frame_bytes = kMaxFrameBytes;
};

/// Synchronous client stub for one region server. Every RPC is single-shot:
/// connection failures, timeouts, and torn responses return kUnavailable
/// (IsTransient), and retry policy stays with the caller — RegionCluster
/// funnels these through its existing WithRetry path. Reconnection is
/// lazy: a failed call marks the connection dead and the next call redials.
///
/// Not thread-safe: use one client per thread (connections are cheap; the
/// server runs a thread per connection).
class RegionClient {
 public:
  explicit RegionClient(RegionClientOptions options)
      : options_(std::move(options)) {}

  Status Ping();
  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);
  /// NotFound when the key is absent (mirrors LsmStore::Get).
  Status Get(std::string_view key, std::string* value);
  Status WriteBatch(const std::vector<kv::WriteOp>& ops);

  /// One page of a scan; resume by re-sending with
  /// `req.start_key = resp->next_cursor` while `resp->has_more`.
  Status ScanPage(const ScanRequest& req, ScanResponse* resp);

  /// Paged scan over [start, end): streams pages of scan_page_rows through
  /// `fn` (return false to stop early). No internal retry — a transient
  /// page failure aborts the scan with that status, and rows already
  /// delivered this call may be re-delivered by a caller-level retry
  /// (RegionCluster buffers per attempt for exactly this reason).
  Status Scan(std::string_view start, std::string_view end,
              const std::function<bool(std::string_view, std::string_view)>&
                  fn);

  Status Flush();
  Status CompactAll();
  Status WaitForBackgroundIdle();
  Status GetStats(StatsResponse* resp);

  // --- Low-level access (pipelining tests and the loadgen bench) ---

  /// Sends pre-encoded frame bytes without waiting for a response.
  Status RawSend(std::string_view frame);
  /// Reads one response payload (CRC-verified, header not yet parsed).
  Status RawRecvPayload(std::string* payload);
  uint64_t NextRequestId() { return ++last_request_id_; }

  const RegionClientOptions& options() const { return options_; }
  bool connected() const { return sock_.valid(); }
  void Disconnect() { sock_.Close(); }
  /// Dials if not connected (RPCs do this implicitly).
  Status EnsureConnected();

 private:
  /// Sends `frame` and reads responses until one carries `request_id`;
  /// returns its parsed header type + body via out-params. Any transport
  /// failure disconnects and returns kUnavailable.
  Status Call(const std::string& frame, uint64_t request_id, MsgType* type,
              std::string* payload, std::string_view* body);
  /// Shared epilogue for RPCs whose response is a bare StatusResponse.
  Status StatusCall(const std::string& frame, uint64_t request_id);
  Status Fail(Status st);

  RegionClientOptions options_;
  Socket sock_;
  uint64_t last_request_id_ = 0;
};

}  // namespace just::net

#endif  // JUST_NET_REGION_CLIENT_H_
