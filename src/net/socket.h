#ifndef JUST_NET_SOCKET_H_
#define JUST_NET_SOCKET_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace just::net {

/// Thin RAII wrapper over a connected TCP socket (IPv4). All I/O is
/// blocking; failures — including EOF and a receive timeout — surface as
/// Status::Unavailable so callers can funnel them into the engine's
/// transient-retry path (Status::IsTransient). The wrapper never raises
/// SIGPIPE (sends use MSG_NOSIGNAL).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void Close();
  /// Wakes any thread blocked in ReadFully/WriteFully on this socket (the
  /// fd stays open, so the waking thread sees an error, not a stale fd).
  void ShutdownBoth();

  /// Bounds how long a ReadFully may block; 0 restores "block forever".
  Status SetRecvTimeout(int timeout_ms);
  Status SetSendTimeout(int timeout_ms);
  /// Disables Nagle — every frame is a complete request/response, so
  /// coalescing only adds latency.
  Status SetNoDelay(bool on);

  /// Reads exactly `n` bytes. EOF, timeout, and errors all return
  /// Unavailable (the byte stream is dead or unsynced either way).
  Status ReadFully(void* buf, size_t n);
  Status WriteFully(const void* buf, size_t n);

 private:
  int fd_ = -1;
};

/// Blocking IPv4 connect; `host` is a dotted quad (e.g. "127.0.0.1").
Result<Socket> Connect(const std::string& host, int port);

/// Listening socket. `Close()` (or destruction) wakes a blocked Accept().
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }

  Listener(Listener&& o) noexcept : fd_(o.fd_), port_(o.port_) {
    o.fd_ = -1;
    o.port_ = 0;
  }
  Listener& operator=(Listener&& o) noexcept {
    if (this != &o) {
      Close();
      fd_ = o.fd_;
      port_ = o.port_;
      o.fd_ = -1;
      o.port_ = 0;
    }
    return *this;
  }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds + listens on `host:port`; port 0 picks an ephemeral port
  /// (readable via port()). SO_REUSEADDR is set so restarted servers can
  /// rebind immediately.
  static Result<Listener> Listen(const std::string& host, int port,
                                 int backlog = 128);

  /// Blocks for the next connection; Unavailable once Close()d.
  Result<Socket> Accept();

  int port() const { return port_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace just::net

#endif  // JUST_NET_SOCKET_H_
