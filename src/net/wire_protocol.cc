#include "net/wire_protocol.h"

#include "common/bytes.h"
#include "kvstore/wal.h"  // kv::Crc32
#include "net/socket.h"

namespace just::net {

namespace {

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed message: ") + what);
}

/// Rebuilds a Status from its wire code. The code has already been
/// range-checked by DecodeStatus.
Status StatusFromCode(StatusCode code, std::string msg) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(msg));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(msg));
    case StatusCode::kIOError:
      return Status::IOError(std::move(msg));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(msg));
    case StatusCode::kNotSupported:
      return Status::NotSupported(std::move(msg));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(msg));
    case StatusCode::kPermissionDenied:
      return Status::PermissionDenied(std::move(msg));
    case StatusCode::kInternal:
      return Status::Internal(std::move(msg));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(msg));
  }
  return Status::Internal("unreachable status code");
}

/// Starts a payload: type byte + request id + (optional) extension field.
/// Body bytes append after.
void BeginPayload(MsgType type, uint64_t request_id, std::string* payload,
                  std::string_view ext) {
  uint8_t type_byte = static_cast<uint8_t>(type);
  if (!ext.empty()) type_byte |= kExtensionFlag;
  payload->push_back(static_cast<char>(type_byte));
  PutFixed64(payload, request_id);
  if (!ext.empty()) PutLengthPrefixed(payload, ext);
}

/// Wraps a finished payload into a frame appended to `dst`.
void FinishFrame(const std::string& payload, std::string* dst) {
  PutFixed32(dst, static_cast<uint32_t>(payload.size()));
  PutFixed32(dst, kv::Crc32(payload));
  dst->append(payload);
}

bool GetString(const char** p, const char* limit, std::string* out) {
  std::string_view sv;
  if (!GetLengthPrefixed(p, limit, &sv)) return false;
  out->assign(sv.data(), sv.size());
  return true;
}

Status ExpectEnd(const char* p, const char* limit) {
  if (p != limit) return Malformed("trailing bytes");
  return Status::OK();
}

}  // namespace

bool IsRequestType(MsgType t) {
  return t >= MsgType::kPingReq && t <= MsgType::kIngestReq;
}

bool IsKnownType(uint8_t t) {
  auto m = static_cast<MsgType>(t);
  return IsRequestType(m) ||
         (m >= MsgType::kStatusResp && m <= MsgType::kStatsResp);
}

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kPingReq:
      return "ping";
    case MsgType::kGetReq:
      return "get";
    case MsgType::kPutReq:
      return "put";
    case MsgType::kDeleteReq:
      return "delete";
    case MsgType::kWriteBatchReq:
      return "write_batch";
    case MsgType::kScanReq:
      return "scan";
    case MsgType::kFlushReq:
      return "flush";
    case MsgType::kCompactReq:
      return "compact";
    case MsgType::kStatsReq:
      return "stats";
    case MsgType::kWaitIdleReq:
      return "wait_idle";
    case MsgType::kIngestReq:
      return "ingest";
    case MsgType::kStatusResp:
      return "status_resp";
    case MsgType::kGetResp:
      return "get_resp";
    case MsgType::kScanResp:
      return "scan_resp";
    case MsgType::kStatsResp:
      return "stats_resp";
  }
  return "unknown";
}

std::string EncodeTraceContext(const TraceContext& ctx) {
  std::string ext;
  PutVarint32(&ext, ctx.sampled ? 1u : 0u);
  return ext;
}

Status DecodeTraceContext(std::string_view ext, TraceContext* ctx) {
  const char* p = ext.data();
  const char* limit = p + ext.size();
  uint32_t flags = 0;
  if (!GetVarint32(&p, limit, &flags)) {
    return Malformed("trace context flags");
  }
  ctx->sampled = (flags & 1u) != 0;
  // Trailing bytes are future fields from a newer peer: ignore them.
  return Status::OK();
}

void EncodeStatus(const Status& st, std::string* dst) {
  PutVarint32(dst, static_cast<uint32_t>(st.code()));
  PutLengthPrefixed(dst, st.message());
}

Status DecodeStatus(const char** p, const char* limit, Status* st) {
  uint32_t code = 0;
  if (!GetVarint32(p, limit, &code)) return Malformed("status code");
  if (code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
    return Malformed("status code out of range");
  }
  std::string msg;
  if (!GetString(p, limit, &msg)) return Malformed("status message");
  *st = StatusFromCode(static_cast<StatusCode>(code), std::move(msg));
  return Status::OK();
}

// --- Requests ----------------------------------------------------------

void EncodePingRequest(uint64_t request_id, std::string* dst,
                       std::string_view ext) {
  EncodeEmptyRequest(MsgType::kPingReq, request_id, dst, ext);
}

void EncodeEmptyRequest(MsgType type, uint64_t request_id, std::string* dst,
                        std::string_view ext) {
  std::string payload;
  BeginPayload(type, request_id, &payload, ext);
  FinishFrame(payload, dst);
}

void EncodeGetRequest(const GetRequest& req, uint64_t request_id,
                      std::string* dst, std::string_view ext) {
  std::string payload;
  BeginPayload(MsgType::kGetReq, request_id, &payload, ext);
  PutLengthPrefixed(&payload, req.key);
  FinishFrame(payload, dst);
}

void EncodePutRequest(const PutRequest& req, uint64_t request_id,
                      std::string* dst, std::string_view ext) {
  std::string payload;
  BeginPayload(MsgType::kPutReq, request_id, &payload, ext);
  PutLengthPrefixed(&payload, req.key);
  PutLengthPrefixed(&payload, req.value);
  FinishFrame(payload, dst);
}

void EncodeDeleteRequest(const DeleteRequest& req, uint64_t request_id,
                         std::string* dst, std::string_view ext) {
  std::string payload;
  BeginPayload(MsgType::kDeleteReq, request_id, &payload, ext);
  PutLengthPrefixed(&payload, req.key);
  FinishFrame(payload, dst);
}

void EncodeWriteBatchRequest(const WriteBatchRequest& req, uint64_t request_id,
                             std::string* dst, std::string_view ext) {
  std::string payload;
  BeginPayload(MsgType::kWriteBatchReq, request_id, &payload, ext);
  PutVarint32(&payload, static_cast<uint32_t>(req.ops.size()));
  for (const auto& op : req.ops) {
    payload.push_back(op.is_delete ? 1 : 0);
    PutLengthPrefixed(&payload, op.key);
    if (!op.is_delete) PutLengthPrefixed(&payload, op.value);
  }
  FinishFrame(payload, dst);
}

void EncodeIngestRequest(const IngestRequest& req, uint64_t request_id,
                         std::string* dst, std::string_view ext) {
  std::string payload;
  BeginPayload(MsgType::kIngestReq, request_id, &payload, ext);
  PutLengthPrefixed(&payload, req.tenant);
  PutVarint32(&payload, static_cast<uint32_t>(req.ops.size()));
  for (const auto& op : req.ops) {
    payload.push_back(op.is_delete ? 1 : 0);
    PutLengthPrefixed(&payload, op.key);
    if (!op.is_delete) PutLengthPrefixed(&payload, op.value);
  }
  FinishFrame(payload, dst);
}

void EncodeScanRequest(const ScanRequest& req, uint64_t request_id,
                       std::string* dst, std::string_view ext) {
  std::string payload;
  BeginPayload(MsgType::kScanReq, request_id, &payload, ext);
  PutLengthPrefixed(&payload, req.start_key);
  PutLengthPrefixed(&payload, req.end_key);
  PutVarint32(&payload, req.limit_rows);
  FinishFrame(payload, dst);
}

Status DecodeGetRequest(std::string_view body, GetRequest* req) {
  const char* p = body.data();
  const char* limit = p + body.size();
  if (!GetString(&p, limit, &req->key)) return Malformed("get key");
  return ExpectEnd(p, limit);
}

Status DecodePutRequest(std::string_view body, PutRequest* req) {
  const char* p = body.data();
  const char* limit = p + body.size();
  if (!GetString(&p, limit, &req->key)) return Malformed("put key");
  if (!GetString(&p, limit, &req->value)) return Malformed("put value");
  return ExpectEnd(p, limit);
}

Status DecodeDeleteRequest(std::string_view body, DeleteRequest* req) {
  const char* p = body.data();
  const char* limit = p + body.size();
  if (!GetString(&p, limit, &req->key)) return Malformed("delete key");
  return ExpectEnd(p, limit);
}

Status DecodeWriteBatchRequest(std::string_view body, WriteBatchRequest* req) {
  const char* p = body.data();
  const char* limit = p + body.size();
  uint32_t count = 0;
  if (!GetVarint32(&p, limit, &count)) return Malformed("batch count");
  // An op takes at least 2 bytes on the wire; a count promising more ops
  // than the body could possibly hold is rejected before reserving memory.
  if (count > body.size() / 2 + 1) return Malformed("batch count too large");
  req->ops.clear();
  req->ops.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (p >= limit) return Malformed("batch op truncated");
    uint8_t tag = static_cast<uint8_t>(*p++);
    if (tag > 1) return Malformed("batch op tag");
    kv::WriteOp op;
    op.is_delete = tag == 1;
    if (!GetString(&p, limit, &op.key)) return Malformed("batch op key");
    if (!op.is_delete && !GetString(&p, limit, &op.value)) {
      return Malformed("batch op value");
    }
    req->ops.push_back(std::move(op));
  }
  return ExpectEnd(p, limit);
}

Status DecodeIngestRequest(std::string_view body, IngestRequest* req) {
  const char* p = body.data();
  const char* limit = p + body.size();
  if (!GetString(&p, limit, &req->tenant)) return Malformed("ingest tenant");
  uint32_t count = 0;
  if (!GetVarint32(&p, limit, &count)) return Malformed("ingest count");
  if (count > body.size() / 2 + 1) return Malformed("ingest count too large");
  req->ops.clear();
  req->ops.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (p >= limit) return Malformed("ingest op truncated");
    uint8_t tag = static_cast<uint8_t>(*p++);
    if (tag > 1) return Malformed("ingest op tag");
    kv::WriteOp op;
    op.is_delete = tag == 1;
    if (!GetString(&p, limit, &op.key)) return Malformed("ingest op key");
    if (!op.is_delete && !GetString(&p, limit, &op.value)) {
      return Malformed("ingest op value");
    }
    req->ops.push_back(std::move(op));
  }
  return ExpectEnd(p, limit);
}

Status DecodeScanRequest(std::string_view body, ScanRequest* req) {
  const char* p = body.data();
  const char* limit = p + body.size();
  if (!GetString(&p, limit, &req->start_key)) return Malformed("scan start");
  if (!GetString(&p, limit, &req->end_key)) return Malformed("scan end");
  if (!GetVarint32(&p, limit, &req->limit_rows)) return Malformed("scan limit");
  if (req->limit_rows == 0) return Malformed("scan limit zero");
  return ExpectEnd(p, limit);
}

Status DecodeEmptyBody(std::string_view body) {
  if (!body.empty()) return Malformed("unexpected body");
  return Status::OK();
}

// --- Responses ---------------------------------------------------------

void EncodeStatusResponse(const StatusResponse& resp, uint64_t request_id,
                          std::string* dst, std::string_view ext) {
  std::string payload;
  BeginPayload(MsgType::kStatusResp, request_id, &payload, ext);
  EncodeStatus(resp.status, &payload);
  FinishFrame(payload, dst);
}

void EncodeGetResponse(const GetResponse& resp, uint64_t request_id,
                       std::string* dst, std::string_view ext) {
  std::string payload;
  BeginPayload(MsgType::kGetResp, request_id, &payload, ext);
  EncodeStatus(resp.status, &payload);
  PutLengthPrefixed(&payload, resp.value);
  FinishFrame(payload, dst);
}

void EncodeScanResponse(const ScanResponse& resp, uint64_t request_id,
                        std::string* dst, std::string_view ext) {
  std::string payload;
  BeginPayload(MsgType::kScanResp, request_id, &payload, ext);
  EncodeStatus(resp.status, &payload);
  PutVarint32(&payload, static_cast<uint32_t>(resp.rows.size()));
  for (const auto& row : resp.rows) {
    PutLengthPrefixed(&payload, row.key);
    PutLengthPrefixed(&payload, row.value);
  }
  payload.push_back(resp.has_more ? 1 : 0);
  PutLengthPrefixed(&payload, resp.next_cursor);
  FinishFrame(payload, dst);
}

void EncodeStatsResponse(const StatsResponse& resp, uint64_t request_id,
                         std::string* dst, std::string_view ext) {
  std::string payload;
  BeginPayload(MsgType::kStatsResp, request_id, &payload, ext);
  EncodeStatus(resp.status, &payload);
  PutFixed64(&payload, resp.disk_bytes);
  PutFixed64(&payload, resp.entries);
  PutFixed64(&payload, resp.num_sstables);
  PutFixed64(&payload, resp.requests_total);
  PutFixed64(&payload, resp.shed_total);
  PutFixed64(&payload, resp.corrupt_frames_total);
  PutFixed64(&payload, resp.active_connections);
  FinishFrame(payload, dst);
}

Status DecodeStatusResponse(std::string_view body, StatusResponse* resp) {
  const char* p = body.data();
  const char* limit = p + body.size();
  JUST_RETURN_NOT_OK(DecodeStatus(&p, limit, &resp->status));
  return ExpectEnd(p, limit);
}

Status DecodeGetResponse(std::string_view body, GetResponse* resp) {
  const char* p = body.data();
  const char* limit = p + body.size();
  JUST_RETURN_NOT_OK(DecodeStatus(&p, limit, &resp->status));
  if (!GetString(&p, limit, &resp->value)) return Malformed("get value");
  return ExpectEnd(p, limit);
}

Status DecodeScanResponse(std::string_view body, ScanResponse* resp) {
  const char* p = body.data();
  const char* limit = p + body.size();
  JUST_RETURN_NOT_OK(DecodeStatus(&p, limit, &resp->status));
  uint32_t count = 0;
  if (!GetVarint32(&p, limit, &count)) return Malformed("scan row count");
  if (count > body.size() / 2 + 1) return Malformed("scan row count too large");
  resp->rows.clear();
  resp->rows.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireRow row;
    if (!GetString(&p, limit, &row.key)) return Malformed("scan row key");
    if (!GetString(&p, limit, &row.value)) return Malformed("scan row value");
    resp->rows.push_back(std::move(row));
  }
  if (p >= limit) return Malformed("scan has_more");
  uint8_t has_more = static_cast<uint8_t>(*p++);
  if (has_more > 1) return Malformed("scan has_more flag");
  resp->has_more = has_more == 1;
  if (!GetString(&p, limit, &resp->next_cursor)) return Malformed("scan cursor");
  return ExpectEnd(p, limit);
}

Status DecodeStatsResponse(std::string_view body, StatsResponse* resp) {
  const char* p = body.data();
  const char* limit = p + body.size();
  JUST_RETURN_NOT_OK(DecodeStatus(&p, limit, &resp->status));
  if (limit - p != 7 * 8) return Malformed("stats body size");
  resp->disk_bytes = GetFixed64(p);
  resp->entries = GetFixed64(p + 8);
  resp->num_sstables = GetFixed64(p + 16);
  resp->requests_total = GetFixed64(p + 24);
  resp->shed_total = GetFixed64(p + 32);
  resp->corrupt_frames_total = GetFixed64(p + 40);
  resp->active_connections = GetFixed64(p + 48);
  return Status::OK();
}

// --- Framing -----------------------------------------------------------

Status DecodeFrame(std::string_view frame, std::string_view* payload,
                   size_t max_frame_bytes) {
  if (frame.size() < kFrameHeaderBytes) {
    return Status::Corruption("truncated frame header");
  }
  uint32_t len = GetFixed32(frame.data());
  uint32_t crc = GetFixed32(frame.data() + 4);
  if (len > max_frame_bytes) {
    return Status::InvalidArgument("frame exceeds maximum size");
  }
  if (frame.size() - kFrameHeaderBytes < len) {
    return Status::Corruption("truncated frame payload");
  }
  std::string_view body(frame.data() + kFrameHeaderBytes, len);
  if (kv::Crc32(body) != crc) {
    return Status::Corruption("frame CRC mismatch");
  }
  *payload = body;
  return Status::OK();
}

Status ReadFramePayload(Socket& sock, std::string* payload,
                        size_t max_frame_bytes) {
  char header[kFrameHeaderBytes];
  JUST_RETURN_NOT_OK(sock.ReadFully(header, sizeof(header)));
  uint32_t len = GetFixed32(header);
  uint32_t crc = GetFixed32(header + 4);
  if (len > max_frame_bytes) {
    return Status::InvalidArgument("frame exceeds maximum size");
  }
  payload->resize(len);
  if (len > 0) JUST_RETURN_NOT_OK(sock.ReadFully(payload->data(), len));
  if (kv::Crc32(*payload) != crc) {
    return Status::Corruption("frame CRC mismatch");
  }
  return Status::OK();
}

Status ParsePayload(std::string_view payload, FrameHeader* header,
                    std::string_view* body) {
  if (payload.size() < kPayloadHeaderBytes) {
    return Status::InvalidArgument("payload too short for header");
  }
  uint8_t raw = static_cast<uint8_t>(payload[0]);
  uint8_t type = raw & static_cast<uint8_t>(~kExtensionFlag);
  if (!IsKnownType(type)) {
    // Deliberately the same message whether the flag bit or the low bits
    // are unrecognized: pre-extension servers answer flagged frames with
    // exactly this text, and RegionClient matches on it to degrade.
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(type));
  }
  header->type = static_cast<MsgType>(type);
  header->request_id = GetFixed64(payload.data() + 1);
  header->ext = {};
  header->has_ext = false;
  const char* p = payload.data() + kPayloadHeaderBytes;
  const char* limit = payload.data() + payload.size();
  if (raw & kExtensionFlag) {
    std::string_view ext;
    if (!GetLengthPrefixed(&p, limit, &ext)) {
      return Malformed("extension field");
    }
    header->ext = ext;
    header->has_ext = true;
  }
  *body = std::string_view(p, static_cast<size_t>(limit - p));
  return Status::OK();
}

}  // namespace just::net
