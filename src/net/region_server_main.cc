// just_region_server — standalone out-of-process region server.
//
// Serves the binary wire protocol (src/net/wire_protocol.h) over TCP on top
// of one LsmStore. Spawned by the multi-process tests (tests/net_harness.h)
// and usable directly:
//
//   just_region_server --dir /data/rs0 --port 4700 --sync-wal 1
//
// With --port 0 the kernel picks an ephemeral port; --port-file writes the
// bound port (atomically: tmp + rename) so a spawner can discover it. When
// --admin-port is given (>= 0; 0 = ephemeral) an HTTP admin plane serves
// /metrics, /healthz, /statsz, and /tracez (src/obs/http_admin.h) and the
// port file gains a second line with the admin port. --slow-query-us T
// records RPCs slower than T microseconds (span tree included) for /tracez.
// --tenant-write-rps R gives every tenant seen on the streaming ingest path
// (kIngestReq) a token bucket of R rows/sec (--tenant-write-burst caps the
// burst; default one second's worth) — over-quota batches answer
// kResourceExhausted and count into shed_total.
// SIGTERM/SIGINT stop the server cleanly; acknowledged writes survive
// SIGKILL via the store's WAL (run with --sync-wal 1 for that guarantee).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "kvstore/lsm_store.h"
#include "net/region_server.h"
#include "obs/http_admin.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --dir DIR [--host H] [--port P] [--port-file FILE]\n"
      "          [--max-inflight N] [--max-pipeline N] [--sync-wal 0|1]\n"
      "          [--memtable-bytes N] [--compaction-trigger N]\n"
      "          [--admin-port P] [--slow-query-us T]\n"
      "          [--tenant-write-rps N] [--tenant-write-burst N]\n",
      argv0);
}

/// Line 1: wire-protocol port. Line 2 (only with an admin plane): admin
/// port. Spawners that predate the admin plane read the first int and never
/// see the second line.
bool WritePortFile(const std::string& path, int port, int admin_port) {
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "%d\n", port);
  if (admin_port >= 0) std::fprintf(f, "%d\n", admin_port);
  std::fflush(f);
  std::fclose(f);
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  just::net::RegionServerOptions options;
  std::string port_file;
  int admin_port = -1;  // < 0 = no admin plane
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dir") {
      options.store.dir = next();
    } else if (arg == "--host") {
      options.host = next();
    } else if (arg == "--port") {
      options.port = std::atoi(next());
    } else if (arg == "--port-file") {
      port_file = next();
    } else if (arg == "--max-inflight") {
      options.max_inflight = std::atoi(next());
    } else if (arg == "--max-pipeline") {
      options.max_pipeline = std::atoi(next());
    } else if (arg == "--sync-wal") {
      options.store.sync_wal = std::atoi(next()) != 0;
    } else if (arg == "--memtable-bytes") {
      options.store.memtable_bytes =
          static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--compaction-trigger") {
      options.store.compaction_trigger = std::atoi(next());
    } else if (arg == "--admin-port") {
      admin_port = std::atoi(next());
    } else if (arg == "--slow-query-us") {
      options.slow_rpc_threshold_us = std::atoll(next());
    } else if (arg == "--tenant-write-rps") {
      options.tenant_write_rps = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--tenant-write-burst") {
      options.tenant_write_burst = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (options.store.dir.empty()) {
    Usage(argv[0]);
    return 2;
  }

  auto server = just::net::RegionServer::Start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "just_region_server: start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  just::obs::HttpAdminServer::Options admin_options;
  admin_options.host = options.host;
  admin_options.port = admin_port;
  admin_options.slow_log = (*server)->slow_log();
  std::unique_ptr<just::obs::HttpAdminServer> admin;
  if (admin_port >= 0) {
    admin = std::make_unique<just::obs::HttpAdminServer>(admin_options);
    just::Status st = admin->Start();
    if (!st.ok()) {
      std::fprintf(stderr, "just_region_server: admin plane failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }
  // The port file is written only after *both* listeners are up, so a
  // spawner that sees it may immediately hit either port.
  if (!port_file.empty() &&
      !WritePortFile(port_file, (*server)->port(),
                     admin ? admin->port() : -1)) {
    std::fprintf(stderr, "just_region_server: cannot write port file %s\n",
                 port_file.c_str());
    return 1;
  }
  std::fprintf(stderr, "just_region_server: serving %s on %s:%d\n",
               options.store.dir.c_str(), options.host.c_str(),
               (*server)->port());
  if (admin) {
    std::fprintf(stderr, "just_region_server: admin plane on %s:%d\n",
                 options.host.c_str(), admin->port());
  }

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (admin) admin->Stop();
  (*server)->Stop();
  return 0;
}
