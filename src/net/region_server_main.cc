// just_region_server — standalone out-of-process region server.
//
// Serves the binary wire protocol (src/net/wire_protocol.h) over TCP on top
// of one LsmStore. Spawned by the multi-process tests (tests/net_harness.h)
// and usable directly:
//
//   just_region_server --dir /data/rs0 --port 4700 --sync-wal 1
//
// With --port 0 the kernel picks an ephemeral port; --port-file writes the
// bound port (atomically: tmp + rename) so a spawner can discover it.
// SIGTERM/SIGINT stop the server cleanly; acknowledged writes survive
// SIGKILL via the store's WAL (run with --sync-wal 1 for that guarantee).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "kvstore/lsm_store.h"
#include "net/region_server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --dir DIR [--host H] [--port P] [--port-file FILE]\n"
      "          [--max-inflight N] [--max-pipeline N] [--sync-wal 0|1]\n"
      "          [--memtable-bytes N] [--compaction-trigger N]\n",
      argv0);
}

bool WritePortFile(const std::string& path, int port) {
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "%d\n", port);
  std::fflush(f);
  std::fclose(f);
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  just::net::RegionServerOptions options;
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dir") {
      options.store.dir = next();
    } else if (arg == "--host") {
      options.host = next();
    } else if (arg == "--port") {
      options.port = std::atoi(next());
    } else if (arg == "--port-file") {
      port_file = next();
    } else if (arg == "--max-inflight") {
      options.max_inflight = std::atoi(next());
    } else if (arg == "--max-pipeline") {
      options.max_pipeline = std::atoi(next());
    } else if (arg == "--sync-wal") {
      options.store.sync_wal = std::atoi(next()) != 0;
    } else if (arg == "--memtable-bytes") {
      options.store.memtable_bytes =
          static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--compaction-trigger") {
      options.store.compaction_trigger = std::atoi(next());
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (options.store.dir.empty()) {
    Usage(argv[0]);
    return 2;
  }

  auto server = just::net::RegionServer::Start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "just_region_server: start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  if (!port_file.empty() &&
      !WritePortFile(port_file, (*server)->port())) {
    std::fprintf(stderr, "just_region_server: cannot write port file %s\n",
                 port_file.c_str());
    return 1;
  }
  std::fprintf(stderr, "just_region_server: serving %s on %s:%d\n",
               options.store.dir.c_str(), options.host.c_str(),
               (*server)->port());

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  (*server)->Stop();
  return 0;
}
