#ifndef JUST_NET_WIRE_PROTOCOL_H_
#define JUST_NET_WIRE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "kvstore/lsm_store.h"

namespace just::net {

/// Binary wire protocol between the region-server client stub and
/// `just_region_server` (docs/ARCHITECTURE.md "Wire protocol" has the
/// rationale; the frame layout is normative here).
///
/// Frame:
///   [payload_len: fixed32 LE]   bytes of payload (excludes the 8B header)
///   [crc32:       fixed32 LE]   CRC-32 (ISO-HDLC, kv::Crc32) of payload
///   [payload]
/// Payload:
///   [msg_type:    u8]           low 7 bits = type; bit 7 = extension flag
///   [request_id:  fixed64 LE]   echoed verbatim in the response
///   [extension]                 only when bit 7 of msg_type is set:
///                               varint length + opaque extension bytes
///   [body]                      per-message encoding, see Encode*/Decode*
///
/// The extension field is the version-tolerance seam for optional metadata
/// (today: trace context on requests, serialized span trees on responses).
/// A peer that predates it never sets the flag, so its frames parse
/// unchanged; a peer that does not understand it sees an unknown msg_type
/// (flag bit set) and answers kInvalidArgument on a surviving connection,
/// which new clients detect to degrade to un-extended frames (see
/// RegionClient). Unknown bytes *inside* a well-formed extension are
/// ignored, so the extension itself can grow fields later.
///
/// Safety contract (enforced by the fuzz tests): decoding arbitrary bytes
/// never crashes, never reads past the given buffer, and returns
///   - kInvalidArgument for frames larger than the negotiated maximum or
///     bodies that are structurally malformed *after* the CRC matched
///     (a buggy peer, not line noise), and
///   - kCorruption for truncated frames or CRC mismatches (torn or
///     bit-flipped bytes — the stream can no longer be trusted).
///
/// Requests a server cannot parse past the header still get a response
/// (kInvalidArgument, same request_id); frames failing CRC close the
/// connection, since resynchronizing an untrusted byte stream is hopeless.

/// Frame payloads larger than this are rejected before allocation.
constexpr size_t kMaxFrameBytes = 32u << 20;
/// Fixed bytes in front of every payload: length + CRC.
constexpr size_t kFrameHeaderBytes = 8;
/// Payload bytes before the body: type + request id.
constexpr size_t kPayloadHeaderBytes = 9;
/// Set on the msg_type byte when an extension field follows the request id.
constexpr uint8_t kExtensionFlag = 0x80;

enum class MsgType : uint8_t {
  // Requests.
  kPingReq = 1,
  kGetReq = 2,
  kPutReq = 3,
  kDeleteReq = 4,
  kWriteBatchReq = 5,
  kScanReq = 6,
  kFlushReq = 7,
  kCompactReq = 8,
  kStatsReq = 9,
  kWaitIdleReq = 10,
  kIngestReq = 11,  ///< tenant-tagged streaming write batch
  // Responses.
  kStatusResp = 32,  ///< status only: ping/put/delete/batch/flush/compact/idle
  kGetResp = 33,
  kScanResp = 34,
  kStatsResp = 35,
};

/// True for the types a client may send.
bool IsRequestType(MsgType t);
/// True for any known type (request or response). The extension flag must
/// already be stripped: a flagged byte is *not* a known type here, which is
/// exactly how pre-extension servers reject flagged frames.
bool IsKnownType(uint8_t t);

/// Lowercase identifier for a message type ("get", "scan", ...), used as
/// the {type=...} label value of the per-RPC latency histograms and as the
/// server-side trace span name ("rpc.<name>").
const char* MsgTypeName(MsgType t);

struct FrameHeader {
  MsgType type = MsgType::kPingReq;
  uint64_t request_id = 0;
  /// Extension bytes (views into the parsed payload); empty unless the
  /// frame carried the extension flag. `has_ext` disambiguates an absent
  /// extension from a present-but-empty one.
  std::string_view ext;
  bool has_ext = false;
};

/// Trace context carried in a *request's* extension field: varint flags
/// (bit 0 = sampled), trailing bytes reserved and ignored. A response's
/// extension field instead carries a serialized span tree
/// (obs/trace_codec.h).
struct TraceContext {
  bool sampled = false;
};

/// Returns the extension blob for a trace context.
std::string EncodeTraceContext(const TraceContext& ctx);
/// Parses a request extension as a trace context. Trailing bytes are
/// tolerated (forward compatibility); a malformed flags varint is
/// kInvalidArgument.
Status DecodeTraceContext(std::string_view ext, TraceContext* ctx);

// --- Message structs ---------------------------------------------------

struct GetRequest {
  std::string key;
};

struct PutRequest {
  std::string key;
  std::string value;
};

struct DeleteRequest {
  std::string key;
};

struct WriteBatchRequest {
  std::vector<kv::WriteOp> ops;
};

/// A WriteBatch tagged with the tenant (namespace/user) that produced it —
/// the streaming ingest path. The tag lets the server apply per-tenant
/// write admission (token bucket) before the WAL append; a shed returns
/// kResourceExhausted, which clients must not blindly retry.
struct IngestRequest {
  std::string tenant;
  std::vector<kv::WriteOp> ops;
};

/// One page of a scan. The cursor protocol: a response with
/// `has_more == true` carries `next_cursor`; the client resumes by sending
/// a new ScanRequest with `start_key = next_cursor` (the server holds no
/// per-scan state, so a resumed scan survives server restarts and
/// connection loss — the basis of the kill-mid-scan tests).
struct ScanRequest {
  std::string start_key;
  std::string end_key;    ///< exclusive; empty = to the last key
  uint32_t limit_rows = 512;
};

struct WireRow {
  std::string key;
  std::string value;
};

struct ScanResponse {
  Status status;
  std::vector<WireRow> rows;
  bool has_more = false;
  std::string next_cursor;  ///< valid iff has_more
};

struct StatusResponse {
  Status status;
};

struct GetResponse {
  Status status;  ///< NotFound when the key is absent
  std::string value;
};

/// Store structure plus the server-side admission/overload counters, so a
/// client (or test) can observe shedding without scraping the remote
/// process's metrics endpoint.
struct StatsResponse {
  Status status;
  uint64_t disk_bytes = 0;
  uint64_t entries = 0;
  uint64_t num_sstables = 0;
  uint64_t requests_total = 0;
  uint64_t shed_total = 0;
  uint64_t corrupt_frames_total = 0;
  uint64_t active_connections = 0;
};

// --- Encoding ----------------------------------------------------------
// Encode* append one complete frame (header + CRC + payload) to `dst`.
// A non-empty `ext` sets the extension flag and embeds the blob after the
// request id; the default keeps the pre-extension frame layout byte-for-
// byte, so old peers interoperate.

void EncodePingRequest(uint64_t request_id, std::string* dst,
                       std::string_view ext = {});
void EncodeGetRequest(const GetRequest& req, uint64_t request_id,
                      std::string* dst, std::string_view ext = {});
void EncodePutRequest(const PutRequest& req, uint64_t request_id,
                      std::string* dst, std::string_view ext = {});
void EncodeDeleteRequest(const DeleteRequest& req, uint64_t request_id,
                         std::string* dst, std::string_view ext = {});
void EncodeWriteBatchRequest(const WriteBatchRequest& req, uint64_t request_id,
                             std::string* dst, std::string_view ext = {});
void EncodeIngestRequest(const IngestRequest& req, uint64_t request_id,
                         std::string* dst, std::string_view ext = {});
void EncodeScanRequest(const ScanRequest& req, uint64_t request_id,
                       std::string* dst, std::string_view ext = {});
void EncodeEmptyRequest(MsgType type, uint64_t request_id, std::string* dst,
                        std::string_view ext = {});

void EncodeStatusResponse(const StatusResponse& resp, uint64_t request_id,
                          std::string* dst, std::string_view ext = {});
void EncodeGetResponse(const GetResponse& resp, uint64_t request_id,
                       std::string* dst, std::string_view ext = {});
void EncodeScanResponse(const ScanResponse& resp, uint64_t request_id,
                        std::string* dst, std::string_view ext = {});
void EncodeStatsResponse(const StatsResponse& resp, uint64_t request_id,
                         std::string* dst, std::string_view ext = {});

// --- Decoding ----------------------------------------------------------

/// Splits a complete frame into its CRC-verified payload. `frame` must hold
/// exactly one frame (header + payload). Returns kCorruption on truncation
/// or CRC mismatch, kInvalidArgument on an oversized declared length.
Status DecodeFrame(std::string_view frame, std::string_view* payload,
                   size_t max_frame_bytes = kMaxFrameBytes);

/// Parses the payload header (including the optional extension field);
/// `body` receives the remaining bytes. Unknown message types and a
/// flagged-but-malformed extension return kInvalidArgument — the framing
/// was intact, so the connection survives.
Status ParsePayload(std::string_view payload, FrameHeader* header,
                    std::string_view* body);

Status DecodeGetRequest(std::string_view body, GetRequest* req);
Status DecodePutRequest(std::string_view body, PutRequest* req);
Status DecodeDeleteRequest(std::string_view body, DeleteRequest* req);
Status DecodeWriteBatchRequest(std::string_view body, WriteBatchRequest* req);
Status DecodeIngestRequest(std::string_view body, IngestRequest* req);
Status DecodeScanRequest(std::string_view body, ScanRequest* req);
Status DecodeEmptyBody(std::string_view body);

Status DecodeStatusResponse(std::string_view body, StatusResponse* resp);
Status DecodeGetResponse(std::string_view body, GetResponse* resp);
Status DecodeScanResponse(std::string_view body, ScanResponse* resp);
Status DecodeStatsResponse(std::string_view body, StatsResponse* resp);

/// Status over the wire: varint code + length-prefixed message. Decoding
/// validates the code range.
void EncodeStatus(const Status& st, std::string* dst);
Status DecodeStatus(const char** p, const char* limit, Status* st);

class Socket;

/// Reads one frame off a socket and returns its CRC-verified payload:
/// kUnavailable for I/O failures (EOF, timeout, reset), kInvalidArgument
/// for an oversized declared length, kCorruption for a CRC mismatch. After
/// a non-OK return the stream is unsynced and must be closed.
Status ReadFramePayload(Socket& sock, std::string* payload,
                        size_t max_frame_bytes = kMaxFrameBytes);

}  // namespace just::net

#endif  // JUST_NET_WIRE_PROTOCOL_H_
