#include "net/region_client.h"

#include <array>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_codec.h"

namespace just::net {

namespace {

obs::Counter* RpcCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("just_net_client_rpcs_total");
  return c;
}

obs::Counter* ReconnectCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("just_net_client_reconnects_total");
  return c;
}

obs::Counter* ErrorCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("just_net_client_rpc_errors_total");
  return c;
}

obs::Counter* TraceDecodeErrorCounter() {
  static obs::Counter* c = obs::Registry::Global().GetCounter(
      "just_net_client_trace_decode_errors_total");
  return c;
}

obs::Counter* TraceDegradeCounter() {
  static obs::Counter* c = obs::Registry::Global().GetCounter(
      "just_net_client_trace_degrades_total");
  return c;
}

/// Per-request-type client latency (`just_net_client_rpc_us{type=...}`),
/// indexed by the raw type byte. All series registered on first use so
/// /metrics shows them together.
obs::Histogram* ClientRpcUs(MsgType t) {
  static const std::array<obs::Histogram*, 16> table = [] {
    std::array<obs::Histogram*, 16> a{};
    for (uint8_t i = static_cast<uint8_t>(MsgType::kPingReq);
         i <= static_cast<uint8_t>(MsgType::kWaitIdleReq); ++i) {
      a[i] = obs::Registry::Global().GetHistogram(obs::LabeledName(
          "just_net_client_rpc_us",
          {{"type", MsgTypeName(static_cast<MsgType>(i))}}));
    }
    return a;
  }();
  uint8_t i = static_cast<uint8_t>(t);
  return i < table.size() ? table[i] : nullptr;
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Status RegionClient::EnsureConnected() {
  if (sock_.valid()) return Status::OK();
  JUST_ASSIGN_OR_RETURN(sock_, Connect(options_.host, options_.port));
  ReconnectCounter()->Increment();
  if (options_.io_timeout_ms > 0) {
    JUST_RETURN_NOT_OK(sock_.SetRecvTimeout(options_.io_timeout_ms));
    JUST_RETURN_NOT_OK(sock_.SetSendTimeout(options_.io_timeout_ms));
  }
  return Status::OK();
}

Status RegionClient::Fail(Status st) {
  // The byte stream can no longer be trusted (timeout mid-frame, torn
  // response, CRC mismatch): drop the connection so the next call redials,
  // and surface the failure as transient for the caller's retry policy.
  Disconnect();
  ErrorCounter()->Increment();
  if (st.IsTransient()) return st;
  return Status::Unavailable("region server RPC failed: " + st.ToString());
}

Status RegionClient::RawSend(std::string_view frame) {
  JUST_RETURN_NOT_OK(EnsureConnected());
  Status st = sock_.WriteFully(frame.data(), frame.size());
  if (!st.ok()) return Fail(st);
  return Status::OK();
}

Status RegionClient::RawRecvPayload(std::string* payload) {
  if (!sock_.valid()) return Status::Unavailable("not connected");
  Status st = ReadFramePayload(sock_, payload, options_.max_frame_bytes);
  if (!st.ok()) return Fail(st);
  return Status::OK();
}

void RegionClient::GraftResponseTrace(const FrameHeader& header) {
  obs::TraceSpan* parent = obs::CurrentSpan();
  if (parent == nullptr || !header.has_ext) return;
  Status st;
  obs::TraceSpan* remote = obs::DecodeSpanTree(header.ext, parent, &st);
  if (remote == nullptr) {
    TraceDecodeErrorCounter()->Increment();
    return;
  }
  remote->AddAttr("server",
                  options_.host + ":" + std::to_string(options_.port));
}

Status RegionClient::CallRpc(MsgType req_type, const FrameBuilder& build,
                             FrameHeader* header, std::string* payload,
                             std::string_view* body) {
  // Trace context rides along only when the calling thread is actually
  // tracing and the peer has not rejected the extension — with tracing
  // inactive the frame is byte-identical to the pre-extension layout.
  bool traced = !peer_trace_unsupported_ && obs::CurrentSpan() != nullptr;
  const uint64_t start_us = NowUs();
  for (;;) {
    uint64_t id = NextRequestId();
    std::string ext;
    if (traced) ext = EncodeTraceContext(TraceContext{/*sampled=*/true});
    std::string frame;
    build(id, ext, &frame);
    RpcCounter()->Increment();
    JUST_RETURN_NOT_OK(RawSend(frame));
    // Responses arrive in request order on this synchronous client, but a
    // shed response can only ever match our own id (we pipeline nothing),
    // so an id mismatch means a stale or misrouted frame: kill the
    // connection.
    JUST_RETURN_NOT_OK(RawRecvPayload(payload));
    Status st = ParsePayload(*payload, header, body);
    if (!st.ok()) return Fail(st);
    if (header->request_id != id) {
      return Fail(Status::Internal("response id mismatch"));
    }
    if (traced && header->type == MsgType::kStatusResp) {
      // A pre-extension server saw the flagged type byte as unknown and
      // answered kInvalidArgument on a surviving connection. Degrade for
      // good and retry this one RPC without the extension; `traced` is now
      // false, so the loop cannot spin.
      StatusResponse sr;
      if (DecodeStatusResponse(*body, &sr).ok() &&
          sr.status.IsInvalidArgument() &&
          sr.status.message().find("unknown message type") !=
              std::string::npos) {
        peer_trace_unsupported_ = true;
        TraceDegradeCounter()->Increment();
        traced = false;
        continue;
      }
    }
    if (header->has_ext) GraftResponseTrace(*header);
    if (obs::Histogram* h = ClientRpcUs(req_type)) {
      h->Record(NowUs() - start_us);
    }
    return Status::OK();
  }
}

Status RegionClient::StatusCall(MsgType req_type, const FrameBuilder& build) {
  FrameHeader header;
  std::string payload;
  std::string_view body;
  JUST_RETURN_NOT_OK(CallRpc(req_type, build, &header, &payload, &body));
  if (header.type != MsgType::kStatusResp) {
    return Fail(Status::Internal("unexpected response type"));
  }
  StatusResponse resp;
  Status st = DecodeStatusResponse(body, &resp);
  if (!st.ok()) return Fail(st);
  return resp.status;
}

Status RegionClient::Ping() {
  return StatusCall(MsgType::kPingReq,
                    [](uint64_t id, std::string_view ext, std::string* f) {
                      EncodePingRequest(id, f, ext);
                    });
}

Status RegionClient::Put(std::string_view key, std::string_view value) {
  return StatusCall(
      MsgType::kPutReq,
      [&](uint64_t id, std::string_view ext, std::string* f) {
        EncodePutRequest({std::string(key), std::string(value)}, id, f, ext);
      });
}

Status RegionClient::Delete(std::string_view key) {
  return StatusCall(MsgType::kDeleteReq,
                    [&](uint64_t id, std::string_view ext, std::string* f) {
                      EncodeDeleteRequest({std::string(key)}, id, f, ext);
                    });
}

Status RegionClient::WriteBatch(const std::vector<kv::WriteOp>& ops) {
  return StatusCall(MsgType::kWriteBatchReq,
                    [&](uint64_t id, std::string_view ext, std::string* f) {
                      WriteBatchRequest req;
                      req.ops = ops;
                      EncodeWriteBatchRequest(req, id, f, ext);
                    });
}

Status RegionClient::Ingest(const std::string& tenant,
                            const std::vector<kv::WriteOp>& ops) {
  return StatusCall(MsgType::kIngestReq,
                    [&](uint64_t id, std::string_view ext, std::string* f) {
                      IngestRequest req;
                      req.tenant = tenant;
                      req.ops = ops;
                      EncodeIngestRequest(req, id, f, ext);
                    });
}

Status RegionClient::Flush() {
  return StatusCall(MsgType::kFlushReq,
                    [](uint64_t id, std::string_view ext, std::string* f) {
                      EncodeEmptyRequest(MsgType::kFlushReq, id, f, ext);
                    });
}

Status RegionClient::CompactAll() {
  return StatusCall(MsgType::kCompactReq,
                    [](uint64_t id, std::string_view ext, std::string* f) {
                      EncodeEmptyRequest(MsgType::kCompactReq, id, f, ext);
                    });
}

Status RegionClient::WaitForBackgroundIdle() {
  return StatusCall(MsgType::kWaitIdleReq,
                    [](uint64_t id, std::string_view ext, std::string* f) {
                      EncodeEmptyRequest(MsgType::kWaitIdleReq, id, f, ext);
                    });
}

Status RegionClient::Get(std::string_view key, std::string* value) {
  FrameHeader header;
  std::string payload;
  std::string_view body;
  JUST_RETURN_NOT_OK(CallRpc(
      MsgType::kGetReq,
      [&](uint64_t id, std::string_view ext, std::string* f) {
        EncodeGetRequest({std::string(key)}, id, f, ext);
      },
      &header, &payload, &body));
  if (header.type == MsgType::kStatusResp) {
    // Shed or rejected before execution: the body is a bare status.
    StatusResponse resp;
    Status st = DecodeStatusResponse(body, &resp);
    if (!st.ok()) return Fail(st);
    return resp.status.ok()
               ? Status::Internal("status-only response to a Get")
               : resp.status;
  }
  if (header.type != MsgType::kGetResp) {
    return Fail(Status::Internal("unexpected response type"));
  }
  GetResponse resp;
  Status st = DecodeGetResponse(body, &resp);
  if (!st.ok()) return Fail(st);
  if (resp.status.ok()) *value = std::move(resp.value);
  return resp.status;
}

Status RegionClient::ScanPage(const ScanRequest& req, ScanResponse* resp) {
  FrameHeader header;
  std::string payload;
  std::string_view body;
  JUST_RETURN_NOT_OK(CallRpc(
      MsgType::kScanReq,
      [&](uint64_t id, std::string_view ext, std::string* f) {
        EncodeScanRequest(req, id, f, ext);
      },
      &header, &payload, &body));
  if (header.type == MsgType::kStatusResp) {
    StatusResponse sr;
    Status st = DecodeStatusResponse(body, &sr);
    if (!st.ok()) return Fail(st);
    return sr.status.ok()
               ? Status::Internal("status-only response to a Scan")
               : sr.status;
  }
  if (header.type != MsgType::kScanResp) {
    return Fail(Status::Internal("unexpected response type"));
  }
  Status st = DecodeScanResponse(body, resp);
  if (!st.ok()) return Fail(st);
  return resp->status;
}

Status RegionClient::GetStats(StatsResponse* resp) {
  FrameHeader header;
  std::string payload;
  std::string_view body;
  JUST_RETURN_NOT_OK(CallRpc(
      MsgType::kStatsReq,
      [](uint64_t id, std::string_view ext, std::string* f) {
        EncodeEmptyRequest(MsgType::kStatsReq, id, f, ext);
      },
      &header, &payload, &body));
  if (header.type == MsgType::kStatusResp) {
    StatusResponse sr;
    Status st = DecodeStatusResponse(body, &sr);
    if (!st.ok()) return Fail(st);
    return sr.status.ok()
               ? Status::Internal("status-only response to a Stats")
               : sr.status;
  }
  if (header.type != MsgType::kStatsResp) {
    return Fail(Status::Internal("unexpected response type"));
  }
  Status st = DecodeStatsResponse(body, resp);
  if (!st.ok()) return Fail(st);
  return resp->status;
}

Status RegionClient::Scan(
    std::string_view start, std::string_view end,
    const std::function<bool(std::string_view, std::string_view)>& fn) {
  ScanRequest req;
  req.start_key = std::string(start);
  req.end_key = std::string(end);
  req.limit_rows = options_.scan_page_rows;
  for (;;) {
    ScanResponse resp;
    JUST_RETURN_NOT_OK(ScanPage(req, &resp));
    for (const auto& row : resp.rows) {
      if (!fn(row.key, row.value)) return Status::OK();
    }
    if (!resp.has_more) return Status::OK();
    req.start_key = resp.next_cursor;
  }
}

}  // namespace just::net
