#include "net/region_client.h"

#include "obs/metrics.h"

namespace just::net {

namespace {

obs::Counter* RpcCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("just_net_client_rpcs_total");
  return c;
}

obs::Counter* ReconnectCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("just_net_client_reconnects_total");
  return c;
}

obs::Counter* ErrorCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("just_net_client_rpc_errors_total");
  return c;
}

}  // namespace

Status RegionClient::EnsureConnected() {
  if (sock_.valid()) return Status::OK();
  JUST_ASSIGN_OR_RETURN(sock_, Connect(options_.host, options_.port));
  ReconnectCounter()->Increment();
  if (options_.io_timeout_ms > 0) {
    JUST_RETURN_NOT_OK(sock_.SetRecvTimeout(options_.io_timeout_ms));
    JUST_RETURN_NOT_OK(sock_.SetSendTimeout(options_.io_timeout_ms));
  }
  return Status::OK();
}

Status RegionClient::Fail(Status st) {
  // The byte stream can no longer be trusted (timeout mid-frame, torn
  // response, CRC mismatch): drop the connection so the next call redials,
  // and surface the failure as transient for the caller's retry policy.
  Disconnect();
  ErrorCounter()->Increment();
  if (st.IsTransient()) return st;
  return Status::Unavailable("region server RPC failed: " + st.ToString());
}

Status RegionClient::RawSend(std::string_view frame) {
  JUST_RETURN_NOT_OK(EnsureConnected());
  Status st = sock_.WriteFully(frame.data(), frame.size());
  if (!st.ok()) return Fail(st);
  return Status::OK();
}

Status RegionClient::RawRecvPayload(std::string* payload) {
  if (!sock_.valid()) return Status::Unavailable("not connected");
  Status st = ReadFramePayload(sock_, payload, options_.max_frame_bytes);
  if (!st.ok()) return Fail(st);
  return Status::OK();
}

Status RegionClient::Call(const std::string& frame, uint64_t request_id,
                          MsgType* type, std::string* payload,
                          std::string_view* body) {
  RpcCounter()->Increment();
  JUST_RETURN_NOT_OK(RawSend(frame));
  // Responses arrive in request order on this synchronous client, but a
  // shed response can only ever match our own id (we pipeline nothing), so
  // an id mismatch means a stale or misrouted frame: kill the connection.
  JUST_RETURN_NOT_OK(RawRecvPayload(payload));
  FrameHeader header;
  Status st = ParsePayload(*payload, &header, body);
  if (!st.ok()) return Fail(st);
  if (header.request_id != request_id) {
    return Fail(Status::Internal("response id mismatch"));
  }
  *type = header.type;
  return Status::OK();
}

Status RegionClient::StatusCall(const std::string& frame,
                                uint64_t request_id) {
  MsgType type;
  std::string payload;
  std::string_view body;
  JUST_RETURN_NOT_OK(Call(frame, request_id, &type, &payload, &body));
  if (type != MsgType::kStatusResp) {
    return Fail(Status::Internal("unexpected response type"));
  }
  StatusResponse resp;
  Status st = DecodeStatusResponse(body, &resp);
  if (!st.ok()) return Fail(st);
  return resp.status;
}

Status RegionClient::Ping() {
  uint64_t id = NextRequestId();
  std::string frame;
  EncodePingRequest(id, &frame);
  return StatusCall(frame, id);
}

Status RegionClient::Put(std::string_view key, std::string_view value) {
  uint64_t id = NextRequestId();
  std::string frame;
  EncodePutRequest({std::string(key), std::string(value)}, id, &frame);
  return StatusCall(frame, id);
}

Status RegionClient::Delete(std::string_view key) {
  uint64_t id = NextRequestId();
  std::string frame;
  EncodeDeleteRequest({std::string(key)}, id, &frame);
  return StatusCall(frame, id);
}

Status RegionClient::WriteBatch(const std::vector<kv::WriteOp>& ops) {
  uint64_t id = NextRequestId();
  std::string frame;
  WriteBatchRequest req;
  req.ops = ops;
  EncodeWriteBatchRequest(req, id, &frame);
  return StatusCall(frame, id);
}

Status RegionClient::Flush() {
  uint64_t id = NextRequestId();
  std::string frame;
  EncodeEmptyRequest(MsgType::kFlushReq, id, &frame);
  return StatusCall(frame, id);
}

Status RegionClient::CompactAll() {
  uint64_t id = NextRequestId();
  std::string frame;
  EncodeEmptyRequest(MsgType::kCompactReq, id, &frame);
  return StatusCall(frame, id);
}

Status RegionClient::WaitForBackgroundIdle() {
  uint64_t id = NextRequestId();
  std::string frame;
  EncodeEmptyRequest(MsgType::kWaitIdleReq, id, &frame);
  return StatusCall(frame, id);
}

Status RegionClient::Get(std::string_view key, std::string* value) {
  uint64_t id = NextRequestId();
  std::string frame;
  EncodeGetRequest({std::string(key)}, id, &frame);
  MsgType type;
  std::string payload;
  std::string_view body;
  JUST_RETURN_NOT_OK(Call(frame, id, &type, &payload, &body));
  if (type == MsgType::kStatusResp) {
    // Shed or rejected before execution: the body is a bare status.
    StatusResponse resp;
    Status st = DecodeStatusResponse(body, &resp);
    if (!st.ok()) return Fail(st);
    return resp.status.ok()
               ? Status::Internal("status-only response to a Get")
               : resp.status;
  }
  if (type != MsgType::kGetResp) {
    return Fail(Status::Internal("unexpected response type"));
  }
  GetResponse resp;
  Status st = DecodeGetResponse(body, &resp);
  if (!st.ok()) return Fail(st);
  if (resp.status.ok()) *value = std::move(resp.value);
  return resp.status;
}

Status RegionClient::ScanPage(const ScanRequest& req, ScanResponse* resp) {
  uint64_t id = NextRequestId();
  std::string frame;
  EncodeScanRequest(req, id, &frame);
  MsgType type;
  std::string payload;
  std::string_view body;
  JUST_RETURN_NOT_OK(Call(frame, id, &type, &payload, &body));
  if (type == MsgType::kStatusResp) {
    StatusResponse sr;
    Status st = DecodeStatusResponse(body, &sr);
    if (!st.ok()) return Fail(st);
    return sr.status.ok()
               ? Status::Internal("status-only response to a Scan")
               : sr.status;
  }
  if (type != MsgType::kScanResp) {
    return Fail(Status::Internal("unexpected response type"));
  }
  Status st = DecodeScanResponse(body, resp);
  if (!st.ok()) return Fail(st);
  return resp->status;
}

Status RegionClient::GetStats(StatsResponse* resp) {
  uint64_t id = NextRequestId();
  std::string frame;
  EncodeEmptyRequest(MsgType::kStatsReq, id, &frame);
  MsgType type;
  std::string payload;
  std::string_view body;
  JUST_RETURN_NOT_OK(Call(frame, id, &type, &payload, &body));
  if (type == MsgType::kStatusResp) {
    StatusResponse sr;
    Status st = DecodeStatusResponse(body, &sr);
    if (!st.ok()) return Fail(st);
    return sr.status.ok()
               ? Status::Internal("status-only response to a Stats")
               : sr.status;
  }
  if (type != MsgType::kStatsResp) {
    return Fail(Status::Internal("unexpected response type"));
  }
  Status st = DecodeStatsResponse(body, resp);
  if (!st.ok()) return Fail(st);
  return resp->status;
}

Status RegionClient::Scan(
    std::string_view start, std::string_view end,
    const std::function<bool(std::string_view, std::string_view)>& fn) {
  ScanRequest req;
  req.start_key = std::string(start);
  req.end_key = std::string(end);
  req.limit_rows = options_.scan_page_rows;
  for (;;) {
    ScanResponse resp;
    JUST_RETURN_NOT_OK(ScanPage(req, &resp));
    for (const auto& row : resp.rows) {
      if (!fn(row.key, row.value)) return Status::OK();
    }
    if (!resp.has_more) return Status::OK();
    req.start_key = resp.next_cursor;
  }
}

}  // namespace just::net
