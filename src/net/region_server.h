#ifndef JUST_NET_REGION_SERVER_H_
#define JUST_NET_REGION_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "kvstore/lsm_store.h"
#include "net/socket.h"
#include "net/wire_protocol.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "stream/quota.h"

namespace just::net {

struct RegionServerOptions {
  kv::StoreOptions store;  ///< store.dir must be set
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; the bound port is port()

  /// Admission control. A request is *shed* — answered immediately with
  /// kUnavailable (transient, so clients retry with backoff) and never
  /// executed — when either bound would be exceeded. Both queues are
  /// bounded, so a flood of pipelined requests costs O(caps) memory, never
  /// an OOM; 0 sheds everything (used by tests to pin the behaviour).
  int max_inflight = 256;  ///< server-wide decoded-but-unfinished requests
  int max_pipeline = 16;   ///< per-connection queued requests

  size_t max_frame_bytes = kMaxFrameBytes;
  /// Server-side clamp on ScanRequest::limit_rows: one scan page never
  /// materializes more than this many rows regardless of what the client
  /// asked for (backpressure for scans).
  uint32_t scan_limit_clamp = 4096;

  /// Blanket per-tenant write admission for kIngestReq batches: each tenant
  /// seen on the ingest path gets its own token bucket of this many rows/sec
  /// (burst defaults to one second's worth when tenant_write_burst is 0).
  /// 0 disables server-side write quotas entirely. Over-quota ingests answer
  /// kResourceExhausted — deliberately non-transient so client retry loops
  /// do not hammer a throttled tenant — and count into shed_total.
  /// `just_region_server --tenant-write-rps` sets it.
  uint64_t tenant_write_rps = 0;
  uint64_t tenant_write_burst = 0;

  /// RPCs whose handler wall time meets this threshold are recorded in a
  /// server-side slow-query log (span tree included) served by the admin
  /// plane's /tracez. Negative disables the log entirely — the default, and
  /// the zero-overhead path: with it disabled an untraced request never
  /// allocates a trace. `just_region_server --slow-query-us` sets it.
  int64_t slow_rpc_threshold_us = -1;
};

/// One admitted request as the reader hands it to the worker.
struct PendingRequest {
  MsgType type = MsgType::kPingReq;
  uint64_t request_id = 0;
  std::string body;
  bool traced = false;      ///< request carried a sampled trace context
  uint64_t enqueue_ns = 0;  ///< steady-clock ns at admission (queue wait)
};

/// Out-of-process region server: owns one LsmStore and serves the binary
/// wire protocol (see wire_protocol.h) over TCP with a thread-per-connection
/// accept loop. Embeddable (bench/bench_wire.cc runs it in-process) and
/// wrapped by the `just_region_server` binary for real deployments and the
/// multi-process tests.
///
/// Connection model: each connection gets a reader thread (frame decode +
/// admission) and a worker thread (execute + respond) joined by a bounded
/// queue, so a client may pipeline requests; responses carry the request's
/// id, so a shed response overtaking a queued request is unambiguous.
/// kPingReq and kStatsReq bypass admission — health checks and overload
/// introspection must keep working precisely when the server sheds.
///
/// Frames that fail CRC or exceed the size cap close the connection (the
/// byte stream cannot be resynchronized); structurally malformed bodies
/// behind a valid CRC get a kInvalidArgument response and the connection
/// survives.
class RegionServer {
 public:
  static Result<std::unique_ptr<RegionServer>> Start(
      const RegionServerOptions& options);

  ~RegionServer();

  RegionServer(const RegionServer&) = delete;
  RegionServer& operator=(const RegionServer&) = delete;

  /// Stops accepting, wakes and joins every connection thread, then closes
  /// the store. Idempotent.
  void Stop();

  int port() const { return listener_.port(); }
  kv::LsmStore* store() const { return store_.get(); }
  /// Slow-RPC log (nullptr unless slow_rpc_threshold_us >= 0); the admin
  /// plane's /tracez reads it.
  obs::SlowQueryLog* slow_log() const { return slow_log_.get(); }
  /// Per-tenant ingest admission (nullptr unless tenant_write_rps > 0).
  stream::QuotaManager* quota() const { return quota_.get(); }

  uint64_t requests_total() const { return requests_total_.load(); }
  uint64_t shed_total() const { return shed_total_.load(); }
  uint64_t corrupt_frames_total() const { return corrupt_frames_total_.load(); }
  int64_t active_connections() const { return active_connections_.load(); }

 private:
  struct Connection;

  explicit RegionServer(const RegionServerOptions& options);

  void AcceptLoop();
  void ReaderLoop(const std::shared_ptr<Connection>& conn);
  void WorkerLoop(const std::shared_ptr<Connection>& conn);
  /// Reaps connections whose threads have finished (called from the accept
  /// loop so long-lived servers do not accumulate dead Connection objects).
  void ReapFinishedLocked();

  /// Executes one admitted request and appends the response frame to `out`.
  /// When the request carried a sampled trace context (req.traced) the
  /// handler runs under a server-side span whose serialized tree rides back
  /// in the response's extension field; the slow-RPC log also forces a span
  /// (but not the response extension) so /tracez has trees to show.
  void Execute(const PendingRequest& req, std::string* out);
  void HandleScan(const ScanRequest& req, ScanResponse* resp);
  StatsResponse BuildStats();

  /// Writes a frame under the connection's write lock; on failure shuts the
  /// socket down so both threads unwind.
  void SendFrame(Connection& conn, const std::string& frame);

  RegionServerOptions options_;
  std::unique_ptr<kv::LsmStore> store_;
  Listener listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;

  // Per-server counters (also mirrored into obs::Registry as
  // just_net_server_*): the wire StatsResponse reports these so a remote
  // client can observe shedding without scraping this process.
  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> shed_total_{0};
  std::atomic<uint64_t> corrupt_frames_total_{0};
  std::atomic<int64_t> active_connections_{0};
  std::atomic<int64_t> inflight_{0};

  obs::Counter* requests_counter_;
  obs::Counter* shed_counter_;
  obs::Counter* corrupt_counter_;
  obs::Counter* connections_counter_;
  obs::Gauge* active_conns_gauge_;
  obs::Gauge* inflight_gauge_;
  obs::Histogram* request_us_;
  /// Per-message-type latency (`just_net_server_rpc_us{type=...}`), indexed
  /// by the raw request type byte. Registered eagerly in the constructor so
  /// /metrics shows every series from the first scrape.
  obs::Histogram* rpc_us_by_type_[16] = {};

  std::unique_ptr<obs::SlowQueryLog> slow_log_;
  std::unique_ptr<stream::QuotaManager> quota_;
};

}  // namespace just::net

#endif  // JUST_NET_REGION_SERVER_H_
