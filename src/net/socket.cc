#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace just::net {

namespace {

Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

Status SetTimeout(int fd, int optname, int timeout_ms) {
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt timeout");
  }
  return Status::OK();
}

Status MakeAddr(const std::string& host, int port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  return Status::OK();
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Status Socket::SetRecvTimeout(int timeout_ms) {
  return SetTimeout(fd_, SO_RCVTIMEO, timeout_ms);
}

Status Socket::SetSendTimeout(int timeout_ms) {
  return SetTimeout(fd_, SO_SNDTIMEO, timeout_ms);
}

Status Socket::SetNoDelay(bool on) {
  int v = on ? 1 : 0;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &v, sizeof(v)) != 0) {
    return Errno("setsockopt TCP_NODELAY");
  }
  return Status::OK();
}

Status Socket::ReadFully(void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    ssize_t r = ::recv(fd_, p, n, 0);
    if (r > 0) {
      p += r;
      n -= static_cast<size_t>(r);
      continue;
    }
    if (r == 0) return Status::Unavailable("connection closed by peer");
    if (errno == EINTR) continue;
    return Errno("recv");
  }
  return Status::OK();
}

Status Socket::WriteFully(const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    ssize_t r = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (r > 0) {
      p += r;
      n -= static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Result<Socket> Connect(const std::string& host, int port) {
  sockaddr_in addr;
  JUST_RETURN_NOT_OK(MakeAddr(host, port, &addr));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("connect to " + host + ":" + std::to_string(port));
  }
  (void)sock.SetNoDelay(true);
  return sock;
}

Result<Listener> Listener::Listen(const std::string& host, int port,
                                  int backlog) {
  sockaddr_in addr;
  JUST_RETURN_NOT_OK(MakeAddr(host, port, &addr));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Listener listener;
  listener.fd_ = fd;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) return Errno("listen");
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return Errno("getsockname");
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<Socket> Listener::Accept() {
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      Socket sock(fd);
      (void)sock.SetNoDelay(true);
      return sock;
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

void Listener::Close() {
  if (fd_ >= 0) {
    // shutdown() wakes a thread blocked in accept() (close() alone does not
    // reliably do so on Linux); then release the fd.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace just::net
