#ifndef JUST_KVSTORE_FAULT_ENV_H_
#define JUST_KVSTORE_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "kvstore/env.h"

namespace just::kv {

/// Env decorator that injects storage faults deterministically — no process
/// kills, no timing dependence, every failure reproducible from a test's own
/// schedule. Three fault families:
///
///  1. Failed operations: `FailWriteOp(n)` makes the Nth mutating filesystem
///     op (append/sync/create/rename/remove/truncate, 1-based, counted by
///     `write_ops()`) return IOError — and, by default, every op after it,
///     modelling a disk that died. `FailNextReads(k)` fails the next k reads.
///  2. Crashes: appended bytes are buffered inside the decorator and only
///     reach the underlying file on Sync (durable) or Close (visible, not
///     durable). `DropUnsyncedWrites()` truncates every tracked file back to
///     its last-synced prefix and deletes never-synced files — exactly what
///     power loss leaves behind — then fails all further writes until
///     `ClearFaults()` so a closing store cannot resurrect lost data.
///  3. Corruption: `FlipByte(path, offset)` inverts one byte in place so
///     checksum verification paths can be exercised byte-by-byte.
///
/// Limitation: unsynced writes live in the decorator's buffer, so a reader
/// opened on a file while a writer still has unsynced data will not see that
/// tail. The LSM storage path never reads its own unsynced writes.
class FaultInjectionEnv : public Env {
 public:
  /// Wraps `base`; nullptr means Env::Default(). Does not own it.
  explicit FaultInjectionEnv(Env* base = nullptr);

  // --- Fault schedule ---

  /// The `n`th mutating op (1-based, absolute — compare against
  /// write_ops()) fails with IOError. `all_after` keeps failing every
  /// subsequent op (dead-disk mode); otherwise the fault is one-shot and
  /// the disk recovers.
  void FailWriteOp(int64_t n, bool all_after = true);
  /// Fails the next `k` read ops (pread / whole-file reads) with IOError.
  void FailNextReads(int64_t k);
  /// Clears every scheduled fault and the post-crash write lockout. File
  /// durability tracking is preserved.
  void ClearFaults();

  int64_t write_ops() const;
  int64_t read_ops() const;

  // --- Crash simulation ---

  /// Simulated power loss: every tracked file is truncated to its
  /// last-synced size (never-synced files are removed), and all further
  /// mutating ops fail until ClearFaults().
  void DropUnsyncedWrites();

  // --- Corruption ---

  /// Inverts (XOR 0xFF) the byte at `offset`; calling twice restores it.
  Status FlipByte(const std::string& path, uint64_t offset);

  // --- Env interface ---

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  Status ReadFileToString(const std::string& path, std::string* out) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status CreateDirs(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;

 private:
  friend class FaultWritableFile;
  friend class FaultRandomAccessFile;

  /// Counts one mutating op and returns the injected fault, if any.
  Status CheckWriteOp();
  /// Counts one read op and returns the injected fault, if any.
  Status CheckReadOp();
  /// Records the durable prefix of `path` after a successful sync.
  void MarkSynced(const std::string& path, uint64_t durable_size);

  Env* base_;
  mutable std::mutex mu_;
  int64_t write_ops_ = 0;
  int64_t read_ops_ = 0;
  int64_t fail_at_write_op_ = -1;  ///< -1: disabled
  bool fail_all_after_ = true;
  bool write_lockout_ = false;  ///< dead disk / post-crash: all writes fail
  int64_t fail_reads_remaining_ = 0;
  /// Durable prefix per tracked file; -1 = created but never synced.
  std::map<std::string, int64_t> durable_size_;
};

}  // namespace just::kv

#endif  // JUST_KVSTORE_FAULT_ENV_H_
