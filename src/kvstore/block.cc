#include "kvstore/block.h"

#include <algorithm>

#include "common/bytes.h"

namespace just::kv {

BlockBuilder::BlockBuilder(int restart_interval)
    : restart_interval_(std::max(1, restart_interval)) {
  restarts_.push_back(0);
}

void BlockBuilder::Add(std::string_view key, std::string_view value) {
  size_t shared = 0;
  if (counter_ < restart_interval_) {
    size_t min_len = std::min(last_key_.size(), key.size());
    while (shared < min_len && last_key_[shared] == key[shared]) ++shared;
  } else {
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    counter_ = 0;
  }
  size_t unshared = key.size() - shared;
  PutVarint64(&buffer_, shared);
  PutVarint64(&buffer_, unshared);
  PutVarint64(&buffer_, value.size());
  buffer_.append(key.data() + shared, unshared);
  buffer_.append(value.data(), value.size());
  last_key_.assign(key.data(), key.size());
  ++counter_;
  ++counter_total_;
}

std::string BlockBuilder::Finish() {
  for (uint32_t r : restarts_) PutFixed32(&buffer_, r);
  PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
  std::string out;
  out.swap(buffer_);
  restarts_.assign(1, 0);
  counter_ = 0;
  counter_total_ = 0;
  last_key_.clear();
  return out;
}

Result<std::shared_ptr<Block>> Block::Parse(std::string data) {
  if (data.size() < 4) return Status::Corruption("block too small");
  auto block = std::shared_ptr<Block>(new Block());
  block->data_ = std::move(data);
  const std::string& d = block->data_;
  block->num_restarts_ = GetFixed32(d.data() + d.size() - 4);
  size_t restart_bytes = 4ull * block->num_restarts_ + 4;
  if (restart_bytes > d.size()) {
    return Status::Corruption("bad restart array");
  }
  block->restarts_offset_ = d.size() - restart_bytes;
  return block;
}

void Block::Iterator::SeekToRestart(size_t index) {
  offset_ = GetFixed32(block_->data_.data() + block_->restarts_offset_ +
                       4 * index);
  key_.clear();
  valid_ = false;
}

bool Block::Iterator::ParseEntry() {
  if (offset_ >= block_->restarts_offset_) {
    valid_ = false;
    return false;
  }
  const char* p = block_->data_.data() + offset_;
  const char* limit = block_->data_.data() + block_->restarts_offset_;
  uint64_t shared, unshared, value_len;
  if (!GetVarint64(&p, limit, &shared) ||
      !GetVarint64(&p, limit, &unshared) ||
      !GetVarint64(&p, limit, &value_len) ||
      static_cast<uint64_t>(limit - p) < unshared + value_len ||
      shared > key_.size()) {
    valid_ = false;
    status_ = Status::Corruption("bad block entry");
    return false;
  }
  key_.resize(shared);
  key_.append(p, unshared);
  value_ = std::string_view(p + unshared, value_len);
  offset_ = static_cast<size_t>(p + unshared + value_len -
                                block_->data_.data());
  valid_ = true;
  return true;
}

void Block::Iterator::SeekToFirst() {
  if (block_->num_restarts_ == 0) {
    valid_ = false;
    return;
  }
  SeekToRestart(0);
  ParseEntry();
}

void Block::Iterator::Seek(std::string_view target) {
  // Binary search over restart points for the last restart whose key is
  // < target, then scan forward.
  if (block_->num_restarts_ == 0) {
    valid_ = false;
    return;
  }
  uint32_t left = 0;
  uint32_t right = block_->num_restarts_ - 1;
  while (left < right) {
    uint32_t mid = (left + right + 1) / 2;
    SeekToRestart(mid);
    if (!ParseEntry()) return;
    if (std::string_view(key_) < target) {
      left = mid;
    } else {
      right = mid - 1;
    }
  }
  SeekToRestart(left);
  while (ParseEntry()) {
    if (std::string_view(key_) >= target) return;
  }
}

void Block::Iterator::Next() { ParseEntry(); }

}  // namespace just::kv
