#ifndef JUST_KVSTORE_BLOCK_H_
#define JUST_KVSTORE_BLOCK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace just::kv {

/// SSTable data-block builder with shared-prefix key compression and
/// restart points (LevelDB block format):
///   entry: [shared len: varint][unshared len: varint][value len: varint]
///          [unshared key bytes][value bytes]
///   trailer: [restart offsets: fixed32 x n][n: fixed32]
class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval = 16);

  /// Keys must be added in strictly increasing order.
  void Add(std::string_view key, std::string_view value);

  /// Returns the serialized block and resets the builder.
  std::string Finish();

  size_t CurrentSizeEstimate() const { return buffer_.size() + 4 * (restarts_.size() + 1); }
  bool empty() const { return counter_total_ == 0; }
  const std::string& last_key() const { return last_key_; }

 private:
  int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_ = 0;
  int counter_total_ = 0;
  std::string last_key_;
};

/// Read-side block with a seekable forward iterator. Owns its bytes.
class Block {
 public:
  static Result<std::shared_ptr<Block>> Parse(std::string data);

  class Iterator {
   public:
    explicit Iterator(const Block* block) : block_(block) {}

    bool Valid() const { return valid_; }
    void SeekToFirst();
    /// Positions at the first entry with key >= target.
    void Seek(std::string_view target);
    void Next();

    const std::string& key() const { return key_; }
    std::string_view value() const { return value_; }

    Status status() const { return status_; }

   private:
    /// Parses the entry at offset_; returns false at end or corruption.
    bool ParseEntry();
    void SeekToRestart(size_t index);

    const Block* block_;
    size_t offset_ = 0;       // offset of the next entry to parse
    std::string key_;
    std::string_view value_;
    bool valid_ = false;
    Status status_;
  };

  size_t size_bytes() const { return data_.size(); }

 private:
  Block() = default;

  std::string data_;
  size_t restarts_offset_ = 0;  // where the restart array begins
  uint32_t num_restarts_ = 0;

  friend class Iterator;
};

}  // namespace just::kv

#endif  // JUST_KVSTORE_BLOCK_H_
