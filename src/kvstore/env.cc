#include "kvstore/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace just::kv {

namespace {

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(std::string_view data) override {
    if (file_ == nullptr) return Status::IOError("file closed: " + path_);
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return ErrnoStatus("write failed on", path_);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (file_ == nullptr) return Status::IOError("file closed: " + path_);
    if (std::fflush(file_) != 0) return ErrnoStatus("flush failed on", path_);
    if (::fsync(::fileno(file_)) != 0) {
      return ErrnoStatus("fsync failed on", path_);
    }
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) return ErrnoStatus("close failed on", path_);
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, uint64_t n, std::string* out) const override {
    out->resize(n);
    ssize_t got = ::pread(fd_, out->data(), n, static_cast<off_t>(offset));
    if (got < 0 || static_cast<uint64_t>(got) != n) {
      return Status::IOError("pread failed on " + path_);
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    std::FILE* f = std::fopen(path.c_str(), truncate ? "wb" : "ab");
    if (f == nullptr) return ErrnoStatus("cannot open", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(f, path));
  }

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("cannot open", path);
    return std::unique_ptr<RandomAccessFile>(
        std::make_unique<PosixRandomAccessFile>(fd, path));
  }

  Status ReadFileToString(const std::string& path, std::string* out) override {
    out->clear();
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return ErrnoStatus("cannot open", path);
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
    bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad) return Status::IOError("read failed on " + path);
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Result<uint64_t> GetFileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return ErrnoStatus("stat failed", path);
    return static_cast<uint64_t>(st.st_size);
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename failed", from + " -> " + to);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink failed", path);
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate failed", path);
    }
    return Status::OK();
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    if (ec) {
      return Status::IOError("cannot create dir " + path + ": " +
                             ec.message());
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
      names.push_back(entry.path().filename().string());
    }
    if (ec) {
      return Status::IOError("cannot list dir " + path + ": " + ec.message());
    }
    return names;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

}  // namespace just::kv
