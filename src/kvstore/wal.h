#ifndef JUST_KVSTORE_WAL_H_
#define JUST_KVSTORE_WAL_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "kvstore/env.h"

namespace just::kv {

/// Record type in the write-ahead log.
enum class WalRecordType : uint8_t { kPut = 1, kDelete = 2 };

/// Append-only write-ahead log. Every mutation is logged before it reaches
/// the memtable so an unflushed memtable can be rebuilt after a crash.
/// Record: [crc32: fixed32][type: 1B][key len: varint][key]
///         [value len: varint][value]
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// `env` nullptr means Env::Default().
  Status Open(const std::string& path, bool truncate, Env* env = nullptr);
  Status Append(WalRecordType type, std::string_view key,
                std::string_view value);
  /// Appends bytes already encoded with EncodeWalRecord — the group-commit
  /// path encodes a whole batch into one buffer and hands it to the file in
  /// a single append, so one leader pays one I/O call for N writers.
  Status AppendEncoded(std::string_view records);
  /// Makes every appended record durable (fsync).
  Status Sync();
  void Close();

  bool is_open() const { return file_ != nullptr; }

 private:
  std::unique_ptr<WritableFile> file_;
};

/// Serializes one WAL record (crc + length-prefixed payload) onto `dst`.
void EncodeWalRecord(std::string* dst, WalRecordType type,
                     std::string_view key, std::string_view value);

/// Replays a WAL file, invoking `fn` per record. Stops cleanly at the first
/// torn/corrupt tail record (crash semantics). `env` nullptr means
/// Env::Default().
Status ReplayWal(const std::string& path,
                 const std::function<void(WalRecordType, std::string_view key,
                                          std::string_view value)>& fn,
                 Env* env = nullptr);

/// CRC-32 (ISO-HDLC polynomial) used by WAL records, SSTable blocks, and
/// SSTable footers.
uint32_t Crc32(std::string_view data);

}  // namespace just::kv

#endif  // JUST_KVSTORE_WAL_H_
