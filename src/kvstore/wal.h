#ifndef JUST_KVSTORE_WAL_H_
#define JUST_KVSTORE_WAL_H_

#include <cstdio>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace just::kv {

/// Record type in the write-ahead log.
enum class WalRecordType : uint8_t { kPut = 1, kDelete = 2 };

/// Append-only write-ahead log. Every mutation is logged before it reaches
/// the memtable so an unflushed memtable can be rebuilt after a crash.
/// Record: [crc32: fixed32][type: 1B][key len: varint][key]
///         [value len: varint][value]
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  Status Open(const std::string& path, bool truncate);
  Status Append(WalRecordType type, std::string_view key,
                std::string_view value);
  Status Sync();
  void Close();

  bool is_open() const { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
};

/// Replays a WAL file, invoking `fn` per record. Stops cleanly at the first
/// torn/corrupt tail record (crash semantics).
Status ReplayWal(const std::string& path,
                 const std::function<void(WalRecordType, std::string_view key,
                                          std::string_view value)>& fn);

/// CRC-32 (ISO-HDLC polynomial) used by WAL and SSTable footers.
uint32_t Crc32(std::string_view data);

}  // namespace just::kv

#endif  // JUST_KVSTORE_WAL_H_
