#include "kvstore/skiplist.h"

namespace just::kv {

struct SkipList::Node {
  std::string key;
  std::string value;
  std::vector<Node*> next;

  Node(std::string k, std::string v, int height)
      : key(std::move(k)), value(std::move(v)), next(height, nullptr) {}
};

SkipList::SkipList()
    : rng_(0xC0FFEE), head_(new Node("", "", kMaxHeight)) {}

SkipList::~SkipList() {
  Node* n = head_;
  while (n != nullptr) {
    Node* next = n->next[0];
    delete n;
    n = next;
  }
}

SkipList::Node* SkipList::NewNode(std::string key, std::string value,
                                  int height) {
  return new Node(std::move(key), std::move(value), height);
}

int SkipList::RandomHeight() {
  int height = 1;
  // P = 1/4 branching as in LevelDB.
  while (height < kMaxHeight && (rng_.Next() & 3) == 0) ++height;
  return height;
}

SkipList::Node* SkipList::FindGreaterOrEqual(const std::string& key,
                                             Node** prev) const {
  Node* x = head_;
  int level = height_ - 1;
  for (;;) {
    Node* next = x->next[level];
    if (next != nullptr && next->key < key) {
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) return next;
      --level;
    }
  }
}

void SkipList::Put(const std::string& key, std::string value) {
  Node* prev[kMaxHeight];
  Node* node = FindGreaterOrEqual(key, prev);
  if (node != nullptr && node->key == key) {
    bytes_ += value.size() - node->value.size();
    node->value = std::move(value);
    return;
  }
  int height = RandomHeight();
  if (height > height_) {
    for (int i = height_; i < height; ++i) prev[i] = head_;
    height_ = height;
  }
  bytes_ += key.size() + value.size() + sizeof(Node);
  ++size_;
  Node* n = NewNode(key, std::move(value), height);
  for (int i = 0; i < height; ++i) {
    n->next[i] = prev[i]->next[i];
    prev[i]->next[i] = n;
  }
}

void SkipList::AppendRange(
    const std::string& start, std::string_view end,
    std::vector<std::pair<std::string, std::string>>* out) const {
  for (Node* n = FindGreaterOrEqual(start, nullptr); n != nullptr;
       n = n->next[0]) {
    if (!end.empty() && std::string_view(n->key) >= end) break;
    out->emplace_back(n->key, n->value);
  }
}

bool SkipList::Get(const std::string& key, std::string* value) const {
  Node* node = FindGreaterOrEqual(key, nullptr);
  if (node != nullptr && node->key == key) {
    *value = node->value;
    return true;
  }
  return false;
}

void SkipList::Iterator::SeekToFirst() { node_ = list_->head_->next[0]; }

void SkipList::Iterator::Seek(const std::string& target) {
  node_ = list_->FindGreaterOrEqual(target, nullptr);
}

void SkipList::Iterator::Next() { node_ = node_->next[0]; }

const std::string& SkipList::Iterator::key() const { return node_->key; }

const std::string& SkipList::Iterator::value() const { return node_->value; }

}  // namespace just::kv
