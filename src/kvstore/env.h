#ifndef JUST_KVSTORE_ENV_H_
#define JUST_KVSTORE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace just::kv {

/// Append-only file handle. `Append` may buffer; `Sync` makes everything
/// appended so far durable (fflush + fsync); `Close` hands the bytes to the
/// OS but does NOT guarantee durability — a crash can still drop data that
/// was closed but never synced.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Positional-read file handle (pread); safe for concurrent readers.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  virtual Status Read(uint64_t offset, uint64_t n, std::string* out) const = 0;
};

/// The storage path's only gateway to the filesystem. Every file operation
/// the WAL, SSTable builder/reader, and LsmStore perform goes through an Env,
/// so a test can substitute a FaultInjectionEnv and exercise crashes,
/// failed writes, and corruption without killing the process (the seam HBase
/// durability tests get from MiniDFSCluster).
class Env {
 public:
  virtual ~Env() = default;

  /// Process-wide POSIX environment; never deleted.
  static Env* Default();

  /// `truncate` selects create/overwrite vs append-to-existing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;
  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;
  /// Missing file is an IOError (callers that tolerate absence check
  /// FileExists first).
  virtual Status ReadFileToString(const std::string& path,
                                  std::string* out) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> GetFileSize(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
  virtual Status CreateDirs(const std::string& path) = 0;
  /// Entry names (not full paths), unordered.
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;
};

}  // namespace just::kv

#endif  // JUST_KVSTORE_ENV_H_
