#include "kvstore/lsm_store.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace just::kv {

namespace {
// Internal values carry a 1-byte type tag so deletes leave tombstones that
// mask older SSTable entries until compaction drops them.
constexpr char kTypePut = 'P';
constexpr char kTypeDelete = 'D';

// A group-commit leader stops absorbing followers once the batch reaches
// this many WAL bytes, so one giant writer cannot add unbounded latency to
// the small writers queued behind it.
constexpr size_t kMaxGroupCommitBytes = 1 << 20;

// A failed background flush is retried this many times (transient fault
// tolerance) before the error latches into bg_error_ and the store goes
// read-only for writes. The WAL segments covering the stuck memtable are
// retained, so nothing acknowledged is lost.
constexpr int kBgFlushAttempts = 3;

std::string MakeInternalValue(char type, std::string_view value) {
  std::string v;
  v.reserve(value.size() + 1);
  v.push_back(type);
  v.append(value.data(), value.size());
  return v;
}

/// Parses "NNNNNN.sst" -> file number; nullopt for any other name.
bool ParseSstName(const std::string& name, uint64_t* num) {
  constexpr std::string_view kSuffix = ".sst";
  if (name.size() <= kSuffix.size() ||
      name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
          0) {
    return false;
  }
  std::string digits = name.substr(0, name.size() - kSuffix.size());
  if (digits.empty()) return false;
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  *num = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

/// Parses "wal-NNNNNN.log" -> segment number ("wal.log" is segment 0 and is
/// matched separately; it predates segmentation).
bool ParseWalSegmentName(const std::string& name, uint64_t* num) {
  constexpr std::string_view kPrefix = "wal-";
  constexpr std::string_view kSuffix = ".log";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return false;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return false;
  }
  std::string digits =
      name.substr(kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
  if (digits.empty()) return false;
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  *num = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

bool EndsWith(const std::string& name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

obs::Counter* WriteStallCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("just_kv_write_stalls_total");
  return c;
}

obs::Histogram* WriteStallHist() {
  static obs::Histogram* h =
      obs::Registry::Global().GetHistogram("just_kv_write_stall_us");
  return h;
}

obs::Histogram* GroupCommitBatchHist() {
  static obs::Histogram* h =
      obs::Registry::Global().GetHistogram("just_kv_group_commit_batch_ops");
  return h;
}

obs::Counter* FlushCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("just_kv_flushes_total");
  return c;
}

obs::Histogram* FlushHist() {
  static obs::Histogram* h =
      obs::Registry::Global().GetHistogram("just_kv_bg_flush_us");
  return h;
}
}  // namespace

/// One queued write. The front of writers_ is the leader: it commits its own
/// ops plus every follower's in a single WAL append (+ at most one fsync),
/// then distributes the shared status and hands leadership to the new front.
struct LsmStore::Writer {
  const WriteOp* ops = nullptr;
  size_t count = 0;
  bool flush_request = false;
  bool done = false;
  Status status;
  std::condition_variable cv;
};

LsmStore::LsmStore(const StoreOptions& options)
    : options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()),
      memtable_(std::make_shared<SkipList>()),
      block_cache_(
          std::make_unique<BlockCache>(options.block_cache_bytes)) {
  // Resolve every registry entry the write path records into up front.
  // Registry snapshots invoke the live sources below while holding the
  // registry mutex, and those sources take mu_ — so mu_ holders must never
  // call back into Registry::Get* (lock-order inversion). After this warm-up
  // the accessors are initialized statics and recording is lock-free.
  WriteStallCounter();
  WriteStallHist();
  GroupCommitBatchHist();
  FlushCounter();
  FlushHist();
  using SK = obs::Registry::SourceKind;
  metric_sources_.emplace_back("just_kv_block_cache_hits_total",
                               SK::kCumulative,
                               [this] { return block_cache_->hits(); });
  metric_sources_.emplace_back("just_kv_block_cache_misses_total",
                               SK::kCumulative,
                               [this] { return block_cache_->misses(); });
  metric_sources_.emplace_back("just_kv_disk_bytes", SK::kLive, [this] {
    std::shared_lock lock(mu_);
    uint64_t total = 0;
    for (const auto& table : sstables_) total += table->file_size();
    return total;
  });
  metric_sources_.emplace_back("just_kv_memtable_bytes", SK::kLive, [this] {
    std::shared_lock lock(mu_);
    uint64_t total = memtable_->ApproximateBytes();
    if (imm_ != nullptr) total += imm_->ApproximateBytes();
    return total;
  });
  metric_sources_.emplace_back("just_kv_sstables", SK::kLive, [this] {
    std::shared_lock lock(mu_);
    return static_cast<uint64_t>(sstables_.size());
  });
  metric_sources_.emplace_back("just_kv_flush_queue_depth", SK::kLive,
                               [this] {
                                 std::shared_lock lock(mu_);
                                 return static_cast<uint64_t>(
                                     imm_ != nullptr ? 1 : 0);
                               });
}

LsmStore::~LsmStore() {
  {
    std::unique_lock lock(mu_);
    stop_bg_ = true;
    bg_cv_.notify_all();
  }
  if (bg_thread_.joinable()) bg_thread_.join();
  // Durability of the memtable is the WAL's job; just close cleanly. The
  // background thread is gone and the API contract forbids concurrent calls
  // with destruction, so wal_ is safe to touch here.
  std::unique_lock lock(mu_);
  wal_.Sync();
  wal_.Close();
}

std::string LsmStore::SstPath(uint64_t file_number) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/%06llu.sst",
                static_cast<unsigned long long>(file_number));
  return options_.dir + buf;
}

std::string LsmStore::WalSegmentPath(uint64_t segment) const {
  if (segment == 0) return options_.dir + "/wal.log";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/wal-%06llu.log",
                static_cast<unsigned long long>(segment));
  return options_.dir + buf;
}

Result<std::unique_ptr<LsmStore>> LsmStore::Open(const StoreOptions& options) {
  auto store = std::unique_ptr<LsmStore>(new LsmStore(options));
  JUST_RETURN_NOT_OK(store->env_->CreateDirs(options.dir));
  JUST_RETURN_NOT_OK(store->Recover());
  store->bg_thread_ = std::thread(&LsmStore::BackgroundLoop, store.get());
  return store;
}

Status LsmStore::Recover() {
  std::unique_lock lock(mu_);
  // 1) Manifest -> live SSTables + minimum live WAL segment. The "wal N"
  // line makes stale segments harmless: even if deleting a flushed segment
  // failed (crash, transient fault), replay skips everything below N, so an
  // old record can never resurrect over newer flushed data.
  std::set<uint64_t> live;
  std::string manifest_path = options_.dir + "/MANIFEST";
  if (env_->FileExists(manifest_path)) {
    std::string manifest;
    JUST_RETURN_NOT_OK(env_->ReadFileToString(manifest_path, &manifest));
    const char* p = manifest.c_str();
    while (*p != '\0') {
      if (std::strncmp(p, "wal ", 4) == 0) {
        char* end = nullptr;
        min_wal_number_ = std::strtoull(p + 4, &end, 10);
        p = end != nullptr ? end : p + 4;
        while (*p == '\n' || *p == '\r') ++p;
        continue;
      }
      char* end = nullptr;
      uint64_t num = std::strtoull(p, &end, 10);
      if (end == p) break;
      p = end;
      while (*p == '\n' || *p == '\r') ++p;
      if (num == 0) continue;
      JUST_ASSIGN_OR_RETURN(
          auto reader,
          SsTableReader::Open(SstPath(num), num, block_cache_.get(), env_,
                              &io_stats_));
      sstables_.push_back(reader);
      live.insert(num);
      next_file_number_ = std::max(next_file_number_, num + 1);
    }
  }
  // 2) Quarantine partial flush/compaction leftovers so they can never be
  // mistaken for live data (and never collide with reused file numbers).
  JUST_RETURN_NOT_OK(QuarantineStrays(live));
  // 3) WAL segments -> memtable, in segment order (newer segments overwrite
  // older ones). Segments below the manifest's minimum are dead: delete
  // them (best-effort) instead of replaying.
  std::set<uint64_t> found;
  JUST_ASSIGN_OR_RETURN(auto names, env_->ListDir(options_.dir));
  for (const std::string& name : names) {
    uint64_t seg = 0;
    if (name == "wal.log") {
      found.insert(0);
    } else if (ParseWalSegmentName(name, &seg)) {
      found.insert(seg);
    }
  }
  uint64_t max_seg = 0;
  for (uint64_t seg : found) {
    max_seg = std::max(max_seg, seg);
    if (seg < min_wal_number_) {
      (void)env_->RemoveFile(WalSegmentPath(seg));
      continue;
    }
    JUST_RETURN_NOT_OK(ReplayWal(
        WalSegmentPath(seg),
        [this](WalRecordType type, std::string_view key,
               std::string_view value) {
          memtable_->Put(std::string(key),
                         MakeInternalValue(type == WalRecordType::kPut
                                               ? kTypePut
                                               : kTypeDelete,
                                           value));
        },
        env_));
    wal_segments_.insert(seg);
  }
  if (memtable_->size() == 0) {
    // Nothing replayable: the old segments are dead weight, drop them.
    for (uint64_t seg : wal_segments_) {
      (void)env_->RemoveFile(WalSegmentPath(seg));
    }
    wal_segments_.clear();
  }
  // 4) Open a fresh active segment; recovered records stay covered by the
  // segments they were replayed from until the next flush commits.
  wal_number_ = std::max<uint64_t>(max_seg + 1, 1);
  wal_segments_.insert(wal_number_);
  return wal_.Open(WalSegmentPath(wal_number_), /*truncate=*/true, env_);
}

Status LsmStore::QuarantineStrays(const std::set<uint64_t>& live) {
  JUST_ASSIGN_OR_RETURN(auto names, env_->ListDir(options_.dir));
  for (const std::string& name : names) {
    std::string path = options_.dir + "/" + name;
    if (EndsWith(name, ".tmp")) {
      // A build that never completed: nothing referenced it, drop it.
      JUST_RETURN_NOT_OK(env_->RemoveFile(path));
      continue;
    }
    uint64_t num = 0;
    if (ParseSstName(name, &num) && live.count(num) == 0) {
      // Fully written but never committed to the manifest (crash between
      // rename and manifest sync), or an input of a committed compaction
      // whose deletion did not finish. Keep the bytes for forensics, but
      // move them out of the namespace.
      JUST_RETURN_NOT_OK(env_->RenameFile(path, path + ".quarantine"));
      next_file_number_ = std::max(next_file_number_, num + 1);
      ++quarantined_files_;
    }
  }
  return Status::OK();
}

Status LsmStore::Put(std::string_view key, std::string_view value) {
  WriteOp op{std::string(key), std::string(value), /*is_delete=*/false};
  return QueueWrite(&op, 1, /*flush_request=*/false);
}

Status LsmStore::Delete(std::string_view key) {
  WriteOp op{std::string(key), std::string(), /*is_delete=*/true};
  return QueueWrite(&op, 1, /*flush_request=*/false);
}

Status LsmStore::WriteBatch(const std::vector<WriteOp>& ops) {
  if (ops.empty()) return Status::OK();
  return QueueWrite(ops.data(), ops.size(), /*flush_request=*/false);
}

Status LsmStore::QueueWrite(const WriteOp* ops, size_t count,
                            bool flush_request) {
  Writer w;
  w.ops = ops;
  w.count = count;
  w.flush_request = flush_request;

  std::unique_lock<std::mutex> ql(writers_mu_);
  writers_.push_back(&w);
  while (!w.done && &w != writers_.front()) w.cv.wait(ql);
  if (w.done) return w.status;  // a previous leader committed us

  // We are the leader: absorb the queue (bounded by kMaxGroupCommitBytes so
  // a huge batch does not stretch everyone's latency) and commit it.
  std::vector<Writer*> batch;
  size_t total_ops = 0;
  size_t total_bytes = 0;
  for (Writer* cand : writers_) {
    if (!batch.empty() && total_bytes >= kMaxGroupCommitBytes) break;
    batch.push_back(cand);
    total_ops += cand->count;
    for (size_t i = 0; i < cand->count; ++i) {
      total_bytes += cand->ops[i].key.size() + cand->ops[i].value.size();
    }
  }
  ql.unlock();

  Status st = CommitBatch(batch, total_ops);

  ql.lock();
  for (Writer* member : batch) {
    writers_.pop_front();
    if (member != &w) {
      member->status = st;
      member->done = true;
      member->cv.notify_one();
    }
  }
  if (!writers_.empty()) writers_.front()->cv.notify_one();
  return st;
}

Status LsmStore::CommitBatch(const std::vector<Writer*>& batch,
                             size_t total_ops) {
  // Encode the whole batch into one buffer outside any lock.
  std::string encoded;
  bool want_flush = false;
  for (const Writer* w : batch) {
    want_flush |= w->flush_request;
    for (size_t i = 0; i < w->count; ++i) {
      const WriteOp& op = w->ops[i];
      EncodeWalRecord(&encoded,
                      op.is_delete ? WalRecordType::kDelete
                                   : WalRecordType::kPut,
                      op.key, op.value);
    }
  }
  {
    std::shared_lock lock(mu_);
    if (!bg_error_.ok()) return bg_error_;
  }
  // WAL I/O happens without mu_: queue leadership serializes access to wal_,
  // and readers never touch it. One append + at most one fsync per batch is
  // the whole point of group commit.
  if (!encoded.empty()) {
    if (!wal_.is_open()) {
      // A failed segment rotation left the WAL closed; resume the segment.
      JUST_RETURN_NOT_OK(
          wal_.Open(WalSegmentPath(wal_number_), /*truncate=*/false, env_));
    }
    JUST_RETURN_NOT_OK(wal_.AppendEncoded(encoded));
    if (options_.sync_wal) JUST_RETURN_NOT_OK(wal_.Sync());
    GroupCommitBatchHist()->Record(total_ops);
  }

  std::unique_lock lock(mu_);
  if (!bg_error_.ok()) return bg_error_;
  for (const Writer* w : batch) {
    for (size_t i = 0; i < w->count; ++i) {
      const WriteOp& op = w->ops[i];
      memtable_->Put(op.key,
                     MakeInternalValue(op.is_delete ? kTypeDelete : kTypePut,
                                       op.value));
    }
  }
  bool full = memtable_->ApproximateBytes() >= options_.memtable_bytes;
  if ((full || want_flush) && memtable_->size() > 0) {
    JUST_RETURN_NOT_OK(SwapMemtableLocked(lock));
  }
  return Status::OK();
}

Status LsmStore::SwapMemtableLocked(std::unique_lock<std::shared_mutex>& lock) {
  if (imm_ != nullptr) {
    // The previous memtable is still flushing: this is the only place a
    // writer waits on flush I/O (LevelDB's write stall).
    WriteStallCounter()->Increment();
    auto t0 = std::chrono::steady_clock::now();
    flush_done_cv_.wait(
        lock, [this] { return imm_ == nullptr || !bg_error_.ok(); });
    WriteStallHist()->Record(ElapsedUs(t0));
    if (!bg_error_.ok()) return bg_error_;
  }
  imm_ = std::move(memtable_);
  memtable_ = std::make_shared<SkipList>();
  imm_wal_cutoff_ = wal_number_;
  imm_seq_ = ++swap_seq_;
  // Rotate to a fresh segment so the flusher can delete the covered ones
  // without truncating records that arrived after the swap.
  ++wal_number_;
  wal_segments_.insert(wal_number_);
  Status st = wal_.Open(WalSegmentPath(wal_number_), /*truncate=*/true, env_);
  bg_cv_.notify_all();
  // On rotation failure the swap still happened (the flush must proceed);
  // the next leader retries opening the segment before appending.
  return st;
}

void LsmStore::BackgroundLoop() {
  std::unique_lock lock(mu_);
  for (;;) {
    bg_cv_.wait(lock, [this] {
      return stop_bg_ || (imm_ != nullptr && bg_error_.ok()) ||
             compact_pending_;
    });
    if (imm_ != nullptr && bg_error_.ok()) {
      BackgroundFlush(lock);
      continue;
    }
    if (compact_pending_) {
      compact_pending_ = false;
      if (!stop_bg_ && bg_error_.ok()) (void)CompactLocked(lock);
      continue;
    }
    if (stop_bg_) return;
  }
}

void LsmStore::BackgroundFlush(std::unique_lock<std::shared_mutex>& lock) {
  std::shared_ptr<SkipList> mem = imm_;
  const uint64_t cutoff = imm_wal_cutoff_;
  const uint64_t seq = imm_seq_;
  const auto t0 = std::chrono::steady_clock::now();
  Status st;
  for (int attempt = 0; attempt < kBgFlushAttempts; ++attempt) {
    uint64_t file_number = next_file_number_++;
    std::shared_ptr<SsTableReader> reader;
    lock.unlock();
    st = BuildSsTable(*mem, file_number, &reader);
    lock.lock();
    if (!st.ok()) continue;  // transient build failure: retry with new number
    sstables_.push_back(reader);
    uint64_t prev_min = min_wal_number_;
    min_wal_number_ = cutoff + 1;
    st = WriteManifestLocked();
    if (!st.ok()) {
      // Not committed: the renamed .sst is a stray (quarantined at the next
      // open); the memtable and WAL still hold everything. Retry fresh.
      sstables_.pop_back();
      min_wal_number_ = prev_min;
      continue;
    }
    // Durable. Release the memtable, retire the covered WAL segments, and
    // wake stalled writers / Flush() waiters.
    imm_ = nullptr;
    flushed_seq_ = std::max(flushed_seq_, seq);
    RemoveWalSegmentsLocked(cutoff);
    if (static_cast<int>(sstables_.size()) >= options_.compaction_trigger) {
      compact_pending_ = true;
      bg_cv_.notify_all();
    }
    FlushCounter()->Increment();
    FlushHist()->Record(ElapsedUs(t0));
    flush_done_cv_.notify_all();
    return;
  }
  // Permanent failure: latch it. imm_ stays readable (Get/Scan include it)
  // and its WAL segments stay on disk, so acknowledged data survives a
  // restart; new writes fail fast with this status.
  bg_error_ = st.ok() ? Status::IOError("background flush failed") : st;
  flush_done_cv_.notify_all();
}

Status LsmStore::BuildSsTable(const SkipList& mem, uint64_t file_number,
                              std::shared_ptr<SsTableReader>* out) {
  std::string final_path = SstPath(file_number);
  std::string tmp_path = final_path + ".tmp";
  SsTableBuilder::Options bopts;
  bopts.block_size = options_.block_size;
  bopts.bloom_bits_per_key = options_.bloom_bits_per_key;
  SsTableBuilder builder(bopts);
  JUST_RETURN_NOT_OK(builder.Open(tmp_path, env_, &io_stats_));
  SkipList::Iterator it(&mem);
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    JUST_RETURN_NOT_OK(builder.Add(it.key(), it.value()));
  }
  // Finish syncs the temp file; the rename publishes it atomically. On any
  // failure before the manifest commits, the memtable and WAL still hold
  // every record, so nothing acknowledged can be lost.
  JUST_RETURN_NOT_OK(builder.Finish());
  JUST_RETURN_NOT_OK(env_->RenameFile(tmp_path, final_path));
  JUST_ASSIGN_OR_RETURN(
      auto reader,
      SsTableReader::Open(final_path, file_number, block_cache_.get(), env_,
                          &io_stats_));
  *out = std::move(reader);
  return Status::OK();
}

void LsmStore::RemoveWalSegmentsLocked(uint64_t cutoff) {
  // Best-effort: the manifest's "wal" line already fences these segments
  // out of replay, so a failed deletion cannot resurrect stale data.
  for (auto it = wal_segments_.begin();
       it != wal_segments_.end() && *it <= cutoff;) {
    (void)env_->RemoveFile(WalSegmentPath(*it));
    it = wal_segments_.erase(it);
  }
}

Status LsmStore::Get(std::string_view key, std::string* value) const {
  std::string internal;
  std::vector<std::shared_ptr<SsTableReader>> tables;
  {
    std::shared_lock lock(mu_);
    // Newest first: active memtable, then the one being flushed.
    if (memtable_->Get(std::string(key), &internal) ||
        (imm_ != nullptr && imm_->Get(std::string(key), &internal))) {
      if (internal.empty() || internal[0] == kTypeDelete) {
        return Status::NotFound("deleted");
      }
      value->assign(internal.data() + 1, internal.size() - 1);
      return Status::OK();
    }
    tables = sstables_;  // pin: safe to search after dropping the lock
  }
  // Newest SSTable first.
  for (auto it = tables.rbegin(); it != tables.rend(); ++it) {
    Status st = (*it)->Get(key, &internal);
    if (st.ok()) {
      if (internal.empty() || internal[0] == kTypeDelete) {
        return Status::NotFound("deleted");
      }
      value->assign(internal.data() + 1, internal.size() - 1);
      return Status::OK();
    }
    if (!st.IsNotFound()) return st;
  }
  return Status::NotFound("no such key");
}

Status LsmStore::Scan(
    std::string_view start, std::string_view end,
    const std::function<bool(std::string_view, std::string_view)>& fn) const {
  // Snapshot the sources under the lock, then merge without it: the active
  // memtable is mutable (SkipList::Put overwrites values in place), so its
  // window is *copied*; the immutable memtable and the SSTables are frozen,
  // so shared_ptr pins suffice. After this block the scan never touches
  // store state — writers proceed and the callback may re-enter the store.
  std::vector<std::pair<std::string, std::string>> active;
  std::shared_ptr<SkipList> imm;
  std::vector<std::shared_ptr<SsTableReader>> tables;
  {
    std::shared_lock lock(mu_);
    memtable_->AppendRange(std::string(start), end, &active);
    imm = imm_;
    tables = sstables_;
  }

  // Sources, newest first: active window, frozen memtable, then SSTables
  // newest->oldest.
  struct Source {
    const std::vector<std::pair<std::string, std::string>>* vec = nullptr;
    size_t vec_pos = 0;
    std::unique_ptr<SkipList::Iterator> mem;
    std::unique_ptr<SsTableReader::Iterator> sst;

    bool Valid() const {
      if (vec != nullptr) return vec_pos < vec->size();
      return mem != nullptr ? mem->Valid() : sst->Valid();
    }
    Status status() const {
      return sst != nullptr ? sst->status() : Status::OK();
    }
    std::string_view key() const {
      if (vec != nullptr) return (*vec)[vec_pos].first;
      return mem != nullptr ? std::string_view(mem->key())
                            : std::string_view(sst->key());
    }
    std::string_view value() const {
      if (vec != nullptr) return (*vec)[vec_pos].second;
      return mem != nullptr ? std::string_view(mem->value()) : sst->value();
    }
    void Next() {
      if (vec != nullptr) {
        ++vec_pos;
      } else if (mem != nullptr) {
        mem->Next();
      } else {
        sst->Next();
      }
    }
  };

  std::vector<Source> sources;
  {
    Source s;
    s.vec = &active;
    sources.push_back(std::move(s));
  }
  if (imm != nullptr) {
    Source s;
    s.mem = std::make_unique<SkipList::Iterator>(imm.get());
    s.mem->Seek(std::string(start));
    sources.push_back(std::move(s));
  }
  for (auto it = tables.rbegin(); it != tables.rend(); ++it) {
    // Prune tables whose key range cannot intersect [start, end).
    if (!end.empty() && std::string_view((*it)->smallest_key()) >= end) {
      continue;
    }
    if (std::string_view((*it)->largest_key()) < start &&
        !(*it)->largest_key().empty()) {
      continue;
    }
    Source s;
    s.sst = std::make_unique<SsTableReader::Iterator>(it->get());
    s.sst->Seek(start);
    sources.push_back(std::move(s));
  }

  std::string last_emitted;
  bool have_last = false;
  for (;;) {
    // Pick the smallest current key; ties resolved by source order (newest
    // source wins), so stale versions are skipped below. A source that went
    // invalid on a corrupt block fails the scan instead of silently
    // shortening it.
    int best = -1;
    for (size_t i = 0; i < sources.size(); ++i) {
      if (!sources[i].Valid()) {
        JUST_RETURN_NOT_OK(sources[i].status());
        continue;
      }
      std::string_view k = sources[i].key();
      if (!end.empty() && k >= end) continue;
      if (best < 0 || k < sources[best].key()) best = static_cast<int>(i);
    }
    if (best < 0) break;
    // Materialize the key: advancing the winning source below would
    // invalidate a view into its current entry.
    std::string key(sources[best].key());
    std::string_view internal = sources[best].value();
    bool duplicate = have_last && key == last_emitted;
    if (!duplicate) {
      last_emitted = key;
      have_last = true;
      if (!internal.empty() && internal[0] == kTypePut) {
        if (!fn(key, internal.substr(1))) return Status::OK();
      }
      // Tombstones are skipped silently.
    }
    // Advance every source positioned at this key.
    for (auto& s : sources) {
      while (s.Valid() && s.key() == std::string_view(key)) s.Next();
    }
  }
  return Status::OK();
}

Status LsmStore::CompactLocked(std::unique_lock<std::shared_mutex>& lock) {
  if (compaction_running_ || sstables_.size() <= 1) return Status::OK();
  compaction_running_ = true;
  // Snapshot the inputs; flushes only *append* to sstables_ and no second
  // compaction can start, so the inputs stay a stable prefix of the list
  // while the merge runs without the lock.
  std::vector<std::shared_ptr<SsTableReader>> inputs = sstables_;
  uint64_t out_number = next_file_number_++;
  lock.unlock();

  std::string final_path = SstPath(out_number);
  std::string tmp_path = final_path + ".tmp";
  SsTableBuilder::Options bopts;
  bopts.block_size = options_.block_size;
  bopts.bloom_bits_per_key = options_.bloom_bits_per_key;
  SsTableBuilder merged(bopts);
  Status st = merged.Open(tmp_path, env_, &io_stats_);
  std::shared_ptr<SsTableReader> merged_reader;
  if (st.ok()) {
    std::vector<std::unique_ptr<SsTableReader::Iterator>> iters;
    for (auto input = inputs.rbegin(); input != inputs.rend(); ++input) {
      auto iter = std::make_unique<SsTableReader::Iterator>(input->get());
      iter->SeekToFirst();
      iters.push_back(std::move(iter));  // newest first
    }
    std::string last_key;
    bool have_last = false;
    for (;;) {
      int best = -1;
      for (size_t i = 0; i < iters.size(); ++i) {
        if (!iters[i]->Valid()) continue;
        if (best < 0 || iters[i]->key() < iters[best]->key()) {
          best = static_cast<int>(i);
        }
      }
      if (best < 0) break;
      std::string key = iters[best]->key();
      std::string_view value = iters[best]->value();
      if (!have_last || key != last_key) {
        // Full compaction: tombstones are dropped for good.
        if (!value.empty() && value[0] == kTypePut) {
          st = merged.Add(key, value);
          if (!st.ok()) break;
        }
        last_key = key;
        have_last = true;
      }
      for (auto& iter : iters) {
        while (iter->Valid() && iter->key() == key) iter->Next();
      }
    }
    // An input iterator that stopped on a corrupt block must fail the
    // compaction — otherwise its remaining entries would be silently
    // dropped.
    if (st.ok()) {
      for (const auto& iter : iters) {
        if (!iter->status().ok()) {
          st = iter->status();
          break;
        }
      }
    }
    if (st.ok()) st = merged.Finish();
    if (st.ok()) st = env_->RenameFile(tmp_path, final_path);
    if (st.ok()) {
      auto opened = SsTableReader::Open(final_path, out_number,
                                        block_cache_.get(), env_, &io_stats_);
      if (opened.ok()) {
        merged_reader = *std::move(opened);
      } else {
        st = opened.status();
      }
    }
  }

  lock.lock();
  compaction_running_ = false;
  if (!st.ok()) {
    flush_done_cv_.notify_all();
    return st;
  }
  // Install: replace the input prefix with the merged table, keeping any
  // tables flushed while the merge ran (they are newer, so they stay after
  // it in precedence order).
  std::vector<std::shared_ptr<SsTableReader>> rest(
      sstables_.begin() + static_cast<long>(inputs.size()), sstables_.end());
  sstables_.clear();
  sstables_.push_back(merged_reader);
  sstables_.insert(sstables_.end(), rest.begin(), rest.end());
  block_cache_->Clear();
  st = WriteManifestLocked();
  if (!st.ok()) {
    // Not committed: restore the previous table list; the merged file is a
    // stray that the next open quarantines.
    sstables_ = std::move(inputs);
    sstables_.insert(sstables_.end(), rest.begin(), rest.end());
    flush_done_cv_.notify_all();
    return st;
  }
  flush_done_cv_.notify_all();
  // Inputs are dead only once the manifest no longer references them;
  // deletion is best-effort — leftovers are quarantined at the next open.
  // Readers holding snapshot pins keep their open file handles (POSIX
  // unlink semantics), so in-flight scans are unaffected.
  for (const auto& input : inputs) {
    (void)env_->RemoveFile(input->path());
  }
  return Status::OK();
}

Status LsmStore::WriteManifestLocked() {
  std::string tmp_path = options_.dir + "/MANIFEST.tmp";
  JUST_ASSIGN_OR_RETURN(auto file,
                        env_->NewWritableFile(tmp_path, /*truncate=*/true));
  // First line: minimum live WAL segment. Replay ignores older segments, so
  // a flushed segment whose deletion failed stays harmless forever.
  JUST_RETURN_NOT_OK(
      file->Append("wal " + std::to_string(min_wal_number_) + "\n"));
  for (const auto& table : sstables_) {
    // Manifest lists file numbers in flush order.
    std::string path = table->path();
    size_t slash = path.find_last_of('/');
    std::string name = path.substr(slash + 1);
    uint64_t num = std::strtoull(name.c_str(), nullptr, 10);
    JUST_RETURN_NOT_OK(file->Append(std::to_string(num) + "\n"));
  }
  // Sync before rename: the manifest is the commit point of every flush and
  // compaction, so it must be durable before it becomes visible.
  JUST_RETURN_NOT_OK(file->Sync());
  JUST_RETURN_NOT_OK(file->Close());
  return env_->RenameFile(tmp_path, options_.dir + "/MANIFEST");
}

Status LsmStore::Flush() {
  // Route the request through the write queue so it serializes with
  // in-flight commits, then wait until the background thread has made the
  // resulting swap durable.
  JUST_RETURN_NOT_OK(QueueWrite(nullptr, 0, /*flush_request=*/true));
  std::unique_lock lock(mu_);
  const uint64_t target = swap_seq_;
  flush_done_cv_.wait(
      lock, [&] { return flushed_seq_ >= target || !bg_error_.ok(); });
  return flushed_seq_ >= target ? Status::OK() : bg_error_;
}

Status LsmStore::CompactAll() {
  JUST_RETURN_NOT_OK(Flush());
  std::unique_lock lock(mu_);
  // If the background thread is mid-compaction, wait for it, then run (or
  // confirm there is nothing left to merge).
  flush_done_cv_.wait(lock, [this] { return !compaction_running_; });
  return CompactLocked(lock);
}

LsmStore::Stats LsmStore::GetStats() const {
  std::shared_lock lock(mu_);
  Stats stats;
  stats.num_sstables = sstables_.size();
  stats.memtable_entries = memtable_->size();
  stats.memtable_bytes = memtable_->ApproximateBytes();
  if (imm_ != nullptr) {
    stats.memtable_entries += imm_->size();
    stats.memtable_bytes += imm_->ApproximateBytes();
  }
  stats.quarantined_files = quarantined_files_;
  for (const auto& table : sstables_) {
    stats.disk_bytes += table->file_size();
    stats.sstable_entries += table->num_entries();
    if (table->bloom_corrupt()) ++stats.corrupt_bloom_tables;
  }
  // Thin view over the registry-backed per-store counters.
  stats.bloom_fallbacks = io_stats_.bloom_fallbacks.Value();
  stats.bloom_prunes = io_stats_.bloom_prunes.Value();
  stats.bytes_read = io_stats_.bytes_read.Value();
  stats.bytes_written = io_stats_.bytes_written.Value();
  stats.read_ops = io_stats_.read_ops.Value();
  stats.block_cache_hits = block_cache_->hits();
  stats.block_cache_misses = block_cache_->misses();
  return stats;
}

}  // namespace just::kv
