#include "kvstore/lsm_store.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <queue>

namespace just::kv {

namespace {
// Internal values carry a 1-byte type tag so deletes leave tombstones that
// mask older SSTable entries until compaction drops them.
constexpr char kTypePut = 'P';
constexpr char kTypeDelete = 'D';

// A group-commit leader stops absorbing followers once the batch reaches
// this many WAL bytes, so one giant writer cannot add unbounded latency to
// the small writers queued behind it.
constexpr size_t kMaxGroupCommitBytes = 1 << 20;

// A failed background flush is retried this many times (transient fault
// tolerance) before the error latches into bg_error_ and the store goes
// read-only for writes. The WAL segments covering the stuck memtable are
// retained, so nothing acknowledged is lost.
constexpr int kBgFlushAttempts = 3;

// MANIFEST v2 header line. v1 manifests (PR-4 and earlier) have no header:
// they start with "wal N" followed by bare file numbers.
constexpr std::string_view kManifestHeaderV2 = "just-manifest 2";

std::string MakeInternalValue(char type, std::string_view value) {
  std::string v;
  v.reserve(value.size() + 1);
  v.push_back(type);
  v.append(value.data(), value.size());
  return v;
}

// Keys are arbitrary bytes but the MANIFEST is line-oriented text, so file
// key ranges are hex-encoded. The empty key encodes as "-" (an empty hex
// field would make the line ambiguous to split).
std::string HexEncodeKey(std::string_view key) {
  if (key.empty()) return "-";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(key.size() * 2);
  for (unsigned char c : key) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

bool HexDecodeKey(std::string_view hex, std::string* out) {
  out->clear();
  if (hex == "-") return true;
  if (hex.size() % 2 != 0) return false;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  out->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

/// Parses "NNNNNN.sst" -> file number; nullopt for any other name.
bool ParseSstName(const std::string& name, uint64_t* num) {
  constexpr std::string_view kSuffix = ".sst";
  if (name.size() <= kSuffix.size() ||
      name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
          0) {
    return false;
  }
  std::string digits = name.substr(0, name.size() - kSuffix.size());
  if (digits.empty()) return false;
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  *num = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

/// Parses "wal-NNNNNN.log" -> segment number ("wal.log" is segment 0 and is
/// matched separately; it predates segmentation).
bool ParseWalSegmentName(const std::string& name, uint64_t* num) {
  constexpr std::string_view kPrefix = "wal-";
  constexpr std::string_view kSuffix = ".log";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return false;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return false;
  }
  std::string digits =
      name.substr(kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
  if (digits.empty()) return false;
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  *num = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

bool EndsWith(const std::string& name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

bool RangesOverlap(std::string_view a_lo, std::string_view a_hi,
                   std::string_view b_lo, std::string_view b_hi) {
  return !(a_hi < b_lo || b_hi < a_lo);
}

obs::Counter* WriteStallCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("just_kv_write_stalls_total");
  return c;
}

obs::Histogram* WriteStallHist() {
  static obs::Histogram* h =
      obs::Registry::Global().GetHistogram("just_kv_write_stall_us");
  return h;
}

obs::Histogram* GroupCommitBatchHist() {
  static obs::Histogram* h =
      obs::Registry::Global().GetHistogram("just_kv_group_commit_batch_ops");
  return h;
}

obs::Counter* FlushCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("just_kv_flushes_total");
  return c;
}

obs::Histogram* FlushHist() {
  static obs::Histogram* h =
      obs::Registry::Global().GetHistogram("just_kv_bg_flush_us");
  return h;
}

obs::Counter* FlushOutputBytesCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("just_kv_flush_output_bytes_total");
  return c;
}

obs::Counter* CompactionCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("just_kv_compactions_total");
  return c;
}

obs::Counter* CompactionInputBytesCounter() {
  static obs::Counter* c = obs::Registry::Global().GetCounter(
      "just_kv_compaction_input_bytes_total");
  return c;
}

obs::Counter* CompactionOutputBytesCounter() {
  static obs::Counter* c = obs::Registry::Global().GetCounter(
      "just_kv_compaction_output_bytes_total");
  return c;
}

obs::Counter* TrivialMoveCounter() {
  static obs::Counter* c = obs::Registry::Global().GetCounter(
      "just_kv_compaction_trivial_moves_total");
  return c;
}

obs::Histogram* CompactionHist() {
  static obs::Histogram* h =
      obs::Registry::Global().GetHistogram("just_kv_compaction_us");
  return h;
}

/// Registers (once, process-wide) the derived write-amplification gauge:
/// 100 * (flush bytes + compaction output bytes) / flush bytes. 100 means a
/// byte is written exactly once after the WAL; each rewrite adds ~100. The
/// callback reads the warmed static counters directly — a registry snapshot
/// holds the registry mutex while calling it, so it must not call back into
/// Registry::Get*. The source is intentionally never destructed (static
/// destruction order vs the registry is unspecified); `volatile` keeps the
/// never-read pointer stored at -O2 so LeakSanitizer sees it as reachable.
void EnsureWriteAmpSource() {
  static obs::ScopedSource* volatile source = new obs::ScopedSource(
      "just_kv_write_amp_x100", obs::Registry::SourceKind::kLive, [] {
        uint64_t flushed = FlushOutputBytesCounter()->Value();
        uint64_t compacted = CompactionOutputBytesCounter()->Value();
        return flushed == 0 ? uint64_t{0}
                            : (flushed + compacted) * 100 / flushed;
      });
  (void)source;
}

/// Merge-reads one L1+ level: the files are sorted and non-overlapping, so
/// the level reads as a single sorted run through one open SSTable iterator
/// at a time. Seek binary-searches the file list first.
class LevelIterator {
 public:
  explicit LevelIterator(std::vector<std::shared_ptr<SsTableReader>> files)
      : files_(std::move(files)) {}

  void Seek(std::string_view target) {
    idx_ = static_cast<size_t>(
        std::lower_bound(files_.begin(), files_.end(), target,
                         [](const std::shared_ptr<SsTableReader>& t,
                            std::string_view k) {
                           return std::string_view(t->largest_key()) < k;
                         }) -
        files_.begin());
    if (idx_ >= files_.size()) {
      iter_.reset();
      return;
    }
    iter_ = std::make_unique<SsTableReader::Iterator>(files_[idx_].get());
    iter_->Seek(target);
    SkipExhaustedFiles();
  }

  bool Valid() const { return iter_ != nullptr && iter_->Valid(); }
  const std::string& key() const { return iter_->key(); }
  std::string_view value() const { return iter_->value(); }

  void Next() {
    iter_->Next();
    SkipExhaustedFiles();
  }

  Status status() const {
    return iter_ != nullptr ? iter_->status() : Status::OK();
  }

 private:
  void SkipExhaustedFiles() {
    while (iter_ != nullptr && !iter_->Valid() && iter_->status().ok()) {
      if (++idx_ >= files_.size()) {
        iter_.reset();
        return;
      }
      iter_ = std::make_unique<SsTableReader::Iterator>(files_[idx_].get());
      iter_->SeekToFirst();
    }
  }

  std::vector<std::shared_ptr<SsTableReader>> files_;
  size_t idx_ = 0;
  std::unique_ptr<SsTableReader::Iterator> iter_;
};
}  // namespace

/// One queued write. The front of writers_ is the leader: it commits its own
/// ops plus every follower's in a single WAL append (+ at most one fsync),
/// then distributes the shared status and hands leadership to the new front.
struct LsmStore::Writer {
  const WriteOp* ops = nullptr;
  size_t count = 0;
  bool flush_request = false;
  bool done = false;
  Status status;
  std::condition_variable cv;
};

LsmStore::LsmStore(const StoreOptions& options)
    : options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()),
      memtable_(std::make_shared<SkipList>()),
      block_cache_(
          std::make_unique<BlockCache>(options.block_cache_bytes)) {
  options_.num_levels = std::max(2, options_.num_levels);
  options_.level_fanout = std::max(2, options_.level_fanout);
  options_.target_file_size = std::max<size_t>(1, options_.target_file_size);
  levels_.resize(static_cast<size_t>(options_.num_levels));
  compact_cursor_.resize(levels_.size());
  // Resolve every registry entry the write path records into up front.
  // Registry snapshots invoke the live sources below while holding the
  // registry mutex, and those sources take mu_ — so mu_ holders must never
  // call back into Registry::Get* (lock-order inversion). After this warm-up
  // the accessors are initialized statics and recording is lock-free.
  WriteStallCounter();
  WriteStallHist();
  GroupCommitBatchHist();
  FlushCounter();
  FlushHist();
  FlushOutputBytesCounter();
  CompactionCounter();
  CompactionInputBytesCounter();
  CompactionOutputBytesCounter();
  TrivialMoveCounter();
  CompactionHist();
  EnsureWriteAmpSource();
  using SK = obs::Registry::SourceKind;
  metric_sources_.emplace_back("just_kv_block_cache_hits_total",
                               SK::kCumulative,
                               [this] { return block_cache_->hits(); });
  metric_sources_.emplace_back("just_kv_block_cache_misses_total",
                               SK::kCumulative,
                               [this] { return block_cache_->misses(); });
  metric_sources_.emplace_back("just_kv_disk_bytes", SK::kLive, [this] {
    std::shared_lock lock(mu_);
    uint64_t total = 0;
    for (const auto& level : levels_) {
      for (const auto& table : level) total += table->file_size();
    }
    return total;
  });
  metric_sources_.emplace_back("just_kv_memtable_bytes", SK::kLive, [this] {
    std::shared_lock lock(mu_);
    uint64_t total = memtable_->ApproximateBytes();
    if (imm_ != nullptr) total += imm_->ApproximateBytes();
    return total;
  });
  metric_sources_.emplace_back("just_kv_sstables", SK::kLive, [this] {
    std::shared_lock lock(mu_);
    return static_cast<uint64_t>(TotalTablesLocked());
  });
  metric_sources_.emplace_back("just_kv_flush_queue_depth", SK::kLive,
                               [this] {
                                 std::shared_lock lock(mu_);
                                 return static_cast<uint64_t>(
                                     imm_ != nullptr ? 1 : 0);
                               });
}

void LsmStore::RegisterLevelMetricSources() {
  using SK = obs::Registry::SourceKind;
  for (size_t i = 0; i < levels_.size(); ++i) {
    metric_sources_.emplace_back(
        "just_kv_level" + std::to_string(i) + "_files", SK::kLive, [this, i] {
          std::shared_lock lock(mu_);
          return i < levels_.size() ? static_cast<uint64_t>(levels_[i].size())
                                    : uint64_t{0};
        });
    metric_sources_.emplace_back(
        "just_kv_level" + std::to_string(i) + "_bytes", SK::kLive, [this, i] {
          std::shared_lock lock(mu_);
          uint64_t total = 0;
          if (i < levels_.size()) {
            for (const auto& table : levels_[i]) total += table->file_size();
          }
          return total;
        });
  }
}

LsmStore::~LsmStore() {
  {
    std::unique_lock lock(mu_);
    stop_bg_ = true;
    bg_cv_.notify_all();
  }
  if (bg_thread_.joinable()) bg_thread_.join();
  // Durability of the memtable is the WAL's job; just close cleanly. The
  // background thread is gone and the API contract forbids concurrent calls
  // with destruction, so wal_ is safe to touch here.
  std::unique_lock lock(mu_);
  wal_.Sync();
  wal_.Close();
}

std::string LsmStore::SstPath(uint64_t file_number) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/%06llu.sst",
                static_cast<unsigned long long>(file_number));
  return options_.dir + buf;
}

std::string LsmStore::WalSegmentPath(uint64_t segment) const {
  if (segment == 0) return options_.dir + "/wal.log";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/wal-%06llu.log",
                static_cast<unsigned long long>(segment));
  return options_.dir + buf;
}

Result<std::unique_ptr<LsmStore>> LsmStore::Open(const StoreOptions& options) {
  auto store = std::unique_ptr<LsmStore>(new LsmStore(options));
  JUST_RETURN_NOT_OK(store->env_->CreateDirs(options.dir));
  JUST_RETURN_NOT_OK(store->Recover());
  // Recover may have grown levels_ past num_levels (older MANIFEST), so the
  // per-level gauges register only now, with the level count settled.
  store->RegisterLevelMetricSources();
  store->bg_thread_ = std::thread(&LsmStore::BackgroundLoop, store.get());
  return store;
}

Status LsmStore::ParseManifestLocked(const std::string& contents,
                                     std::set<uint64_t>* live) {
  // Split into whitespace-separated tokens per line.
  std::vector<std::vector<std::string>> lines;
  {
    std::vector<std::string> tokens;
    std::string token;
    for (char c : contents) {
      if (c == '\n') {
        if (!token.empty()) tokens.push_back(std::move(token));
        token.clear();
        if (!tokens.empty()) lines.push_back(std::move(tokens));
        tokens.clear();
      } else if (c == ' ' || c == '\r' || c == '\t') {
        if (!token.empty()) tokens.push_back(std::move(token));
        token.clear();
      } else {
        token.push_back(c);
      }
    }
    if (!token.empty()) tokens.push_back(std::move(token));
    if (!tokens.empty()) lines.push_back(std::move(tokens));
  }

  bool v2 = !lines.empty() && lines[0].size() == 2 &&
            lines[0][0] == "just-manifest";
  if (v2 && lines[0][1] != "2") {
    return Status::Corruption("unsupported MANIFEST version: " + lines[0][1]);
  }

  auto open_table = [&](uint64_t num, size_t level)
      -> Result<std::shared_ptr<SsTableReader>> {
    JUST_ASSIGN_OR_RETURN(
        auto reader,
        SsTableReader::Open(SstPath(num), num, block_cache_.get(), env_,
                            &io_stats_));
    if (level >= levels_.size()) {
      levels_.resize(level + 1);
      compact_cursor_.resize(level + 1);
    }
    levels_[level].push_back(reader);
    live->insert(num);
    next_file_number_ = std::max(next_file_number_, num + 1);
    return reader;
  };

  for (size_t i = v2 ? 1 : 0; i < lines.size(); ++i) {
    const auto& line = lines[i];
    if (line[0] == "wal" && line.size() == 2) {
      min_wal_number_ = std::strtoull(line[1].c_str(), nullptr, 10);
      continue;
    }
    if (v2) {
      // "file <level> <number> <smallest-hex> <largest-hex>"
      if (line[0] != "file" || line.size() != 5) {
        return Status::Corruption("malformed MANIFEST line");
      }
      uint64_t level = std::strtoull(line[1].c_str(), nullptr, 10);
      uint64_t num = std::strtoull(line[2].c_str(), nullptr, 10);
      if (num == 0 || level > 1000) {
        return Status::Corruption("malformed MANIFEST file entry");
      }
      std::string smallest;
      std::string largest;
      if (!HexDecodeKey(line[3], &smallest) ||
          !HexDecodeKey(line[4], &largest)) {
        return Status::Corruption("malformed MANIFEST key range");
      }
      JUST_ASSIGN_OR_RETURN(auto reader,
                            open_table(num, static_cast<size_t>(level)));
      // The recorded range is a consistency check on the table contents: a
      // mismatch means the MANIFEST and the .sst diverged (e.g. a partially
      // restored backup) and range pruning would silently skip data.
      if (reader->smallest_key() != smallest ||
          reader->largest_key() != largest) {
        return Status::Corruption("MANIFEST key range mismatch for file " +
                                  std::to_string(num));
      }
    } else {
      // v1: bare file numbers in flush order — the flat table list of the
      // full-compaction era. They all load into L0, whose read path (every
      // table consulted, newest first) matches the old semantics; leveled
      // compaction then migrates them down as it runs.
      uint64_t num = std::strtoull(line[0].c_str(), nullptr, 10);
      if (num == 0) continue;
      JUST_RETURN_NOT_OK(open_table(num, 0).status());
    }
  }

  // Deeper levels must read as sorted non-overlapping runs. The MANIFEST
  // records files in that order, but trust nothing that cheap to verify.
  for (size_t level = 1; level < levels_.size(); ++level) {
    auto& files = levels_[level];
    std::sort(files.begin(), files.end(),
              [](const auto& a, const auto& b) {
                return a->smallest_key() < b->smallest_key();
              });
    for (size_t i = 1; i < files.size(); ++i) {
      if (files[i]->smallest_key() <= files[i - 1]->largest_key()) {
        return Status::Corruption("overlapping tables at level " +
                                  std::to_string(level));
      }
    }
  }
  return Status::OK();
}

Status LsmStore::Recover() {
  std::unique_lock lock(mu_);
  // 1) Manifest -> live SSTables + minimum live WAL segment. The "wal N"
  // line makes stale segments harmless: even if deleting a flushed segment
  // failed (crash, transient fault), replay skips everything below N, so an
  // old record can never resurrect over newer flushed data.
  std::set<uint64_t> live;
  std::string manifest_path = options_.dir + "/MANIFEST";
  if (env_->FileExists(manifest_path)) {
    std::string manifest;
    JUST_RETURN_NOT_OK(env_->ReadFileToString(manifest_path, &manifest));
    JUST_RETURN_NOT_OK(ParseManifestLocked(manifest, &live));
  }
  // 2) Quarantine partial flush/compaction leftovers so they can never be
  // mistaken for live data (and never collide with reused file numbers).
  JUST_RETURN_NOT_OK(QuarantineStrays(live));
  // 3) WAL segments -> memtable, in segment order (newer segments overwrite
  // older ones). Segments below the manifest's minimum are dead: delete
  // them (best-effort) instead of replaying.
  std::set<uint64_t> found;
  JUST_ASSIGN_OR_RETURN(auto names, env_->ListDir(options_.dir));
  for (const std::string& name : names) {
    uint64_t seg = 0;
    if (name == "wal.log") {
      found.insert(0);
    } else if (ParseWalSegmentName(name, &seg)) {
      found.insert(seg);
    }
  }
  uint64_t max_seg = 0;
  for (uint64_t seg : found) {
    max_seg = std::max(max_seg, seg);
    if (seg < min_wal_number_) {
      (void)env_->RemoveFile(WalSegmentPath(seg));
      continue;
    }
    JUST_RETURN_NOT_OK(ReplayWal(
        WalSegmentPath(seg),
        [this](WalRecordType type, std::string_view key,
               std::string_view value) {
          memtable_->Put(std::string(key),
                         MakeInternalValue(type == WalRecordType::kPut
                                               ? kTypePut
                                               : kTypeDelete,
                                           value));
        },
        env_));
    wal_segments_.insert(seg);
  }
  if (memtable_->size() == 0) {
    // Nothing replayable: the old segments are dead weight, drop them.
    for (uint64_t seg : wal_segments_) {
      (void)env_->RemoveFile(WalSegmentPath(seg));
    }
    wal_segments_.clear();
  }
  // 4) Open a fresh active segment; recovered records stay covered by the
  // segments they were replayed from until the next flush commits.
  wal_number_ = std::max<uint64_t>(max_seg + 1, 1);
  wal_segments_.insert(wal_number_);
  return wal_.Open(WalSegmentPath(wal_number_), /*truncate=*/true, env_);
}

Status LsmStore::QuarantineStrays(const std::set<uint64_t>& live) {
  JUST_ASSIGN_OR_RETURN(auto names, env_->ListDir(options_.dir));
  for (const std::string& name : names) {
    std::string path = options_.dir + "/" + name;
    if (EndsWith(name, ".tmp")) {
      // A build that never completed: nothing referenced it, drop it.
      JUST_RETURN_NOT_OK(env_->RemoveFile(path));
      continue;
    }
    uint64_t num = 0;
    if (ParseSstName(name, &num) && live.count(num) == 0) {
      // Fully written but never committed to the manifest (crash between
      // rename and manifest sync), or an input of a committed compaction
      // whose deletion did not finish. Keep the bytes for forensics, but
      // move them out of the namespace.
      JUST_RETURN_NOT_OK(env_->RenameFile(path, path + ".quarantine"));
      next_file_number_ = std::max(next_file_number_, num + 1);
      ++quarantined_files_;
    }
  }
  return Status::OK();
}

Status LsmStore::Put(std::string_view key, std::string_view value) {
  WriteOp op{std::string(key), std::string(value), /*is_delete=*/false};
  return QueueWrite(&op, 1, /*flush_request=*/false);
}

Status LsmStore::Delete(std::string_view key) {
  WriteOp op{std::string(key), std::string(), /*is_delete=*/true};
  return QueueWrite(&op, 1, /*flush_request=*/false);
}

Status LsmStore::WriteBatch(const std::vector<WriteOp>& ops) {
  if (ops.empty()) return Status::OK();
  return QueueWrite(ops.data(), ops.size(), /*flush_request=*/false);
}

Status LsmStore::QueueWrite(const WriteOp* ops, size_t count,
                            bool flush_request) {
  Writer w;
  w.ops = ops;
  w.count = count;
  w.flush_request = flush_request;

  std::unique_lock<std::mutex> ql(writers_mu_);
  writers_.push_back(&w);
  while (!w.done && &w != writers_.front()) w.cv.wait(ql);
  if (w.done) return w.status;  // a previous leader committed us

  // We are the leader: absorb the queue (bounded by kMaxGroupCommitBytes so
  // a huge batch does not stretch everyone's latency) and commit it.
  std::vector<Writer*> batch;
  size_t total_ops = 0;
  size_t total_bytes = 0;
  for (Writer* cand : writers_) {
    if (!batch.empty() && total_bytes >= kMaxGroupCommitBytes) break;
    batch.push_back(cand);
    total_ops += cand->count;
    for (size_t i = 0; i < cand->count; ++i) {
      total_bytes += cand->ops[i].key.size() + cand->ops[i].value.size();
    }
  }
  ql.unlock();

  Status st = CommitBatch(batch, total_ops);

  ql.lock();
  for (Writer* member : batch) {
    writers_.pop_front();
    if (member != &w) {
      member->status = st;
      member->done = true;
      member->cv.notify_one();
    }
  }
  if (!writers_.empty()) writers_.front()->cv.notify_one();
  return st;
}

Status LsmStore::CommitBatch(const std::vector<Writer*>& batch,
                             size_t total_ops) {
  // Encode the whole batch into one buffer outside any lock.
  std::string encoded;
  bool want_flush = false;
  for (const Writer* w : batch) {
    want_flush |= w->flush_request;
    for (size_t i = 0; i < w->count; ++i) {
      const WriteOp& op = w->ops[i];
      EncodeWalRecord(&encoded,
                      op.is_delete ? WalRecordType::kDelete
                                   : WalRecordType::kPut,
                      op.key, op.value);
    }
  }
  {
    std::shared_lock lock(mu_);
    if (!bg_error_.ok()) return bg_error_;
  }
  // WAL I/O happens without mu_: queue leadership serializes access to wal_,
  // and readers never touch it. One append + at most one fsync per batch is
  // the whole point of group commit.
  if (!encoded.empty()) {
    if (!wal_.is_open()) {
      // A failed segment rotation left the WAL closed; resume the segment.
      JUST_RETURN_NOT_OK(
          wal_.Open(WalSegmentPath(wal_number_), /*truncate=*/false, env_));
    }
    JUST_RETURN_NOT_OK(wal_.AppendEncoded(encoded));
    if (options_.sync_wal) JUST_RETURN_NOT_OK(wal_.Sync());
    GroupCommitBatchHist()->Record(total_ops);
  }

  std::unique_lock lock(mu_);
  if (!bg_error_.ok()) return bg_error_;
  for (const Writer* w : batch) {
    for (size_t i = 0; i < w->count; ++i) {
      const WriteOp& op = w->ops[i];
      memtable_->Put(op.key,
                     MakeInternalValue(op.is_delete ? kTypeDelete : kTypePut,
                                       op.value));
    }
  }
  bool full = memtable_->ApproximateBytes() >= options_.memtable_bytes;
  if ((full || want_flush) && memtable_->size() > 0) {
    JUST_RETURN_NOT_OK(SwapMemtableLocked(lock));
  }
  return Status::OK();
}

Status LsmStore::SwapMemtableLocked(std::unique_lock<std::shared_mutex>& lock) {
  if (imm_ != nullptr) {
    // The previous memtable is still flushing: this is the only place a
    // writer waits on flush I/O (LevelDB's write stall).
    WriteStallCounter()->Increment();
    auto t0 = std::chrono::steady_clock::now();
    flush_done_cv_.wait(
        lock, [this] { return imm_ == nullptr || !bg_error_.ok(); });
    WriteStallHist()->Record(ElapsedUs(t0));
    if (!bg_error_.ok()) return bg_error_;
  }
  imm_ = std::move(memtable_);
  memtable_ = std::make_shared<SkipList>();
  imm_wal_cutoff_ = wal_number_;
  imm_seq_ = ++swap_seq_;
  // Rotate to a fresh segment so the flusher can delete the covered ones
  // without truncating records that arrived after the swap.
  ++wal_number_;
  wal_segments_.insert(wal_number_);
  Status st = wal_.Open(WalSegmentPath(wal_number_), /*truncate=*/true, env_);
  bg_cv_.notify_all();
  // On rotation failure the swap still happened (the flush must proceed);
  // the next leader retries opening the segment before appending.
  return st;
}

void LsmStore::BackgroundLoop() {
  std::unique_lock lock(mu_);
  for (;;) {
    bg_cv_.wait(lock, [this] {
      return stop_bg_ || (imm_ != nullptr && bg_error_.ok()) ||
             compact_pending_;
    });
    if (imm_ != nullptr && bg_error_.ok()) {
      BackgroundFlush(lock);
      continue;
    }
    if (compact_pending_) {
      compact_pending_ = false;
      if (!stop_bg_ && bg_error_.ok() && !compaction_running_) {
        if (options_.compaction_style == CompactionStyle::kFull) {
          if (FullCompactionNeededLocked()) {
            (void)CompactEverythingLocked(lock);
          }
        } else {
          int level = PickCompactionLevelLocked();
          if (level >= 0) {
            (void)RunCompactionLocked(lock, PickCompactionLocked(level));
          }
        }
        // A compaction failure stays un-latched (the tree is merely
        // unbalanced, not unsafe); the next flush re-schedules it.
      }
      flush_done_cv_.notify_all();
      continue;
    }
    if (stop_bg_) return;
  }
}

void LsmStore::BackgroundFlush(std::unique_lock<std::shared_mutex>& lock) {
  std::shared_ptr<SkipList> mem = imm_;
  const uint64_t cutoff = imm_wal_cutoff_;
  const uint64_t seq = imm_seq_;
  const auto t0 = std::chrono::steady_clock::now();
  Status st;
  for (int attempt = 0; attempt < kBgFlushAttempts; ++attempt) {
    uint64_t file_number = next_file_number_++;
    std::shared_ptr<SsTableReader> reader;
    lock.unlock();
    st = BuildSsTable(*mem, file_number, &reader);
    lock.lock();
    if (!st.ok()) continue;  // transient build failure: retry with new number
    levels_[0].push_back(reader);
    uint64_t prev_min = min_wal_number_;
    min_wal_number_ = cutoff + 1;
    st = WriteManifestLocked();
    if (!st.ok()) {
      // Not committed: the renamed .sst is a stray (quarantined at the next
      // open); the memtable and WAL still hold everything. Retry fresh.
      levels_[0].pop_back();
      min_wal_number_ = prev_min;
      continue;
    }
    // Durable. Release the memtable, retire the covered WAL segments, and
    // wake stalled writers / Flush() waiters.
    imm_ = nullptr;
    flushed_seq_ = std::max(flushed_seq_, seq);
    RemoveWalSegmentsLocked(cutoff);
    MaybeScheduleCompactionLocked();
    FlushCounter()->Increment();
    FlushOutputBytesCounter()->Add(reader->file_size());
    FlushHist()->Record(ElapsedUs(t0));
    flush_done_cv_.notify_all();
    return;
  }
  // Permanent failure: latch it. imm_ stays readable (Get/Scan include it)
  // and its WAL segments stay on disk, so acknowledged data survives a
  // restart; new writes fail fast with this status.
  bg_error_ = st.ok() ? Status::IOError("background flush failed") : st;
  flush_done_cv_.notify_all();
}

Status LsmStore::BuildSsTable(const SkipList& mem, uint64_t file_number,
                              std::shared_ptr<SsTableReader>* out) {
  std::string final_path = SstPath(file_number);
  std::string tmp_path = final_path + ".tmp";
  SsTableBuilder::Options bopts;
  bopts.block_size = options_.block_size;
  bopts.bloom_bits_per_key = options_.bloom_bits_per_key;
  SsTableBuilder builder(bopts);
  JUST_RETURN_NOT_OK(builder.Open(tmp_path, env_, &io_stats_));
  SkipList::Iterator it(&mem);
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    JUST_RETURN_NOT_OK(builder.Add(it.key(), it.value()));
  }
  // Finish syncs the temp file; the rename publishes it atomically. On any
  // failure before the manifest commits, the memtable and WAL still hold
  // every record, so nothing acknowledged can be lost.
  JUST_RETURN_NOT_OK(builder.Finish());
  JUST_RETURN_NOT_OK(env_->RenameFile(tmp_path, final_path));
  JUST_ASSIGN_OR_RETURN(
      auto reader,
      SsTableReader::Open(final_path, file_number, block_cache_.get(), env_,
                          &io_stats_));
  *out = std::move(reader);
  return Status::OK();
}

void LsmStore::RemoveWalSegmentsLocked(uint64_t cutoff) {
  // Best-effort: the manifest's "wal" line already fences these segments
  // out of replay, so a failed deletion cannot resurrect stale data.
  for (auto it = wal_segments_.begin();
       it != wal_segments_.end() && *it <= cutoff;) {
    (void)env_->RemoveFile(WalSegmentPath(*it));
    it = wal_segments_.erase(it);
  }
}

Status LsmStore::Get(std::string_view key, std::string* value) const {
  std::string internal;
  std::vector<std::vector<std::shared_ptr<SsTableReader>>> levels;
  {
    std::shared_lock lock(mu_);
    // Newest first: active memtable, then the one being flushed.
    if (memtable_->Get(std::string(key), &internal) ||
        (imm_ != nullptr && imm_->Get(std::string(key), &internal))) {
      if (internal.empty() || internal[0] == kTypeDelete) {
        return Status::NotFound("deleted");
      }
      value->assign(internal.data() + 1, internal.size() - 1);
      return Status::OK();
    }
    levels = levels_;  // pin: safe to search after dropping the lock
  }
  auto probe = [&](const SsTableReader& table, Status* st) {
    io_stats_.get_probes.Increment();
    *st = table.Get(key, &internal);
    return !st->IsNotFound();
  };
  // L0 files may overlap, so all of them are candidates, newest first; the
  // smallest/largest range check skips files for free (not counted as a
  // probe — no table state is consulted).
  for (auto it = levels[0].rbegin(); it != levels[0].rend(); ++it) {
    const auto& table = *it;
    if (key < std::string_view(table->smallest_key()) ||
        key > std::string_view(table->largest_key())) {
      continue;
    }
    Status st;
    if (probe(*table, &st)) {
      if (!st.ok()) return st;
      if (internal.empty() || internal[0] == kTypeDelete) {
        return Status::NotFound("deleted");
      }
      value->assign(internal.data() + 1, internal.size() - 1);
      return Status::OK();
    }
  }
  // Deeper levels are non-overlapping sorted runs: binary-search the ONE
  // file whose range can hold the key. This is the bound leveled compaction
  // exists to provide — at most L0-count + one probe per level.
  for (size_t lvl = 1; lvl < levels.size(); ++lvl) {
    const auto& files = levels[lvl];
    auto it = std::lower_bound(files.begin(), files.end(), key,
                               [](const std::shared_ptr<SsTableReader>& t,
                                  std::string_view k) {
                                 return std::string_view(t->largest_key()) < k;
                               });
    if (it == files.end() || key < std::string_view((*it)->smallest_key())) {
      continue;
    }
    Status st;
    if (probe(**it, &st)) {
      if (!st.ok()) return st;
      if (internal.empty() || internal[0] == kTypeDelete) {
        return Status::NotFound("deleted");
      }
      value->assign(internal.data() + 1, internal.size() - 1);
      return Status::OK();
    }
  }
  return Status::NotFound("no such key");
}

Status LsmStore::Scan(
    std::string_view start, std::string_view end,
    const std::function<bool(std::string_view, std::string_view)>& fn) const {
  // Snapshot the sources under the lock, then merge without it: the active
  // memtable is mutable (SkipList::Put overwrites values in place), so its
  // window is *copied*; the immutable memtable and the SSTables are frozen,
  // so shared_ptr pins suffice. After this block the scan never touches
  // store state — writers proceed and the callback may re-enter the store.
  std::vector<std::pair<std::string, std::string>> active;
  std::shared_ptr<SkipList> imm;
  std::vector<std::vector<std::shared_ptr<SsTableReader>>> levels;
  {
    std::shared_lock lock(mu_);
    memtable_->AppendRange(std::string(start), end, &active);
    imm = imm_;
    levels = levels_;
  }

  // Sources in precedence order (lower index = newer): the active window,
  // the frozen memtable, every L0 table newest->oldest, then ONE merged
  // iterator per deeper level — a level is a single sorted run, so it costs
  // one heap slot no matter how many files it holds.
  struct Source {
    const std::vector<std::pair<std::string, std::string>>* vec = nullptr;
    size_t vec_pos = 0;
    std::unique_ptr<SkipList::Iterator> mem;
    std::unique_ptr<SsTableReader::Iterator> sst;
    std::unique_ptr<LevelIterator> lvl;

    bool Valid() const {
      if (vec != nullptr) return vec_pos < vec->size();
      if (mem != nullptr) return mem->Valid();
      if (sst != nullptr) return sst->Valid();
      return lvl->Valid();
    }
    Status status() const {
      if (sst != nullptr) return sst->status();
      if (lvl != nullptr) return lvl->status();
      return Status::OK();
    }
    std::string_view key() const {
      if (vec != nullptr) return (*vec)[vec_pos].first;
      if (mem != nullptr) return mem->key();
      if (sst != nullptr) return sst->key();
      return lvl->key();
    }
    std::string_view value() const {
      if (vec != nullptr) return (*vec)[vec_pos].second;
      if (mem != nullptr) return mem->value();
      if (sst != nullptr) return sst->value();
      return lvl->value();
    }
    void Next() {
      if (vec != nullptr) {
        ++vec_pos;
      } else if (mem != nullptr) {
        mem->Next();
      } else if (sst != nullptr) {
        sst->Next();
      } else {
        lvl->Next();
      }
    }
  };

  auto intersects = [&](const SsTableReader& t) {
    if (!end.empty() && std::string_view(t.smallest_key()) >= end) {
      return false;
    }
    if (std::string_view(t.largest_key()) < start && !t.largest_key().empty()) {
      return false;
    }
    return true;
  };

  std::vector<Source> sources;
  {
    Source s;
    s.vec = &active;
    sources.push_back(std::move(s));
  }
  if (imm != nullptr) {
    Source s;
    s.mem = std::make_unique<SkipList::Iterator>(imm.get());
    s.mem->Seek(std::string(start));
    sources.push_back(std::move(s));
  }
  for (auto it = levels[0].rbegin(); it != levels[0].rend(); ++it) {
    if (!intersects(**it)) continue;  // cannot intersect [start, end)
    Source s;
    s.sst = std::make_unique<SsTableReader::Iterator>(it->get());
    s.sst->Seek(start);
    sources.push_back(std::move(s));
  }
  for (size_t lvl = 1; lvl < levels.size(); ++lvl) {
    std::vector<std::shared_ptr<SsTableReader>> files;
    for (const auto& table : levels[lvl]) {
      if (intersects(*table)) files.push_back(table);
    }
    if (files.empty()) continue;
    Source s;
    s.lvl = std::make_unique<LevelIterator>(std::move(files));
    s.lvl->Seek(start);
    sources.push_back(std::move(s));
  }

  // K-way heap merge: the heap orders source indices by current key, ties
  // broken toward the lower (newer) index so the freshest version of a key
  // pops first and duplicates are skipped via last_emitted. A source that
  // went invalid on a corrupt block fails the scan instead of silently
  // shortening it.
  auto newer_first = [&sources](int a, int b) {
    int c = sources[static_cast<size_t>(a)].key().compare(
        sources[static_cast<size_t>(b)].key());
    if (c != 0) return c > 0;  // min-heap on key
    return a > b;              // equal keys: lower index (newer) on top
  };
  std::priority_queue<int, std::vector<int>, decltype(newer_first)> heap(
      newer_first);
  for (size_t i = 0; i < sources.size(); ++i) {
    if (sources[i].Valid()) {
      heap.push(static_cast<int>(i));
    } else {
      JUST_RETURN_NOT_OK(sources[i].status());
    }
  }

  std::string last_emitted;
  bool have_last = false;
  while (!heap.empty()) {
    int i = heap.top();
    heap.pop();
    Source& s = sources[static_cast<size_t>(i)];
    // Materialize the key: advancing the source below invalidates the view.
    std::string key(s.key());
    if (!end.empty() && std::string_view(key) >= end) {
      continue;  // this source is done; keys only grow
    }
    if (!have_last || key != last_emitted) {
      last_emitted = key;
      have_last = true;
      std::string_view internal = s.value();
      if (!internal.empty() && internal[0] == kTypePut) {
        if (!fn(key, internal.substr(1))) return Status::OK();
      }
      // Tombstones are skipped silently.
    }
    s.Next();
    if (s.Valid()) {
      heap.push(i);
    } else {
      JUST_RETURN_NOT_OK(s.status());
    }
  }
  return Status::OK();
}

uint64_t LsmStore::MaxBytesForLevel(int level) const {
  double budget = static_cast<double>(options_.level_base_bytes);
  for (int i = 1; i < level; ++i) {
    budget *= static_cast<double>(options_.level_fanout);
  }
  return static_cast<uint64_t>(budget);
}

uint64_t LsmStore::LevelBytesLocked(int level) const {
  uint64_t total = 0;
  for (const auto& table : levels_[static_cast<size_t>(level)]) {
    total += table->file_size();
  }
  return total;
}

size_t LsmStore::TotalTablesLocked() const {
  size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

bool LsmStore::FullCompactionNeededLocked() const {
  size_t total = TotalTablesLocked();
  return total > 1 &&
         total >= static_cast<size_t>(std::max(2, options_.compaction_trigger));
}

int LsmStore::PickCompactionLevelLocked() const {
  if (!levels_[0].empty() &&
      static_cast<int>(levels_[0].size()) >=
          std::max(1, options_.compaction_trigger)) {
    return 0;
  }
  // Lowest over-budget level first: upper levels shadow lower ones, so
  // draining them first keeps read amplification bounded. The bottom level
  // has nowhere to push data and never compacts on its own.
  for (int level = 1; level + 1 < static_cast<int>(levels_.size()); ++level) {
    if (LevelBytesLocked(level) > MaxBytesForLevel(level)) return level;
  }
  return -1;
}

bool LsmStore::CompactionNeededLocked() const {
  return options_.compaction_style == CompactionStyle::kFull
             ? FullCompactionNeededLocked()
             : PickCompactionLevelLocked() >= 0;
}

void LsmStore::MaybeScheduleCompactionLocked() {
  if (!compact_pending_ && CompactionNeededLocked()) {
    compact_pending_ = true;
    bg_cv_.notify_all();
  }
}

LsmStore::CompactionJob LsmStore::PickCompactionLocked(int level) {
  CompactionJob job;
  job.upper_level = level;
  job.output_level = level + 1;
  const auto& upper_files = levels_[static_cast<size_t>(level)];
  if (level == 0) {
    // All of L0 (its files overlap arbitrarily), newest first so merge
    // precedence matches read precedence.
    job.upper.assign(upper_files.rbegin(), upper_files.rend());
  } else {
    // Round-robin by key range: first file past the cursor, wrapping to the
    // front — every range eventually compacts, so no key-range hot spot can
    // starve the rest of the level.
    size_t pick = 0;
    for (size_t i = 0; i < upper_files.size(); ++i) {
      if (upper_files[i]->smallest_key() > compact_cursor_[static_cast<size_t>(
              level)]) {
        pick = i;
        break;
      }
    }
    job.upper.push_back(upper_files[pick]);
  }

  std::string lo = job.upper.front()->smallest_key();
  std::string hi = job.upper.front()->largest_key();
  for (const auto& table : job.upper) {
    if (table->smallest_key() < lo) lo = table->smallest_key();
    if (table->largest_key() > hi) hi = table->largest_key();
  }
  // Overlapping files at the output level join the merge. Each one may
  // widen [lo, hi], which can pull in further files — iterate to a fixpoint
  // so the outputs never overlap a survivor at the output level.
  const auto& lower_files = levels_[static_cast<size_t>(job.output_level)];
  std::vector<bool> taken(lower_files.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < lower_files.size(); ++i) {
      if (taken[i]) continue;
      const auto& table = lower_files[i];
      if (!RangesOverlap(table->smallest_key(), table->largest_key(), lo,
                         hi)) {
        continue;
      }
      taken[i] = true;
      job.lower.push_back(table);
      if (table->smallest_key() < lo) lo = table->smallest_key();
      if (table->largest_key() > hi) hi = table->largest_key();
      changed = true;
    }
  }

  // Tombstones can only be dropped when nothing below the output level
  // holds this key range — otherwise an older value would resurrect.
  job.drop_tombstones = true;
  for (size_t lvl = static_cast<size_t>(job.output_level) + 1;
       lvl < levels_.size(); ++lvl) {
    for (const auto& table : levels_[lvl]) {
      if (RangesOverlap(table->smallest_key(), table->largest_key(), lo, hi)) {
        job.drop_tombstones = false;
        break;
      }
    }
    if (!job.drop_tombstones) break;
  }
  return job;
}

Status LsmStore::CompactEverythingLocked(
    std::unique_lock<std::shared_mutex>& lock) {
  if (TotalTablesLocked() <= 1) return Status::OK();
  CompactionJob job;
  job.upper_level = -1;
  job.output_level = static_cast<int>(levels_.size()) - 1;
  job.drop_tombstones = true;  // outputs are the bottom-most data
  // Precedence order: L0 newest->oldest, then each deeper (older) level.
  for (auto it = levels_[0].rbegin(); it != levels_[0].rend(); ++it) {
    job.upper.push_back(*it);
  }
  for (size_t lvl = 1; lvl < levels_.size(); ++lvl) {
    for (const auto& table : levels_[lvl]) job.upper.push_back(table);
  }
  return RunCompactionLocked(lock, job);
}

Status LsmStore::RunCompactionLocked(std::unique_lock<std::shared_mutex>& lock,
                                     CompactionJob job) {
  if (compaction_running_) return Status::OK();  // installer already active
  if (job.upper.empty()) return Status::OK();
  const size_t output_level = static_cast<size_t>(job.output_level);

  // Trivial move: a single non-L0 file with nothing to merge below just
  // changes level in the MANIFEST — no rewrite, no I/O. Skipped when
  // tombstone GC applies: GC requires rewriting the file's contents.
  if (job.upper_level > 0 && job.upper.size() == 1 && job.lower.empty() &&
      !job.drop_tombstones) {
    const auto moved = job.upper.front();
    auto backup = levels_;
    auto& from = levels_[static_cast<size_t>(job.upper_level)];
    from.erase(std::remove(from.begin(), from.end(), moved), from.end());
    auto& to = levels_[output_level];
    to.push_back(moved);
    std::sort(to.begin(), to.end(), [](const auto& a, const auto& b) {
      return a->smallest_key() < b->smallest_key();
    });
    Status st = WriteManifestLocked();
    if (!st.ok()) {
      levels_ = std::move(backup);
      return st;
    }
    compact_cursor_[static_cast<size_t>(job.upper_level)] =
        moved->largest_key();
    TrivialMoveCounter()->Increment();
    MaybeScheduleCompactionLocked();
    flush_done_cv_.notify_all();
    return Status::OK();
  }

  compaction_running_ = true;
  const auto t0 = std::chrono::steady_clock::now();
  uint64_t input_bytes = 0;
  // Inputs, newest first: upper (already precedence-ordered), then the
  // lower-level files (older by the leveling invariant).
  std::vector<std::shared_ptr<SsTableReader>> inputs = job.upper;
  inputs.insert(inputs.end(), job.lower.begin(), job.lower.end());
  for (const auto& table : inputs) input_bytes += table->file_size();
  lock.unlock();

  // ---- Merge phase (no lock): k-way merge the inputs into outputs that
  // roll over at target_file_size, each built tmp -> fsync -> rename.
  struct Output {
    uint64_t number = 0;
    std::string path;
    std::shared_ptr<SsTableReader> reader;
  };
  std::vector<Output> outputs;
  std::unique_ptr<SsTableBuilder> builder;
  std::string builder_tmp;
  uint64_t builder_number = 0;
  uint64_t output_bytes = 0;

  auto open_builder = [&]() -> Status {
    lock.lock();
    builder_number = next_file_number_++;
    lock.unlock();
    SsTableBuilder::Options bopts;
    bopts.block_size = options_.block_size;
    bopts.bloom_bits_per_key = options_.bloom_bits_per_key;
    builder = std::make_unique<SsTableBuilder>(bopts);
    builder_tmp = SstPath(builder_number) + ".tmp";
    return builder->Open(builder_tmp, env_, &io_stats_);
  };
  auto finish_builder = [&]() -> Status {
    JUST_RETURN_NOT_OK(builder->Finish());
    std::string final_path = SstPath(builder_number);
    JUST_RETURN_NOT_OK(env_->RenameFile(builder_tmp, final_path));
    JUST_ASSIGN_OR_RETURN(
        auto reader,
        SsTableReader::Open(final_path, builder_number, block_cache_.get(),
                            env_, &io_stats_));
    output_bytes += reader->file_size();
    outputs.push_back({builder_number, final_path, std::move(reader)});
    builder.reset();
    return Status::OK();
  };

  Status st;
  {
    std::vector<std::unique_ptr<SsTableReader::Iterator>> iters;
    for (const auto& input : inputs) {
      auto iter = std::make_unique<SsTableReader::Iterator>(input.get());
      iter->SeekToFirst();
      iters.push_back(std::move(iter));
    }
    for (;;) {
      // Smallest current key wins; strict < keeps the first (newest) of a
      // tie on top, so stale versions are skipped below.
      int best = -1;
      for (size_t i = 0; i < iters.size(); ++i) {
        if (!iters[i]->Valid()) continue;
        if (best < 0 || iters[i]->key() < iters[static_cast<size_t>(
                best)]->key()) {
          best = static_cast<int>(i);
        }
      }
      if (best < 0) break;
      std::string key = iters[static_cast<size_t>(best)]->key();
      std::string_view value = iters[static_cast<size_t>(best)]->value();
      bool keep = !value.empty() && value[0] == kTypePut;
      // A tombstone survives the merge unless nothing below the output
      // level can hold an older version of its key.
      if (!keep && !job.drop_tombstones) keep = !value.empty();
      if (keep) {
        if (builder == nullptr) {
          st = open_builder();
          if (!st.ok()) break;
        }
        st = builder->Add(key, value);
        if (!st.ok()) break;
        // Leveled compactions roll outputs so one upper file only ever
        // overlaps a bounded slice of the level below. A full merge
        // (upper_level < 0) must NOT roll: its contract — and what the
        // kFull trigger and CompactAll callers count on — is a single
        // merged run, or the output count would immediately re-arm the
        // full-compaction trigger.
        if (job.upper_level >= 0 &&
            builder->file_size() >= options_.target_file_size) {
          st = finish_builder();
          if (!st.ok()) break;
        }
      }
      for (auto& iter : iters) {
        while (iter->Valid() && iter->key() == key) iter->Next();
      }
    }
    // An input iterator that stopped on a corrupt block must fail the
    // compaction — otherwise its remaining entries would be silently
    // dropped.
    if (st.ok()) {
      for (const auto& iter : iters) {
        if (!iter->status().ok()) {
          st = iter->status();
          break;
        }
      }
    }
    if (st.ok() && builder != nullptr) st = finish_builder();
  }
  if (!st.ok()) {
    // Unwind without publishing: drop the half-built tmp and any finished
    // outputs (none are in the MANIFEST; leftovers would be quarantined at
    // the next open anyway).
    if (builder != nullptr) {
      builder.reset();
      (void)env_->RemoveFile(builder_tmp);
    }
    for (const auto& out : outputs) (void)env_->RemoveFile(out.path);
    lock.lock();
    compaction_running_ = false;
    flush_done_cv_.notify_all();
    return st;
  }

  // ---- Install phase (lock): swap inputs for outputs, MANIFEST-commit.
  lock.lock();
  auto backup = levels_;
  for (auto& level : levels_) {
    level.erase(std::remove_if(level.begin(), level.end(),
                               [&](const std::shared_ptr<SsTableReader>& t) {
                                 return std::find(inputs.begin(), inputs.end(),
                                                  t) != inputs.end();
                               }),
                level.end());
  }
  auto& target = levels_[output_level];
  for (const auto& out : outputs) target.push_back(out.reader);
  std::sort(target.begin(), target.end(), [](const auto& a, const auto& b) {
    return a->smallest_key() < b->smallest_key();
  });
  st = WriteManifestLocked();
  if (!st.ok()) {
    // Not committed: restore the previous tree; the outputs are strays that
    // the next open quarantines.
    levels_ = std::move(backup);
    compaction_running_ = false;
    flush_done_cv_.notify_all();
    return st;
  }
  if (job.upper_level > 0) {
    // Advance the round-robin cursor past the consumed range.
    std::string hi;
    for (const auto& table : job.upper) {
      if (table->largest_key() > hi) hi = table->largest_key();
    }
    compact_cursor_[static_cast<size_t>(job.upper_level)] = hi;
  }
  CompactionCounter()->Increment();
  CompactionInputBytesCounter()->Add(input_bytes);
  CompactionOutputBytesCounter()->Add(output_bytes);
  CompactionHist()->Record(ElapsedUs(t0));
  compaction_running_ = false;
  MaybeScheduleCompactionLocked();
  flush_done_cv_.notify_all();
  // Inputs are dead only once the manifest no longer references them;
  // deletion is best-effort — leftovers are quarantined at the next open.
  // Readers holding snapshot pins keep their open file handles (POSIX
  // unlink semantics), so in-flight scans are unaffected. Their cached
  // blocks age out of the LRU on their own — no cache flush needed, the
  // (file_id, offset) keys of dead files are simply never requested again.
  for (const auto& input : inputs) {
    (void)env_->RemoveFile(input->path());
  }
  return Status::OK();
}

Status LsmStore::WriteManifestLocked() {
  std::string tmp_path = options_.dir + "/MANIFEST.tmp";
  JUST_ASSIGN_OR_RETURN(auto file,
                        env_->NewWritableFile(tmp_path, /*truncate=*/true));
  std::string body;
  body.append(kManifestHeaderV2);
  body.push_back('\n');
  // Minimum live WAL segment: replay ignores older segments, so a flushed
  // segment whose deletion failed stays harmless forever.
  body.append("wal " + std::to_string(min_wal_number_) + "\n");
  // One line per table: level, file number, key range. L0 is written in
  // flush order (its read precedence); deeper levels in key order.
  for (size_t level = 0; level < levels_.size(); ++level) {
    for (const auto& table : levels_[level]) {
      body.append("file " + std::to_string(level) + " " +
                  std::to_string(table->file_id()) + " " +
                  HexEncodeKey(table->smallest_key()) + " " +
                  HexEncodeKey(table->largest_key()) + "\n");
    }
  }
  JUST_RETURN_NOT_OK(file->Append(body));
  // Sync before rename: the manifest is the commit point of every flush and
  // compaction, so it must be durable before it becomes visible.
  JUST_RETURN_NOT_OK(file->Sync());
  JUST_RETURN_NOT_OK(file->Close());
  return env_->RenameFile(tmp_path, options_.dir + "/MANIFEST");
}

Status LsmStore::Flush() {
  // Route the request through the write queue so it serializes with
  // in-flight commits, then wait until the background thread has made the
  // resulting swap durable.
  JUST_RETURN_NOT_OK(QueueWrite(nullptr, 0, /*flush_request=*/true));
  std::unique_lock lock(mu_);
  const uint64_t target = swap_seq_;
  flush_done_cv_.wait(
      lock, [&] { return flushed_seq_ >= target || !bg_error_.ok(); });
  return flushed_seq_ >= target ? Status::OK() : bg_error_;
}

Status LsmStore::CompactAll() {
  JUST_RETURN_NOT_OK(Flush());
  std::unique_lock lock(mu_);
  // If the background thread is mid-compaction, wait for it, then run the
  // full merge on the caller's thread.
  flush_done_cv_.wait(lock, [this] { return !compaction_running_; });
  return CompactEverythingLocked(lock);
}

Status LsmStore::WaitForBackgroundIdle() {
  std::unique_lock lock(mu_);
  flush_done_cv_.wait(lock, [this] {
    return !bg_error_.ok() ||
           (imm_ == nullptr && !compact_pending_ && !compaction_running_ &&
            !CompactionNeededLocked());
  });
  return bg_error_;
}

LsmStore::Stats LsmStore::GetStats() const {
  std::shared_lock lock(mu_);
  Stats stats;
  stats.num_sstables = TotalTablesLocked();
  stats.memtable_entries = memtable_->size();
  stats.memtable_bytes = memtable_->ApproximateBytes();
  if (imm_ != nullptr) {
    stats.memtable_entries += imm_->size();
    stats.memtable_bytes += imm_->ApproximateBytes();
  }
  stats.quarantined_files = quarantined_files_;
  stats.level_files.resize(levels_.size());
  stats.level_bytes.resize(levels_.size());
  for (size_t level = 0; level < levels_.size(); ++level) {
    stats.level_files[level] = levels_[level].size();
    for (const auto& table : levels_[level]) {
      stats.level_bytes[level] += table->file_size();
      stats.disk_bytes += table->file_size();
      stats.sstable_entries += table->num_entries();
      if (table->bloom_corrupt()) ++stats.corrupt_bloom_tables;
    }
  }
  // Thin view over the registry-backed per-store counters.
  stats.bloom_fallbacks = io_stats_.bloom_fallbacks.Value();
  stats.bloom_prunes = io_stats_.bloom_prunes.Value();
  stats.bytes_read = io_stats_.bytes_read.Value();
  stats.bytes_written = io_stats_.bytes_written.Value();
  stats.read_ops = io_stats_.read_ops.Value();
  stats.block_cache_hits = block_cache_->hits();
  stats.block_cache_misses = block_cache_->misses();
  return stats;
}

std::vector<std::vector<LsmStore::TableInfo>> LsmStore::GetLevelInfo() const {
  std::shared_lock lock(mu_);
  std::vector<std::vector<TableInfo>> info(levels_.size());
  for (size_t level = 0; level < levels_.size(); ++level) {
    info[level].reserve(levels_[level].size());
    for (const auto& table : levels_[level]) {
      TableInfo t;
      t.file_number = table->file_id();
      t.path = table->path();
      t.smallest_key = table->smallest_key();
      t.largest_key = table->largest_key();
      t.file_size = table->file_size();
      t.num_entries = table->num_entries();
      info[level].push_back(std::move(t));
    }
  }
  return info;
}

}  // namespace just::kv
