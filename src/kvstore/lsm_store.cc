#include "kvstore/lsm_store.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace just::kv {

namespace {
// Internal values carry a 1-byte type tag so deletes leave tombstones that
// mask older SSTable entries until compaction drops them.
constexpr char kTypePut = 'P';
constexpr char kTypeDelete = 'D';

std::string MakeInternalValue(char type, std::string_view value) {
  std::string v;
  v.reserve(value.size() + 1);
  v.push_back(type);
  v.append(value.data(), value.size());
  return v;
}

/// Parses "NNNNNN.sst" -> file number; nullopt for any other name.
bool ParseSstName(const std::string& name, uint64_t* num) {
  constexpr std::string_view kSuffix = ".sst";
  if (name.size() <= kSuffix.size() ||
      name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
          0) {
    return false;
  }
  std::string digits = name.substr(0, name.size() - kSuffix.size());
  if (digits.empty()) return false;
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  *num = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

bool EndsWith(const std::string& name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}
}  // namespace

LsmStore::LsmStore(const StoreOptions& options)
    : options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()),
      memtable_(std::make_unique<SkipList>()),
      block_cache_(
          std::make_unique<BlockCache>(options.block_cache_bytes)) {
  using SK = obs::Registry::SourceKind;
  metric_sources_.emplace_back("just_kv_block_cache_hits_total",
                               SK::kCumulative,
                               [this] { return block_cache_->hits(); });
  metric_sources_.emplace_back("just_kv_block_cache_misses_total",
                               SK::kCumulative,
                               [this] { return block_cache_->misses(); });
  metric_sources_.emplace_back("just_kv_disk_bytes", SK::kLive, [this] {
    std::shared_lock lock(mu_);
    uint64_t total = 0;
    for (const auto& table : sstables_) total += table->file_size();
    return total;
  });
  metric_sources_.emplace_back("just_kv_memtable_bytes", SK::kLive, [this] {
    std::shared_lock lock(mu_);
    return static_cast<uint64_t>(memtable_->ApproximateBytes());
  });
  metric_sources_.emplace_back("just_kv_sstables", SK::kLive, [this] {
    std::shared_lock lock(mu_);
    return static_cast<uint64_t>(sstables_.size());
  });
}

LsmStore::~LsmStore() {
  // Durability of the memtable is the WAL's job; just close cleanly.
  std::unique_lock lock(mu_);
  wal_.Sync();
  wal_.Close();
}

std::string LsmStore::SstPath(uint64_t file_number) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/%06llu.sst",
                static_cast<unsigned long long>(file_number));
  return options_.dir + buf;
}

std::string LsmStore::WalPath() const { return options_.dir + "/wal.log"; }

Result<std::unique_ptr<LsmStore>> LsmStore::Open(const StoreOptions& options) {
  auto store = std::unique_ptr<LsmStore>(new LsmStore(options));
  JUST_RETURN_NOT_OK(store->env_->CreateDirs(options.dir));
  JUST_RETURN_NOT_OK(store->Recover());
  return store;
}

Status LsmStore::Recover() {
  std::unique_lock lock(mu_);
  // 1) Manifest -> live SSTables.
  std::set<uint64_t> live;
  std::string manifest_path = options_.dir + "/MANIFEST";
  if (env_->FileExists(manifest_path)) {
    std::string manifest;
    JUST_RETURN_NOT_OK(env_->ReadFileToString(manifest_path, &manifest));
    const char* p = manifest.c_str();
    while (*p != '\0') {
      char* end = nullptr;
      uint64_t num = std::strtoull(p, &end, 10);
      if (end == p) break;
      p = end;
      while (*p == '\n' || *p == '\r') ++p;
      if (num == 0) continue;
      JUST_ASSIGN_OR_RETURN(
          auto reader,
          SsTableReader::Open(SstPath(num), num, block_cache_.get(), env_,
                              &io_stats_));
      sstables_.push_back(reader);
      live.insert(num);
      next_file_number_ = std::max(next_file_number_, num + 1);
    }
  }
  // 2) Quarantine partial flush/compaction leftovers so they can never be
  // mistaken for live data (and never collide with reused file numbers).
  JUST_RETURN_NOT_OK(QuarantineStrays(live));
  // 3) WAL -> memtable.
  JUST_RETURN_NOT_OK(ReplayWal(
      WalPath(),
      [this](WalRecordType type, std::string_view key,
             std::string_view value) {
        memtable_->Put(std::string(key),
                       MakeInternalValue(type == WalRecordType::kPut
                                             ? kTypePut
                                             : kTypeDelete,
                                         value));
      },
      env_));
  // 4) Reopen WAL for appending.
  return wal_.Open(WalPath(), /*truncate=*/false, env_);
}

Status LsmStore::QuarantineStrays(const std::set<uint64_t>& live) {
  JUST_ASSIGN_OR_RETURN(auto names, env_->ListDir(options_.dir));
  for (const std::string& name : names) {
    std::string path = options_.dir + "/" + name;
    if (EndsWith(name, ".tmp")) {
      // A build that never completed: nothing referenced it, drop it.
      JUST_RETURN_NOT_OK(env_->RemoveFile(path));
      continue;
    }
    uint64_t num = 0;
    if (ParseSstName(name, &num) && live.count(num) == 0) {
      // Fully written but never committed to the manifest (crash between
      // rename and manifest sync), or an input of a committed compaction
      // whose deletion did not finish. Keep the bytes for forensics, but
      // move them out of the namespace.
      JUST_RETURN_NOT_OK(env_->RenameFile(path, path + ".quarantine"));
      next_file_number_ = std::max(next_file_number_, num + 1);
      ++quarantined_files_;
    }
  }
  return Status::OK();
}

Status LsmStore::WriteInternal(WalRecordType type, std::string_view key,
                               std::string_view value) {
  std::unique_lock lock(mu_);
  JUST_RETURN_NOT_OK(wal_.Append(type, key, value));
  if (options_.sync_wal) JUST_RETURN_NOT_OK(wal_.Sync());
  memtable_->Put(std::string(key),
                 MakeInternalValue(
                     type == WalRecordType::kPut ? kTypePut : kTypeDelete,
                     value));
  if (memtable_->ApproximateBytes() >= options_.memtable_bytes) {
    JUST_RETURN_NOT_OK(FlushLocked());
  }
  return Status::OK();
}

Status LsmStore::Put(std::string_view key, std::string_view value) {
  return WriteInternal(WalRecordType::kPut, key, value);
}

Status LsmStore::Delete(std::string_view key) {
  return WriteInternal(WalRecordType::kDelete, key, {});
}

Status LsmStore::Get(std::string_view key, std::string* value) const {
  std::shared_lock lock(mu_);
  std::string internal;
  if (memtable_->Get(std::string(key), &internal)) {
    if (internal.empty() || internal[0] == kTypeDelete) {
      return Status::NotFound("deleted");
    }
    value->assign(internal.data() + 1, internal.size() - 1);
    return Status::OK();
  }
  // Newest SSTable first.
  for (auto it = sstables_.rbegin(); it != sstables_.rend(); ++it) {
    Status st = (*it)->Get(key, &internal);
    if (st.ok()) {
      if (internal.empty() || internal[0] == kTypeDelete) {
        return Status::NotFound("deleted");
      }
      value->assign(internal.data() + 1, internal.size() - 1);
      return Status::OK();
    }
    if (!st.IsNotFound()) return st;
  }
  return Status::NotFound("no such key");
}

Status LsmStore::Scan(
    std::string_view start, std::string_view end,
    const std::function<bool(std::string_view, std::string_view)>& fn) const {
  std::shared_lock lock(mu_);
  // Sources, newest first: memtable, then SSTables newest->oldest.
  struct Source {
    std::unique_ptr<SkipList::Iterator> mem;
    std::unique_ptr<SsTableReader::Iterator> sst;

    bool Valid() const {
      return mem != nullptr ? mem->Valid() : sst->Valid();
    }
    Status status() const {
      return mem != nullptr ? Status::OK() : sst->status();
    }
    std::string_view key() const {
      return mem != nullptr ? std::string_view(mem->key())
                            : std::string_view(sst->key());
    }
    std::string_view value() const {
      return mem != nullptr ? std::string_view(mem->value()) : sst->value();
    }
    void Next() {
      if (mem != nullptr) {
        mem->Next();
      } else {
        sst->Next();
      }
    }
  };

  std::vector<Source> sources;
  {
    Source s;
    s.mem = std::make_unique<SkipList::Iterator>(memtable_.get());
    s.mem->Seek(std::string(start));
    sources.push_back(std::move(s));
  }
  for (auto it = sstables_.rbegin(); it != sstables_.rend(); ++it) {
    // Prune tables whose key range cannot intersect [start, end).
    if (!end.empty() && std::string_view((*it)->smallest_key()) >= end) {
      continue;
    }
    if (std::string_view((*it)->largest_key()) < start &&
        !(*it)->largest_key().empty()) {
      continue;
    }
    Source s;
    s.sst = std::make_unique<SsTableReader::Iterator>(it->get());
    s.sst->Seek(start);
    sources.push_back(std::move(s));
  }

  std::string last_emitted;
  bool have_last = false;
  for (;;) {
    // Pick the smallest current key; ties resolved by source order (newest
    // source wins), so stale versions are skipped below. A source that went
    // invalid on a corrupt block fails the scan instead of silently
    // shortening it.
    int best = -1;
    for (size_t i = 0; i < sources.size(); ++i) {
      if (!sources[i].Valid()) {
        JUST_RETURN_NOT_OK(sources[i].status());
        continue;
      }
      std::string_view k = sources[i].key();
      if (!end.empty() && k >= end) continue;
      if (best < 0 || k < sources[best].key()) best = static_cast<int>(i);
    }
    if (best < 0) break;
    // Materialize the key: advancing the winning source below would
    // invalidate a view into its current entry.
    std::string key(sources[best].key());
    std::string_view internal = sources[best].value();
    bool duplicate = have_last && key == last_emitted;
    if (!duplicate) {
      last_emitted = key;
      have_last = true;
      if (!internal.empty() && internal[0] == kTypePut) {
        if (!fn(key, internal.substr(1))) return Status::OK();
      }
      // Tombstones are skipped silently.
    }
    // Advance every source positioned at this key.
    for (auto& s : sources) {
      while (s.Valid() && s.key() == std::string_view(key)) s.Next();
    }
  }
  return Status::OK();
}

Status LsmStore::FlushLocked() {
  if (memtable_->size() == 0) return Status::OK();
  uint64_t file_number = next_file_number_++;
  std::string final_path = SstPath(file_number);
  std::string tmp_path = final_path + ".tmp";
  SsTableBuilder::Options bopts;
  bopts.block_size = options_.block_size;
  bopts.bloom_bits_per_key = options_.bloom_bits_per_key;
  SsTableBuilder builder(bopts);
  JUST_RETURN_NOT_OK(builder.Open(tmp_path, env_, &io_stats_));
  SkipList::Iterator it(memtable_.get());
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    JUST_RETURN_NOT_OK(builder.Add(it.key(), it.value()));
  }
  // Finish syncs the temp file; the rename publishes it atomically. On any
  // failure before the manifest commits, the memtable and WAL still hold
  // every record, so nothing acknowledged can be lost.
  JUST_RETURN_NOT_OK(builder.Finish());
  JUST_RETURN_NOT_OK(env_->RenameFile(tmp_path, final_path));
  JUST_ASSIGN_OR_RETURN(
      auto reader,
      SsTableReader::Open(final_path, file_number, block_cache_.get(), env_,
                          &io_stats_));
  sstables_.push_back(reader);
  JUST_RETURN_NOT_OK(WriteManifestLocked());
  // The flush is durable only now; dropping the memtable or truncating the
  // WAL any earlier would lose acknowledged writes on a crash.
  memtable_ = std::make_unique<SkipList>();
  JUST_RETURN_NOT_OK(wal_.Open(WalPath(), /*truncate=*/true, env_));
  if (static_cast<int>(sstables_.size()) >= options_.compaction_trigger) {
    JUST_RETURN_NOT_OK(MergeAllLocked());
  }
  return Status::OK();
}

Status LsmStore::MergeAllLocked() {
  if (sstables_.size() <= 1) return Status::OK();
  std::vector<std::shared_ptr<SsTableReader>> inputs = sstables_;
  uint64_t out_number = next_file_number_++;
  std::string final_path = SstPath(out_number);
  std::string tmp_path = final_path + ".tmp";
  SsTableBuilder::Options bopts;
  bopts.block_size = options_.block_size;
  bopts.bloom_bits_per_key = options_.bloom_bits_per_key;
  SsTableBuilder merged(bopts);
  JUST_RETURN_NOT_OK(merged.Open(tmp_path, env_, &io_stats_));

  std::vector<std::unique_ptr<SsTableReader::Iterator>> iters;
  for (auto input = inputs.rbegin(); input != inputs.rend(); ++input) {
    auto iter = std::make_unique<SsTableReader::Iterator>(input->get());
    iter->SeekToFirst();
    iters.push_back(std::move(iter));  // newest first
  }
  std::string last_key;
  bool have_last = false;
  for (;;) {
    int best = -1;
    for (size_t i = 0; i < iters.size(); ++i) {
      if (!iters[i]->Valid()) continue;
      if (best < 0 || iters[i]->key() < iters[best]->key()) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    std::string key = iters[best]->key();
    std::string_view value = iters[best]->value();
    if (!have_last || key != last_key) {
      // Full compaction: tombstones are dropped for good.
      if (!value.empty() && value[0] == kTypePut) {
        JUST_RETURN_NOT_OK(merged.Add(key, value));
      }
      last_key = key;
      have_last = true;
    }
    for (auto& iter : iters) {
      while (iter->Valid() && iter->key() == key) iter->Next();
    }
  }
  // An input iterator that stopped on a corrupt block must fail the
  // compaction — otherwise its remaining entries would be silently dropped.
  for (const auto& iter : iters) {
    JUST_RETURN_NOT_OK(iter->status());
  }
  JUST_RETURN_NOT_OK(merged.Finish());
  JUST_RETURN_NOT_OK(env_->RenameFile(tmp_path, final_path));
  JUST_ASSIGN_OR_RETURN(
      auto merged_reader,
      SsTableReader::Open(final_path, out_number, block_cache_.get(), env_,
                          &io_stats_));
  sstables_.clear();
  sstables_.push_back(merged_reader);
  block_cache_->Clear();
  JUST_RETURN_NOT_OK(WriteManifestLocked());
  // Inputs are dead only once the manifest no longer references them;
  // deletion is best-effort — leftovers are quarantined at the next open.
  for (const auto& input : inputs) {
    (void)env_->RemoveFile(input->path());
  }
  return Status::OK();
}

Status LsmStore::WriteManifestLocked() {
  std::string tmp_path = options_.dir + "/MANIFEST.tmp";
  JUST_ASSIGN_OR_RETURN(auto file,
                        env_->NewWritableFile(tmp_path, /*truncate=*/true));
  for (const auto& table : sstables_) {
    // Manifest lists file numbers in flush order.
    std::string path = table->path();
    size_t slash = path.find_last_of('/');
    std::string name = path.substr(slash + 1);
    uint64_t num = std::strtoull(name.c_str(), nullptr, 10);
    JUST_RETURN_NOT_OK(file->Append(std::to_string(num) + "\n"));
  }
  // Sync before rename: the manifest is the commit point of every flush and
  // compaction, so it must be durable before it becomes visible.
  JUST_RETURN_NOT_OK(file->Sync());
  JUST_RETURN_NOT_OK(file->Close());
  return env_->RenameFile(tmp_path, options_.dir + "/MANIFEST");
}

Status LsmStore::Flush() {
  std::unique_lock lock(mu_);
  return FlushLocked();
}

Status LsmStore::CompactAll() {
  std::unique_lock lock(mu_);
  JUST_RETURN_NOT_OK(FlushLocked());
  return MergeAllLocked();
}

LsmStore::Stats LsmStore::GetStats() const {
  std::shared_lock lock(mu_);
  Stats stats;
  stats.num_sstables = sstables_.size();
  stats.memtable_entries = memtable_->size();
  stats.memtable_bytes = memtable_->ApproximateBytes();
  stats.quarantined_files = quarantined_files_;
  for (const auto& table : sstables_) {
    stats.disk_bytes += table->file_size();
    stats.sstable_entries += table->num_entries();
    if (table->bloom_corrupt()) ++stats.corrupt_bloom_tables;
  }
  // Thin view over the registry-backed per-store counters.
  stats.bloom_fallbacks = io_stats_.bloom_fallbacks.Value();
  stats.bloom_prunes = io_stats_.bloom_prunes.Value();
  stats.bytes_read = io_stats_.bytes_read.Value();
  stats.bytes_written = io_stats_.bytes_written.Value();
  stats.read_ops = io_stats_.read_ops.Value();
  stats.block_cache_hits = block_cache_->hits();
  stats.block_cache_misses = block_cache_->misses();
  return stats;
}

}  // namespace just::kv
