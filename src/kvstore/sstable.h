#ifndef JUST_KVSTORE_SSTABLE_H_
#define JUST_KVSTORE_SSTABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/lru_cache.h"
#include "common/status.h"
#include "kvstore/block.h"
#include "kvstore/bloom.h"
#include "kvstore/env.h"
#include "obs/metrics.h"

namespace just::kv {

/// Per-store cumulative I/O counters. Each instance self-registers into the
/// global obs::Registry as a cumulative source (just_kv_*_total), so the
/// process-wide view is the aggregation of every live store plus the folded
/// totals of dead ones — concurrent stores in tests and benches no longer
/// pollute each other, while GlobalIoStats() stays monotonic.
struct IoStats {
  obs::Counter bytes_read;
  obs::Counter read_ops;
  obs::Counter bytes_written;
  obs::Counter bloom_prunes;     ///< point lookups a bloom filter skipped
  obs::Counter bloom_fallbacks;  ///< lookups with no usable bloom filter
  /// SSTables consulted per Get after level pruning (the store's point-read
  /// amplification: probes / gets). A probe still counts when the table's
  /// bloom filter then skips the data blocks — the bound leveled compaction
  /// buys is on tables *considered*, not blocks read.
  obs::Counter get_probes;

  IoStats();

 private:
  // Declared after the counters: unregistered (and folded) before they die.
  std::vector<obs::ScopedSource> sources_;
};

/// Process-wide I/O totals at one instant (sum over live + dead stores).
struct IoTotals {
  uint64_t bytes_read = 0;
  uint64_t read_ops = 0;
  uint64_t bytes_written = 0;
};

/// Thin aggregation view over the registry — the old global-singleton
/// accessor, kept for benches that report process-wide I/O.
IoTotals GlobalIoStats();

/// Fallback sink for readers/builders opened without a store (tests, tools).
IoStats& OrphanIoStats();

/// Optional disk model: when set to a positive MB/s figure, every SSTable
/// read spins for bytes/bandwidth, so scan latency scales with bytes read
/// even when the OS page cache makes real reads free. Benches use this to
/// reproduce the paper's disk-bound behaviour; 0 (default) disables it.
void SetSimulatedReadBandwidthMBps(double mbps);
double SimulatedReadBandwidthMBps();

/// Shared cache of decoded data blocks, keyed by (file id, block offset) —
/// the HBase BlockCache role.
using BlockCache = LruCache<std::string, std::shared_ptr<Block>>;

/// Writes an immutable sorted-string table:
///   [data blocks][bloom block][index block][footer]
/// Every block (data, bloom, index) carries a CRC32 trailer, and the footer
/// is CRC-protected too, so any single flipped byte on disk is detected at
/// read time instead of surfacing as wrong rows (the HDFS-checksum role).
/// Index entries map each data block's last key to its (offset, size); the
/// recorded size excludes the 4-byte CRC trailer.
class SsTableBuilder {
 public:
  struct Options {
    size_t block_size = 4096;
    int restart_interval = 16;
    int bloom_bits_per_key = 10;
  };

  SsTableBuilder();
  explicit SsTableBuilder(Options options);

  /// `env` nullptr means Env::Default(); `io` nullptr means OrphanIoStats().
  Status Open(const std::string& path, Env* env = nullptr,
              IoStats* io = nullptr);

  /// Keys must be strictly increasing.
  Status Add(std::string_view key, std::string_view value);

  /// Flushes all pending data, writes the footer, and fsyncs the file so a
  /// successfully finished table survives a crash.
  Status Finish();

  uint64_t num_entries() const { return num_entries_; }
  uint64_t file_size() const { return offset_; }

 private:
  Status FlushDataBlock();
  /// Writes `contents` + CRC32 trailer; returns the payload handle via
  /// `offset`/`size` (size excludes the trailer).
  Status WriteBlock(std::string_view contents, uint64_t* offset,
                    uint64_t* size);
  Status WriteRaw(std::string_view data);

  Options options_;
  std::unique_ptr<WritableFile> file_;
  IoStats* io_ = nullptr;
  std::string path_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  BloomFilterBuilder bloom_;
  uint64_t offset_ = 0;
  uint64_t num_entries_ = 0;
  std::string last_key_;
  bool pending_index_ = false;
  std::string pending_index_key_;
  uint64_t pending_offset_ = 0;
  uint64_t pending_size_ = 0;
};

/// Read side of an SSTable. Thread-safe: reads use pread. Every block read
/// is CRC-verified; a mismatch surfaces as Status::Corruption, except for
/// the bloom filter, which degrades to always-match (it is an optimization,
/// not a correctness gate) and is counted via bloom_fallback_lookups().
class SsTableReader {
 public:
  ~SsTableReader() = default;

  /// Opens the file and loads the footer, index, and bloom filter. `cache`
  /// may be null (blocks are then read per access). `file_id` must be unique
  /// per open table for cache keying. `env` nullptr means Env::Default();
  /// `io` nullptr means OrphanIoStats().
  static Result<std::shared_ptr<SsTableReader>> Open(const std::string& path,
                                                     uint64_t file_id,
                                                     BlockCache* cache,
                                                     Env* env = nullptr,
                                                     IoStats* io = nullptr);

  /// Point lookup. Returns Corruption if the consulted blocks fail their
  /// checksum.
  Status Get(std::string_view key, std::string* value) const;

  /// Two-level iterator over the whole table. A block that fails its CRC
  /// makes the iterator invalid with a non-OK status() — callers must check
  /// status() when Valid() turns false to distinguish end-of-table from
  /// corruption.
  class Iterator {
   public:
    explicit Iterator(const SsTableReader* table);

    bool Valid() const { return valid_; }
    void SeekToFirst();
    void Seek(std::string_view target);
    void Next();

    const std::string& key() const { return data_iter_->key(); }
    std::string_view value() const { return data_iter_->value(); }

    /// OK unless iteration stopped on a corrupt or unreadable block.
    Status status() const;

   private:
    void LoadDataBlock(bool first);
    void SkipEmptyBlocks();

    const SsTableReader* table_;
    std::unique_ptr<Block::Iterator> index_iter_;
    std::shared_ptr<Block> data_block_;
    std::unique_ptr<Block::Iterator> data_iter_;
    bool valid_ = false;
    Status status_;
  };

  uint64_t num_entries() const { return num_entries_; }
  uint64_t file_size() const { return file_size_; }
  /// The unique id this table was opened with (its MANIFEST file number).
  uint64_t file_id() const { return file_id_; }
  const std::string& smallest_key() const { return smallest_key_; }
  const std::string& largest_key() const { return largest_key_; }
  const std::string& path() const { return path_; }

  /// True when the bloom block failed its checksum at open; lookups then
  /// fall back to always-match.
  bool bloom_corrupt() const { return bloom_corrupt_; }
  /// Lookups that could not use the bloom filter (corrupt or invalid) and
  /// had to search the table unconditionally.
  uint64_t bloom_fallback_lookups() const {
    return bloom_fallback_lookups_.load(std::memory_order_relaxed);
  }

 private:
  SsTableReader() = default;

  /// Reads and CRC-verifies the block whose payload is [offset, offset+size).
  Result<std::shared_ptr<Block>> ReadBlock(uint64_t offset,
                                           uint64_t size) const;
  Status ReadAt(uint64_t offset, uint64_t size, std::string* out) const;

  std::unique_ptr<RandomAccessFile> file_;
  IoStats* io_ = nullptr;
  std::string path_;
  uint64_t file_id_ = 0;
  uint64_t file_size_ = 0;
  uint64_t num_entries_ = 0;
  std::shared_ptr<Block> index_;
  std::string bloom_data_;
  bool bloom_corrupt_ = false;
  mutable std::atomic<uint64_t> bloom_fallback_lookups_{0};
  std::string smallest_key_;
  std::string largest_key_;
  BlockCache* cache_ = nullptr;

  friend class Iterator;
};

}  // namespace just::kv

#endif  // JUST_KVSTORE_SSTABLE_H_
