#include "kvstore/bloom.h"

#include <algorithm>

namespace just::kv {

uint64_t BloomHash(std::string_view key) {
  // FNV-1a 64.
  uint64_t h = 14695981039346656037ull;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key)
    : bits_per_key_(std::max(1, bits_per_key)) {}

void BloomFilterBuilder::AddKey(std::string_view key) {
  hashes_.push_back(BloomHash(key));
}

std::string BloomFilterBuilder::Finish() {
  // k = bits_per_key * ln2, clamped to [1, 30].
  int k = static_cast<int>(bits_per_key_ * 0.69);
  k = std::clamp(k, 1, 30);
  size_t bits = std::max<size_t>(64, hashes_.size() * bits_per_key_);
  size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string out;
  out.push_back(static_cast<char>(k));
  out.resize(1 + bytes, '\0');
  for (uint64_t h : hashes_) {
    uint64_t delta = (h >> 33) | (h << 31);  // double hashing increment
    for (int i = 0; i < k; ++i) {
      size_t bit = h % bits;
      out[1 + bit / 8] |= static_cast<char>(1 << (bit % 8));
      h += delta;
    }
  }
  return out;
}

bool BloomFilter::valid() const {
  if (data_.size() < 2) return false;
  int k = static_cast<unsigned char>(data_[0]);
  return k >= 1 && k <= 30;
}

bool BloomFilter::MayContain(std::string_view key) const {
  // Corrupt/invalid filters degrade to always-match: a false "no" would
  // silently drop real rows, so the only safe answer is "maybe". Callers
  // observe this via valid() and the store's bloom_fallbacks stat.
  if (!valid()) return true;
  int k = static_cast<unsigned char>(data_[0]);
  size_t bits = (data_.size() - 1) * 8;
  uint64_t h = BloomHash(key);
  uint64_t delta = (h >> 33) | (h << 31);
  for (int i = 0; i < k; ++i) {
    size_t bit = h % bits;
    if ((data_[1 + bit / 8] & (1 << (bit % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace just::kv
