#include "kvstore/wal.h"

#include <array>

#include "common/bytes.h"

namespace just::kv {

namespace {
std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Open(const std::string& path, bool truncate, Env* env) {
  Close();
  if (env == nullptr) env = Env::Default();
  JUST_ASSIGN_OR_RETURN(file_, env->NewWritableFile(path, truncate));
  return Status::OK();
}

void EncodeWalRecord(std::string* dst, WalRecordType type,
                     std::string_view key, std::string_view value) {
  std::string payload;
  payload.push_back(static_cast<char>(type));
  PutLengthPrefixed(&payload, key);
  PutLengthPrefixed(&payload, value);
  PutFixed32(dst, Crc32(payload));
  PutVarint64(dst, payload.size());
  *dst += payload;
}

Status WalWriter::Append(WalRecordType type, std::string_view key,
                         std::string_view value) {
  if (file_ == nullptr) return Status::IOError("WAL not open");
  std::string record;
  EncodeWalRecord(&record, type, key, value);
  return file_->Append(record);
}

Status WalWriter::AppendEncoded(std::string_view records) {
  if (file_ == nullptr) return Status::IOError("WAL not open");
  return file_->Append(records);
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return Status::IOError("WAL not open");
  return file_->Sync();
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    file_->Close();
    file_ = nullptr;
  }
}

Status ReplayWal(const std::string& path,
                 const std::function<void(WalRecordType, std::string_view,
                                          std::string_view)>& fn,
                 Env* env) {
  if (env == nullptr) env = Env::Default();
  if (!env->FileExists(path)) return Status::OK();  // no WAL: nothing to do
  std::string content;
  JUST_RETURN_NOT_OK(env->ReadFileToString(path, &content));

  const char* p = content.data();
  const char* limit = p + content.size();
  while (p < limit) {
    if (static_cast<size_t>(limit - p) < 5) break;  // torn tail
    uint32_t crc = GetFixed32(p);
    const char* q = p + 4;
    uint64_t payload_len;
    if (!GetVarint64(&q, limit, &payload_len)) break;
    if (static_cast<uint64_t>(limit - q) < payload_len) break;
    std::string_view payload(q, payload_len);
    if (Crc32(payload) != crc) break;  // corrupt tail: stop replay
    const char* r = payload.data();
    const char* rlimit = r + payload.size();
    if (r >= rlimit) break;
    auto type = static_cast<WalRecordType>(*r++);
    std::string_view key, value;
    if (!GetLengthPrefixed(&r, rlimit, &key) ||
        !GetLengthPrefixed(&r, rlimit, &value)) {
      break;
    }
    fn(type, key, value);
    p = q + payload_len;
  }
  return Status::OK();
}

}  // namespace just::kv
