#ifndef JUST_KVSTORE_BLOOM_H_
#define JUST_KVSTORE_BLOOM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace just::kv {

/// Bloom filter over SSTable keys (double hashing, LevelDB-style), so point
/// GETs skip tables that cannot contain the key.
class BloomFilterBuilder {
 public:
  explicit BloomFilterBuilder(int bits_per_key = 10);

  void AddKey(std::string_view key);

  /// Serializes the filter: [k: 1B][bit array].
  std::string Finish();

 private:
  int bits_per_key_;
  std::vector<uint64_t> hashes_;
};

/// Read-side probe over a serialized filter.
class BloomFilter {
 public:
  /// `data` must outlive the filter (points into an SSTable buffer).
  explicit BloomFilter(std::string_view data) : data_(data) {}

  /// May return true for absent keys (false positives), never false for
  /// present ones. An empty filter matches everything.
  bool MayContain(std::string_view key) const;

  /// False when the serialized bytes cannot be a real filter (too short, or
  /// an out-of-range probe count) — MayContain then always answers true.
  /// Callers that care about observability count these fallbacks; see
  /// SsTableReader::bloom_fallback_lookups().
  bool valid() const;

 private:
  std::string_view data_;
};

/// Hash used by both sides.
uint64_t BloomHash(std::string_view key);

}  // namespace just::kv

#endif  // JUST_KVSTORE_BLOOM_H_
