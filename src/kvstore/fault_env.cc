#include "kvstore/fault_env.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace just::kv {

namespace {
Status InjectedWriteFault() {
  return Status::IOError("injected write fault");
}
Status InjectedReadFault() { return Status::IOError("injected read fault"); }
}  // namespace

/// Buffers appends until Sync/Close so the decorator, not the OS, decides
/// which bytes a simulated crash preserves.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::string path,
                    std::unique_ptr<WritableFile> base, uint64_t initial_size)
      : env_(env),
        path_(std::move(path)),
        base_(std::move(base)),
        flushed_size_(initial_size) {}

  ~FaultWritableFile() override {
    // Destruction without Close: unsynced buffer is dropped, mirroring a
    // process that exits before the OS saw the bytes.
    if (base_ != nullptr) base_->Close();
  }

  Status Append(std::string_view data) override {
    JUST_RETURN_NOT_OK(env_->CheckWriteOp());
    buffer_.append(data.data(), data.size());
    return Status::OK();
  }

  Status Sync() override {
    JUST_RETURN_NOT_OK(env_->CheckWriteOp());
    JUST_RETURN_NOT_OK(Forward());
    JUST_RETURN_NOT_OK(base_->Sync());
    env_->MarkSynced(path_, flushed_size_);
    return Status::OK();
  }

  Status Close() override {
    if (base_ == nullptr) return Status::OK();
    // A failed (or post-crash) close abandons the buffer: the bytes never
    // reached the OS.
    Status fault = env_->CheckWriteOp();
    if (fault.ok()) fault = Forward();
    Status close_st = base_->Close();
    base_ = nullptr;
    if (!fault.ok()) return fault;
    return close_st;
  }

 private:
  Status Forward() {
    if (buffer_.empty()) return Status::OK();
    JUST_RETURN_NOT_OK(base_->Append(buffer_));
    flushed_size_ += buffer_.size();
    buffer_.clear();
    return Status::OK();
  }

  FaultInjectionEnv* env_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
  std::string buffer_;          ///< appended but not yet handed to the OS
  uint64_t flushed_size_;       ///< bytes the underlying file has received
};

class FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(FaultInjectionEnv* env,
                        std::unique_ptr<RandomAccessFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Read(uint64_t offset, uint64_t n, std::string* out) const override {
    JUST_RETURN_NOT_OK(env_->CheckReadOp());
    return base_->Read(offset, n, out);
  }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<RandomAccessFile> base_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base)
    : base_(base != nullptr ? base : Env::Default()) {}

void FaultInjectionEnv::FailWriteOp(int64_t n, bool all_after) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_at_write_op_ = n;
  fail_all_after_ = all_after;
}

void FaultInjectionEnv::FailNextReads(int64_t k) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_reads_remaining_ = k;
}

void FaultInjectionEnv::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  fail_at_write_op_ = -1;
  fail_reads_remaining_ = 0;
  write_lockout_ = false;
}

int64_t FaultInjectionEnv::write_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_ops_;
}

int64_t FaultInjectionEnv::read_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return read_ops_;
}

Status FaultInjectionEnv::CheckWriteOp() {
  std::lock_guard<std::mutex> lock(mu_);
  ++write_ops_;
  if (write_lockout_) return InjectedWriteFault();
  if (fail_at_write_op_ >= 0 && write_ops_ >= fail_at_write_op_) {
    if (!fail_all_after_) fail_at_write_op_ = -1;  // one-shot: disk recovers
    return InjectedWriteFault();
  }
  return Status::OK();
}

Status FaultInjectionEnv::CheckReadOp() {
  std::lock_guard<std::mutex> lock(mu_);
  ++read_ops_;
  if (fail_reads_remaining_ > 0) {
    --fail_reads_remaining_;
    return InjectedReadFault();
  }
  return Status::OK();
}

void FaultInjectionEnv::MarkSynced(const std::string& path,
                                   uint64_t durable_size) {
  std::lock_guard<std::mutex> lock(mu_);
  durable_size_[path] = static_cast<int64_t>(durable_size);
}

void FaultInjectionEnv::DropUnsyncedWrites() {
  std::map<std::string, int64_t> tracked;
  {
    std::lock_guard<std::mutex> lock(mu_);
    write_lockout_ = true;
    tracked = durable_size_;
  }
  for (const auto& [path, durable] : tracked) {
    if (durable < 0) {
      (void)base_->RemoveFile(path);  // created, never synced: gone
      std::lock_guard<std::mutex> lock(mu_);
      durable_size_.erase(path);
    } else {
      (void)base_->TruncateFile(path, static_cast<uint64_t>(durable));
    }
  }
}

Status FaultInjectionEnv::FlipByte(const std::string& path, uint64_t offset) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IOError("FlipByte cannot open " + path + ": " +
                           std::strerror(errno));
  }
  char byte;
  if (::pread(fd, &byte, 1, static_cast<off_t>(offset)) != 1) {
    ::close(fd);
    return Status::IOError("FlipByte offset out of range in " + path);
  }
  byte = static_cast<char>(byte ^ 0xFF);
  ssize_t wrote = ::pwrite(fd, &byte, 1, static_cast<off_t>(offset));
  ::close(fd);
  if (wrote != 1) return Status::IOError("FlipByte write failed on " + path);
  return Status::OK();
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  JUST_RETURN_NOT_OK(CheckWriteOp());
  bool existed = base_->FileExists(path);
  JUST_ASSIGN_OR_RETURN(auto base_file, base_->NewWritableFile(path, truncate));
  uint64_t initial_size = 0;
  if (!truncate && existed) {
    auto size = base_->GetFileSize(path);
    if (size.ok()) initial_size = size.value();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = durable_size_.find(path);
    if (truncate) {
      // Overwriting an existing file leaves a durable empty file; a brand-new
      // file is not durable until first synced (its directory entry could be
      // lost with the crash).
      durable_size_[path] = existed ? 0 : -1;
    } else if (it == durable_size_.end()) {
      // Append to an untracked file: bytes already on disk count as durable.
      durable_size_[path] = static_cast<int64_t>(initial_size);
    }
  }
  return std::unique_ptr<WritableFile>(std::make_unique<FaultWritableFile>(
      this, path, std::move(base_file), initial_size));
}

Result<std::unique_ptr<RandomAccessFile>>
FaultInjectionEnv::NewRandomAccessFile(const std::string& path) {
  JUST_ASSIGN_OR_RETURN(auto base_file, base_->NewRandomAccessFile(path));
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<FaultRandomAccessFile>(this, std::move(base_file)));
}

Status FaultInjectionEnv::ReadFileToString(const std::string& path,
                                           std::string* out) {
  JUST_RETURN_NOT_OK(CheckReadOp());
  return base_->ReadFileToString(path, out);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectionEnv::GetFileSize(const std::string& path) {
  return base_->GetFileSize(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  JUST_RETURN_NOT_OK(CheckWriteOp());
  JUST_RETURN_NOT_OK(base_->RenameFile(from, to));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = durable_size_.find(from);
  if (it != durable_size_.end()) {
    durable_size_[to] = it->second;
    durable_size_.erase(it);
  }
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  JUST_RETURN_NOT_OK(CheckWriteOp());
  JUST_RETURN_NOT_OK(base_->RemoveFile(path));
  std::lock_guard<std::mutex> lock(mu_);
  durable_size_.erase(path);
  return Status::OK();
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  JUST_RETURN_NOT_OK(CheckWriteOp());
  JUST_RETURN_NOT_OK(base_->TruncateFile(path, size));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = durable_size_.find(path);
  if (it != durable_size_.end() &&
      it->second > static_cast<int64_t>(size)) {
    it->second = static_cast<int64_t>(size);
  }
  return Status::OK();
}

Status FaultInjectionEnv::CreateDirs(const std::string& path) {
  // Not counted as a data-path op: directory creation happens once at store
  // open, before any acknowledged write exists.
  return base_->CreateDirs(path);
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& path) {
  return base_->ListDir(path);
}

}  // namespace just::kv
