#ifndef JUST_KVSTORE_SKIPLIST_H_
#define JUST_KVSTORE_SKIPLIST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace just::kv {

/// An ordered map from byte-string keys to values, implemented as a skip
/// list — the classical memtable structure (RocksDB/HBase MemStore role).
/// Synchronization is the caller's responsibility (the store holds a mutex).
class SkipList {
 public:
  SkipList();
  ~SkipList();

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts or overwrites `key`.
  void Put(const std::string& key, std::string value);

  /// Returns true and sets *value if present.
  bool Get(const std::string& key, std::string* value) const;

  /// Appends every entry in [start, end) to `out` in key order (`end` empty
  /// means "to the last key"). Snapshot scans use this to copy the *mutable*
  /// memtable's window under the store lock, then merge lock-free — the
  /// immutable sources (frozen memtable, SSTables) never need copying.
  void AppendRange(const std::string& start, std::string_view end,
                   std::vector<std::pair<std::string, std::string>>* out)
      const;

  size_t size() const { return size_; }
  size_t ApproximateBytes() const { return bytes_; }

 private:
  struct Node;

 public:
  /// Forward iterator over entries in key order.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list) {}

    bool Valid() const { return node_ != nullptr; }
    void SeekToFirst();
    /// Positions at the first entry >= target.
    void Seek(const std::string& target);
    void Next();

    const std::string& key() const;
    const std::string& value() const;

   private:
    const SkipList* list_;
    Node* node_ = nullptr;
  };

 private:
  static constexpr int kMaxHeight = 12;

  Node* NewNode(std::string key, std::string value, int height);
  int RandomHeight();
  Node* FindGreaterOrEqual(const std::string& key, Node** prev) const;

  Rng rng_;
  Node* head_;
  int height_ = 1;
  size_t size_ = 0;
  size_t bytes_ = 0;

  friend class Iterator;
};

}  // namespace just::kv

#endif  // JUST_KVSTORE_SKIPLIST_H_
