#include "kvstore/sstable.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cerrno>
#include <cstring>

#include "common/bytes.h"
#include "kvstore/wal.h"

namespace just::kv {

namespace {
constexpr uint64_t kTableMagic = 0x4A55535453535400ull;  // "JUSTSST\0"
constexpr size_t kFooterSize = 48;

std::string CacheKey(uint64_t file_id, uint64_t offset) {
  std::string key;
  PutFixed64(&key, file_id);
  PutFixed64(&key, offset);
  return key;
}
}  // namespace

IoStats& GlobalIoStats() {
  static IoStats* stats = new IoStats();
  return *stats;
}

namespace {
std::atomic<double> g_simulated_read_mbps{0.0};

// Spin-waits (sleep granularity is too coarse for per-block charges).
void ChargeReadLatency(uint64_t bytes) {
  double mbps = g_simulated_read_mbps.load(std::memory_order_relaxed);
  if (mbps <= 0) return;
  int64_t ns = static_cast<int64_t>(static_cast<double>(bytes) * 1000.0 /
                                    mbps);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
    // spin
  }
}
}  // namespace

void SetSimulatedReadBandwidthMBps(double mbps) {
  g_simulated_read_mbps.store(mbps, std::memory_order_relaxed);
}

double SimulatedReadBandwidthMBps() {
  return g_simulated_read_mbps.load(std::memory_order_relaxed);
}

SsTableBuilder::SsTableBuilder() : SsTableBuilder(Options()) {}

SsTableBuilder::SsTableBuilder(Options options)
    : options_(options),
      data_block_(options.restart_interval),
      index_block_(options.restart_interval),
      bloom_(options.bloom_bits_per_key) {}

Status SsTableBuilder::Open(const std::string& path) {
  path_ = path;
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError("cannot create sstable " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status SsTableBuilder::WriteRaw(std::string_view data) {
  if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
    return Status::IOError("sstable write failed: " + path_);
  }
  offset_ += data.size();
  GlobalIoStats().bytes_written.fetch_add(data.size(),
                                          std::memory_order_relaxed);
  return Status::OK();
}

Status SsTableBuilder::Add(std::string_view key, std::string_view value) {
  if (file_ == nullptr) return Status::IOError("builder not open");
  if (num_entries_ > 0 && std::string_view(last_key_) >= key) {
    return Status::InvalidArgument("keys out of order in sstable build");
  }
  if (pending_index_) {
    // Index the finished block by its last key (shortest separator would be
    // an optimization; last key is correct).
    std::string handle;
    PutVarint64(&handle, pending_offset_);
    PutVarint64(&handle, pending_size_);
    index_block_.Add(pending_index_key_, handle);
    pending_index_ = false;
  }
  bloom_.AddKey(key);
  data_block_.Add(key, value);
  last_key_.assign(key.data(), key.size());
  ++num_entries_;
  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    JUST_RETURN_NOT_OK(FlushDataBlock());
  }
  return Status::OK();
}

Status SsTableBuilder::FlushDataBlock() {
  if (data_block_.empty()) return Status::OK();
  pending_index_key_ = data_block_.last_key();
  std::string block = data_block_.Finish();
  pending_offset_ = offset_;
  pending_size_ = block.size();
  pending_index_ = true;
  return WriteRaw(block);
}

Status SsTableBuilder::Finish() {
  if (file_ == nullptr) return Status::IOError("builder not open");
  JUST_RETURN_NOT_OK(FlushDataBlock());
  if (pending_index_) {
    std::string handle;
    PutVarint64(&handle, pending_offset_);
    PutVarint64(&handle, pending_size_);
    index_block_.Add(pending_index_key_, handle);
    pending_index_ = false;
  }
  std::string bloom = bloom_.Finish();
  uint64_t bloom_offset = offset_;
  JUST_RETURN_NOT_OK(WriteRaw(bloom));
  std::string index = index_block_.Finish();
  uint64_t index_offset = offset_;
  JUST_RETURN_NOT_OK(WriteRaw(index));

  std::string footer;
  PutFixed64(&footer, bloom_offset);
  PutFixed64(&footer, bloom.size());
  PutFixed64(&footer, index_offset);
  PutFixed64(&footer, index.size());
  PutFixed64(&footer, num_entries_);
  PutFixed64(&footer, kTableMagic);
  JUST_RETURN_NOT_OK(WriteRaw(footer));

  if (std::fflush(file_) != 0 || std::fclose(file_) != 0) {
    file_ = nullptr;
    return Status::IOError("sstable close failed: " + path_);
  }
  file_ = nullptr;
  return Status::OK();
}

SsTableReader::~SsTableReader() {
  if (fd_ >= 0) ::close(fd_);
}

Status SsTableReader::ReadAt(uint64_t offset, uint64_t size,
                             std::string* out) const {
  out->resize(size);
  ssize_t n = ::pread(fd_, out->data(), size, static_cast<off_t>(offset));
  if (n < 0 || static_cast<uint64_t>(n) != size) {
    return Status::IOError("pread failed on " + path_);
  }
  GlobalIoStats().bytes_read.fetch_add(size, std::memory_order_relaxed);
  GlobalIoStats().read_ops.fetch_add(1, std::memory_order_relaxed);
  ChargeReadLatency(size);
  return Status::OK();
}

Result<std::shared_ptr<SsTableReader>> SsTableReader::Open(
    const std::string& path, uint64_t file_id, BlockCache* cache) {
  auto table = std::shared_ptr<SsTableReader>(new SsTableReader());
  table->path_ = path;
  table->file_id_ = file_id;
  table->cache_ = cache;
  table->fd_ = ::open(path.c_str(), O_RDONLY);
  if (table->fd_ < 0) {
    return Status::IOError("cannot open sstable " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(table->fd_, &st) != 0) {
    return Status::IOError("fstat failed on " + path);
  }
  table->file_size_ = static_cast<uint64_t>(st.st_size);
  if (table->file_size_ < kFooterSize) {
    return Status::Corruption("sstable too small: " + path);
  }
  std::string footer;
  JUST_RETURN_NOT_OK(
      table->ReadAt(table->file_size_ - kFooterSize, kFooterSize, &footer));
  const char* p = footer.data();
  uint64_t bloom_offset = GetFixed64(p);
  uint64_t bloom_size = GetFixed64(p + 8);
  uint64_t index_offset = GetFixed64(p + 16);
  uint64_t index_size = GetFixed64(p + 24);
  table->num_entries_ = GetFixed64(p + 32);
  if (GetFixed64(p + 40) != kTableMagic) {
    return Status::Corruption("bad sstable magic: " + path);
  }
  JUST_RETURN_NOT_OK(table->ReadAt(bloom_offset, bloom_size,
                                   &table->bloom_data_));
  std::string index_data;
  JUST_RETURN_NOT_OK(table->ReadAt(index_offset, index_size, &index_data));
  JUST_ASSIGN_OR_RETURN(table->index_, Block::Parse(std::move(index_data)));

  // Key bounds, for scan/compaction pruning.
  Iterator it(table.get());
  it.SeekToFirst();
  if (it.Valid()) {
    table->smallest_key_ = it.key();
    Block::Iterator idx(table->index_.get());
    idx.SeekToFirst();
    std::string last_block_key;
    while (idx.Valid()) {
      last_block_key = idx.key();
      idx.Next();
    }
    table->largest_key_ = last_block_key;
  }
  return table;
}

Result<std::shared_ptr<Block>> SsTableReader::ReadBlock(uint64_t offset,
                                                        uint64_t size) const {
  if (cache_ != nullptr) {
    auto cached = cache_->Lookup(CacheKey(file_id_, offset));
    if (cached != nullptr) return *cached;
  }
  std::string data;
  JUST_RETURN_NOT_OK(ReadAt(offset, size, &data));
  JUST_ASSIGN_OR_RETURN(auto block, Block::Parse(std::move(data)));
  if (cache_ != nullptr) {
    cache_->Insert(CacheKey(file_id_, offset),
                   std::make_shared<std::shared_ptr<Block>>(block),
                   block->size_bytes());
  }
  return block;
}

Status SsTableReader::Get(std::string_view key, std::string* value) const {
  BloomFilter bloom(bloom_data_);
  if (!bloom.MayContain(key)) return Status::NotFound("bloom miss");
  Iterator it(this);
  it.Seek(key);
  if (it.Valid() && std::string_view(it.key()) == key) {
    value->assign(it.value().data(), it.value().size());
    return Status::OK();
  }
  return Status::NotFound("key not in table");
}

SsTableReader::Iterator::Iterator(const SsTableReader* table)
    : table_(table),
      index_iter_(std::make_unique<Block::Iterator>(table->index_.get())) {}

void SsTableReader::Iterator::LoadDataBlock(bool first) {
  data_block_ = nullptr;
  data_iter_ = nullptr;
  valid_ = false;
  if (!index_iter_->Valid()) return;
  const char* p = index_iter_->value().data();
  const char* limit = p + index_iter_->value().size();
  uint64_t offset, size;
  if (!GetVarint64(&p, limit, &offset) || !GetVarint64(&p, limit, &size)) {
    return;
  }
  auto block = table_->ReadBlock(offset, size);
  if (!block.ok()) return;
  data_block_ = block.value();
  data_iter_ = std::make_unique<Block::Iterator>(data_block_.get());
  if (first) data_iter_->SeekToFirst();
  valid_ = data_iter_->Valid();
}

void SsTableReader::Iterator::SkipEmptyBlocks() {
  while (!valid_ && index_iter_->Valid()) {
    index_iter_->Next();
    if (!index_iter_->Valid()) break;
    LoadDataBlock(true);
  }
}

void SsTableReader::Iterator::SeekToFirst() {
  index_iter_->SeekToFirst();
  LoadDataBlock(true);
  SkipEmptyBlocks();
}

void SsTableReader::Iterator::Seek(std::string_view target) {
  // Index keys are block last-keys, so the candidate block is the first
  // index entry with key >= target.
  index_iter_->Seek(target);
  LoadDataBlock(false);
  if (data_iter_ != nullptr) {
    data_iter_->Seek(target);
    valid_ = data_iter_->Valid();
  }
  SkipEmptyBlocks();
}

void SsTableReader::Iterator::Next() {
  if (!valid_) return;
  data_iter_->Next();
  valid_ = data_iter_->Valid();
  SkipEmptyBlocks();
}

}  // namespace just::kv
