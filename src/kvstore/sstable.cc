#include "kvstore/sstable.h"

#include <chrono>

#include "common/bytes.h"
#include "kvstore/wal.h"
#include "obs/trace.h"

namespace just::kv {

namespace {
// "JUSTSST\1": version 1 adds per-block + footer CRCs.
constexpr uint64_t kTableMagic = 0x4A55535453535401ull;
// bloom handle (16) + index handle (16) + num_entries (8) + magic (8)
// + footer crc (4).
constexpr size_t kFooterSize = 52;
constexpr size_t kBlockTrailerSize = 4;  // CRC32 of the block payload

std::string CacheKey(uint64_t file_id, uint64_t offset) {
  std::string key;
  PutFixed64(&key, file_id);
  PutFixed64(&key, offset);
  return key;
}
}  // namespace

IoStats::IoStats() {
  using SK = obs::Registry::SourceKind;
  sources_.emplace_back("just_kv_bytes_read_total", SK::kCumulative,
                        [this] { return bytes_read.Value(); });
  sources_.emplace_back("just_kv_read_ops_total", SK::kCumulative,
                        [this] { return read_ops.Value(); });
  sources_.emplace_back("just_kv_bytes_written_total", SK::kCumulative,
                        [this] { return bytes_written.Value(); });
  sources_.emplace_back("just_kv_bloom_prunes_total", SK::kCumulative,
                        [this] { return bloom_prunes.Value(); });
  sources_.emplace_back("just_kv_bloom_fallbacks_total", SK::kCumulative,
                        [this] { return bloom_fallbacks.Value(); });
  sources_.emplace_back("just_kv_get_sst_probes_total", SK::kCumulative,
                        [this] { return get_probes.Value(); });
}

IoTotals GlobalIoStats() {
  const obs::Registry& registry = obs::Registry::Global();
  IoTotals totals;
  totals.bytes_read = registry.CounterValue("just_kv_bytes_read_total");
  totals.read_ops = registry.CounterValue("just_kv_read_ops_total");
  totals.bytes_written = registry.CounterValue("just_kv_bytes_written_total");
  return totals;
}

IoStats& OrphanIoStats() {
  static IoStats* stats = new IoStats();
  return *stats;
}

namespace {
std::atomic<double> g_simulated_read_mbps{0.0};

// Spin-waits (sleep granularity is too coarse for per-block charges).
void ChargeReadLatency(uint64_t bytes) {
  double mbps = g_simulated_read_mbps.load(std::memory_order_relaxed);
  if (mbps <= 0) return;
  int64_t ns = static_cast<int64_t>(static_cast<double>(bytes) * 1000.0 /
                                    mbps);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < deadline) {
    // spin
  }
}
}  // namespace

void SetSimulatedReadBandwidthMBps(double mbps) {
  g_simulated_read_mbps.store(mbps, std::memory_order_relaxed);
}

double SimulatedReadBandwidthMBps() {
  return g_simulated_read_mbps.load(std::memory_order_relaxed);
}

SsTableBuilder::SsTableBuilder() : SsTableBuilder(Options()) {}

SsTableBuilder::SsTableBuilder(Options options)
    : options_(options),
      data_block_(options.restart_interval),
      index_block_(options.restart_interval),
      bloom_(options.bloom_bits_per_key) {}

Status SsTableBuilder::Open(const std::string& path, Env* env, IoStats* io) {
  if (env == nullptr) env = Env::Default();
  io_ = io != nullptr ? io : &OrphanIoStats();
  path_ = path;
  JUST_ASSIGN_OR_RETURN(file_, env->NewWritableFile(path, /*truncate=*/true));
  return Status::OK();
}

Status SsTableBuilder::WriteRaw(std::string_view data) {
  JUST_RETURN_NOT_OK(file_->Append(data));
  offset_ += data.size();
  io_->bytes_written.Add(data.size());
  return Status::OK();
}

Status SsTableBuilder::WriteBlock(std::string_view contents, uint64_t* offset,
                                  uint64_t* size) {
  *offset = offset_;
  *size = contents.size();
  JUST_RETURN_NOT_OK(WriteRaw(contents));
  std::string trailer;
  PutFixed32(&trailer, Crc32(contents));
  return WriteRaw(trailer);
}

Status SsTableBuilder::Add(std::string_view key, std::string_view value) {
  if (file_ == nullptr) return Status::IOError("builder not open");
  if (num_entries_ > 0 && std::string_view(last_key_) >= key) {
    return Status::InvalidArgument("keys out of order in sstable build");
  }
  if (pending_index_) {
    // Index the finished block by its last key (shortest separator would be
    // an optimization; last key is correct).
    std::string handle;
    PutVarint64(&handle, pending_offset_);
    PutVarint64(&handle, pending_size_);
    index_block_.Add(pending_index_key_, handle);
    pending_index_ = false;
  }
  bloom_.AddKey(key);
  data_block_.Add(key, value);
  last_key_.assign(key.data(), key.size());
  ++num_entries_;
  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    JUST_RETURN_NOT_OK(FlushDataBlock());
  }
  return Status::OK();
}

Status SsTableBuilder::FlushDataBlock() {
  if (data_block_.empty()) return Status::OK();
  pending_index_key_ = data_block_.last_key();
  std::string block = data_block_.Finish();
  pending_index_ = true;
  return WriteBlock(block, &pending_offset_, &pending_size_);
}

Status SsTableBuilder::Finish() {
  if (file_ == nullptr) return Status::IOError("builder not open");
  JUST_RETURN_NOT_OK(FlushDataBlock());
  if (pending_index_) {
    std::string handle;
    PutVarint64(&handle, pending_offset_);
    PutVarint64(&handle, pending_size_);
    index_block_.Add(pending_index_key_, handle);
    pending_index_ = false;
  }
  uint64_t bloom_offset, bloom_size;
  JUST_RETURN_NOT_OK(WriteBlock(bloom_.Finish(), &bloom_offset, &bloom_size));
  uint64_t index_offset, index_size;
  JUST_RETURN_NOT_OK(
      WriteBlock(index_block_.Finish(), &index_offset, &index_size));

  std::string footer;
  PutFixed64(&footer, bloom_offset);
  PutFixed64(&footer, bloom_size);
  PutFixed64(&footer, index_offset);
  PutFixed64(&footer, index_size);
  PutFixed64(&footer, num_entries_);
  PutFixed64(&footer, kTableMagic);
  PutFixed32(&footer, Crc32(footer));
  JUST_RETURN_NOT_OK(WriteRaw(footer));

  // A finished table must survive a crash: sync before reporting success.
  Status st = file_->Sync();
  if (st.ok()) st = file_->Close();
  file_ = nullptr;
  return st;
}

Status SsTableReader::ReadAt(uint64_t offset, uint64_t size,
                             std::string* out) const {
  JUST_RETURN_NOT_OK(file_->Read(offset, size, out));
  io_->bytes_read.Add(size);
  io_->read_ops.Increment();
  obs::TraceBytesRead(size);
  ChargeReadLatency(size);
  return Status::OK();
}

Result<std::shared_ptr<SsTableReader>> SsTableReader::Open(
    const std::string& path, uint64_t file_id, BlockCache* cache, Env* env,
    IoStats* io) {
  if (env == nullptr) env = Env::Default();
  auto table = std::shared_ptr<SsTableReader>(new SsTableReader());
  table->path_ = path;
  table->file_id_ = file_id;
  table->cache_ = cache;
  table->io_ = io != nullptr ? io : &OrphanIoStats();
  JUST_ASSIGN_OR_RETURN(table->file_, env->NewRandomAccessFile(path));
  JUST_ASSIGN_OR_RETURN(table->file_size_, env->GetFileSize(path));
  if (table->file_size_ < kFooterSize) {
    return Status::Corruption("sstable too small: " + path);
  }
  std::string footer;
  JUST_RETURN_NOT_OK(
      table->ReadAt(table->file_size_ - kFooterSize, kFooterSize, &footer));
  const char* p = footer.data();
  if (Crc32(std::string_view(footer.data(), kFooterSize - 4)) !=
      GetFixed32(p + kFooterSize - 4)) {
    return Status::Corruption("sstable footer checksum mismatch: " + path);
  }
  uint64_t bloom_offset = GetFixed64(p);
  uint64_t bloom_size = GetFixed64(p + 8);
  uint64_t index_offset = GetFixed64(p + 16);
  uint64_t index_size = GetFixed64(p + 24);
  table->num_entries_ = GetFixed64(p + 32);
  if (GetFixed64(p + 40) != kTableMagic) {
    return Status::Corruption("bad sstable magic: " + path);
  }

  // Bloom block: corruption degrades to always-match (counted), because the
  // filter only prunes lookups — losing it costs I/O, never correctness.
  std::string bloom_raw;
  JUST_RETURN_NOT_OK(table->ReadAt(bloom_offset,
                                   bloom_size + kBlockTrailerSize,
                                   &bloom_raw));
  if (Crc32(std::string_view(bloom_raw.data(), bloom_size)) ==
      GetFixed32(bloom_raw.data() + bloom_size)) {
    bloom_raw.resize(bloom_size);
    table->bloom_data_ = std::move(bloom_raw);
  } else {
    table->bloom_corrupt_ = true;
  }

  // Index block: corruption is fatal for the table.
  std::string index_raw;
  JUST_RETURN_NOT_OK(table->ReadAt(index_offset,
                                   index_size + kBlockTrailerSize,
                                   &index_raw));
  if (Crc32(std::string_view(index_raw.data(), index_size)) !=
      GetFixed32(index_raw.data() + index_size)) {
    return Status::Corruption("sstable index checksum mismatch: " + path);
  }
  index_raw.resize(index_size);
  JUST_ASSIGN_OR_RETURN(table->index_, Block::Parse(std::move(index_raw)));

  // Key bounds, for scan/compaction pruning.
  Iterator it(table.get());
  it.SeekToFirst();
  JUST_RETURN_NOT_OK(it.status());
  if (it.Valid()) {
    table->smallest_key_ = it.key();
    Block::Iterator idx(table->index_.get());
    idx.SeekToFirst();
    std::string last_block_key;
    while (idx.Valid()) {
      last_block_key = idx.key();
      idx.Next();
    }
    table->largest_key_ = last_block_key;
  }
  return table;
}

Result<std::shared_ptr<Block>> SsTableReader::ReadBlock(uint64_t offset,
                                                        uint64_t size) const {
  if (cache_ != nullptr) {
    auto cached = cache_->Lookup(CacheKey(file_id_, offset));
    if (cached != nullptr) {
      obs::TraceCacheHit();
      return *cached;
    }
    obs::TraceCacheMiss();
  }
  std::string data;
  JUST_RETURN_NOT_OK(ReadAt(offset, size + kBlockTrailerSize, &data));
  if (Crc32(std::string_view(data.data(), size)) !=
      GetFixed32(data.data() + size)) {
    return Status::Corruption("block checksum mismatch in " + path_);
  }
  data.resize(size);
  JUST_ASSIGN_OR_RETURN(auto block, Block::Parse(std::move(data)));
  if (cache_ != nullptr) {
    cache_->Insert(CacheKey(file_id_, offset),
                   std::make_shared<std::shared_ptr<Block>>(block),
                   block->size_bytes());
  }
  return block;
}

Status SsTableReader::Get(std::string_view key, std::string* value) const {
  BloomFilter bloom(bloom_data_);
  if (!bloom.valid()) {
    // Corrupt or missing filter: count the fallback, search unconditionally.
    bloom_fallback_lookups_.fetch_add(1, std::memory_order_relaxed);
    io_->bloom_fallbacks.Increment();
    obs::TraceBloomFallback();
  } else if (!bloom.MayContain(key)) {
    io_->bloom_prunes.Increment();
    obs::TraceBloomPrune();
    return Status::NotFound("bloom miss");
  }
  Iterator it(this);
  it.Seek(key);
  JUST_RETURN_NOT_OK(it.status());
  if (it.Valid() && std::string_view(it.key()) == key) {
    value->assign(it.value().data(), it.value().size());
    return Status::OK();
  }
  return Status::NotFound("key not in table");
}

SsTableReader::Iterator::Iterator(const SsTableReader* table)
    : table_(table),
      index_iter_(std::make_unique<Block::Iterator>(table->index_.get())) {}

Status SsTableReader::Iterator::status() const {
  if (!status_.ok()) return status_;
  if (data_iter_ != nullptr) return data_iter_->status();
  return Status::OK();
}

void SsTableReader::Iterator::LoadDataBlock(bool first) {
  data_block_ = nullptr;
  data_iter_ = nullptr;
  valid_ = false;
  if (!index_iter_->Valid()) return;
  const char* p = index_iter_->value().data();
  const char* limit = p + index_iter_->value().size();
  uint64_t offset, size;
  if (!GetVarint64(&p, limit, &offset) || !GetVarint64(&p, limit, &size)) {
    status_ = Status::Corruption("bad index entry in " + table_->path_);
    return;
  }
  auto block = table_->ReadBlock(offset, size);
  if (!block.ok()) {
    // Surface unreadable/corrupt blocks instead of silently ending the scan.
    status_ = block.status();
    return;
  }
  data_block_ = block.value();
  data_iter_ = std::make_unique<Block::Iterator>(data_block_.get());
  if (first) data_iter_->SeekToFirst();
  valid_ = data_iter_->Valid();
}

void SsTableReader::Iterator::SkipEmptyBlocks() {
  while (!valid_ && status_.ok() && index_iter_->Valid()) {
    index_iter_->Next();
    if (!index_iter_->Valid()) break;
    LoadDataBlock(true);
  }
}

void SsTableReader::Iterator::SeekToFirst() {
  status_ = Status::OK();
  index_iter_->SeekToFirst();
  LoadDataBlock(true);
  SkipEmptyBlocks();
}

void SsTableReader::Iterator::Seek(std::string_view target) {
  // Index keys are block last-keys, so the candidate block is the first
  // index entry with key >= target.
  status_ = Status::OK();
  index_iter_->Seek(target);
  LoadDataBlock(false);
  if (data_iter_ != nullptr) {
    data_iter_->Seek(target);
    valid_ = data_iter_->Valid();
  }
  SkipEmptyBlocks();
}

void SsTableReader::Iterator::Next() {
  if (!valid_) return;
  data_iter_->Next();
  valid_ = data_iter_->Valid();
  SkipEmptyBlocks();
}

}  // namespace just::kv
