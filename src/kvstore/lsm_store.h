#ifndef JUST_KVSTORE_LSM_STORE_H_
#define JUST_KVSTORE_LSM_STORE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "kvstore/env.h"
#include "kvstore/skiplist.h"
#include "kvstore/sstable.h"
#include "kvstore/wal.h"

namespace just::kv {

struct StoreOptions {
  std::string dir;                      ///< data directory (created if absent)
  size_t memtable_bytes = 4 << 20;      ///< flush threshold
  size_t block_cache_bytes = 32 << 20;  ///< shared block cache budget
  size_t block_size = 4096;
  int bloom_bits_per_key = 10;
  int compaction_trigger = 6;  ///< merge all tables when count reaches this
  bool sync_wal = false;       ///< fsync per commit (off for bulk loads)
  Env* env = nullptr;          ///< filesystem seam; nullptr = Env::Default()
};

/// One mutation in a WriteBatch. `is_delete` writes a tombstone and ignores
/// `value`.
struct WriteOp {
  std::string key;
  std::string value;
  bool is_delete = false;
};

/// A single-node ordered key-value store with LSM-tree storage: writes land
/// in a WAL + skip-list memtable, flush to immutable SSTables, and scans
/// merge all sources newest-first. This is the region-server storage engine
/// (the role one HBase RegionServer plays for JUST). Keys are arbitrary byte
/// strings; updates never rebuild indexes — the property that makes JUST
/// "update-enabled" (Section I).
///
/// Concurrency model (see DESIGN.md "Write path"):
///  - Group commit: writers enqueue on an internal queue; the front writer
///    becomes the leader, appends the whole queue's records to the WAL with
///    at most one fsync, and applies them to the memtable. N concurrent
///    writers pay ~1 leader I/O instead of N serialized ones.
///  - Background flush: when the active memtable fills it is swapped for a
///    fresh one under the lock and handed — immutable — to a background
///    thread that builds, fsyncs, renames, and MANIFEST-commits the SSTable.
///    Writers only stall if the *next* memtable also fills before the
///    previous flush finishes (counted in just_kv_write_stalls_total).
///  - Snapshot reads: Get/Scan pin shared_ptr references to the memtables
///    and SSTables under the lock, then read without it — long scans never
///    block writers, and a scan callback may call Put/Delete/Get/Flush on
///    the same store without self-deadlocking.
///
/// Failure model (see DESIGN.md "Failure model"):
///  - The WAL is segmented: each memtable has its own segment(s), and a
///    segment is deleted only after the flush covering it has committed to
///    the MANIFEST (which records the minimum live segment, so a segment
///    whose deletion failed can never resurrect stale data).
///  - Flush and compaction are crash-atomic: tables are built in `.tmp`
///    files, fsynced, renamed into place, and only referenced by readers
///    after the (also fsynced) MANIFEST records them.
///  - Startup quarantines stray files: `.tmp` leftovers are deleted and
///    `.sst` files the MANIFEST does not reference are renamed to
///    `.quarantine` so a half-finished flush can never serve reads.
///  - Every SSTable block and the WAL tail are CRC-checked; corruption
///    surfaces as Status::Corruption (bloom filters degrade to always-match
///    and are counted in Stats instead — they gate I/O, not correctness).
///  - A background-flush failure is retried a few times, then latched into
///    a sticky error returned by subsequent writes; the covering WAL
///    segments are retained, so nothing acknowledged is ever lost silently.
class LsmStore {
 public:
  static Result<std::unique_ptr<LsmStore>> Open(const StoreOptions& options);

  ~LsmStore();

  LsmStore(const LsmStore&) = delete;
  LsmStore& operator=(const LsmStore&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);

  /// Applies every op atomically with respect to the WAL (one group-commit
  /// entry) — the batch either replays fully after a crash or not at all
  /// beyond the synced prefix. This is the bulk-ingest fast path.
  Status WriteBatch(const std::vector<WriteOp>& ops);

  Status Get(std::string_view key, std::string* value) const;

  /// Ordered scan of [start, end); `end` empty means "to the last key".
  /// The callback returns false to stop early. The store lock is NOT held
  /// while the callback runs: callbacks may write to this same store.
  Status Scan(std::string_view start, std::string_view end,
              const std::function<bool(std::string_view key,
                                       std::string_view value)>& fn) const;

  /// Forces the memtable to disk and waits until the flush is durable
  /// (MANIFEST-committed). Concurrent writers keep running meanwhile.
  Status Flush();

  /// Flushes, then merges all SSTables into one (size-tiered full
  /// compaction), dropping tombstones.
  Status CompactAll();

  /// Thin view over this store's registry-backed counters plus the usual
  /// structural numbers. The authoritative values live in `io_stats()` and
  /// the block cache; this struct just snapshots them.
  struct Stats {
    size_t num_sstables = 0;
    size_t memtable_entries = 0;  ///< active + immutable memtable
    size_t memtable_bytes = 0;
    uint64_t disk_bytes = 0;
    uint64_t sstable_entries = 0;  ///< includes not-yet-compacted duplicates
    /// Tables whose bloom block failed its checksum (serving via fallback).
    size_t corrupt_bloom_tables = 0;
    /// Point lookups that could not use a bloom filter and searched anyway.
    uint64_t bloom_fallbacks = 0;
    /// Point lookups a bloom filter pruned without touching data blocks.
    uint64_t bloom_prunes = 0;
    /// Files quarantined at the last recovery (stray `.sst` leftovers).
    size_t quarantined_files = 0;
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    uint64_t read_ops = 0;
    uint64_t block_cache_hits = 0;
    uint64_t block_cache_misses = 0;
  };
  Stats GetStats() const;

  /// Per-store I/O counters (registered into obs::Registry as just_kv_*).
  IoStats& io_stats() const { return io_stats_; }

  const StoreOptions& options() const { return options_; }

 private:
  struct Writer;  ///< one queued (batch of) mutation(s); see lsm_store.cc

  explicit LsmStore(const StoreOptions& options);

  Status Recover();
  /// Deletes `.tmp` leftovers and quarantines `.sst` files the manifest
  /// does not reference (partial flushes/compactions from a crash).
  Status QuarantineStrays(const std::set<uint64_t>& live);

  /// Enqueues `ops` (and/or a flush request) and blocks until a leader has
  /// committed them. The caller owning the front of the queue becomes the
  /// leader for everything queued behind it.
  Status QueueWrite(const WriteOp* ops, size_t count, bool flush_request);
  /// Leader body: WAL group append (+ optional fsync), memtable apply,
  /// memtable swap when full. Serialized by queue leadership, so wal_ needs
  /// no extra lock.
  Status CommitBatch(const std::vector<Writer*>& batch, size_t total_ops);
  /// Swaps the full memtable for a fresh one and wakes the flusher. Stalls
  /// (counted) while a previous immutable memtable is still flushing.
  /// Expects `lock` held; may release and reacquire it.
  Status SwapMemtableLocked(std::unique_lock<std::shared_mutex>& lock);

  void BackgroundLoop();
  /// Builds + installs the SSTable for imm_; expects `lock` held and
  /// releases it during the build. Retries transient failures, then latches
  /// bg_error_.
  void BackgroundFlush(std::unique_lock<std::shared_mutex>& lock);
  /// Full compaction body shared by the background trigger and CompactAll.
  /// Expects `lock` held; releases it during the merge.
  Status CompactLocked(std::unique_lock<std::shared_mutex>& lock);
  /// Builds `file_number`.sst from `mem` (tmp + fsync + rename) and opens a
  /// reader for it. Runs without the store lock: `mem` is frozen and every
  /// other input (env, options, cache) is immutable after Open().
  Status BuildSsTable(const SkipList& mem, uint64_t file_number,
                      std::shared_ptr<SsTableReader>* out);

  Status WriteManifestLocked();
  std::string SstPath(uint64_t file_number) const;
  /// Segment 0 is the legacy single-file name ("wal.log"); rotated segments
  /// are "wal-NNNNNN.log".
  std::string WalSegmentPath(uint64_t segment) const;
  /// Deletes (best-effort) every live WAL segment numbered <= cutoff.
  void RemoveWalSegmentsLocked(uint64_t cutoff);

  StoreOptions options_;
  Env* env_;

  /// Guards all state below it. Writers additionally serialize through the
  /// writer queue; wal_ is owned by the current queue leader (plus Recover
  /// and the destructor, which run without concurrent writers).
  mutable std::shared_mutex mu_;
  std::shared_ptr<SkipList> memtable_;        ///< active (mutable)
  std::shared_ptr<SkipList> imm_;             ///< frozen, being flushed
  WalWriter wal_;                             ///< active segment writer
  uint64_t wal_number_ = 0;                   ///< active segment number
  std::set<uint64_t> wal_segments_;           ///< live segments, incl. active
  uint64_t imm_wal_cutoff_ = 0;  ///< segments <= this cover imm_
  uint64_t min_wal_number_ = 0;  ///< from MANIFEST: older segments are dead
  /// Newest table last (flush order); scans give later tables precedence.
  std::vector<std::shared_ptr<SsTableReader>> sstables_;
  uint64_t next_file_number_ = 1;
  size_t quarantined_files_ = 0;
  Status bg_error_;               ///< sticky background-flush failure
  bool stop_bg_ = false;
  bool compact_pending_ = false;
  bool compaction_running_ = false;
  uint64_t swap_seq_ = 0;     ///< memtable swaps scheduled
  uint64_t flushed_seq_ = 0;  ///< memtable swaps whose flush is durable
  uint64_t imm_seq_ = 0;      ///< swap_seq_ value that produced imm_

  /// Group-commit writer queue (leader = front).
  std::mutex writers_mu_;
  std::deque<Writer*> writers_;

  /// Wakes the background thread (imm_ set / compaction pending / stop).
  std::condition_variable_any bg_cv_;
  /// Signals flush completion or bg_error_ to stalled writers and Flush().
  std::condition_variable_any flush_done_cv_;

  std::unique_ptr<BlockCache> block_cache_;
  mutable IoStats io_stats_;
  std::thread bg_thread_;
  /// Last member: these sources read the fields above, so they must be
  /// unregistered (and cumulative values folded) before anything else dies.
  std::vector<obs::ScopedSource> metric_sources_;
};

}  // namespace just::kv

#endif  // JUST_KVSTORE_LSM_STORE_H_
