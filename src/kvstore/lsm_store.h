#ifndef JUST_KVSTORE_LSM_STORE_H_
#define JUST_KVSTORE_LSM_STORE_H_

#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "kvstore/skiplist.h"
#include "kvstore/sstable.h"
#include "kvstore/wal.h"

namespace just::kv {

struct StoreOptions {
  std::string dir;                      ///< data directory (created if absent)
  size_t memtable_bytes = 4 << 20;      ///< flush threshold
  size_t block_cache_bytes = 32 << 20;  ///< shared block cache budget
  size_t block_size = 4096;
  int bloom_bits_per_key = 10;
  int compaction_trigger = 6;  ///< merge all tables when count reaches this
  bool sync_wal = false;       ///< fflush per write (off for bulk loads)
};

/// A single-node ordered key-value store with LSM-tree storage: writes land
/// in a WAL + skip-list memtable, flush to immutable SSTables, and scans
/// merge all sources newest-first. This is the region-server storage engine
/// (the role one HBase RegionServer plays for JUST). Keys are arbitrary byte
/// strings; updates never rebuild indexes — the property that makes JUST
/// "update-enabled" (Section I).
class LsmStore {
 public:
  static Result<std::unique_ptr<LsmStore>> Open(const StoreOptions& options);

  ~LsmStore();

  LsmStore(const LsmStore&) = delete;
  LsmStore& operator=(const LsmStore&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);
  Status Get(std::string_view key, std::string* value) const;

  /// Ordered scan of [start, end); `end` empty means "to the last key".
  /// The callback returns false to stop early.
  Status Scan(std::string_view start, std::string_view end,
              const std::function<bool(std::string_view key,
                                       std::string_view value)>& fn) const;

  /// Forces the memtable to disk.
  Status Flush();

  /// Merges all SSTables into one (size-tiered full compaction),
  /// dropping tombstones.
  Status CompactAll();

  struct Stats {
    size_t num_sstables = 0;
    size_t memtable_entries = 0;
    size_t memtable_bytes = 0;
    uint64_t disk_bytes = 0;
    uint64_t sstable_entries = 0;  ///< includes not-yet-compacted duplicates
  };
  Stats GetStats() const;

  const StoreOptions& options() const { return options_; }

 private:
  explicit LsmStore(const StoreOptions& options);

  Status Recover();
  Status WriteInternal(WalRecordType type, std::string_view key,
                       std::string_view value);
  Status FlushLocked();
  Status MergeAllLocked();
  Status WriteManifestLocked();
  std::string SstPath(uint64_t file_number) const;
  std::string WalPath() const;

  StoreOptions options_;
  mutable std::shared_mutex mu_;
  std::unique_ptr<SkipList> memtable_;
  WalWriter wal_;
  /// Newest table last (flush order); scans give later tables precedence.
  std::vector<std::shared_ptr<SsTableReader>> sstables_;
  uint64_t next_file_number_ = 1;
  std::unique_ptr<BlockCache> block_cache_;
};

}  // namespace just::kv

#endif  // JUST_KVSTORE_LSM_STORE_H_
