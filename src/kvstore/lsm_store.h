#ifndef JUST_KVSTORE_LSM_STORE_H_
#define JUST_KVSTORE_LSM_STORE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "kvstore/env.h"
#include "kvstore/skiplist.h"
#include "kvstore/sstable.h"
#include "kvstore/wal.h"

namespace just::kv {

/// How SSTables are merged as they accumulate. See docs/STORAGE_TUNING.md
/// for the write/read-amplification trade-off each style makes.
enum class CompactionStyle {
  /// LevelDB-style leveled compaction: L0 holds overlapping flush outputs;
  /// L1+ are sorted runs of non-overlapping, key-range-partitioned tables.
  /// A compaction merges one L(n) file with only the overlapping L(n+1)
  /// files, so writes are rewritten O(levels) times and a Get probes at
  /// most (L0 files + one table per deeper level).
  kLeveled,
  /// Legacy single-shot full compaction: merge *every* table into one run
  /// whenever the table count reaches `compaction_trigger`. O(N) write
  /// amplification — kept for benchmarking against kLeveled.
  kFull,
};

struct StoreOptions {
  std::string dir;                      ///< data directory (created if absent)
  size_t memtable_bytes = 4 << 20;      ///< flush threshold
  size_t block_cache_bytes = 32 << 20;  ///< shared block cache budget
  size_t block_size = 4096;
  int bloom_bits_per_key = 10;
  /// kLeveled: start an L0->L1 compaction when L0 holds this many tables.
  /// kFull: merge all tables into one when the total count reaches this.
  int compaction_trigger = 6;
  bool sync_wal = false;  ///< fsync per commit (off for bulk loads)
  Env* env = nullptr;     ///< filesystem seam; nullptr = Env::Default()

  CompactionStyle compaction_style = CompactionStyle::kLeveled;
  /// Maximum level count (levels beyond the bottom are never created; a
  /// reopened store grows extra levels if an older MANIFEST references
  /// them). Minimum 2: L0 plus one sorted run.
  int num_levels = 7;
  /// Size budget ratio between adjacent levels: L(n+1) holds `level_fanout`
  /// times the bytes of L(n). Write amplification per level ~= fanout.
  int level_fanout = 10;
  /// Byte budget of L1; L(n) may hold level_base_bytes * fanout^(n-1).
  size_t level_base_bytes = 8 << 20;
  /// Compaction outputs roll to a new SSTable at this size, so one L(n)
  /// file only ever overlaps a bounded byte range of L(n+1).
  size_t target_file_size = 2 << 20;
};

/// One mutation in a WriteBatch. `is_delete` writes a tombstone and ignores
/// `value`.
struct WriteOp {
  std::string key;
  std::string value;
  bool is_delete = false;
};

/// A single-node ordered key-value store with LSM-tree storage: writes land
/// in a WAL + skip-list memtable, flush to immutable L0 SSTables, and
/// leveled compaction keeps deeper levels as non-overlapping sorted runs so
/// reads probe a bounded set of tables. This is the region-server storage
/// engine
/// (the role one HBase RegionServer plays for JUST). Keys are arbitrary byte
/// strings; updates never rebuild indexes — the property that makes JUST
/// "update-enabled" (Section I).
///
/// Concurrency model (see DESIGN.md "Write path"):
///  - Group commit: writers enqueue on an internal queue; the front writer
///    becomes the leader, appends the whole queue's records to the WAL with
///    at most one fsync, and applies them to the memtable. N concurrent
///    writers pay ~1 leader I/O instead of N serialized ones.
///  - Background flush: when the active memtable fills it is swapped for a
///    fresh one under the lock and handed — immutable — to a background
///    thread that builds, fsyncs, renames, and MANIFEST-commits the SSTable.
///    Writers only stall if the *next* memtable also fills before the
///    previous flush finishes (counted in just_kv_write_stalls_total).
///  - Snapshot reads: Get/Scan pin shared_ptr references to the memtables
///    and SSTables under the lock, then read without it — long scans never
///    block writers, and a scan callback may call Put/Delete/Get/Flush on
///    the same store without self-deadlocking.
///
/// Leveled compaction (the default style; see docs/STORAGE_TUNING.md):
///  - Flush outputs land in L0 and may overlap each other; L1+ hold
///    non-overlapping tables sorted by key range, recorded with their
///    smallest/largest keys in the MANIFEST.
///  - When L0 reaches `compaction_trigger` tables, all of L0 merges with
///    the overlapping L1 files. When L(n>=1) exceeds its byte budget
///    (level_base_bytes * fanout^(n-1)), one file — picked round-robin by
///    key range — merges with the overlapping L(n+1) files. Outputs split
///    at `target_file_size`.
///  - Tombstones are dropped only when the output is the bottom-most data:
///    no level below the output holds any table, so nothing older can
///    resurrect. Bottom-level tables therefore never contain tombstones.
///  - Get checks the memtables, then L0 newest-to-oldest, then — because
///    deeper levels do not overlap — at most ONE binary-searched candidate
///    table per L1+ level. Scan runs a k-way heap merge over one iterator
///    per L0 table plus one per deeper level.
///
/// Failure model (see DESIGN.md "Failure model"):
///  - The WAL is segmented: each memtable has its own segment(s), and a
///    segment is deleted only after the flush covering it has committed to
///    the MANIFEST (which records the minimum live segment, so a segment
///    whose deletion failed can never resurrect stale data).
///  - Flush and compaction are crash-atomic: tables are built in `.tmp`
///    files, fsynced, renamed into place, and only referenced by readers
///    after the (also fsynced) MANIFEST records them.
///  - Startup quarantines stray files: `.tmp` leftovers are deleted and
///    `.sst` files the MANIFEST does not reference are renamed to
///    `.quarantine` so a half-finished flush can never serve reads.
///  - Every SSTable block and the WAL tail are CRC-checked; corruption
///    surfaces as Status::Corruption (bloom filters degrade to always-match
///    and are counted in Stats instead — they gate I/O, not correctness).
///  - A background-flush failure is retried a few times, then latched into
///    a sticky error returned by subsequent writes; the covering WAL
///    segments are retained, so nothing acknowledged is ever lost silently.
class LsmStore {
 public:
  static Result<std::unique_ptr<LsmStore>> Open(const StoreOptions& options);

  ~LsmStore();

  LsmStore(const LsmStore&) = delete;
  LsmStore& operator=(const LsmStore&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);

  /// Applies every op atomically with respect to the WAL (one group-commit
  /// entry) — the batch either replays fully after a crash or not at all
  /// beyond the synced prefix. This is the bulk-ingest fast path.
  Status WriteBatch(const std::vector<WriteOp>& ops);

  Status Get(std::string_view key, std::string* value) const;

  /// Ordered scan of [start, end); `end` empty means "to the last key".
  /// The callback returns false to stop early. The store lock is NOT held
  /// while the callback runs: callbacks may write to this same store.
  Status Scan(std::string_view start, std::string_view end,
              const std::function<bool(std::string_view key,
                                       std::string_view value)>& fn) const;

  /// Forces the memtable to disk and waits until the flush is durable
  /// (MANIFEST-committed). Concurrent writers keep running meanwhile.
  Status Flush();

  /// Flushes, then merges every level into one bottom-level SSTable,
  /// dropping all tombstones (a manual major compaction). The output is
  /// deliberately NOT split at `target_file_size`: a split result could
  /// exceed `compaction_trigger` and re-arm the style's own trigger.
  Status CompactAll();

  /// Blocks until no flush is pending or running and the compaction debt is
  /// paid off (no level over budget). Returns the sticky background error,
  /// if any. Tests and bulk loaders use this to measure the steady state.
  Status WaitForBackgroundIdle();

  /// Thin view over this store's registry-backed counters plus the usual
  /// structural numbers. The authoritative values live in `io_stats()` and
  /// the block cache; this struct just snapshots them.
  struct Stats {
    size_t num_sstables = 0;
    /// SSTable count per level, L0 first (empty trailing levels included).
    std::vector<size_t> level_files;
    /// Byte total per level, parallel to `level_files`.
    std::vector<uint64_t> level_bytes;
    size_t memtable_entries = 0;  ///< active + immutable memtable
    size_t memtable_bytes = 0;
    uint64_t disk_bytes = 0;
    uint64_t sstable_entries = 0;  ///< includes not-yet-compacted duplicates
    /// Tables whose bloom block failed its checksum (serving via fallback).
    size_t corrupt_bloom_tables = 0;
    /// Point lookups that could not use a bloom filter and searched anyway.
    uint64_t bloom_fallbacks = 0;
    /// Point lookups a bloom filter pruned without touching data blocks.
    uint64_t bloom_prunes = 0;
    /// Files quarantined at the last recovery (stray `.sst` leftovers).
    size_t quarantined_files = 0;
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    uint64_t read_ops = 0;
    uint64_t block_cache_hits = 0;
    uint64_t block_cache_misses = 0;
  };
  Stats GetStats() const;

  /// Per-store I/O counters (registered into obs::Registry as just_kv_*).
  IoStats& io_stats() const { return io_stats_; }

  const StoreOptions& options() const { return options_; }

  /// One live SSTable, as tests and tools see it.
  struct TableInfo {
    uint64_t file_number = 0;
    std::string path;
    std::string smallest_key;
    std::string largest_key;
    uint64_t file_size = 0;
    uint64_t num_entries = 0;
  };
  /// Per-level table layout. `[0]` is L0 in flush order (newest last);
  /// deeper levels are sorted by smallest_key and must not overlap — the
  /// invariant the property tests assert.
  std::vector<std::vector<TableInfo>> GetLevelInfo() const;

 private:
  struct Writer;  ///< one queued (batch of) mutation(s); see lsm_store.cc

  explicit LsmStore(const StoreOptions& options);

  Status Recover();
  /// Loads the MANIFEST body into levels_/min_wal_number_. Handles both the
  /// current v2 format ("just-manifest 2" header, per-file level + key
  /// range) and the legacy headerless v1 list of file numbers, which all
  /// load into L0 — exactly the set a v1 store's full-merge scans consulted.
  Status ParseManifestLocked(const std::string& contents,
                             std::set<uint64_t>* live);
  /// Registers the per-level file/byte gauges. Called from Open() after
  /// Recover() fixed the level count; must run without mu_ held (source
  /// registration takes the registry mutex, whose callbacks take mu_).
  void RegisterLevelMetricSources();
  /// Deletes `.tmp` leftovers and quarantines `.sst` files the manifest
  /// does not reference (partial flushes/compactions from a crash).
  Status QuarantineStrays(const std::set<uint64_t>& live);

  /// Enqueues `ops` (and/or a flush request) and blocks until a leader has
  /// committed them. The caller owning the front of the queue becomes the
  /// leader for everything queued behind it.
  Status QueueWrite(const WriteOp* ops, size_t count, bool flush_request);
  /// Leader body: WAL group append (+ optional fsync), memtable apply,
  /// memtable swap when full. Serialized by queue leadership, so wal_ needs
  /// no extra lock.
  Status CommitBatch(const std::vector<Writer*>& batch, size_t total_ops);
  /// Swaps the full memtable for a fresh one and wakes the flusher. Stalls
  /// (counted) while a previous immutable memtable is still flushing.
  /// Expects `lock` held; may release and reacquire it.
  Status SwapMemtableLocked(std::unique_lock<std::shared_mutex>& lock);

  void BackgroundLoop();
  /// Builds + installs the SSTable for imm_; expects `lock` held and
  /// releases it during the build. Retries transient failures, then latches
  /// bg_error_.
  void BackgroundFlush(std::unique_lock<std::shared_mutex>& lock);
  /// One leveled (or full) compaction, described before the merge runs.
  struct CompactionJob {
    /// Level the `upper` inputs came from; -1 for a full compaction that
    /// consumes every table of every level.
    int upper_level = -1;
    int output_level = 0;
    /// Inputs, newest first — upper-level files shadow lower-level ones.
    std::vector<std::shared_ptr<SsTableReader>> upper;
    /// Overlapping files already at `output_level` (older than `upper`).
    std::vector<std::shared_ptr<SsTableReader>> lower;
    /// True when no live data sits below `output_level`, so tombstones have
    /// nothing left to mask and can be dropped.
    bool drop_tombstones = false;
  };

  /// Byte budget of L(n>=1): level_base_bytes * fanout^(n-1).
  uint64_t MaxBytesForLevel(int level) const;
  /// Lowest level that currently needs compacting, or -1. L0 compacts on
  /// file count (compaction_trigger); deeper levels on their byte budget.
  int PickCompactionLevelLocked() const;
  /// Builds the job for compacting `level` into `level + 1`: all of L0 (plus
  /// overlapping L1) for level 0, else the cursor-picked file plus the
  /// overlapping files below.
  CompactionJob PickCompactionLocked(int level);
  /// Merges `job`'s inputs into `target_file_size`-sized outputs at
  /// job.output_level, installs them, and commits the MANIFEST. Expects
  /// `lock` held; releases it during the merge. No-op while another
  /// compaction runs (compaction_running_ serializes installers).
  Status RunCompactionLocked(std::unique_lock<std::shared_mutex>& lock,
                             CompactionJob job);
  /// CompactAll body: one full merge of every table into the bottom level.
  Status CompactEverythingLocked(std::unique_lock<std::shared_mutex>& lock);
  /// kFull-style background trigger: total table count vs compaction_trigger.
  bool FullCompactionNeededLocked() const;
  /// True when the current style has compaction work to do.
  bool CompactionNeededLocked() const;
  /// Sets compact_pending_ (and wakes the background thread) when needed.
  void MaybeScheduleCompactionLocked();
  uint64_t LevelBytesLocked(int level) const;
  size_t TotalTablesLocked() const;
  /// Builds `file_number`.sst from `mem` (tmp + fsync + rename) and opens a
  /// reader for it. Runs without the store lock: `mem` is frozen and every
  /// other input (env, options, cache) is immutable after Open().
  Status BuildSsTable(const SkipList& mem, uint64_t file_number,
                      std::shared_ptr<SsTableReader>* out);

  Status WriteManifestLocked();
  std::string SstPath(uint64_t file_number) const;
  /// Segment 0 is the legacy single-file name ("wal.log"); rotated segments
  /// are "wal-NNNNNN.log".
  std::string WalSegmentPath(uint64_t segment) const;
  /// Deletes (best-effort) every live WAL segment numbered <= cutoff.
  void RemoveWalSegmentsLocked(uint64_t cutoff);

  StoreOptions options_;
  Env* env_;

  /// Guards all state below it. Writers additionally serialize through the
  /// writer queue; wal_ is owned by the current queue leader (plus Recover
  /// and the destructor, which run without concurrent writers).
  mutable std::shared_mutex mu_;
  std::shared_ptr<SkipList> memtable_;        ///< active (mutable)
  std::shared_ptr<SkipList> imm_;             ///< frozen, being flushed
  WalWriter wal_;                             ///< active segment writer
  uint64_t wal_number_ = 0;                   ///< active segment number
  std::set<uint64_t> wal_segments_;           ///< live segments, incl. active
  uint64_t imm_wal_cutoff_ = 0;  ///< segments <= this cover imm_
  uint64_t min_wal_number_ = 0;  ///< from MANIFEST: older segments are dead
  /// levels_[0] = L0, newest table last (flush order; later tables take
  /// precedence). levels_[n>=1] are sorted by smallest_key and pairwise
  /// non-overlapping. Sized to options_.num_levels at construction; grows
  /// only if an older MANIFEST references deeper levels.
  std::vector<std::vector<std::shared_ptr<SsTableReader>>> levels_;
  /// Round-robin pick cursor per level: the next compaction at level n
  /// takes the first file whose smallest_key exceeds compact_cursor_[n],
  /// wrapping — every key range eventually gets its turn (LevelDB's
  /// compaction pointer).
  std::vector<std::string> compact_cursor_;
  uint64_t next_file_number_ = 1;
  size_t quarantined_files_ = 0;
  Status bg_error_;               ///< sticky background-flush failure
  bool stop_bg_ = false;
  bool compact_pending_ = false;
  bool compaction_running_ = false;
  uint64_t swap_seq_ = 0;     ///< memtable swaps scheduled
  uint64_t flushed_seq_ = 0;  ///< memtable swaps whose flush is durable
  uint64_t imm_seq_ = 0;      ///< swap_seq_ value that produced imm_

  /// Group-commit writer queue (leader = front).
  std::mutex writers_mu_;
  std::deque<Writer*> writers_;

  /// Wakes the background thread (imm_ set / compaction pending / stop).
  std::condition_variable_any bg_cv_;
  /// Signals flush completion or bg_error_ to stalled writers and Flush().
  std::condition_variable_any flush_done_cv_;

  std::unique_ptr<BlockCache> block_cache_;
  mutable IoStats io_stats_;
  std::thread bg_thread_;
  /// Last member: these sources read the fields above, so they must be
  /// unregistered (and cumulative values folded) before anything else dies.
  std::vector<obs::ScopedSource> metric_sources_;
};

}  // namespace just::kv

#endif  // JUST_KVSTORE_LSM_STORE_H_
