#ifndef JUST_KVSTORE_LSM_STORE_H_
#define JUST_KVSTORE_LSM_STORE_H_

#include <functional>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "kvstore/env.h"
#include "kvstore/skiplist.h"
#include "kvstore/sstable.h"
#include "kvstore/wal.h"

namespace just::kv {

struct StoreOptions {
  std::string dir;                      ///< data directory (created if absent)
  size_t memtable_bytes = 4 << 20;      ///< flush threshold
  size_t block_cache_bytes = 32 << 20;  ///< shared block cache budget
  size_t block_size = 4096;
  int bloom_bits_per_key = 10;
  int compaction_trigger = 6;  ///< merge all tables when count reaches this
  bool sync_wal = false;       ///< fsync per write (off for bulk loads)
  Env* env = nullptr;          ///< filesystem seam; nullptr = Env::Default()
};

/// A single-node ordered key-value store with LSM-tree storage: writes land
/// in a WAL + skip-list memtable, flush to immutable SSTables, and scans
/// merge all sources newest-first. This is the region-server storage engine
/// (the role one HBase RegionServer plays for JUST). Keys are arbitrary byte
/// strings; updates never rebuild indexes — the property that makes JUST
/// "update-enabled" (Section I).
///
/// Failure model (see DESIGN.md "Failure model"):
///  - Flush and compaction are crash-atomic: tables are built in `.tmp`
///    files, fsynced, renamed into place, and only referenced by readers
///    after the (also fsynced) MANIFEST records them. The WAL is truncated
///    only after the flush it covers is durable.
///  - Startup quarantines stray files: `.tmp` leftovers are deleted and
///    `.sst` files the MANIFEST does not reference are renamed to
///    `.quarantine` so a half-finished flush can never serve reads.
///  - Every SSTable block and the WAL tail are CRC-checked; corruption
///    surfaces as Status::Corruption (bloom filters degrade to always-match
///    and are counted in Stats instead — they gate I/O, not correctness).
class LsmStore {
 public:
  static Result<std::unique_ptr<LsmStore>> Open(const StoreOptions& options);

  ~LsmStore();

  LsmStore(const LsmStore&) = delete;
  LsmStore& operator=(const LsmStore&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);
  Status Get(std::string_view key, std::string* value) const;

  /// Ordered scan of [start, end); `end` empty means "to the last key".
  /// The callback returns false to stop early.
  Status Scan(std::string_view start, std::string_view end,
              const std::function<bool(std::string_view key,
                                       std::string_view value)>& fn) const;

  /// Forces the memtable to disk.
  Status Flush();

  /// Merges all SSTables into one (size-tiered full compaction),
  /// dropping tombstones.
  Status CompactAll();

  /// Thin view over this store's registry-backed counters plus the usual
  /// structural numbers. The authoritative values live in `io_stats()` and
  /// the block cache; this struct just snapshots them.
  struct Stats {
    size_t num_sstables = 0;
    size_t memtable_entries = 0;
    size_t memtable_bytes = 0;
    uint64_t disk_bytes = 0;
    uint64_t sstable_entries = 0;  ///< includes not-yet-compacted duplicates
    /// Tables whose bloom block failed its checksum (serving via fallback).
    size_t corrupt_bloom_tables = 0;
    /// Point lookups that could not use a bloom filter and searched anyway.
    uint64_t bloom_fallbacks = 0;
    /// Point lookups a bloom filter pruned without touching data blocks.
    uint64_t bloom_prunes = 0;
    /// Files quarantined at the last recovery (stray `.sst` leftovers).
    size_t quarantined_files = 0;
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    uint64_t read_ops = 0;
    uint64_t block_cache_hits = 0;
    uint64_t block_cache_misses = 0;
  };
  Stats GetStats() const;

  /// Per-store I/O counters (registered into obs::Registry as just_kv_*).
  IoStats& io_stats() const { return io_stats_; }

  const StoreOptions& options() const { return options_; }

 private:
  explicit LsmStore(const StoreOptions& options);

  Status Recover();
  /// Deletes `.tmp` leftovers and quarantines `.sst` files the manifest
  /// does not reference (partial flushes/compactions from a crash).
  Status QuarantineStrays(const std::set<uint64_t>& live);
  Status WriteInternal(WalRecordType type, std::string_view key,
                       std::string_view value);
  Status FlushLocked();
  Status MergeAllLocked();
  Status WriteManifestLocked();
  std::string SstPath(uint64_t file_number) const;
  std::string WalPath() const;

  StoreOptions options_;
  Env* env_;
  mutable std::shared_mutex mu_;
  std::unique_ptr<SkipList> memtable_;
  WalWriter wal_;
  /// Newest table last (flush order); scans give later tables precedence.
  std::vector<std::shared_ptr<SsTableReader>> sstables_;
  uint64_t next_file_number_ = 1;
  size_t quarantined_files_ = 0;
  std::unique_ptr<BlockCache> block_cache_;
  mutable IoStats io_stats_;
  /// Last member: these sources read the fields above, so they must be
  /// unregistered (and cumulative values folded) before anything else dies.
  std::vector<obs::ScopedSource> metric_sources_;
};

}  // namespace just::kv

#endif  // JUST_KVSTORE_LSM_STORE_H_
