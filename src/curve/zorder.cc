#include "curve/zorder.h"

#include <algorithm>
#include <cmath>

namespace just::curve {

namespace {
// Spreads the low 32 bits of v so bit i moves to bit 2i ("morton magic").
uint64_t Spread2(uint64_t v) {
  v &= 0xFFFFFFFFull;
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFull;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFull;
  v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v | (v << 2)) & 0x3333333333333333ull;
  v = (v | (v << 1)) & 0x5555555555555555ull;
  return v;
}

uint32_t Compact2(uint64_t v) {
  v &= 0x5555555555555555ull;
  v = (v | (v >> 1)) & 0x3333333333333333ull;
  v = (v | (v >> 2)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v | (v >> 4)) & 0x00FF00FF00FF00FFull;
  v = (v | (v >> 8)) & 0x0000FFFF0000FFFFull;
  v = (v | (v >> 16)) & 0x00000000FFFFFFFFull;
  return static_cast<uint32_t>(v);
}

// Spreads the low 21 bits of v so bit i moves to bit 3i.
uint64_t Spread3(uint64_t v) {
  v &= 0x1FFFFFull;
  v = (v | (v << 32)) & 0x001F00000000FFFFull;
  v = (v | (v << 16)) & 0x001F0000FF0000FFull;
  v = (v | (v << 8)) & 0x100F00F00F00F00Full;
  v = (v | (v << 4)) & 0x10C30C30C30C30C3ull;
  v = (v | (v << 2)) & 0x1249249249249249ull;
  return v;
}

uint32_t Compact3(uint64_t v) {
  v &= 0x1249249249249249ull;
  v = (v | (v >> 2)) & 0x10C30C30C30C30C3ull;
  v = (v | (v >> 4)) & 0x100F00F00F00F00Full;
  v = (v | (v >> 8)) & 0x001F0000FF0000FFull;
  v = (v | (v >> 16)) & 0x001F00000000FFFFull;
  v = (v | (v >> 32)) & 0x00000000001FFFFFull;
  return static_cast<uint32_t>(v);
}
}  // namespace

uint64_t Interleave2(uint32_t x, uint32_t y) {
  return Spread2(x) | (Spread2(y) << 1);
}

void Deinterleave2(uint64_t z, uint32_t* x, uint32_t* y) {
  *x = Compact2(z);
  *y = Compact2(z >> 1);
}

uint64_t Interleave3(uint32_t x, uint32_t y, uint32_t t) {
  return Spread3(x) | (Spread3(y) << 1) | (Spread3(t) << 2);
}

void Deinterleave3(uint64_t z, uint32_t* x, uint32_t* y, uint32_t* t) {
  *x = Compact3(z);
  *y = Compact3(z >> 1);
  *t = Compact3(z >> 2);
}

uint32_t NormalizeToBits(double v, double lo, double hi, int bits) {
  const uint64_t cells = 1ull << bits;
  double frac = (v - lo) / (hi - lo);
  frac = std::clamp(frac, 0.0, 1.0);
  uint64_t n = static_cast<uint64_t>(frac * static_cast<double>(cells));
  if (n >= cells) n = cells - 1;  // v == hi maps to the last cell
  return static_cast<uint32_t>(n);
}

double DenormalizeFromBits(uint32_t n, double lo, double hi, int bits) {
  const double cells = static_cast<double>(1ull << bits);
  return lo + (hi - lo) * (static_cast<double>(n) / cells);
}

}  // namespace just::curve
