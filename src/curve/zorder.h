#ifndef JUST_CURVE_ZORDER_H_
#define JUST_CURVE_ZORDER_H_

#include <cstdint>

namespace just::curve {

/// Bit-interleaving primitives for Z-ordering [Orenstein & Merrett, 1984].
/// Dimension values are first normalized to fixed-width unsigned integers;
/// interleaving produces a key whose lexicographic order follows the Z curve.

/// Interleaves the low 31 bits of x and y: result bit (2i) = x bit i,
/// bit (2i+1) = y bit i. (x varies fastest, matching Figure 3b where the
/// longitude bit comes first at even positions.)
uint64_t Interleave2(uint32_t x, uint32_t y);

/// Inverse of Interleave2.
void Deinterleave2(uint64_t z, uint32_t* x, uint32_t* y);

/// Interleaves the low 21 bits of x, y, t into a 63-bit key
/// (bit order per group: x, y, t).
uint64_t Interleave3(uint32_t x, uint32_t y, uint32_t t);

void Deinterleave3(uint64_t z, uint32_t* x, uint32_t* y, uint32_t* t);

/// Normalizes a value in [lo, hi] to an unsigned integer in [0, 2^bits).
/// Values are clamped to the range; this is the "binary search" encoding of
/// Figure 3a.
uint32_t NormalizeToBits(double v, double lo, double hi, int bits);

/// Lower edge of the cell that `n` (a NormalizeToBits output) denotes.
double DenormalizeFromBits(uint32_t n, double lo, double hi, int bits);

}  // namespace just::curve

#endif  // JUST_CURVE_ZORDER_H_
