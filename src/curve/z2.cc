#include "curve/z2.h"

#include <algorithm>

#include "curve/zorder.h"

namespace just::curve {

Z2Sfc::Z2Sfc(int bits) : bits_(std::clamp(bits, 1, 31)) {}

uint64_t Z2Sfc::Index(const geo::Point& p) const {
  uint32_t x = NormalizeToBits(p.lng, -180.0, 180.0, bits_);
  uint32_t y = NormalizeToBits(p.lat, -90.0, 90.0, bits_);
  return Interleave2(x, y);
}

geo::Point Z2Sfc::Invert(uint64_t z) const {
  uint32_t x, y;
  Deinterleave2(z, &x, &y);
  return geo::Point{DenormalizeFromBits(x, -180.0, 180.0, bits_),
                    DenormalizeFromBits(y, -90.0, 90.0, bits_)};
}

geo::Mbr Z2Sfc::CellBounds(uint64_t prefix, int level) const {
  // Walk the quad digits from most significant to least.
  double lng_min = -180, lng_max = 180, lat_min = -90, lat_max = 90;
  for (int i = level - 1; i >= 0; --i) {
    uint64_t digit = (prefix >> (2 * i)) & 3;
    double lng_mid = (lng_min + lng_max) / 2;
    double lat_mid = (lat_min + lat_max) / 2;
    if (digit & 1) {
      lng_min = lng_mid;  // x bit set -> right half
    } else {
      lng_max = lng_mid;
    }
    if (digit & 2) {
      lat_min = lat_mid;  // y bit set -> top half
    } else {
      lat_max = lat_mid;
    }
  }
  return geo::Mbr{lng_min, lat_min, lng_max, lat_max};
}

void Z2Sfc::Decompose(uint64_t prefix, int level, const geo::Mbr& cell,
                      const geo::Mbr& query, int max_level,
                      std::vector<SfcRange>* out, int max_ranges) const {
  if (!cell.Intersects(query)) return;
  int remaining = 2 * (bits_ - level);
  uint64_t lo = prefix << remaining;
  uint64_t hi = lo + ((remaining == 64) ? UINT64_MAX
                                        : ((1ull << remaining) - 1));
  if (query.Contains(cell)) {
    out->push_back(SfcRange{lo, hi, true});
    return;
  }
  if (level >= max_level ||
      static_cast<int>(out->size()) >= max_ranges) {
    out->push_back(SfcRange{lo, hi, false});
    return;
  }
  double lng_mid = (cell.lng_min + cell.lng_max) / 2;
  double lat_mid = (cell.lat_min + cell.lat_max) / 2;
  for (uint64_t digit = 0; digit < 4; ++digit) {
    geo::Mbr child{
        (digit & 1) ? lng_mid : cell.lng_min,
        (digit & 2) ? lat_mid : cell.lat_min,
        (digit & 1) ? cell.lng_max : lng_mid,
        (digit & 2) ? cell.lat_max : lat_mid,
    };
    Decompose((prefix << 2) | digit, level + 1, child, query, max_level, out,
              max_ranges);
  }
}

std::vector<SfcRange> Z2Sfc::Ranges(const geo::Mbr& query,
                                    int max_ranges) const {
  std::vector<SfcRange> out;
  // Depth cap: refining beyond ~16 quad levels yields sub-meter cells with
  // no scan-selectivity benefit.
  int max_level = std::min(bits_, 16);
  Decompose(0, 0, geo::Mbr::World(), query, max_level, &out, max_ranges);
  MergeSfcRanges(&out);
  return out;
}

}  // namespace just::curve
