#ifndef JUST_CURVE_Z2_H_
#define JUST_CURVE_Z2_H_

#include <cstdint>
#include <vector>

#include "curve/sfc.h"
#include "geo/point.h"

namespace just::curve {

/// Z2 space-filling curve over (lng, lat), as used by GeoMesa for point
/// data (Section IV-A, Figure 3a/3b). Each dimension is encoded to
/// `bits` binary digits via binary search and the two codes are crosswise
/// combined (interleaved).
class Z2Sfc {
 public:
  /// `bits` is the per-dimension resolution alpha (<= 31). Key width is
  /// 2 * bits.
  explicit Z2Sfc(int bits = 30);

  int bits() const { return bits_; }

  /// Encodes a point to its Z2 value.
  uint64_t Index(const geo::Point& p) const;

  /// Decodes a Z2 value back to the lower-left corner of its cell.
  geo::Point Invert(uint64_t z) const;

  /// Decomposes a query rectangle into Z-value ranges via recursive
  /// quadtree refinement, stopping at `max_ranges` (further refinement
  /// would produce more SCANs than it saves).
  std::vector<SfcRange> Ranges(const geo::Mbr& query,
                               int max_ranges = 128) const;

  /// The geographic cell covered by the Z-prefix `prefix` at `level`
  /// quad subdivisions.
  geo::Mbr CellBounds(uint64_t prefix, int level) const;

 private:
  void Decompose(uint64_t prefix, int level, const geo::Mbr& cell,
                 const geo::Mbr& query, int max_level,
                 std::vector<SfcRange>* out, int max_ranges) const;

  int bits_;
};

}  // namespace just::curve

#endif  // JUST_CURVE_Z2_H_
