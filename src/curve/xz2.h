#ifndef JUST_CURVE_XZ2_H_
#define JUST_CURVE_XZ2_H_

#include <cstdint>
#include <vector>

#include "curve/sfc.h"
#include "geo/point.h"

namespace just::curve {

/// XZ2 ordering for non-point geometries [Boehm et al., SSD 1999], as used
/// by GeoMesa (Section IV-A, Figure 3f). An object is assigned to the
/// smallest "enlarged" quadtree cell (a cell doubled in width and height)
/// that contains its MBR; elements are numbered by pre-order position in the
/// quadtree, which preserves locality without duplicating objects.
class Xz2Sfc {
 public:
  /// `g` is the maximum quadtree depth (GeoMesa default 12).
  explicit Xz2Sfc(int g = 12);

  int resolution() const { return g_; }

  /// Sequence code of the element that stores an object with this MBR.
  uint64_t Index(const geo::Mbr& mbr) const;

  /// Candidate element ranges for a rectangle query. Ranges marked
  /// `contained` hold only objects fully inside the query.
  std::vector<SfcRange> Ranges(const geo::Mbr& query,
                               int max_ranges = 512) const;

  /// Total number of sequence codes: (4^(g+1) - 1) / 3.
  uint64_t MaxCode() const;

 private:
  struct NormQuery {
    double xmin, ymin, xmax, ymax;
  };

  /// Size of the element subtree rooted at depth `depth` (inclusive).
  uint64_t SubtreeSize(int depth) const;

  void Search(double xmin, double ymin, double xmax, double ymax,
              uint64_t code, int level, const NormQuery& q,
              std::vector<SfcRange>* out, int max_ranges) const;

  int g_;
};

}  // namespace just::curve

#endif  // JUST_CURVE_XZ2_H_
