#ifndef JUST_CURVE_XZ3_H_
#define JUST_CURVE_XZ3_H_

#include <cstdint>
#include <vector>

#include "curve/sfc.h"
#include "geo/point.h"

namespace just::curve {

/// XZ3 ordering: the octree extension of XZ2 for spatio-temporal extents
/// (Section IV-A / IV-C motivation, Figure 5a). Time is normalized within a
/// period to [0, 1) and treated as the third dimension; an object is stored
/// at the smallest doubled cube containing its spatio-temporal MBR.
class Xz3Sfc {
 public:
  explicit Xz3Sfc(int g = 8);

  int resolution() const { return g_; }

  /// Sequence code for an object with spatial `mbr` and within-period time
  /// extent [t0_frac, t1_frac] (fractions in [0, 1]).
  uint64_t Index(const geo::Mbr& mbr, double t0_frac, double t1_frac) const;

  /// Candidate element ranges for a spatio-temporal box query.
  std::vector<SfcRange> Ranges(const geo::Mbr& query, double t0_frac,
                               double t1_frac, int max_ranges = 512) const;

  uint64_t MaxCode() const;

 private:
  struct NormBox {
    double min[3];
    double max[3];
  };

  uint64_t SubtreeSize(int depth) const;

  void Search(const NormBox& cell, uint64_t code, int level,
              const NormBox& q, std::vector<SfcRange>* out,
              int max_ranges) const;

  int g_;
};

}  // namespace just::curve

#endif  // JUST_CURVE_XZ3_H_
