#include "curve/xz2.h"

#include <algorithm>
#include <cmath>

namespace just::curve {

namespace {
double NormLng(double lng) {
  return std::clamp((lng + 180.0) / 360.0, 0.0, 1.0);
}
double NormLat(double lat) {
  return std::clamp((lat + 90.0) / 180.0, 0.0, 1.0);
}
}  // namespace

Xz2Sfc::Xz2Sfc(int g) : g_(std::clamp(g, 1, 30)) {}

uint64_t Xz2Sfc::SubtreeSize(int depth) const {
  // Number of elements in a subtree whose root sits at `depth`:
  // (4^(g - depth + 1) - 1) / 3.
  int h = g_ - depth + 1;
  return ((1ull << (2 * h)) - 1) / 3;
}

uint64_t Xz2Sfc::MaxCode() const { return SubtreeSize(0); }

uint64_t Xz2Sfc::Index(const geo::Mbr& mbr) const {
  double xmin = NormLng(mbr.lng_min);
  double xmax = NormLng(mbr.lng_max);
  double ymin = NormLat(mbr.lat_min);
  double ymax = NormLat(mbr.lat_max);

  // Element length: the deepest level whose doubled cell still contains the
  // object.
  double max_dim = std::max(xmax - xmin, ymax - ymin);
  int length;
  if (max_dim <= 0) {
    length = g_;
  } else {
    int l1 = static_cast<int>(std::floor(std::log(max_dim) / std::log(0.5)));
    if (l1 >= g_) {
      length = g_;
    } else {
      // Does the object still fit a doubled cell one level deeper?
      double w2 = std::pow(0.5, l1 + 1);
      auto fits = [&](double min_v, double max_v) {
        return std::floor(min_v / w2) * w2 + 2 * w2 >= max_v;
      };
      length = (fits(xmin, xmax) && fits(ymin, ymax)) ? l1 + 1 : l1;
      length = std::clamp(length, 0, g_);
    }
  }

  // Pre-order sequence code of the element: walk toward the cell containing
  // the MBR's min corner for `length` steps.
  double cx_min = 0, cy_min = 0, cx_max = 1, cy_max = 1;
  uint64_t cs = 0;
  for (int i = 0; i < length; ++i) {
    double x_center = (cx_min + cx_max) / 2;
    double y_center = (cy_min + cy_max) / 2;
    uint64_t child_size = SubtreeSize(i + 1);
    uint64_t quadrant;
    if (xmin < x_center && ymin < y_center) {
      quadrant = 0;
      cx_max = x_center;
      cy_max = y_center;
    } else if (xmin >= x_center && ymin < y_center) {
      quadrant = 1;
      cx_min = x_center;
      cy_max = y_center;
    } else if (xmin < x_center && ymin >= y_center) {
      quadrant = 2;
      cx_max = x_center;
      cy_min = y_center;
    } else {
      quadrant = 3;
      cx_min = x_center;
      cy_min = y_center;
    }
    cs += 1 + quadrant * child_size;
  }
  return cs;
}

void Xz2Sfc::Search(double xmin, double ymin, double xmax, double ymax,
                    uint64_t code, int level, const NormQuery& q,
                    std::vector<SfcRange>* out, int max_ranges) const {
  double w = xmax - xmin;
  double h = ymax - ymin;
  // Extended (doubled) cell: any object stored in this subtree lies within.
  double ex_max = xmax + w;
  double ey_max = ymax + h;
  bool overlaps = !(q.xmin > ex_max || q.xmax < xmin || q.ymin > ey_max ||
                    q.ymax < ymin);
  if (!overlaps) return;
  bool contained = q.xmin <= xmin && q.xmax >= ex_max && q.ymin <= ymin &&
                   q.ymax >= ey_max;
  if (contained) {
    out->push_back(SfcRange{code, code + SubtreeSize(level) - 1, true});
    return;
  }
  if (level >= g_ || static_cast<int>(out->size()) >= max_ranges) {
    // Stop refining: take the whole subtree as candidates.
    out->push_back(SfcRange{code, code + SubtreeSize(level) - 1, false});
    return;
  }
  // The element itself may store objects overlapping the query.
  out->push_back(SfcRange{code, code, false});
  double x_center = (xmin + xmax) / 2;
  double y_center = (ymin + ymax) / 2;
  uint64_t child_size = SubtreeSize(level + 1);
  Search(xmin, ymin, x_center, y_center, code + 1, level + 1, q, out,
         max_ranges);
  Search(x_center, ymin, xmax, y_center, code + 1 + child_size, level + 1, q,
         out, max_ranges);
  Search(xmin, y_center, x_center, ymax, code + 1 + 2 * child_size, level + 1,
         q, out, max_ranges);
  Search(x_center, y_center, xmax, ymax, code + 1 + 3 * child_size, level + 1,
         q, out, max_ranges);
}

std::vector<SfcRange> Xz2Sfc::Ranges(const geo::Mbr& query,
                                     int max_ranges) const {
  NormQuery q{NormLng(query.lng_min), NormLat(query.lat_min),
              NormLng(query.lng_max), NormLat(query.lat_max)};
  std::vector<SfcRange> out;
  Search(0, 0, 1, 1, 0, 0, q, &out, max_ranges);
  MergeSfcRanges(&out);
  return out;
}

}  // namespace just::curve
