#ifndef JUST_CURVE_SFC_H_
#define JUST_CURVE_SFC_H_

#include <cstdint>
#include <vector>

namespace just::curve {

/// A contiguous range [lo, hi] (inclusive) of space-filling-curve values.
/// `contained` marks ranges fully inside the query region: scans over them
/// need no exact-geometry refinement.
struct SfcRange {
  uint64_t lo = 0;
  uint64_t hi = 0;
  bool contained = false;

  bool operator==(const SfcRange& o) const {
    return lo == o.lo && hi == o.hi && contained == o.contained;
  }
};

/// Sorts by lo and merges adjacent/overlapping ranges. A merged range is
/// `contained` only if every constituent was.
void MergeSfcRanges(std::vector<SfcRange>* ranges);

}  // namespace just::curve

#endif  // JUST_CURVE_SFC_H_
