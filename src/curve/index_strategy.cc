#include "curve/index_strategy.h"

#include <algorithm>
#include <cctype>

#include "common/bytes.h"

namespace just::curve {

namespace {

constexpr uint32_t kPeriodBias = 1u << 31;

// FNV-1a over the fid; stable across runs so shards are deterministic.
uint64_t HashFid(const std::string& fid) {
  uint64_t h = 14695981039346656037ull;
  for (char c : fid) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Appends an SFC value range for one shard (and optional period) as a byte
// KeyRange. `hi` is inclusive; the end key is computed as hi + 1 in the
// 8-byte big-endian space, or the prefix successor on overflow.
void AppendRangesForPrefix(const std::string& prefix,
                           const std::vector<SfcRange>& sfc_ranges,
                           std::vector<KeyRange>* out) {
  for (const SfcRange& r : sfc_ranges) {
    KeyRange kr;
    kr.contained = r.contained;
    kr.start = prefix;
    PutFixed64BE(&kr.start, r.lo);
    kr.end = prefix;
    if (r.hi == UINT64_MAX) {
      // End = prefix successor: bump the last prefix byte (prefix is never
      // empty here: it includes at least the shard byte).
      PutFixed64BE(&kr.end, r.hi);
      kr.end.push_back('\xff');  // just past any key with this sfc value
    } else {
      PutFixed64BE(&kr.end, r.hi + 1);
    }
    out->push_back(std::move(kr));
  }
}

class Z2Strategy : public IndexStrategy {
 public:
  explicit Z2Strategy(const IndexOptions& options)
      : IndexStrategy(IndexType::kZ2, options), sfc_(options.z2_bits) {}

  std::string EncodeKey(const RecordRef& record) const override {
    std::string key;
    key.push_back(static_cast<char>(ShardOf(record.fid)));
    PutFixed64BE(&key, sfc_.Index(record.mbr.Center()));
    key += record.fid;
    return key;
  }

  std::vector<KeyRange> QueryRanges(const geo::Mbr& box, TimestampMs,
                                    TimestampMs) const override {
    auto sfc_ranges = sfc_.Ranges(box, options_.max_ranges_per_period);
    std::vector<KeyRange> out;
    for (int shard = 0; shard < options_.num_shards; ++shard) {
      std::string prefix(1, static_cast<char>(shard));
      AppendRangesForPrefix(prefix, sfc_ranges, &out);
    }
    return out;
  }

 private:
  Z2Sfc sfc_;
};

class Xz2Strategy : public IndexStrategy {
 public:
  explicit Xz2Strategy(const IndexOptions& options)
      : IndexStrategy(IndexType::kXz2, options),
        sfc_(options.xz2_resolution) {}

  std::string EncodeKey(const RecordRef& record) const override {
    std::string key;
    key.push_back(static_cast<char>(ShardOf(record.fid)));
    PutFixed64BE(&key, sfc_.Index(record.mbr));
    key += record.fid;
    return key;
  }

  std::vector<KeyRange> QueryRanges(const geo::Mbr& box, TimestampMs,
                                    TimestampMs) const override {
    auto sfc_ranges = sfc_.Ranges(box, options_.max_ranges_per_period);
    std::vector<KeyRange> out;
    for (int shard = 0; shard < options_.num_shards; ++shard) {
      std::string prefix(1, static_cast<char>(shard));
      AppendRangesForPrefix(prefix, sfc_ranges, &out);
    }
    return out;
  }

 private:
  Xz2Sfc sfc_;
};

// Shared period plumbing for the four time-aware strategies.
class TimeAwareStrategy : public IndexStrategy {
 protected:
  using IndexStrategy::IndexStrategy;

  int64_t PeriodOf(TimestampMs t) const {
    return TimePeriodNumber(t, options_.period_len_ms);
  }

  // Within-period fraction of t, clamped to [0, 1].
  double FracOf(TimestampMs t, int64_t period) const {
    TimestampMs start = TimePeriodStart(period, options_.period_len_ms);
    double f = static_cast<double>(t - start) /
               static_cast<double>(options_.period_len_ms);
    return std::clamp(f, 0.0, 1.0);
  }

  std::string PrefixFor(int shard, int64_t period) const {
    std::string prefix(1, static_cast<char>(shard));
    AppendPeriod(&prefix, period);
    return prefix;
  }
};

class Z3Strategy : public TimeAwareStrategy {
 public:
  explicit Z3Strategy(const IndexOptions& options)
      : TimeAwareStrategy(IndexType::kZ3, options), sfc_(options.z3_bits) {}

  std::string EncodeKey(const RecordRef& record) const override {
    int64_t period = PeriodOf(record.t_min);
    std::string key = PrefixFor(ShardOf(record.fid), period);
    PutFixed64BE(&key,
                 sfc_.Index(record.mbr.Center(), FracOf(record.t_min, period)));
    key += record.fid;
    return key;
  }

  std::vector<KeyRange> QueryRanges(const geo::Mbr& box, TimestampMs t_min,
                                    TimestampMs t_max) const override {
    std::vector<KeyRange> out;
    int64_t first = PeriodOf(t_min);
    int64_t last = PeriodOf(t_max);
    for (int64_t period = first; period <= last; ++period) {
      double t0 = (period == first) ? FracOf(t_min, period) : 0.0;
      double t1 = (period == last) ? FracOf(t_max, period) : 1.0;
      auto sfc_ranges =
          sfc_.Ranges(box, t0, t1, options_.max_ranges_per_period);
      for (int shard = 0; shard < options_.num_shards; ++shard) {
        AppendRangesForPrefix(PrefixFor(shard, period), sfc_ranges, &out);
      }
    }
    return out;
  }

 private:
  Z3Sfc sfc_;
};

class Xz3Strategy : public TimeAwareStrategy {
 public:
  explicit Xz3Strategy(const IndexOptions& options)
      : TimeAwareStrategy(IndexType::kXz3, options),
        sfc_(options.xz3_resolution) {}

  std::string EncodeKey(const RecordRef& record) const override {
    // XZ3 bins the record by its start time (as XZ2T does, Section IV-C).
    int64_t period = PeriodOf(record.t_min);
    std::string key = PrefixFor(ShardOf(record.fid), period);
    PutFixed64BE(&key, sfc_.Index(record.mbr, FracOf(record.t_min, period),
                                  FracOf(record.t_max, period)));
    key += record.fid;
    return key;
  }

  std::vector<KeyRange> QueryRanges(const geo::Mbr& box, TimestampMs t_min,
                                    TimestampMs t_max) const override {
    std::vector<KeyRange> out;
    int64_t first = PeriodOf(t_min);
    int64_t last = PeriodOf(t_max);
    for (int64_t period = first; period <= last; ++period) {
      double t0 = (period == first) ? FracOf(t_min, period) : 0.0;
      double t1 = (period == last) ? FracOf(t_max, period) : 1.0;
      auto sfc_ranges =
          sfc_.Ranges(box, t0, t1, options_.max_ranges_per_period);
      for (int shard = 0; shard < options_.num_shards; ++shard) {
        AppendRangesForPrefix(PrefixFor(shard, period), sfc_ranges, &out);
      }
    }
    return out;
  }

 private:
  Xz3Sfc sfc_;
};

/// Z2T (Eq. 2): Num(t) :: Z2(lng, lat). A full-resolution Z2 curve inside
/// each time period keeps spatial filtering effective regardless of the
/// time-window / period-length ratio.
class Z2TStrategy : public TimeAwareStrategy {
 public:
  explicit Z2TStrategy(const IndexOptions& options)
      : TimeAwareStrategy(IndexType::kZ2T, options), sfc_(options.z2_bits) {}

  std::string EncodeKey(const RecordRef& record) const override {
    std::string key =
        PrefixFor(ShardOf(record.fid), PeriodOf(record.t_min));
    PutFixed64BE(&key, sfc_.Index(record.mbr.Center()));
    key += record.fid;
    return key;
  }

  std::vector<KeyRange> QueryRanges(const geo::Mbr& box, TimestampMs t_min,
                                    TimestampMs t_max) const override {
    // The spatial decomposition is shared by every qualified period.
    auto sfc_ranges = sfc_.Ranges(box, options_.max_ranges_per_period);
    std::vector<KeyRange> out;
    int64_t first = PeriodOf(t_min);
    int64_t last = PeriodOf(t_max);
    for (int64_t period = first; period <= last; ++period) {
      for (int shard = 0; shard < options_.num_shards; ++shard) {
        AppendRangesForPrefix(PrefixFor(shard, period), sfc_ranges, &out);
      }
    }
    return out;
  }

 private:
  Z2Sfc sfc_;
};

/// XZ2T (Eq. 3): Num(t_min) :: XZ2(mbr). The non-point analogue of Z2T.
class Xz2TStrategy : public TimeAwareStrategy {
 public:
  explicit Xz2TStrategy(const IndexOptions& options)
      : TimeAwareStrategy(IndexType::kXz2T, options),
        sfc_(options.xz2_resolution) {}

  std::string EncodeKey(const RecordRef& record) const override {
    std::string key =
        PrefixFor(ShardOf(record.fid), PeriodOf(record.t_min));
    PutFixed64BE(&key, sfc_.Index(record.mbr));
    key += record.fid;
    return key;
  }

  std::vector<KeyRange> QueryRanges(const geo::Mbr& box, TimestampMs t_min,
                                    TimestampMs t_max) const override {
    auto sfc_ranges = sfc_.Ranges(box, options_.max_ranges_per_period);
    std::vector<KeyRange> out;
    // A record binned by its start time can satisfy a query whose window
    // begins up to one record-duration later; scanning one extra leading
    // period covers records that started in the previous period (the paper
    // stores by Time_start; trajectories are within-day in the datasets).
    int64_t first = PeriodOf(t_min) - 1;
    int64_t last = PeriodOf(t_max);
    for (int64_t period = first; period <= last; ++period) {
      for (int shard = 0; shard < options_.num_shards; ++shard) {
        // Extent ranges always require refinement against the time window.
        for (const SfcRange& r : sfc_ranges) {
          SfcRange weakened = r;
          weakened.contained = false;
          AppendRangesForPrefix(PrefixFor(shard, period), {weakened}, &out);
        }
      }
    }
    return out;
  }

 private:
  Xz2Sfc sfc_;
};

}  // namespace

Result<IndexType> ParseIndexType(const std::string& name) {
  std::string lower;
  for (char c : name) lower += static_cast<char>(std::tolower(c));
  if (lower == "z2") return IndexType::kZ2;
  if (lower == "z3") return IndexType::kZ3;
  if (lower == "xz2") return IndexType::kXz2;
  if (lower == "xz3") return IndexType::kXz3;
  if (lower == "z2t") return IndexType::kZ2T;
  if (lower == "xz2t") return IndexType::kXz2T;
  return Status::InvalidArgument("unknown index type: " + name);
}

std::string IndexTypeName(IndexType type) {
  switch (type) {
    case IndexType::kZ2:
      return "z2";
    case IndexType::kZ3:
      return "z3";
    case IndexType::kXz2:
      return "xz2";
    case IndexType::kXz3:
      return "xz3";
    case IndexType::kZ2T:
      return "z2t";
    case IndexType::kXz2T:
      return "xz2t";
  }
  return "?";
}

bool IsSpatioTemporal(IndexType type) {
  return type == IndexType::kZ3 || type == IndexType::kXz3 ||
         type == IndexType::kZ2T || type == IndexType::kXz2T;
}

bool IsExtentIndex(IndexType type) {
  return type == IndexType::kXz2 || type == IndexType::kXz3 ||
         type == IndexType::kXz2T;
}

int IndexStrategy::ShardOf(const std::string& fid) const {
  return static_cast<int>(HashFid(fid) % options_.num_shards);
}

void IndexStrategy::AppendPeriod(std::string* key, int64_t period) {
  PutFixed32BE(key, static_cast<uint32_t>(period + kPeriodBias));
}

std::unique_ptr<IndexStrategy> IndexStrategy::Create(
    IndexType type, const IndexOptions& options) {
  switch (type) {
    case IndexType::kZ2:
      return std::make_unique<Z2Strategy>(options);
    case IndexType::kZ3:
      return std::make_unique<Z3Strategy>(options);
    case IndexType::kXz2:
      return std::make_unique<Xz2Strategy>(options);
    case IndexType::kXz3:
      return std::make_unique<Xz3Strategy>(options);
    case IndexType::kZ2T:
      return std::make_unique<Z2TStrategy>(options);
    case IndexType::kXz2T:
      return std::make_unique<Xz2TStrategy>(options);
  }
  return nullptr;
}

}  // namespace just::curve
