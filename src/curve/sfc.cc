#include "curve/sfc.h"

#include <algorithm>

namespace just::curve {

void MergeSfcRanges(std::vector<SfcRange>* ranges) {
  if (ranges->size() <= 1) return;
  std::sort(ranges->begin(), ranges->end(),
            [](const SfcRange& a, const SfcRange& b) {
              return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
            });
  std::vector<SfcRange> merged;
  merged.reserve(ranges->size());
  merged.push_back((*ranges)[0]);
  for (size_t i = 1; i < ranges->size(); ++i) {
    SfcRange& last = merged.back();
    const SfcRange& cur = (*ranges)[i];
    // Adjacent (hi + 1 == lo) or overlapping ranges merge.
    if (cur.lo <= last.hi || (last.hi != UINT64_MAX && cur.lo == last.hi + 1)) {
      last.hi = std::max(last.hi, cur.hi);
      last.contained = last.contained && cur.contained;
    } else {
      merged.push_back(cur);
    }
  }
  ranges->swap(merged);
}

}  // namespace just::curve
