#ifndef JUST_CURVE_INDEX_STRATEGY_H_
#define JUST_CURVE_INDEX_STRATEGY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_util.h"
#include "curve/sfc.h"
#include "curve/xz2.h"
#include "curve/xz3.h"
#include "curve/z2.h"
#include "curve/z3.h"
#include "geo/point.h"

namespace just::curve {

/// The six indexing strategies of Figure 1's Indexing & Storing layer:
/// GeoMesa's native Z2/Z3/XZ2/XZ3 plus the paper's Z2T (Section IV-B) and
/// XZ2T (Section IV-C).
enum class IndexType { kZ2, kZ3, kXz2, kXz3, kZ2T, kXz2T };

/// Parses "z2" / "z3" / "xz2" / "xz3" / "z2t" / "xz2t" (case-insensitive).
Result<IndexType> ParseIndexType(const std::string& name);
std::string IndexTypeName(IndexType type);

/// True for strategies that index the time dimension.
bool IsSpatioTemporal(IndexType type);
/// True for strategies that index non-point extents.
bool IsExtentIndex(IndexType type);

/// What an index needs to know about a record to produce its key.
struct RecordRef {
  geo::Mbr mbr;                 ///< Point records use a degenerate box.
  TimestampMs t_min = 0;        ///< Record (or trajectory start) time.
  TimestampMs t_max = 0;        ///< Equal to t_min for instantaneous records.
  std::string fid;              ///< Feature id, appended for key uniqueness.
};

/// A byte-wise key range [start, end) against the ordered KV store.
struct KeyRange {
  std::string start;
  std::string end;
  bool contained = false;  ///< No exact refinement needed when true.
};

struct IndexOptions {
  int num_shards = 4;          ///< GeoMesa's random key prefix for balance.
  int64_t period_len_ms = kMillisPerDay;  ///< Eq. (1) TimePeriodLen.
  int z2_bits = 30;
  int z3_bits = 20;
  int xz2_resolution = 12;
  int xz3_resolution = 8;
  int max_ranges_per_period = 64;  ///< SFC decomposition budget.
};

/// An indexing strategy turns records into sortable row keys (Eq. 2 / Eq. 3)
/// and query boxes into SCAN key ranges.
class IndexStrategy {
 public:
  static std::unique_ptr<IndexStrategy> Create(IndexType type,
                                               const IndexOptions& options);

  virtual ~IndexStrategy() = default;

  IndexType type() const { return type_; }
  const IndexOptions& options() const { return options_; }

  /// Builds the full row key: shard(1B) [:: period(4B)] :: sfc(8B) :: fid.
  virtual std::string EncodeKey(const RecordRef& record) const = 0;

  /// Key ranges covering a spatio-temporal box query. Spatial-only indexes
  /// ignore the time bounds; time-aware indexes enumerate qualified periods
  /// (step 1 of Section IV-B's query algorithm). Ranges are produced for
  /// every shard (step 3 scans them in parallel).
  virtual std::vector<KeyRange> QueryRanges(const geo::Mbr& box,
                                            TimestampMs t_min,
                                            TimestampMs t_max) const = 0;

  /// The shard a record's key lands on.
  int ShardOf(const std::string& fid) const;

  /// Byte offset of the fid suffix within keys this strategy emits:
  /// 9 for spatial-only keys (shard + sfc), 13 for time-aware keys
  /// (shard + period + sfc). Lets scan consumers identify records without
  /// decoding values.
  int FidOffset() const {
    return IsSpatioTemporal(type_) ? 13 : 9;
  }

 protected:
  IndexStrategy(IndexType type, const IndexOptions& options)
      : type_(type), options_(options) {}

  /// Encodes a biased period number to 4 sortable bytes.
  static void AppendPeriod(std::string* key, int64_t period);

  IndexType type_;
  IndexOptions options_;
};

}  // namespace just::curve

#endif  // JUST_CURVE_INDEX_STRATEGY_H_
