#ifndef JUST_CURVE_Z3_H_
#define JUST_CURVE_Z3_H_

#include <cstdint>
#include <vector>

#include "curve/sfc.h"
#include "geo/point.h"

namespace just::curve {

/// Z3 space-filling curve over (lng, lat, time-within-period) as used by
/// GeoMesa for spatio-temporal point data (Section IV-A, Figure 3c-3e).
/// Time is first binned into disjoint periods (Eq. 1); within a period it is
/// normalized to [0, 1) and interleaved as a third dimension. This is the
/// strategy whose spatial filtering degrades when the time scale dominates —
/// the motivation for Z2T (Section IV-B).
class Z3Sfc {
 public:
  /// `bits` per dimension (<= 21); key width is 3 * bits.
  explicit Z3Sfc(int bits = 20);

  int bits() const { return bits_; }

  /// Encodes a point plus its normalized within-period time fraction
  /// in [0, 1).
  uint64_t Index(const geo::Point& p, double time_frac) const;

  /// Decomposes a spatio-temporal box query (spatial MBR plus a
  /// within-period time-fraction interval) into Z3 ranges via octree
  /// refinement.
  std::vector<SfcRange> Ranges(const geo::Mbr& query, double t0_frac,
                               double t1_frac, int max_ranges = 128) const;

 private:
  struct Cube {
    geo::Mbr box;
    double t0, t1;
  };

  void Decompose(uint64_t prefix, int level, const Cube& cell,
                 const Cube& query, int max_level, std::vector<SfcRange>* out,
                 int max_ranges) const;

  int bits_;
};

}  // namespace just::curve

#endif  // JUST_CURVE_Z3_H_
