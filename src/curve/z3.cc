#include "curve/z3.h"

#include <algorithm>

#include "curve/zorder.h"

namespace just::curve {

Z3Sfc::Z3Sfc(int bits) : bits_(std::clamp(bits, 1, 21)) {}

uint64_t Z3Sfc::Index(const geo::Point& p, double time_frac) const {
  uint32_t x = NormalizeToBits(p.lng, -180.0, 180.0, bits_);
  uint32_t y = NormalizeToBits(p.lat, -90.0, 90.0, bits_);
  uint32_t t = NormalizeToBits(time_frac, 0.0, 1.0, bits_);
  return Interleave3(x, y, t);
}

void Z3Sfc::Decompose(uint64_t prefix, int level, const Cube& cell,
                      const Cube& query, int max_level,
                      std::vector<SfcRange>* out, int max_ranges) const {
  bool intersects = cell.box.Intersects(query.box) &&
                    !(cell.t0 > query.t1 || cell.t1 < query.t0);
  if (!intersects) return;
  int remaining = 3 * (bits_ - level);
  uint64_t lo = prefix << remaining;
  uint64_t hi = lo + ((remaining >= 64) ? UINT64_MAX
                                        : ((1ull << remaining) - 1));
  bool contained = query.box.Contains(cell.box) && query.t0 <= cell.t0 &&
                   query.t1 >= cell.t1;
  if (contained) {
    out->push_back(SfcRange{lo, hi, true});
    return;
  }
  if (level >= max_level || static_cast<int>(out->size()) >= max_ranges) {
    out->push_back(SfcRange{lo, hi, false});
    return;
  }
  double lng_mid = (cell.box.lng_min + cell.box.lng_max) / 2;
  double lat_mid = (cell.box.lat_min + cell.box.lat_max) / 2;
  double t_mid = (cell.t0 + cell.t1) / 2;
  for (uint64_t digit = 0; digit < 8; ++digit) {
    Cube child;
    child.box = geo::Mbr{
        (digit & 1) ? lng_mid : cell.box.lng_min,
        (digit & 2) ? lat_mid : cell.box.lat_min,
        (digit & 1) ? cell.box.lng_max : lng_mid,
        (digit & 2) ? cell.box.lat_max : lat_mid,
    };
    child.t0 = (digit & 4) ? t_mid : cell.t0;
    child.t1 = (digit & 4) ? cell.t1 : t_mid;
    Decompose((prefix << 3) | digit, level + 1, child, query, max_level, out,
              max_ranges);
  }
}

std::vector<SfcRange> Z3Sfc::Ranges(const geo::Mbr& query, double t0_frac,
                                    double t1_frac, int max_ranges) const {
  std::vector<SfcRange> out;
  Cube root{geo::Mbr::World(), 0.0, 1.0};
  Cube q{query, std::clamp(t0_frac, 0.0, 1.0), std::clamp(t1_frac, 0.0, 1.0)};
  int max_level = std::min(bits_, 12);
  Decompose(0, 0, root, q, max_level, &out, max_ranges);
  MergeSfcRanges(&out);
  return out;
}

}  // namespace just::curve
