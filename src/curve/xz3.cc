#include "curve/xz3.h"

#include <algorithm>
#include <cmath>

namespace just::curve {

namespace {
double NormLng(double lng) {
  return std::clamp((lng + 180.0) / 360.0, 0.0, 1.0);
}
double NormLat(double lat) {
  return std::clamp((lat + 90.0) / 180.0, 0.0, 1.0);
}
double NormT(double t) { return std::clamp(t, 0.0, 1.0); }
}  // namespace

Xz3Sfc::Xz3Sfc(int g) : g_(std::clamp(g, 1, 20)) {}

uint64_t Xz3Sfc::SubtreeSize(int depth) const {
  // (8^(g - depth + 1) - 1) / 7 elements in a subtree rooted at `depth`.
  int h = g_ - depth + 1;
  return ((1ull << (3 * h)) - 1) / 7;
}

uint64_t Xz3Sfc::MaxCode() const { return SubtreeSize(0); }

uint64_t Xz3Sfc::Index(const geo::Mbr& mbr, double t0_frac,
                       double t1_frac) const {
  double mins[3] = {NormLng(mbr.lng_min), NormLat(mbr.lat_min),
                    NormT(t0_frac)};
  double maxs[3] = {NormLng(mbr.lng_max), NormLat(mbr.lat_max),
                    NormT(t1_frac)};

  double max_dim = 0;
  for (int d = 0; d < 3; ++d) max_dim = std::max(max_dim, maxs[d] - mins[d]);
  int length;
  if (max_dim <= 0) {
    length = g_;
  } else {
    int l1 = static_cast<int>(std::floor(std::log(max_dim) / std::log(0.5)));
    if (l1 >= g_) {
      length = g_;
    } else {
      double w2 = std::pow(0.5, l1 + 1);
      auto fits = [&](double lo, double hi) {
        return std::floor(lo / w2) * w2 + 2 * w2 >= hi;
      };
      bool all_fit = fits(mins[0], maxs[0]) && fits(mins[1], maxs[1]) &&
                     fits(mins[2], maxs[2]);
      length = all_fit ? l1 + 1 : l1;
      length = std::clamp(length, 0, g_);
    }
  }

  double cell_min[3] = {0, 0, 0};
  double cell_max[3] = {1, 1, 1};
  uint64_t cs = 0;
  for (int i = 0; i < length; ++i) {
    uint64_t child_size = SubtreeSize(i + 1);
    uint64_t octant = 0;
    for (int d = 0; d < 3; ++d) {
      double center = (cell_min[d] + cell_max[d]) / 2;
      if (mins[d] >= center) {
        octant |= (1ull << d);
        cell_min[d] = center;
      } else {
        cell_max[d] = center;
      }
    }
    cs += 1 + octant * child_size;
  }
  return cs;
}

void Xz3Sfc::Search(const NormBox& cell, uint64_t code, int level,
                    const NormBox& q, std::vector<SfcRange>* out,
                    int max_ranges) const {
  double ext_max[3];
  for (int d = 0; d < 3; ++d) {
    ext_max[d] = cell.max[d] + (cell.max[d] - cell.min[d]);
  }
  bool overlaps = true;
  bool contained = true;
  for (int d = 0; d < 3; ++d) {
    if (q.min[d] > ext_max[d] || q.max[d] < cell.min[d]) overlaps = false;
    if (q.min[d] > cell.min[d] || q.max[d] < ext_max[d]) contained = false;
  }
  if (!overlaps) return;
  if (contained) {
    out->push_back(SfcRange{code, code + SubtreeSize(level) - 1, true});
    return;
  }
  if (level >= g_ || static_cast<int>(out->size()) >= max_ranges) {
    out->push_back(SfcRange{code, code + SubtreeSize(level) - 1, false});
    return;
  }
  out->push_back(SfcRange{code, code, false});
  uint64_t child_size = SubtreeSize(level + 1);
  for (uint64_t octant = 0; octant < 8; ++octant) {
    NormBox child;
    for (int d = 0; d < 3; ++d) {
      double center = (cell.min[d] + cell.max[d]) / 2;
      if (octant & (1ull << d)) {
        child.min[d] = center;
        child.max[d] = cell.max[d];
      } else {
        child.min[d] = cell.min[d];
        child.max[d] = center;
      }
    }
    Search(child, code + 1 + octant * child_size, level + 1, q, out,
           max_ranges);
  }
}

std::vector<SfcRange> Xz3Sfc::Ranges(const geo::Mbr& query, double t0_frac,
                                     double t1_frac, int max_ranges) const {
  NormBox root{{0, 0, 0}, {1, 1, 1}};
  NormBox q{{NormLng(query.lng_min), NormLat(query.lat_min), NormT(t0_frac)},
            {NormLng(query.lng_max), NormLat(query.lat_max), NormT(t1_frac)}};
  std::vector<SfcRange> out;
  Search(root, 0, 0, q, &out, max_ranges);
  MergeSfcRanges(&out);
  return out;
}

}  // namespace just::curve
