#ifndef JUST_CLUSTER_REGION_BACKEND_H_
#define JUST_CLUSTER_REGION_BACKEND_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "kvstore/lsm_store.h"

namespace just::cluster {

/// Stats one region server reports to the cluster aggregate.
struct BackendStats {
  uint64_t disk_bytes = 0;
  uint64_t entries = 0;  ///< sstable + memtable entries
  uint64_t num_sstables = 0;
};

/// One region server as the cluster sees it, independent of deployment:
/// in-process (an owned LsmStore, the historical mode) or out-of-process
/// (a socket client speaking the binary wire protocol to a
/// `just_region_server`). RegionCluster's routing, retry, and scan-batching
/// logic is written against this interface only, which is what lets
/// tests/cluster_test.cc run the identical suite over both deployments.
///
/// Contract notes:
///  - Transient failures (connection loss, shed-on-overload, timeouts)
///    surface as IsTransient() statuses; the cluster retries with backoff.
///  - Scan has LsmStore::Scan semantics: ordered [start, end), callback
///    returns false to stop early. Implementations may page internally
///    (the socket backend does, via the wire protocol's resume cursor);
///    on failure, rows may already have been delivered — callers that
///    retry must buffer per attempt, which RegionCluster does.
class RegionBackend {
 public:
  virtual ~RegionBackend() = default;

  virtual Status Put(std::string_view key, std::string_view value) = 0;
  virtual Status Delete(std::string_view key) = 0;
  virtual Status Get(std::string_view key, std::string* value) = 0;
  virtual Status WriteBatch(const std::vector<kv::WriteOp>& ops) = 0;
  /// Tenant-tagged streaming write batch. Out-of-process backends forward
  /// the tenant so the region server can apply its own per-tenant write
  /// admission (kResourceExhausted on shed — non-transient, no retry);
  /// in-process backends have no server-side quota layer and default to a
  /// plain WriteBatch.
  virtual Status IngestBatch(const std::string& tenant,
                             const std::vector<kv::WriteOp>& ops) {
    (void)tenant;
    return WriteBatch(ops);
  }
  virtual Status Scan(
      std::string_view start, std::string_view end,
      const std::function<bool(std::string_view, std::string_view)>& fn) = 0;
  virtual Status Flush() = 0;
  virtual Status CompactAll() = 0;
  virtual Status GetStats(BackendStats* stats) = 0;

  /// "local:<dir>" or "socket:<host>:<port>" — for error messages.
  virtual std::string name() const = 0;
};

/// Opens an in-process backend: an LsmStore owned by this process.
Result<std::unique_ptr<RegionBackend>> OpenLocalBackend(
    const kv::StoreOptions& options);

/// Opens a socket backend for a running `just_region_server` at
/// `addr` ("host:port"). Verifies liveness with a Ping (briefly retried so
/// a just-spawned server can finish binding).
Result<std::unique_ptr<RegionBackend>> OpenSocketBackend(
    const std::string& addr, uint32_t scan_page_rows);

}  // namespace just::cluster

#endif  // JUST_CLUSTER_REGION_BACKEND_H_
