#ifndef JUST_CLUSTER_REGION_CLUSTER_H_
#define JUST_CLUSTER_REGION_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "cluster/region_backend.h"
#include "curve/index_strategy.h"
#include "kvstore/lsm_store.h"

namespace just::cluster {

struct ClusterOptions {
  std::string dir;       ///< one subdirectory per region server
  int num_servers = 5;   ///< the paper's 5-node cluster (Section VIII-A)
  kv::StoreOptions store;  ///< template for each server's store (dir ignored)
  /// Out-of-process deployment: when non-empty, each entry is the
  /// "host:port" of a running `just_region_server` process and the cluster
  /// talks the binary wire protocol to it instead of opening local stores
  /// (`dir`, `num_servers`, and `store` are then ignored — the server
  /// processes own their stores). Order matters: entry i serves shard
  /// bytes b with b % N == i, exactly like local server i would.
  std::vector<std::string> server_addrs;
  /// Bounded retry for transient region-server failures (IOError /
  /// Unavailable — HBase clients retry RPCs the same way; a remote server
  /// shedding load under overload surfaces as Unavailable too). Corruption
  /// and NotFound are never retried. 0 disables retries.
  int max_retries = 2;
  /// Base backoff before the first retry; doubles per attempt.
  int retry_backoff_ms = 1;
  /// Scan() streams each server's range in batches of this many rows so
  /// early-stopping consumers never force a server to materialize its whole
  /// range (each batch stays individually retry-safe). Socket backends also
  /// use this as the wire page size.
  size_t scan_batch_rows = 512;
};

/// The HBase-cluster role: `num_servers` region servers, each one
/// RegionBackend — an in-process LSM store (the historical single-binary
/// mode) or a remote `just_region_server` process reached over the binary
/// wire protocol (see ClusterOptions::server_addrs). The shard byte that
/// the indexing strategies prepend to every key (GeoMesa's random prefix)
/// routes records to servers, achieving the load balance Section IV-A
/// describes; SCANs over key ranges run in parallel across servers
/// (Section IV-B, step 3). All routing/retry/batching behaviour is
/// identical across deployments — tests/cluster_test.cc runs the same
/// suite against both.
class RegionCluster {
 public:
  static Result<std::unique_ptr<RegionCluster>> Open(
      const ClusterOptions& options);

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);
  Status Get(std::string_view key, std::string* value) const;

  /// Routes every op to its owning server and commits each server's slice
  /// as one group-commit batch (parallel across servers for large batches).
  /// This is the bulk-ingest path: N rows cost ~1 WAL append + fsync per
  /// server instead of N. Atomicity is per server, not cross-server — same
  /// as HBase multi-row mutations.
  Status WriteBatch(std::vector<kv::WriteOp> ops);

  /// WriteBatch with a tenant tag: ops reach each owning server as a
  /// kIngestReq so out-of-process servers can apply per-tenant write
  /// admission before the WAL append. In-process backends degrade to a
  /// plain WriteBatch. The streaming ingest path (INSERT STREAM).
  Status IngestBatch(const std::string& tenant, std::vector<kv::WriteOp> ops);

  /// One row returned by a scan.
  struct Row {
    std::string key;
    std::string value;
  };

  /// Result of scanning one key range.
  struct RangeResult {
    std::vector<Row> rows;
    bool contained = false;  ///< from the originating KeyRange
  };

  /// Runs every key range as a SCAN on its owning server, in parallel.
  Result<std::vector<RangeResult>> ParallelScan(
      const std::vector<curve::KeyRange>& ranges) const;

  /// Sequential scan of a single [start, end) range, merged across servers
  /// that may hold keys in it.
  Status Scan(std::string_view start, std::string_view end,
              const std::function<bool(std::string_view, std::string_view)>&
                  fn) const;

  Status FlushAll();
  Status CompactAll();

  struct Stats {
    uint64_t disk_bytes = 0;
    uint64_t entries = 0;
    size_t num_sstables = 0;
  };
  Stats GetStats() const;

  int num_servers() const { return static_cast<int>(servers_.size()); }

 private:
  explicit RegionCluster(const ClusterOptions& options) : options_(options) {}

  /// Shard routing: first key byte modulo server count.
  int ServerFor(std::string_view key) const;

  /// Shared body of WriteBatch / IngestBatch: routes ops per server and
  /// commits each server's slice through `apply` (parallel across servers
  /// for large batches, WithRetry around each slice).
  Status DispatchBatch(
      std::vector<kv::WriteOp> ops,
      const std::function<Status(RegionBackend*,
                                 const std::vector<kv::WriteOp>&)>& apply);

  /// Runs `op` with bounded exponential-backoff retry on transient errors
  /// (options_.max_retries / retry_backoff_ms). `op` must be idempotent and
  /// side-effect-free until it succeeds — callers buffer scan rows per
  /// attempt so a retried scan never duplicates rows downstream.
  Status WithRetry(const std::function<Status()>& op) const;

  ClusterOptions options_;
  std::vector<std::unique_ptr<RegionBackend>> servers_;
};

}  // namespace just::cluster

#endif  // JUST_CLUSTER_REGION_CLUSTER_H_
