#include "cluster/region_backend.h"

#include <chrono>
#include <mutex>
#include <thread>

#include "net/region_client.h"

namespace just::cluster {

namespace {

class LocalBackend : public RegionBackend {
 public:
  explicit LocalBackend(std::unique_ptr<kv::LsmStore> store)
      : store_(std::move(store)) {}

  Status Put(std::string_view key, std::string_view value) override {
    return store_->Put(key, value);
  }
  Status Delete(std::string_view key) override { return store_->Delete(key); }
  Status Get(std::string_view key, std::string* value) override {
    return store_->Get(key, value);
  }
  Status WriteBatch(const std::vector<kv::WriteOp>& ops) override {
    return store_->WriteBatch(ops);
  }
  Status Scan(std::string_view start, std::string_view end,
              const std::function<bool(std::string_view, std::string_view)>&
                  fn) override {
    return store_->Scan(start, end, fn);
  }
  Status Flush() override { return store_->Flush(); }
  Status CompactAll() override { return store_->CompactAll(); }
  Status GetStats(BackendStats* stats) override {
    kv::LsmStore::Stats s = store_->GetStats();
    stats->disk_bytes = s.disk_bytes;
    stats->entries = s.sstable_entries + s.memtable_entries;
    stats->num_sstables = s.num_sstables;
    return Status::OK();
  }
  std::string name() const override {
    return "local:" + store_->options().dir;
  }

 private:
  std::unique_ptr<kv::LsmStore> store_;
};

/// Wire-protocol backend. RegionClient is not thread-safe and the cluster
/// fans scans out across a pool, so every RPC serializes on a mutex; scans
/// hold it per *page*, not per range, so concurrent scans interleave at
/// page granularity instead of starving each other.
class SocketBackend : public RegionBackend {
 public:
  explicit SocketBackend(net::RegionClientOptions options)
      : addr_(options.host + ":" + std::to_string(options.port)),
        client_(std::move(options)) {}

  Status Put(std::string_view key, std::string_view value) override {
    std::lock_guard<std::mutex> lock(mu_);
    return client_.Put(key, value);
  }
  Status Delete(std::string_view key) override {
    std::lock_guard<std::mutex> lock(mu_);
    return client_.Delete(key);
  }
  Status Get(std::string_view key, std::string* value) override {
    std::lock_guard<std::mutex> lock(mu_);
    return client_.Get(key, value);
  }
  Status WriteBatch(const std::vector<kv::WriteOp>& ops) override {
    std::lock_guard<std::mutex> lock(mu_);
    return client_.WriteBatch(ops);
  }
  Status IngestBatch(const std::string& tenant,
                     const std::vector<kv::WriteOp>& ops) override {
    std::lock_guard<std::mutex> lock(mu_);
    return client_.Ingest(tenant, ops);
  }
  Status Scan(std::string_view start, std::string_view end,
              const std::function<bool(std::string_view, std::string_view)>&
                  fn) override {
    net::ScanRequest req;
    req.start_key = std::string(start);
    req.end_key = std::string(end);
    for (;;) {
      net::ScanResponse resp;
      {
        std::lock_guard<std::mutex> lock(mu_);
        req.limit_rows = client_.options().scan_page_rows;
        JUST_RETURN_NOT_OK(client_.ScanPage(req, &resp));
      }
      // The callback runs without the lock: it may (indirectly) issue more
      // RPCs against this same backend.
      for (const auto& row : resp.rows) {
        if (!fn(row.key, row.value)) return Status::OK();
      }
      if (!resp.has_more) return Status::OK();
      req.start_key = resp.next_cursor;
    }
  }
  Status Flush() override {
    std::lock_guard<std::mutex> lock(mu_);
    return client_.Flush();
  }
  Status CompactAll() override {
    std::lock_guard<std::mutex> lock(mu_);
    return client_.CompactAll();
  }
  Status GetStats(BackendStats* stats) override {
    std::lock_guard<std::mutex> lock(mu_);
    net::StatsResponse resp;
    JUST_RETURN_NOT_OK(client_.GetStats(&resp));
    stats->disk_bytes = resp.disk_bytes;
    stats->entries = resp.entries;
    stats->num_sstables = resp.num_sstables;
    return Status::OK();
  }
  std::string name() const override { return "socket:" + addr_; }

  Status Ping() {
    std::lock_guard<std::mutex> lock(mu_);
    return client_.Ping();
  }

 private:
  std::string addr_;
  std::mutex mu_;
  net::RegionClient client_;
};

}  // namespace

Result<std::unique_ptr<RegionBackend>> OpenLocalBackend(
    const kv::StoreOptions& options) {
  JUST_ASSIGN_OR_RETURN(auto store, kv::LsmStore::Open(options));
  return std::unique_ptr<RegionBackend>(new LocalBackend(std::move(store)));
}

Result<std::unique_ptr<RegionBackend>> OpenSocketBackend(
    const std::string& addr, uint32_t scan_page_rows) {
  size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= addr.size()) {
    return Status::InvalidArgument("server address must be host:port, got '" +
                                   addr + "'");
  }
  net::RegionClientOptions options;
  options.host = addr.substr(0, colon);
  options.port = std::atoi(addr.c_str() + colon + 1);
  if (options.port <= 0 || options.port > 65535) {
    return Status::InvalidArgument("bad port in server address '" + addr +
                                   "'");
  }
  if (scan_page_rows > 0) options.scan_page_rows = scan_page_rows;
  auto backend = std::make_unique<SocketBackend>(options);
  // A freshly spawned server may still be binding: give it a brief grace
  // window, then fail Open with the underlying error.
  Status st;
  for (int attempt = 0; attempt < 20; ++attempt) {
    st = backend->Ping();
    if (st.ok()) return std::unique_ptr<RegionBackend>(std::move(backend));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return Status::Unavailable("region server at " + addr +
                             " unreachable: " + st.ToString());
}

}  // namespace just::cluster
