#include "cluster/region_cluster.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace just::cluster {

namespace {
/// True when every key in [start, end) shares start's first byte, i.e. the
/// range cannot cross a shard boundary. Covers both planner shapes: equal
/// first bytes, and an exclusive end that is exactly the next byte value
/// (["\x04...", "\x05") holds only keys starting with 0x04).
bool SingleShardByte(std::string_view start, std::string_view end) {
  if (start.empty() || end.empty()) return false;
  auto s = static_cast<unsigned char>(start[0]);
  auto e = static_cast<unsigned char>(end[0]);
  if (s == e) return true;
  return end.size() == 1 && e == s + 1;
}
}  // namespace

Result<std::unique_ptr<RegionCluster>> RegionCluster::Open(
    const ClusterOptions& options) {
  if (!options.server_addrs.empty()) {
    // Out-of-process deployment: one socket backend per running
    // `just_region_server`; this process owns no stores.
    auto cluster = std::unique_ptr<RegionCluster>(new RegionCluster(options));
    for (const auto& addr : options.server_addrs) {
      JUST_ASSIGN_OR_RETURN(
          auto backend,
          OpenSocketBackend(
              addr, static_cast<uint32_t>(options.scan_batch_rows)));
      cluster->servers_.push_back(std::move(backend));
    }
    return cluster;
  }
  if (options.num_servers < 1) {
    return Status::InvalidArgument("cluster needs at least one server");
  }
  auto cluster = std::unique_ptr<RegionCluster>(new RegionCluster(options));
  for (int i = 0; i < options.num_servers; ++i) {
    kv::StoreOptions store_options = options.store;
    store_options.dir = options.dir + "/rs" + std::to_string(i);
    JUST_ASSIGN_OR_RETURN(auto backend, OpenLocalBackend(store_options));
    cluster->servers_.push_back(std::move(backend));
  }
  return cluster;
}

int RegionCluster::ServerFor(std::string_view key) const {
  if (key.empty()) return 0;
  return static_cast<unsigned char>(key[0]) %
         static_cast<int>(servers_.size());
}

Status RegionCluster::WithRetry(const std::function<Status()>& op) const {
  // Stable pointer into the registry; fetched once per process.
  static obs::Counter* retries =
      obs::Registry::Global().GetCounter("just_cluster_retries_total");
  Status st = op();
  for (int attempt = 0; !st.ok() && st.IsTransient() &&
                        attempt < options_.max_retries;
       ++attempt) {
    retries->Increment();
    // Exponential backoff: a region server mid-restart needs a moment, and
    // hammering it would only extend the brownout.
    int delay_ms = options_.retry_backoff_ms << attempt;
    if (delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    st = op();
  }
  return st;
}

Status RegionCluster::Put(std::string_view key, std::string_view value) {
  RegionBackend* server = servers_[ServerFor(key)].get();
  return WithRetry([&] { return server->Put(key, value); });
}

Status RegionCluster::Delete(std::string_view key) {
  RegionBackend* server = servers_[ServerFor(key)].get();
  return WithRetry([&] { return server->Delete(key); });
}

Status RegionCluster::Get(std::string_view key, std::string* value) const {
  RegionBackend* server = servers_[ServerFor(key)].get();
  return WithRetry([&] { return server->Get(key, value); });
}

Status RegionCluster::DispatchBatch(
    std::vector<kv::WriteOp> ops,
    const std::function<Status(RegionBackend*, const std::vector<kv::WriteOp>&)>&
        apply) {
  if (ops.empty()) return Status::OK();
  std::vector<std::vector<kv::WriteOp>> per_server(servers_.size());
  for (auto& op : ops) {
    per_server[ServerFor(op.key)].push_back(std::move(op));
  }
  size_t busy_servers = 0;
  for (const auto& slice : per_server) busy_servers += slice.empty() ? 0 : 1;
  // Small batches (or one-server batches) are not worth pool dispatch.
  if (busy_servers <= 1 || ops.size() < 64) {
    for (size_t s = 0; s < per_server.size(); ++s) {
      if (per_server[s].empty()) continue;
      RegionBackend* server = servers_[s].get();
      JUST_RETURN_NOT_OK(
          WithRetry([&] { return apply(server, per_server[s]); }));
    }
    return Status::OK();
  }
  std::atomic<bool> failed{false};
  Status first_error;
  std::mutex error_mu;
  DefaultPool().ParallelFor(per_server.size(), [&](size_t s) {
    if (per_server[s].empty()) return;
    RegionBackend* server = servers_[s].get();
    Status st = WithRetry([&] { return apply(server, per_server[s]); });
    if (!st.ok()) {
      failed.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) first_error = st;
    }
  });
  if (failed.load()) {
    return first_error.ok() ? Status::Internal("batch write failed")
                            : first_error;
  }
  return Status::OK();
}

Status RegionCluster::WriteBatch(std::vector<kv::WriteOp> ops) {
  return DispatchBatch(std::move(ops),
                       [](RegionBackend* server,
                          const std::vector<kv::WriteOp>& slice) {
                         return server->WriteBatch(slice);
                       });
}

Status RegionCluster::IngestBatch(const std::string& tenant,
                                  std::vector<kv::WriteOp> ops) {
  // Per-tenant quota sheds come back as kResourceExhausted, which is not
  // transient — WithRetry passes it straight through, so a throttled tenant
  // sees the shed immediately instead of burning the retry budget.
  return DispatchBatch(std::move(ops),
                       [&tenant](RegionBackend* server,
                                 const std::vector<kv::WriteOp>& slice) {
                         return server->IngestBatch(tenant, slice);
                       });
}

Result<std::vector<RegionCluster::RangeResult>> RegionCluster::ParallelScan(
    const std::vector<curve::KeyRange>& ranges) const {
  std::vector<RangeResult> results(ranges.size());
  std::atomic<bool> failed{false};
  Status first_error;
  std::mutex error_mu;
  static obs::Histogram* scan_hist =
      obs::Registry::Global().GetHistogram("just_cluster_parallel_scan_us");
  obs::ScopedSpan span("cluster.ParallelScan");
  if (span.span() != nullptr) {
    span.span()->AddAttr("ranges", std::to_string(ranges.size()));
  }
  const auto scan_start = std::chrono::steady_clock::now();
  // Pool workers have their own thread-local state: hand them the span
  // explicitly so their I/O counters attribute to this scan.
  obs::TraceSpan* parent_span = obs::CurrentSpan();
  DefaultPool().ParallelFor(ranges.size(), [&](size_t i) {
    obs::SpanScope scope(parent_span);
    if (failed.load(std::memory_order_relaxed)) return;
    const curve::KeyRange& range = ranges[i];
    results[i].contained = range.contained;
    // Routing is first_byte % num_servers — NOT a contiguous partition: a
    // range spanning multiple shard bytes can land on every server (e.g.
    // bytes 0x04..0x06 with 5 servers hit servers 4, 0 and 1, which the old
    // `[ServerFor(start), ServerFor(end)]` guess silently skipped). Only a
    // range confined to a single shard byte maps to a single server; the
    // ranges the index strategies emit are of exactly that shape, so the
    // fast path still covers the common case.
    int first = 0;
    int last = num_servers() - 1;
    if (SingleShardByte(range.start, range.end)) {
      first = last = ServerFor(range.start);
    }
    for (int server = first; server <= last; ++server) {
      // Rows are buffered per attempt: a retry after a mid-scan failure
      // restarts the server's range cleanly instead of duplicating rows.
      std::vector<Row> rows;
      Status st = WithRetry([&] {
        rows.clear();
        return servers_[server]->Scan(
            range.start, range.end,
            [&](std::string_view key, std::string_view value) {
              rows.push_back(Row{std::string(key), std::string(value)});
              return true;
            });
      });
      if (!st.ok()) {
        failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = st;
        return;
      }
      for (auto& row : rows) results[i].rows.push_back(std::move(row));
    }
  });
  scan_hist->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - scan_start)
          .count()));
  if (failed.load()) {
    return first_error.ok() ? Status::Internal("parallel scan failed")
                            : first_error;
  }
  return results;
}

Status RegionCluster::Scan(
    std::string_view start, std::string_view end,
    const std::function<bool(std::string_view, std::string_view)>& fn) const {
  // Keys are partitioned by shard byte, so a full-order merge across servers
  // is only needed when the range spans shards; scan shard by shard (the
  // global order across shard bytes is preserved because routing is by the
  // first byte and servers see disjoint byte prefixes... only when
  // num_servers >= 256; in general this yields per-shard ordered output,
  // which all internal callers accept).
  static obs::Counter* rows_fetched = obs::Registry::Global().GetCounter(
      "just_cluster_scan_rows_fetched_total");
  const size_t batch_rows = std::max<size_t>(1, options_.scan_batch_rows);
  for (const auto& server : servers_) {
    // Stream the server's range in bounded batches instead of buffering it
    // whole: an early-stopping consumer (LIMIT-style) used to pay for the
    // entire range before the first row reached it. Each batch is buffered
    // so a transient failure can be retried without re-emitting rows the
    // callback already consumed; the cursor only advances once a batch is
    // delivered, so a retried batch restarts cleanly.
    std::string cursor(start);
    for (;;) {
      std::vector<Row> rows;
      Status st = WithRetry([&] {
        rows.clear();
        return server->Scan(cursor, end,
                            [&](std::string_view k, std::string_view v) {
                              rows.push_back(Row{std::string(k),
                                                 std::string(v)});
                              return rows.size() < batch_rows;
                            });
      });
      JUST_RETURN_NOT_OK(st);
      rows_fetched->Add(rows.size());
      for (const auto& row : rows) {
        if (!fn(row.key, row.value)) return Status::OK();
      }
      if (rows.size() < batch_rows) break;  // server range exhausted
      // Next batch resumes just past the last delivered key.
      cursor = rows.back().key + '\0';
    }
  }
  return Status::OK();
}

Status RegionCluster::FlushAll() {
  for (const auto& server : servers_) {
    JUST_RETURN_NOT_OK(server->Flush());
  }
  return Status::OK();
}

Status RegionCluster::CompactAll() {
  for (const auto& server : servers_) {
    JUST_RETURN_NOT_OK(server->CompactAll());
  }
  return Status::OK();
}

RegionCluster::Stats RegionCluster::GetStats() const {
  Stats stats;
  for (const auto& server : servers_) {
    BackendStats s;
    if (!server->GetStats(&s).ok()) continue;  // best-effort aggregate
    stats.disk_bytes += s.disk_bytes;
    stats.entries += s.entries;
    stats.num_sstables += s.num_sstables;
  }
  return stats;
}

}  // namespace just::cluster
