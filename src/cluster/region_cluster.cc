#include "cluster/region_cluster.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace just::cluster {

Result<std::unique_ptr<RegionCluster>> RegionCluster::Open(
    const ClusterOptions& options) {
  if (options.num_servers < 1) {
    return Status::InvalidArgument("cluster needs at least one server");
  }
  auto cluster = std::unique_ptr<RegionCluster>(new RegionCluster(options));
  for (int i = 0; i < options.num_servers; ++i) {
    kv::StoreOptions store_options = options.store;
    store_options.dir = options.dir + "/rs" + std::to_string(i);
    JUST_ASSIGN_OR_RETURN(auto store, kv::LsmStore::Open(store_options));
    cluster->servers_.push_back(std::move(store));
  }
  return cluster;
}

int RegionCluster::ServerFor(std::string_view key) const {
  if (key.empty()) return 0;
  return static_cast<unsigned char>(key[0]) %
         static_cast<int>(servers_.size());
}

Status RegionCluster::WithRetry(const std::function<Status()>& op) const {
  // Stable pointer into the registry; fetched once per process.
  static obs::Counter* retries =
      obs::Registry::Global().GetCounter("just_cluster_retries_total");
  Status st = op();
  for (int attempt = 0; !st.ok() && st.IsTransient() &&
                        attempt < options_.max_retries;
       ++attempt) {
    retries->Increment();
    // Exponential backoff: a region server mid-restart needs a moment, and
    // hammering it would only extend the brownout.
    int delay_ms = options_.retry_backoff_ms << attempt;
    if (delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    st = op();
  }
  return st;
}

Status RegionCluster::Put(std::string_view key, std::string_view value) {
  kv::LsmStore* server = servers_[ServerFor(key)].get();
  return WithRetry([&] { return server->Put(key, value); });
}

Status RegionCluster::Delete(std::string_view key) {
  kv::LsmStore* server = servers_[ServerFor(key)].get();
  return WithRetry([&] { return server->Delete(key); });
}

Status RegionCluster::Get(std::string_view key, std::string* value) const {
  kv::LsmStore* server = servers_[ServerFor(key)].get();
  return WithRetry([&] { return server->Get(key, value); });
}

Result<std::vector<RegionCluster::RangeResult>> RegionCluster::ParallelScan(
    const std::vector<curve::KeyRange>& ranges) const {
  std::vector<RangeResult> results(ranges.size());
  std::atomic<bool> failed{false};
  Status first_error;
  std::mutex error_mu;
  static obs::Histogram* scan_hist =
      obs::Registry::Global().GetHistogram("just_cluster_parallel_scan_us");
  obs::ScopedSpan span("cluster.ParallelScan");
  if (span.span() != nullptr) {
    span.span()->AddAttr("ranges", std::to_string(ranges.size()));
  }
  const auto scan_start = std::chrono::steady_clock::now();
  // Pool workers have their own thread-local state: hand them the span
  // explicitly so their I/O counters attribute to this scan.
  obs::TraceSpan* parent_span = obs::CurrentSpan();
  DefaultPool().ParallelFor(ranges.size(), [&](size_t i) {
    obs::SpanScope scope(parent_span);
    if (failed.load(std::memory_order_relaxed)) return;
    const curve::KeyRange& range = ranges[i];
    results[i].contained = range.contained;
    // A range produced by the index strategies stays inside one shard byte,
    // hence one server. Guard against cross-shard ranges anyway.
    int first = ServerFor(range.start);
    int last = range.end.empty() ? num_servers() - 1 : ServerFor(range.end);
    if (last < first) last = num_servers() - 1;
    for (int server = first; server <= last; ++server) {
      // Rows are buffered per attempt: a retry after a mid-scan failure
      // restarts the server's range cleanly instead of duplicating rows.
      std::vector<Row> rows;
      Status st = WithRetry([&] {
        rows.clear();
        return servers_[server]->Scan(
            range.start, range.end,
            [&](std::string_view key, std::string_view value) {
              rows.push_back(Row{std::string(key), std::string(value)});
              return true;
            });
      });
      if (!st.ok()) {
        failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = st;
        return;
      }
      for (auto& row : rows) results[i].rows.push_back(std::move(row));
    }
  });
  scan_hist->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - scan_start)
          .count()));
  if (failed.load()) {
    return first_error.ok() ? Status::Internal("parallel scan failed")
                            : first_error;
  }
  return results;
}

Status RegionCluster::Scan(
    std::string_view start, std::string_view end,
    const std::function<bool(std::string_view, std::string_view)>& fn) const {
  // Keys are partitioned by shard byte, so a full-order merge across servers
  // is only needed when the range spans shards; scan shard by shard (the
  // global order across shard bytes is preserved because routing is by the
  // first byte and servers see disjoint byte prefixes... only when
  // num_servers >= 256; in general this yields per-shard ordered output,
  // which all internal callers accept).
  for (const auto& server : servers_) {
    // Buffer the server's rows so a transient failure can be retried without
    // re-emitting rows the callback already consumed.
    std::vector<Row> rows;
    Status st = WithRetry([&] {
      rows.clear();
      return server->Scan(start, end,
                          [&](std::string_view k, std::string_view v) {
                            rows.push_back(Row{std::string(k),
                                               std::string(v)});
                            return true;
                          });
    });
    JUST_RETURN_NOT_OK(st);
    for (const auto& row : rows) {
      if (!fn(row.key, row.value)) return Status::OK();
    }
  }
  return Status::OK();
}

Status RegionCluster::FlushAll() {
  for (const auto& server : servers_) {
    JUST_RETURN_NOT_OK(server->Flush());
  }
  return Status::OK();
}

Status RegionCluster::CompactAll() {
  for (const auto& server : servers_) {
    JUST_RETURN_NOT_OK(server->CompactAll());
  }
  return Status::OK();
}

RegionCluster::Stats RegionCluster::GetStats() const {
  Stats stats;
  for (const auto& server : servers_) {
    kv::LsmStore::Stats s = server->GetStats();
    stats.disk_bytes += s.disk_bytes;
    stats.entries += s.sstable_entries + s.memtable_entries;
    stats.num_sstables += s.num_sstables;
  }
  return stats;
}

}  // namespace just::cluster
