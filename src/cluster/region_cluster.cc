#include "cluster/region_cluster.h"

#include <atomic>

namespace just::cluster {

Result<std::unique_ptr<RegionCluster>> RegionCluster::Open(
    const ClusterOptions& options) {
  if (options.num_servers < 1) {
    return Status::InvalidArgument("cluster needs at least one server");
  }
  auto cluster = std::unique_ptr<RegionCluster>(new RegionCluster(options));
  for (int i = 0; i < options.num_servers; ++i) {
    kv::StoreOptions store_options = options.store;
    store_options.dir = options.dir + "/rs" + std::to_string(i);
    JUST_ASSIGN_OR_RETURN(auto store, kv::LsmStore::Open(store_options));
    cluster->servers_.push_back(std::move(store));
  }
  return cluster;
}

int RegionCluster::ServerFor(std::string_view key) const {
  if (key.empty()) return 0;
  return static_cast<unsigned char>(key[0]) %
         static_cast<int>(servers_.size());
}

Status RegionCluster::Put(std::string_view key, std::string_view value) {
  return servers_[ServerFor(key)]->Put(key, value);
}

Status RegionCluster::Delete(std::string_view key) {
  return servers_[ServerFor(key)]->Delete(key);
}

Status RegionCluster::Get(std::string_view key, std::string* value) const {
  return servers_[ServerFor(key)]->Get(key, value);
}

Result<std::vector<RegionCluster::RangeResult>> RegionCluster::ParallelScan(
    const std::vector<curve::KeyRange>& ranges) const {
  std::vector<RangeResult> results(ranges.size());
  std::atomic<bool> failed{false};
  DefaultPool().ParallelFor(ranges.size(), [&](size_t i) {
    if (failed.load(std::memory_order_relaxed)) return;
    const curve::KeyRange& range = ranges[i];
    results[i].contained = range.contained;
    // A range produced by the index strategies stays inside one shard byte,
    // hence one server. Guard against cross-shard ranges anyway.
    int first = ServerFor(range.start);
    int last = range.end.empty() ? num_servers() - 1 : ServerFor(range.end);
    if (last < first) last = num_servers() - 1;
    for (int server = first; server <= last; ++server) {
      Status st = servers_[server]->Scan(
          range.start, range.end,
          [&](std::string_view key, std::string_view value) {
            results[i].rows.push_back(
                Row{std::string(key), std::string(value)});
            return true;
          });
      if (!st.ok()) {
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  });
  if (failed.load()) return Status::Internal("parallel scan failed");
  return results;
}

Status RegionCluster::Scan(
    std::string_view start, std::string_view end,
    const std::function<bool(std::string_view, std::string_view)>& fn) const {
  // Keys are partitioned by shard byte, so a full-order merge across servers
  // is only needed when the range spans shards; scan shard by shard (the
  // global order across shard bytes is preserved because routing is by the
  // first byte and servers see disjoint byte prefixes... only when
  // num_servers >= 256; in general this yields per-shard ordered output,
  // which all internal callers accept).
  for (const auto& server : servers_) {
    bool stop = false;
    Status st = server->Scan(start, end,
                             [&](std::string_view k, std::string_view v) {
                               if (!fn(k, v)) {
                                 stop = true;
                                 return false;
                               }
                               return true;
                             });
    JUST_RETURN_NOT_OK(st);
    if (stop) break;
  }
  return Status::OK();
}

Status RegionCluster::FlushAll() {
  for (const auto& server : servers_) {
    JUST_RETURN_NOT_OK(server->Flush());
  }
  return Status::OK();
}

Status RegionCluster::CompactAll() {
  for (const auto& server : servers_) {
    JUST_RETURN_NOT_OK(server->CompactAll());
  }
  return Status::OK();
}

RegionCluster::Stats RegionCluster::GetStats() const {
  Stats stats;
  for (const auto& server : servers_) {
    kv::LsmStore::Stats s = server->GetStats();
    stats.disk_bytes += s.disk_bytes;
    stats.entries += s.sstable_entries + s.memtable_entries;
    stats.num_sstables += s.num_sstables;
  }
  return stats;
}

}  // namespace just::cluster
