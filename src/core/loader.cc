#include "core/loader.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace just::core {

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delimiter) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (char c : line) {
    if (c == '"') {
      quoted = !quoted;
    } else if (c == delimiter && !quoted) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

struct Expr {
  std::string func;               // empty = plain column reference
  std::vector<std::string> args;  // source column names
};

Expr ParseExpr(const std::string& text) {
  Expr expr;
  size_t open = text.find('(');
  if (open == std::string::npos) {
    expr.args.push_back(text);
    return expr;
  }
  expr.func = text.substr(0, open);
  size_t close = text.rfind(')');
  std::string inner =
      text.substr(open + 1, close == std::string::npos
                                ? std::string::npos
                                : close - open - 1);
  std::string arg;
  for (char c : inner) {
    if (c == ',') {
      expr.args.push_back(arg);
      arg.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      arg += c;
    }
  }
  if (!arg.empty()) expr.args.push_back(arg);
  return expr;
}

Result<exec::Value> EvalExpr(const Expr& expr,
                             const std::map<std::string, int>& source_index,
                             const std::vector<std::string>& fields,
                             exec::DataType target_type) {
  auto field_of = [&](const std::string& name) -> Result<std::string> {
    auto it = source_index.find(name);
    if (it == source_index.end() ||
        it->second >= static_cast<int>(fields.size())) {
      return Status::InvalidArgument("no source field: " + name);
    }
    return fields[it->second];
  };

  if (expr.func.empty()) {
    JUST_ASSIGN_OR_RETURN(std::string raw, field_of(expr.args[0]));
    switch (target_type) {
      case exec::DataType::kInt:
        return exec::Value::Int(std::strtoll(raw.c_str(), nullptr, 10));
      case exec::DataType::kDouble:
        return exec::Value::Double(std::strtod(raw.c_str(), nullptr));
      case exec::DataType::kBool:
        return exec::Value::Bool(raw == "true" || raw == "1");
      case exec::DataType::kTimestamp: {
        JUST_ASSIGN_OR_RETURN(auto ts, ParseTimestamp(raw));
        return exec::Value::Timestamp(ts);
      }
      case exec::DataType::kGeometry: {
        JUST_ASSIGN_OR_RETURN(auto g, geo::Geometry::FromWkt(raw));
        return exec::Value::GeometryVal(std::move(g));
      }
      default:
        return exec::Value::String(std::move(raw));
    }
  }
  if (expr.func == "long_to_date_ms") {
    JUST_ASSIGN_OR_RETURN(std::string raw, field_of(expr.args[0]));
    return exec::Value::Timestamp(std::strtoll(raw.c_str(), nullptr, 10));
  }
  if (expr.func == "parse_date") {
    JUST_ASSIGN_OR_RETURN(std::string raw, field_of(expr.args[0]));
    JUST_ASSIGN_OR_RETURN(auto ts, ParseTimestamp(raw));
    return exec::Value::Timestamp(ts);
  }
  if (expr.func == "lng_lat_to_point") {
    if (expr.args.size() != 2) {
      return Status::InvalidArgument("lng_lat_to_point needs two fields");
    }
    JUST_ASSIGN_OR_RETURN(std::string lng_raw, field_of(expr.args[0]));
    JUST_ASSIGN_OR_RETURN(std::string lat_raw, field_of(expr.args[1]));
    return exec::Value::GeometryVal(geo::Geometry::MakePoint(
        geo::Point{std::strtod(lng_raw.c_str(), nullptr),
                   std::strtod(lat_raw.c_str(), nullptr)}));
  }
  if (expr.func == "wkt_to_geom") {
    JUST_ASSIGN_OR_RETURN(std::string raw, field_of(expr.args[0]));
    JUST_ASSIGN_OR_RETURN(auto g, geo::Geometry::FromWkt(raw));
    return exec::Value::GeometryVal(std::move(g));
  }
  return Status::InvalidArgument("unknown load transform: " + expr.func);
}

}  // namespace

Result<size_t> LoadCsv(JustEngine* engine, const std::string& user,
                       const std::string& table, const std::string& path,
                       const LoadConfig& config) {
  JUST_ASSIGN_OR_RETURN(auto table_meta,
                        engine->catalog()->GetTable(user, table));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open csv: " + path);
  std::string content;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);

  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < content.size()) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    std::string line = content.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) lines.push_back(std::move(line));
    pos = eol + 1;
  }
  if (lines.empty()) return size_t{0};

  std::map<std::string, int> source_index;
  size_t first_data = 0;
  if (config.has_header) {
    auto header = SplitCsvLine(lines[0], config.delimiter);
    for (size_t i = 0; i < header.size(); ++i) {
      source_index[header[i]] = static_cast<int>(i);
    }
    first_data = 1;
  } else {
    // Positional names c0, c1, ...
    auto first = SplitCsvLine(lines[0], config.delimiter);
    for (size_t i = 0; i < first.size(); ++i) {
      source_index["c" + std::to_string(i)] = static_cast<int>(i);
    }
  }

  // Pre-parse the mapping per table column.
  std::vector<Expr> exprs(table_meta.columns.size());
  for (size_t c = 0; c < table_meta.columns.size(); ++c) {
    auto it = config.mapping.find(table_meta.columns[c].name);
    if (it != config.mapping.end()) {
      exprs[c] = ParseExpr(it->second);
    } else {
      exprs[c].args.push_back(table_meta.columns[c].name);  // same name
    }
  }

  // Rows are staged in chunks that flow through StTable::InsertBatch into
  // the cluster's per-server group commits — the whole chunk's index keys
  // cost a few WAL fsyncs instead of one per key.
  constexpr size_t kLoaderChunkRows = 1024;
  size_t loaded = 0;
  std::vector<exec::Row> batch;
  for (size_t li = first_data; li < lines.size(); ++li) {
    if (config.limit >= 0 && static_cast<long>(loaded) >= config.limit) break;
    auto fields = SplitCsvLine(lines[li], config.delimiter);
    exec::Row row;
    row.reserve(table_meta.columns.size());
    Status row_status = Status::OK();
    for (size_t c = 0; c < table_meta.columns.size(); ++c) {
      auto value = EvalExpr(exprs[c], source_index, fields,
                            table_meta.columns[c].type);
      if (!value.ok()) {
        row_status = value.status();
        break;
      }
      row.push_back(std::move(value).value());
    }
    if (!row_status.ok()) return row_status;
    batch.push_back(std::move(row));
    ++loaded;
    if (batch.size() >= kLoaderChunkRows) {
      JUST_RETURN_NOT_OK(engine->InsertBatch(user, table, batch));
      batch.clear();
    }
  }
  if (!batch.empty()) {
    JUST_RETURN_NOT_OK(engine->InsertBatch(user, table, batch));
  }
  return loaded;
}

}  // namespace just::core
