#include "core/plugins.h"

namespace just::core {

bool IsKnownPlugin(const std::string& plugin_name) {
  return plugin_name == "trajectory" || plugin_name == "point_series";
}

Result<meta::TableMeta> MakePluginTable(const std::string& plugin_name,
                                        const std::string& user,
                                        const std::string& table_name) {
  meta::TableMeta table;
  table.user = user;
  table.name = table_name;
  table.kind = meta::TableKind::kPlugin;
  table.plugin = plugin_name;
  if (plugin_name == "trajectory") {
    table.columns = {
        {"tid", exec::DataType::kString, /*primary_key=*/true, "", ""},
        {"oid", exec::DataType::kString, false, "", ""},
        {"start_time", exec::DataType::kTimestamp, false, "", ""},
        {"end_time", exec::DataType::kTimestamp, false, "", ""},
        {"item", exec::DataType::kTrajectory, false, "", "gzip"},
    };
    table.fid_column = "tid";
    table.geom_column = "item";   // the MBR comes from the GPS list
    table.time_column = "start_time";
    table.indexes = {
        {curve::IndexType::kXz2, kMillisPerDay},
        {curve::IndexType::kXz2T, kMillisPerDay},
    };
    return table;
  }
  if (plugin_name == "point_series") {
    // A timestamped point-event table (the Order dataset's shape,
    // Table III): Z2 + Z2T on the point and event time.
    table.columns = {
        {"fid", exec::DataType::kString, /*primary_key=*/true, "", ""},
        {"time", exec::DataType::kTimestamp, false, "", ""},
        {"geom", exec::DataType::kGeometry, false, "4326", ""},
    };
    table.fid_column = "fid";
    table.geom_column = "geom";
    table.time_column = "time";
    table.indexes = {
        {curve::IndexType::kZ2, kMillisPerDay},
        {curve::IndexType::kZ2T, kMillisPerDay},
    };
    return table;
  }
  return Status::InvalidArgument("unknown plugin table type: " + plugin_name);
}

}  // namespace just::core
