#ifndef JUST_CORE_ENGINE_H_
#define JUST_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cluster/region_cluster.h"
#include "common/status.h"
#include "core/result_set.h"
#include "core/table.h"
#include "exec/dataframe.h"
#include "meta/catalog.h"
#include "obs/slow_query_log.h"
#include "stream/continuous_query.h"
#include "stream/quota.h"

namespace just::core {

struct EngineOptions {
  std::string data_dir;  ///< root directory (catalog + region servers)
  int num_servers = 4;   ///< region servers in the simulated cluster
  int num_shards = 8;    ///< key shard prefixes (>= num_servers for balance)
  kv::StoreOptions store;             ///< per-region-server store options
  /// Out-of-process deployment: when non-empty, each entry is a
  /// "host:port" of a running just_region_server and the cluster talks
  /// sockets instead of opening local stores (overrides num_servers; see
  /// cluster::ClusterOptions::server_addrs). EXPLAIN ANALYZE still shows
  /// per-server work — the remote span trees are grafted into the query
  /// trace over the wire.
  std::vector<std::string> server_addrs;
  curve::IndexOptions index;          ///< SFC resolutions, range budgets
  ResultSet::Options result_options;  ///< direct-vs-spill thresholds
  /// Statements at least this slow are captured in the engine's slow-query
  /// log (and counted as just_sql_slow_queries_total). Negative disables.
  int64_t slow_query_threshold_us = 500000;
  bool slow_query_log_to_stderr = true;
  /// Online index build: base-table rows backfilled per WriteBatch chunk.
  size_t index_build_batch_rows = 1024;
  /// Access-path selection: a secondary index drives an intersection query
  /// only when its cardinality probe counts at most this many entries;
  /// above it the curve index drives and the attribute predicate becomes a
  /// residual filter.
  size_t index_intersection_threshold = 4096;
};

/// The JUST engine: one shared instance serves every user (the paper's
/// shared Spark context, Section VII-A), with per-user namespaces isolating
/// tables and views. This is the programmatic API that the JustQL layer and
/// the SDK examples drive.
class JustEngine {
 public:
  static Result<std::unique_ptr<JustEngine>> Open(const EngineOptions& options);

  // --- Definition operations (Section V-A) ---

  /// CREATE TABLE with explicit columns (common table). `table.user` and
  /// `table.name` must be set; the engine fills defaults (indexes by column
  /// kinds) when `table.indexes` is empty.
  Status CreateTable(meta::TableMeta table);

  /// CREATE TABLE <name> AS <plugin> (plugin table).
  Status CreatePluginTable(const std::string& user, const std::string& name,
                           const std::string& plugin);

  /// DROP TABLE: removes catalog entry and deletes the key spaces.
  Status DropTable(const std::string& user, const std::string& name);

  /// CREATE INDEX <index_name> ON <table> (<column>): registers the index
  /// as `building`, backfills it online (concurrent writers are never
  /// blocked — they dual-write from registration on; a brief write barrier
  /// only drains in-flight ops), replays the catch-up journal, and
  /// atomically flips the catalog entry to `ready`. Synchronous: returns
  /// once the index is queryable, or rolls the registration back on error.
  Status CreateIndex(const std::string& user, const std::string& table,
                     const std::string& index_name, const std::string& column);

  /// DROP INDEX: removes the catalog entry and purges the index key space.
  Status DropIndex(const std::string& user, const std::string& table,
                   const std::string& index_name);

  /// SHOW TABLES (meta-table only; fast).
  std::vector<std::string> ShowTables(const std::string& user) const;

  /// DESC TABLE.
  Result<meta::TableMeta> DescribeTable(const std::string& user,
                                        const std::string& name) const;

  // --- Manipulation operations (Section V-B) ---

  Status Insert(const std::string& user, const std::string& table,
                const exec::Row& row);
  Status InsertBatch(const std::string& user, const std::string& table,
                     const std::vector<exec::Row>& rows);
  /// INSERT STREAM: the streaming-ingest path. Rides the same group-commit
  /// write path as InsertBatch but dispatches tenant-tagged kIngestReq
  /// batches (remote region servers can apply their own write admission),
  /// and feeds every committed row to the registered continuous queries.
  /// Per-tenant write quotas (SetTenantQuota) are enforced up front:
  /// over-quota batches shed with kResourceExhausted before touching the
  /// cluster.
  Status InsertStream(const std::string& user, const std::string& table,
                      const std::vector<exec::Row>& rows);
  /// Deletes a row (base entry plus every index entry, tombstoned in the
  /// same group-commit batch — no resurrection window).
  Status Remove(const std::string& user, const std::string& table,
                const exec::Row& row);
  /// Atomically replaces `old_row` with `new_row` in one batch.
  Status Replace(const std::string& user, const std::string& table,
                 const exec::Row& old_row, const exec::Row& new_row);

  // --- Query operations (Section V-C) ---

  Result<exec::DataFrame> SpatialRangeQuery(const std::string& user,
                                            const std::string& table,
                                            const geo::Mbr& box,
                                            QueryStats* stats = nullptr);
  Result<exec::DataFrame> StRangeQuery(const std::string& user,
                                       const std::string& table,
                                       const geo::Mbr& box, TimestampMs t_min,
                                       TimestampMs t_max,
                                       QueryStats* stats = nullptr);
  Result<exec::DataFrame> KnnQuery(const std::string& user,
                                   const std::string& table,
                                   const geo::Point& q, int k,
                                   QueryStats* stats = nullptr);
  Result<exec::DataFrame> FullScan(const std::string& user,
                                   const std::string& table);

  /// Equality lookup via a secondary attribute index (Figure 1's Attribute
  /// Indexing; configure columns with USERDATA {'just.attr.indexes':'col'}).
  Result<exec::DataFrame> AttributeQuery(const std::string& user,
                                         const std::string& table,
                                         const std::string& column,
                                         const exec::Value& value,
                                         QueryStats* stats = nullptr);

  // --- Columnar query variants (see StTable's *Batch methods) ---

  Result<exec::BatchVector> SpatialRangeQueryBatch(
      const std::string& user, const std::string& table, const geo::Mbr& box,
      QueryStats* stats = nullptr, const ScanBudget* budget = nullptr);
  Result<exec::BatchVector> StRangeQueryBatch(
      const std::string& user, const std::string& table, const geo::Mbr& box,
      TimestampMs t_min, TimestampMs t_max, QueryStats* stats = nullptr,
      const ScanBudget* budget = nullptr);
  Result<exec::BatchVector> FullScanBatch(const std::string& user,
                                          const std::string& table,
                                          QueryStats* stats = nullptr,
                                          const ScanBudget* budget = nullptr);
  Result<exec::BatchVector> AttributeQueryBatch(const std::string& user,
                                                const std::string& table,
                                                const std::string& column,
                                                const exec::Value& value,
                                                QueryStats* stats = nullptr);
  /// Point/range lookup via a `ready` secondary index on `column`
  /// (optionally intersected with a spatial box and/or time window as a
  /// covering-value refinement). Fails if no ready index covers the column.
  Result<exec::BatchVector> SecondaryIndexQueryBatch(
      const std::string& user, const std::string& table,
      const std::string& column, const AttrBound& lower,
      const AttrBound& upper, const geo::Mbr* box, bool temporal,
      TimestampMs t_min, TimestampMs t_max, QueryStats* stats = nullptr,
      const ScanBudget* budget = nullptr);
  /// Counts index entries in [lower, upper], stopping at `limit` — the
  /// optimizer's cardinality probe for intersection-path selection.
  Result<size_t> SecondaryIndexProbe(const std::string& user,
                                     const std::string& table,
                                     const std::string& column,
                                     const AttrBound& lower,
                                     const AttrBound& upper, size_t limit);

  /// Wraps a query result for cursor-style delivery.
  Result<std::unique_ptr<ResultSet>> MakeResultSet(exec::DataFrame frame);

  // --- View tables (Section IV-D) ---

  Status CreateView(const std::string& user, const std::string& name,
                    exec::DataFrame frame);
  Result<exec::DataFrame> GetView(const std::string& user,
                                  const std::string& name) const;
  Status DropView(const std::string& user, const std::string& name);
  std::vector<std::string> ShowViews(const std::string& user) const;
  bool ViewExists(const std::string& user, const std::string& name) const;

  /// STORE VIEW <view> TO TABLE <table>: persists a view, creating the
  /// table automatically if needed (the paper's "one query, multiple
  /// usages" flow).
  Status StoreViewToTable(const std::string& user, const std::string& view,
                          const std::string& table);

  // --- Maintenance ---

  /// Flushes memtables and compacts (bulk-load finalization).
  Status Finalize();

  struct StorageStats {
    uint64_t disk_bytes = 0;
    uint64_t entries = 0;
  };
  StorageStats GetStorageStats() const;

  /// Resolves a bound table (for the SQL layer).
  Result<std::shared_ptr<StTable>> GetTable(const std::string& user,
                                            const std::string& name);

  // --- Multi-tenant quotas + continuous queries (streaming subsystem) ---

  /// Sets (or replaces) a tenant's rate limits, persisting them in the
  /// catalog so they survive restarts. Zero fields mean unlimited.
  Status SetTenantQuota(const std::string& tenant,
                        const meta::TenantQuotaConfig& quota);

  /// Standing-query hub: CREATE CONTINUOUS QUERY registrations live here;
  /// InsertStream feeds committed rows through it.
  stream::StreamHub* stream_hub() { return stream_hub_.get(); }
  /// Per-tenant admission control (write rows/sec, scan bytes/sec).
  stream::QuotaManager* quota_manager() { return quota_.get(); }

  meta::Catalog* catalog() { return catalog_.get(); }
  cluster::RegionCluster* cluster() { return cluster_.get(); }
  obs::SlowQueryLog* slow_query_log() { return slow_query_log_.get(); }
  const EngineOptions& options() const { return options_; }

 private:
  explicit JustEngine(EngineOptions options) : options_(std::move(options)) {}

  static void ApplyDefaultIndexes(meta::TableMeta* table);

  /// Backfills `def` by streaming the base table (slot 0) in WriteBatch
  /// chunks, then replays the catch-up journal until CloseIfDrained()
  /// succeeds. Never blocks writers.
  Status BuildIndex(const std::string& user, const std::string& table,
                    const meta::SecondaryIndexDef& def,
                    const std::shared_ptr<IndexBuildJournal>& journal);

  /// Deletes every key in one index slot of a table's key space.
  Status PurgeIndexKeySpace(uint64_t table_id, uint32_t slot);

  /// Drops the cached StTable binding and momentarily takes the write
  /// barrier exclusively so no in-flight writer still holds a stale binding
  /// (one without the new index defs) when the caller proceeds.
  void InvalidateTableAndDrainWriters(const std::string& user,
                                      const std::string& table);

  /// Charges `stats.bytes_scanned` (or the scan-shed decision) to the
  /// tenant's scan-byte budget around a query body. Post-paid: the admission
  /// check only refuses tenants already in debt, the actual bytes are
  /// debited afterwards (a scan's size is unknowable up front).
  Status AdmitScan(const std::string& user) const;
  void ChargeScan(const std::string& user, const QueryStats* stats) const;

  EngineOptions options_;
  std::unique_ptr<meta::Catalog> catalog_;
  std::unique_ptr<cluster::RegionCluster> cluster_;
  std::unique_ptr<obs::SlowQueryLog> slow_query_log_;
  std::unique_ptr<stream::QuotaManager> quota_;
  std::unique_ptr<stream::StreamHub> stream_hub_;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<StTable>> table_cache_;
  std::map<std::string, exec::DataFrame> views_;

  /// Writers hold this shared around (bind table, write); index DDL takes
  /// it exclusive for a moment after invalidating the table cache, so a
  /// writer can never insert through a binding that predates the DDL after
  /// the backfill scan has started.
  mutable std::shared_mutex write_barrier_;
  /// In-progress online builds: ViewKey(user, table) -> index name ->
  /// catch-up journal. GetTable attaches these to fresh bindings.
  std::map<std::string, std::map<std::string, std::shared_ptr<IndexBuildJournal>>>
      active_builds_;
};

}  // namespace just::core

#endif  // JUST_CORE_ENGINE_H_
