#ifndef JUST_CORE_ROW_CODEC_H_
#define JUST_CORE_ROW_CODEC_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "exec/dataframe.h"
#include "meta/catalog.h"

namespace just::core {

/// Serializes a row for storage as a KV value. Every cell is framed by the
/// compression layer ([codec id][raw size][payload], Section IV-D): columns
/// declared `compress=gzip|zip` go through the general-purpose codec; the
/// rest use the identity codec. Trajectory (st_series) cells additionally
/// pick their GPS-list encoding: raw fixed-width when uncompressed (what
/// JUSTnc measures) and the delta transform under compression.
Result<std::string> EncodeRow(const meta::TableMeta& table,
                              const exec::Row& row);

/// Inverse of EncodeRow.
Result<exec::Row> DecodeRow(const meta::TableMeta& table,
                            std::string_view bytes);

}  // namespace just::core

#endif  // JUST_CORE_ROW_CODEC_H_
