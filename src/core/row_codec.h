#ifndef JUST_CORE_ROW_CODEC_H_
#define JUST_CORE_ROW_CODEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "exec/column_batch.h"
#include "exec/dataframe.h"
#include "meta/catalog.h"

namespace just::core {

/// Serializes a row for storage as a KV value. Every cell is framed by the
/// compression layer ([codec id][raw size][payload], Section IV-D): columns
/// declared `compress=gzip|zip` go through the general-purpose codec; the
/// rest use the identity codec. Trajectory (st_series) cells additionally
/// pick their GPS-list encoding: raw fixed-width when uncompressed (what
/// JUSTnc measures) and the delta transform under compression.
Result<std::string> EncodeRow(const meta::TableMeta& table,
                              const exec::Row& row);

/// Inverse of EncodeRow.
Result<exec::Row> DecodeRow(const meta::TableMeta& table,
                            std::string_view bytes);

/// Decodes serialized rows straight into ColumnBatch columns, skipping the
/// per-cell Value materialization DecodeRow pays: fixed-width cells (bool /
/// int / timestamp / double) parse from the wire format directly into the
/// typed column vectors, strings move into the string vector, and only
/// geometry / trajectory / type-mismatched cells build a generic Value.
/// Per-column codec decisions are resolved once at construction, not per
/// row.
class BatchRowDecoder {
 public:
  explicit BatchRowDecoder(const meta::TableMeta& table);

  /// Appends one decoded row to `batch` (which must have been created with
  /// this table's schema). On error the batch is left without the partial
  /// row's FinishRow, so callers should discard it.
  Status DecodeInto(std::string_view bytes, exec::ColumnBatch* batch) const;

 private:
  const meta::TableMeta& table_;
  /// Per column: true when the cell payload is an st_series cell (tagged
  /// trajectory encoding) rather than a Value serialization.
  std::vector<bool> is_trajectory_;
};

}  // namespace just::core

#endif  // JUST_CORE_ROW_CODEC_H_
