#include "core/table.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "common/bytes.h"
#include "core/row_codec.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace just::core {

namespace {
/// Dual attribution of per-query stats: the process-wide registry counters
/// and (when a trace is active) the current span.
void RecordQueryCounters(size_t ranges, size_t scanned, size_t matched) {
  static obs::Counter* key_ranges =
      obs::Registry::Global().GetCounter("just_query_key_ranges_total");
  static obs::Counter* rows_scanned =
      obs::Registry::Global().GetCounter("just_query_rows_scanned_total");
  static obs::Counter* rows_matched =
      obs::Registry::Global().GetCounter("just_query_rows_matched_total");
  key_ranges->Add(ranges);
  rows_scanned->Add(scanned);
  rows_matched->Add(matched);
  obs::TraceKeyRanges(ranges);
  obs::TraceRowsScanned(scanned);
  obs::TraceRowsMatched(matched);
}

/// Minimum expansion-area size for Algorithm 1 (the paper's g = 1km x 1km
/// system parameter, expressed in degrees at mid latitudes).
constexpr double kMinKnnAreaDeg = 0.01;

/// Smallest byte string strictly greater than every string with prefix `s`.
std::string PrefixSuccessor(std::string s) {
  while (!s.empty()) {
    if (static_cast<unsigned char>(s.back()) != 0xFF) {
      s.back() = static_cast<char>(s.back() + 1);
      return s;
    }
    s.pop_back();
  }
  return s;  // empty: no upper bound
}

/// Attribute-index cell: the serialized value, length-prefixed so the fid
/// suffix is unambiguous.
std::string EncodeAttrKeyPart(const exec::Value& value) {
  std::string encoded;
  value.SerializeTo(&encoded);
  std::string out;
  PutLengthPrefixed(&out, encoded);
  return out;
}

/// Appends `s` with every 0x00 escaped as 0x00 0xFF, then a 0x00 0x01
/// terminator: lexicographic order over the escaped bytes matches the order
/// of the raw strings, and the terminator keeps values prefix-free so the
/// fid suffix never bleeds into the comparison.
void AppendEscapedTerminated(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '\0') {
      out->push_back('\0');
      out->push_back('\xFF');
    } else {
      out->push_back(c);
    }
  }
  out->push_back('\0');
  out->push_back('\x01');
}

constexpr uint64_t kSignFlip = 1ull << 63;

/// Secondary-index cell: a type-class tag byte followed by a representation
/// whose byte order matches value order, so range predicates on the indexed
/// column translate to key ranges. Int and double share one ordered domain
/// (double bits); int64s beyond 2^53 may collide with a neighbor, which the
/// exact recheck on the decoded row resolves — the key order only has to be
/// *no more selective than* value order, never wrong about it.
std::string EncodeOrderedAttrKeyPart(const exec::Value& value) {
  std::string out;
  switch (value.type()) {
    case exec::DataType::kNull:
      out.push_back('\x00');
      return out;
    case exec::DataType::kBool:
      out.push_back('\x01');
      out.push_back(value.bool_value() ? '\x01' : '\x00');
      return out;
    case exec::DataType::kInt:
      out.push_back('\x02');
      PutFixed64BE(&out, OrderedDoubleBits(
                             static_cast<double>(value.int_value())));
      return out;
    case exec::DataType::kDouble:
      out.push_back('\x02');
      PutFixed64BE(&out, OrderedDoubleBits(value.double_value()));
      return out;
    case exec::DataType::kTimestamp:
      out.push_back('\x04');
      PutFixed64BE(&out,
                   static_cast<uint64_t>(value.timestamp_value()) ^ kSignFlip);
      return out;
    case exec::DataType::kString:
      out.push_back('\x05');
      AppendEscapedTerminated(&out, value.string_value());
      return out;
    default: {
      // Geometry/trajectory: equality-usable only (serialized bytes carry
      // no meaningful order), but entries stay well-formed and prefix-free.
      out.push_back('\x06');
      std::string raw;
      value.SerializeTo(&raw);
      AppendEscapedTerminated(&out, raw);
      return out;
    }
  }
}

obs::Counter* IdxLookupsCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("just_idx_lookups_total");
  return c;
}

obs::Counter* IdxEntriesWrittenCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("just_idx_entries_written_total");
  return c;
}

obs::Counter* IdxIntersectionsCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("just_idx_intersections_total");
  return c;
}
}  // namespace

StTable::StTable(meta::TableMeta meta, cluster::RegionCluster* cluster,
                 const curve::IndexOptions& index_options)
    : meta_(std::move(meta)), cluster_(cluster) {
  for (const meta::IndexConfig& config : meta_.indexes) {
    curve::IndexOptions options = index_options;
    options.period_len_ms = config.period_len_ms;
    strategies_.push_back(curve::IndexStrategy::Create(config.type, options));
  }
  fid_col_ = meta_.ColumnIndex(meta_.fid_column);
  geom_col_ = meta_.ColumnIndex(meta_.geom_column);
  time_col_ = meta_.ColumnIndex(meta_.time_column);
}

std::string StTable::IndexPrefix(size_t index_slot) const {
  std::string prefix;
  PutFixed32BE(&prefix, static_cast<uint32_t>(meta_.table_id));
  prefix.push_back(static_cast<char>(index_slot));
  return prefix;
}

std::string StTable::WrapKey(size_t index_slot,
                             std::string_view strategy_key) const {
  std::string key;
  key.push_back(strategy_key[0]);  // shard byte stays first for routing
  key += IndexPrefix(index_slot);
  key.append(strategy_key.data() + 1, strategy_key.size() - 1);
  return key;
}

std::vector<curve::KeyRange> StTable::WrapRanges(
    size_t index_slot, std::vector<curve::KeyRange> ranges) const {
  for (curve::KeyRange& range : ranges) {
    range.start = WrapKey(index_slot, range.start);
    range.end = WrapKey(index_slot, range.end);
  }
  return ranges;
}

Result<curve::RecordRef> StTable::MakeRecordRef(const exec::Row& row) const {
  curve::RecordRef ref;
  if (fid_col_ >= 0 && !row[fid_col_].is_null()) {
    ref.fid = row[fid_col_].ToString();
  }
  if (geom_col_ < 0) {
    return Status::InvalidArgument("table " + meta_.name +
                                   " has no geometry column");
  }
  const exec::Value& g = row[geom_col_];
  if (g.type() == exec::DataType::kGeometry) {
    ref.mbr = g.geometry_value().Bounds();
  } else if (g.type() == exec::DataType::kTrajectory &&
             g.trajectory_value() != nullptr) {
    ref.mbr = g.trajectory_value()->Bounds();
    ref.t_min = g.trajectory_value()->start_time();
    ref.t_max = g.trajectory_value()->end_time();
  } else {
    return Status::InvalidArgument("row has no geometry value");
  }
  if (time_col_ >= 0 && !row[time_col_].is_null() &&
      row[time_col_].type() == exec::DataType::kTimestamp) {
    ref.t_min = row[time_col_].timestamp_value();
    if (ref.t_max < ref.t_min) ref.t_max = ref.t_min;
  }
  return ref;
}

Status StTable::AppendWriteOps(const exec::Row& row, bool delete_instead,
                               std::vector<kv::WriteOp>* ops) const {
  JUST_ASSIGN_OR_RETURN(auto ref, MakeRecordRef(row));
  std::string value;
  if (!delete_instead) {
    JUST_ASSIGN_OR_RETURN(value, EncodeRow(meta_, row));
  }
  for (size_t slot = 0; slot < strategies_.size(); ++slot) {
    std::string key = WrapKey(slot, strategies_[slot]->EncodeKey(ref));
    ops->push_back(kv::WriteOp{std::move(key), value, delete_instead});
  }
  // Secondary attribute indexes: shard :: table/slot :: value :: fid.
  int shard = strategies_.empty()
                  ? 0
                  : strategies_[0]->ShardOf(ref.fid);
  for (size_t a = 0; a < meta_.attr_indexes.size(); ++a) {
    int col = meta_.ColumnIndex(meta_.attr_indexes[a]);
    if (col < 0) continue;
    std::string key(1, static_cast<char>(shard));
    key += IndexPrefix(AttrSlot(a));
    key += EncodeAttrKeyPart(row[col]);
    key += ref.fid;
    ops->push_back(kv::WriteOp{std::move(key), value, delete_instead});
    IdxEntriesWrittenCounter()->Add(1);
  }
  // CREATE INDEX secondary indexes: same shard as the base row (index
  // lookups stay shard-local), order-preserving value encoding, covering
  // row value. Ops for a `building` index are mirrored into the build's
  // catch-up journal *before* the storage write (see IndexBuildJournal).
  for (const meta::SecondaryIndexDef& def : meta_.secondary_indexes) {
    int col = meta_.ColumnIndex(def.column);
    if (col < 0) continue;
    std::string key(1, static_cast<char>(shard));
    key += IndexPrefix(def.slot);
    key += EncodeOrderedAttrKeyPart(row[col]);
    key += ref.fid;
    ops->push_back(kv::WriteOp{std::move(key), value, delete_instead});
    IdxEntriesWrittenCounter()->Add(1);
  }
  return Status::OK();
}

void StTable::MirrorOpsToBuildJournals(
    const std::vector<kv::WriteOp>& ops) const {
  if (build_journals_.empty()) return;
  for (const meta::SecondaryIndexDef& def : meta_.secondary_indexes) {
    if (def.state != meta::IndexState::kBuilding) continue;
    auto it = build_journals_.find(def.name);
    if (it == build_journals_.end()) continue;
    std::string prefix = IndexPrefix(def.slot);
    for (const kv::WriteOp& op : ops) {
      if (op.key.size() > prefix.size() &&
          op.key.compare(1, prefix.size(), prefix) == 0) {
        it->second->Append(op);
      }
    }
  }
}

Result<kv::WriteOp> StTable::MakeSecondaryEntryOp(
    const meta::SecondaryIndexDef& def, const exec::Row& row,
    bool delete_instead) const {
  JUST_ASSIGN_OR_RETURN(auto ref, MakeRecordRef(row));
  int col = meta_.ColumnIndex(def.column);
  if (col < 0) {
    return Status::InvalidArgument("index column not in table: " + def.column);
  }
  std::string value;
  if (!delete_instead) {
    JUST_ASSIGN_OR_RETURN(value, EncodeRow(meta_, row));
  }
  int shard = strategies_.empty() ? 0 : strategies_[0]->ShardOf(ref.fid);
  std::string key(1, static_cast<char>(shard));
  key += IndexPrefix(def.slot);
  key += EncodeOrderedAttrKeyPart(row[col]);
  key += ref.fid;
  return kv::WriteOp{std::move(key), std::move(value), delete_instead};
}

Status StTable::WriteKeys(const exec::Row& row, bool delete_instead) {
  std::vector<kv::WriteOp> ops;
  JUST_RETURN_NOT_OK(AppendWriteOps(row, delete_instead, &ops));
  MirrorOpsToBuildJournals(ops);
  return cluster_->WriteBatch(std::move(ops));
}

bool StTable::HasAttributeIndex(const std::string& column) const {
  for (const std::string& indexed : meta_.attr_indexes) {
    if (indexed == column) return true;
  }
  return false;
}

Result<exec::BatchVector> StTable::ScanRangesToBatches(
    const std::vector<curve::KeyRange>& ranges,
    const std::function<void(exec::ColumnBatch*)>& refine, QueryStats* stats,
    const ScanBudget* budget, bool dedupe_keys, int fid_offset,
    const std::unordered_set<std::string>* skip_fids,
    bool record_counters) const {
  auto schema = meta_.MakeSchema();
  BatchRowDecoder decoder(meta_);
  exec::BatchVector batches;
  exec::ColumnBatch current(schema);
  std::unordered_set<std::string> seen_keys;
  size_t scanned = 0;
  size_t matched = 0;
  size_t bytes = 0;
  // Budgeted scans flush (and re-check the budget) on smaller batches so a
  // tiny LIMIT stops within ~one streaming scan batch instead of 4096 rows.
  const size_t batch_cap =
      budget != nullptr
          ? std::min<size_t>(exec::kBatchRows,
                             std::max<size_t>(budget->limit, 512))
          : exec::kBatchRows;
  Status inner;  // first error raised inside a scan callback

  auto flush = [&]() -> Status {
    if (current.num_rows() == 0) return Status::OK();
    if (refine) refine(&current);
    if (budget != nullptr && budget->residual) {
      JUST_RETURN_NOT_OK(budget->residual(&current));
    }
    matched += current.num_active();
    batches.push_back(std::move(current));
    current = exec::ColumnBatch(schema);
    return Status::OK();
  };

  // Returns false to stop the scan (budget met or error; `inner` tells).
  auto consume = [&](std::string_view key, std::string_view value) -> bool {
    ++scanned;
    bytes += key.size() + value.size();
    if (skip_fids != nullptr &&
        key.size() > static_cast<size_t>(fid_offset) &&
        skip_fids->count(std::string(key.substr(fid_offset))) != 0) {
      return true;  // already delivered by an earlier expansion area
    }
    if (dedupe_keys && !seen_keys.insert(std::string(key)).second) {
      return true;  // overlapping ranges
    }
    if (current.num_rows() >= batch_cap) {
      inner = flush();
      if (!inner.ok()) return false;
      if (budget != nullptr && matched >= budget->limit) return false;
    }
    inner = decoder.DecodeInto(value, &current);
    return inner.ok();
  };

  size_t ranges_run = 0;
  if (budget != nullptr) {
    for (const curve::KeyRange& range : ranges) {
      if (matched >= budget->limit) break;
      ++ranges_run;
      JUST_RETURN_NOT_OK(cluster_->Scan(
          range.start, range.end,
          [&](std::string_view k, std::string_view v) {
            return consume(k, v);
          }));
      JUST_RETURN_NOT_OK(inner);
    }
  } else {
    ranges_run = ranges.size();
    JUST_ASSIGN_OR_RETURN(auto results, cluster_->ParallelScan(ranges));
    for (const auto& range_result : results) {
      for (const auto& kv : range_result.rows) {
        if (!consume(kv.key, kv.value)) break;
      }
      JUST_RETURN_NOT_OK(inner);
    }
  }
  JUST_RETURN_NOT_OK(flush());
  if (stats != nullptr) {
    stats->key_ranges += ranges_run;
    stats->rows_scanned += scanned;
    stats->rows_matched += matched;
    stats->bytes_scanned += bytes;
  }
  if (record_counters) RecordQueryCounters(ranges_run, scanned, matched);
  return batches;
}

Result<exec::BatchVector> StTable::AttributeQueryBatch(
    const std::string& column, const exec::Value& value,
    QueryStats* stats) const {
  size_t attr_pos = meta_.attr_indexes.size();
  for (size_t a = 0; a < meta_.attr_indexes.size(); ++a) {
    if (meta_.attr_indexes[a] == column) attr_pos = a;
  }
  if (attr_pos == meta_.attr_indexes.size()) {
    return Status::InvalidArgument("no attribute index on column " + column);
  }
  std::vector<curve::KeyRange> ranges;
  std::string value_part = EncodeAttrKeyPart(value);
  for (int shard = 0; shard < num_shards(); ++shard) {
    curve::KeyRange range;
    range.start.push_back(static_cast<char>(shard));
    range.start += IndexPrefix(AttrSlot(attr_pos));
    range.start += value_part;
    range.end = PrefixSuccessor(range.start);
    ranges.push_back(std::move(range));
  }
  int col = meta_.ColumnIndex(column);
  // Exact recheck of the indexed column (the key encoding is injective, but
  // stay defensive), as a column loop over each full batch.
  auto refine = [col, &value](exec::ColumnBatch* batch) {
    if (col < 0 || batch->num_rows() == 0) return;
    const exec::ColumnVector& c = batch->column(static_cast<size_t>(col));
    std::vector<uint32_t> sel;
    sel.reserve(batch->num_rows());
    for (uint32_t row = 0; row < batch->num_rows(); ++row) {
      if (c.ValueAt(row).Equals(value)) sel.push_back(row);
    }
    batch->SetSelection(std::move(sel));
  };
  return ScanRangesToBatches(ranges, refine, stats, /*budget=*/nullptr,
                             /*dedupe_keys=*/false, /*fid_offset=*/0,
                             /*skip_fids=*/nullptr,
                             /*record_counters=*/true);
}

std::vector<curve::KeyRange> StTable::SecondaryIndexRanges(
    const meta::SecondaryIndexDef& def, const AttrBound& lower,
    const AttrBound& upper) const {
  std::string prefix = IndexPrefix(def.slot);
  std::vector<curve::KeyRange> ranges;
  for (int shard = 0; shard < num_shards(); ++shard) {
    std::string base(1, static_cast<char>(shard));
    base += prefix;
    curve::KeyRange range;
    if (lower.present) {
      std::string start = base + EncodeOrderedAttrKeyPart(lower.value);
      // Exclusive lower: skip every entry whose value-part equals the bound.
      range.start = lower.inclusive ? start : PrefixSuccessor(start);
    } else {
      range.start = base;
    }
    if (upper.present) {
      std::string end = base + EncodeOrderedAttrKeyPart(upper.value);
      range.end = upper.inclusive ? PrefixSuccessor(end) : end;
    } else {
      range.end = PrefixSuccessor(base);
    }
    if (!range.end.empty() && range.start < range.end) {
      ranges.push_back(std::move(range));
    }
  }
  return ranges;
}

Result<exec::BatchVector> StTable::SecondaryIndexQueryBatch(
    const meta::SecondaryIndexDef& def, const AttrBound& lower,
    const AttrBound& upper, const geo::Mbr* box, bool temporal,
    TimestampMs t_min, TimestampMs t_max, QueryStats* stats,
    const ScanBudget* budget) const {
  int col = meta_.ColumnIndex(def.column);
  if (col < 0) {
    return Status::InvalidArgument("index column not in table: " + def.column);
  }
  auto ranges = SecondaryIndexRanges(def, lower, upper);
  IdxLookupsCounter()->Add(1);
  if (box != nullptr || temporal) IdxIntersectionsCounter()->Add(1);
  // Exact recheck of the attribute bounds on the decoded (covering) rows —
  // the numeric key encoding may admit boundary neighbors — composed with
  // spatio-temporal refinement when this is the intersection path.
  auto refine = [this, col, &lower, &upper, box, temporal, t_min,
                 t_max](exec::ColumnBatch* batch) {
    if (box != nullptr || temporal) {
      RefineBatch(batch, box != nullptr ? *box : geo::Mbr::World(), temporal,
                  t_min, t_max);
    }
    if (batch->num_rows() == 0) return;
    const exec::ColumnVector& c = batch->column(static_cast<size_t>(col));
    std::vector<uint32_t> sel;
    sel.reserve(batch->num_active());
    auto in_bounds = [&](uint32_t row) {
      exec::Value v = c.ValueAt(row);
      if (lower.present) {
        int cmp = v.Compare(lower.value);
        if (cmp < 0 || (cmp == 0 && !lower.inclusive)) return false;
      }
      if (upper.present) {
        int cmp = v.Compare(upper.value);
        if (cmp > 0 || (cmp == 0 && !upper.inclusive)) return false;
      }
      return true;
    };
    if (batch->has_selection()) {
      for (uint32_t row : batch->selection()) {
        if (in_bounds(row)) sel.push_back(row);
      }
    } else {
      for (uint32_t row = 0; row < batch->num_rows(); ++row) {
        if (in_bounds(row)) sel.push_back(row);
      }
    }
    batch->SetSelection(std::move(sel));
  };
  return ScanRangesToBatches(ranges, refine, stats, budget,
                             /*dedupe_keys=*/false, /*fid_offset=*/0,
                             /*skip_fids=*/nullptr,
                             /*record_counters=*/true);
}

Result<size_t> StTable::SecondaryIndexProbe(const meta::SecondaryIndexDef& def,
                                            const AttrBound& lower,
                                            const AttrBound& upper,
                                            size_t limit) const {
  auto ranges = SecondaryIndexRanges(def, lower, upper);
  IdxLookupsCounter()->Add(1);
  size_t count = 0;
  for (const curve::KeyRange& range : ranges) {
    if (count >= limit) break;
    JUST_RETURN_NOT_OK(cluster_->Scan(
        range.start, range.end,
        [&](std::string_view, std::string_view) {
          return ++count < limit;
        }));
  }
  return count;
}

Result<exec::DataFrame> StTable::AttributeQuery(const std::string& column,
                                                const exec::Value& value,
                                                QueryStats* stats) const {
  JUST_ASSIGN_OR_RETURN(auto batches, AttributeQueryBatch(column, value,
                                                          stats));
  return exec::BatchesToDataFrame(meta_.MakeSchema(), batches);
}

Status StTable::Insert(const exec::Row& row) {
  if (strategies_.empty()) {
    return Status::InvalidArgument("table " + meta_.name + " has no indexes");
  }
  return WriteKeys(row, /*delete_instead=*/false);
}

Status StTable::InsertBatch(const std::vector<exec::Row>& rows) {
  return InsertBatchImpl(rows, /*stream=*/false);
}

Status StTable::InsertBatchStream(const std::vector<exec::Row>& rows) {
  return InsertBatchImpl(rows, /*stream=*/true);
}

Status StTable::InsertBatchImpl(const std::vector<exec::Row>& rows,
                                bool stream) {
  if (strategies_.empty()) {
    return Status::InvalidArgument("table " + meta_.name + " has no indexes");
  }
  // Bound the staged batch: index fan-out multiplies rows into keys, and a
  // loader chunk should translate into a handful of group commits, not an
  // unbounded buffer.
  constexpr size_t kMaxOpsPerBatch = 4096;
  std::vector<kv::WriteOp> ops;
  auto commit = [&](std::vector<kv::WriteOp> chunk) -> Status {
    MirrorOpsToBuildJournals(chunk);
    if (stream) {
      return cluster_->IngestBatch(meta_.user, std::move(chunk));
    }
    return cluster_->WriteBatch(std::move(chunk));
  };
  for (const exec::Row& row : rows) {
    JUST_RETURN_NOT_OK(AppendWriteOps(row, /*delete_instead=*/false, &ops));
    if (ops.size() >= kMaxOpsPerBatch) {
      JUST_RETURN_NOT_OK(commit(std::move(ops)));
      ops.clear();
    }
  }
  return commit(std::move(ops));
}

Status StTable::Remove(const exec::Row& row) {
  return WriteKeys(row, /*delete_instead=*/true);
}

Status StTable::Replace(const exec::Row& old_row, const exec::Row& new_row) {
  std::vector<kv::WriteOp> ops;
  JUST_RETURN_NOT_OK(AppendWriteOps(new_row, /*delete_instead=*/false, &ops));
  // Tombstone only the old entries the new row does not overwrite, so the
  // batch is correct regardless of per-key application order within it.
  std::unordered_set<std::string> new_keys;
  new_keys.reserve(ops.size());
  for (const kv::WriteOp& op : ops) new_keys.insert(op.key);
  std::vector<kv::WriteOp> old_ops;
  JUST_RETURN_NOT_OK(
      AppendWriteOps(old_row, /*delete_instead=*/true, &old_ops));
  for (kv::WriteOp& op : old_ops) {
    if (new_keys.count(op.key) == 0) ops.push_back(std::move(op));
  }
  MirrorOpsToBuildJournals(ops);
  return cluster_->WriteBatch(std::move(ops));
}

Result<const curve::IndexStrategy*> StTable::PickIndex(bool temporal) const {
  if (strategies_.empty()) {
    return Status::InvalidArgument("table " + meta_.name + " has no indexes");
  }
  // Exact category first; otherwise any index can answer (with weaker
  // filtering).
  for (const auto& strategy : strategies_) {
    if (curve::IsSpatioTemporal(strategy->type()) == temporal) {
      return strategy.get();
    }
  }
  return strategies_.front().get();
}

void StTable::RefineBatch(exec::ColumnBatch* batch, const geo::Mbr& box,
                          bool temporal, TimestampMs t_min,
                          TimestampMs t_max) const {
  using Storage = exec::ColumnVector::Storage;
  const exec::ColumnVector* gcol =
      geom_col_ >= 0 ? &batch->column(static_cast<size_t>(geom_col_))
                     : nullptr;
  // Geometry and trajectory cells live in object storage; a non-object
  // geometry column means runtime values of a non-geometry type, which the
  // refinement passes through (same as the row-at-a-time check).
  if (gcol != nullptr && gcol->storage() != Storage::kObject) gcol = nullptr;
  const exec::ColumnVector* tcol =
      time_col_ >= 0 ? &batch->column(static_cast<size_t>(time_col_))
                     : nullptr;
  const bool t_typed = tcol != nullptr && tcol->storage() == Storage::kInt64 &&
                       tcol->declared_type() == exec::DataType::kTimestamp;
  const int64_t* t_data = t_typed ? tcol->i64_data() : nullptr;

  std::vector<uint32_t> sel;
  sel.reserve(batch->num_rows());
  for (uint32_t row = 0; row < batch->num_rows(); ++row) {
    // Exact refinement (contained ranges still need the time check for
    // extent indexes; cheap relative to decode).
    bool keep = true;
    const traj::Trajectory* traj = nullptr;
    if (gcol != nullptr) {
      const exec::Value& g = gcol->ObjectAt(row);
      if (g.type() == exec::DataType::kGeometry) {
        keep = g.geometry_value().Within(box);
      } else if (g.type() == exec::DataType::kTrajectory &&
                 g.trajectory_value() != nullptr) {
        traj = g.trajectory_value().get();
        keep = box.Intersects(traj->Bounds());
      }
    }
    if (keep && temporal) {
      TimestampMs t = 0;
      if (t_typed) {
        if (!tcol->IsNull(row)) {
          t = t_data[row];
        } else if (traj != nullptr) {
          t = traj->start_time();
        }
      } else if (tcol != nullptr && tcol->storage() == Storage::kObject &&
                 tcol->ObjectAt(row).type() == exec::DataType::kTimestamp) {
        t = tcol->ObjectAt(row).timestamp_value();
      } else if (traj != nullptr) {
        t = traj->start_time();
      }
      keep = t >= t_min && t <= t_max;
    }
    if (keep) sel.push_back(row);
  }
  batch->SetSelection(std::move(sel));
}

Result<exec::BatchVector> StTable::RunRangesBatch(
    const std::vector<curve::KeyRange>& ranges, const geo::Mbr& box,
    bool temporal, TimestampMs t_min, TimestampMs t_max, QueryStats* stats,
    int fid_offset, const std::unordered_set<std::string>* skip_fids,
    const ScanBudget* budget) const {
  auto refine = [this, &box, temporal, t_min, t_max](exec::ColumnBatch* b) {
    RefineBatch(b, box, temporal, t_min, t_max);
  };
  return ScanRangesToBatches(ranges, refine, stats, budget,
                             /*dedupe_keys=*/true, fid_offset, skip_fids,
                             /*record_counters=*/true);
}

Result<exec::DataFrame> StTable::RunRanges(
    const std::vector<curve::KeyRange>& ranges, const geo::Mbr& box,
    bool temporal, TimestampMs t_min, TimestampMs t_max, QueryStats* stats,
    int fid_offset, const std::unordered_set<std::string>* skip_fids) const {
  JUST_ASSIGN_OR_RETURN(
      auto batches, RunRangesBatch(ranges, box, temporal, t_min, t_max,
                                   stats, fid_offset, skip_fids));
  return exec::BatchesToDataFrame(meta_.MakeSchema(), batches);
}

Result<exec::DataFrame> StTable::SpatialRangeQuery(const geo::Mbr& box,
                                                   QueryStats* stats) const {
  return SpatialRangeQueryInternal(box, stats, nullptr);
}

Result<exec::BatchVector> StTable::SpatialRangeQueryBatch(
    const geo::Mbr& box, QueryStats* stats, const ScanBudget* budget) const {
  return SpatialRangeQueryInternalBatch(box, stats, nullptr, budget);
}

Result<exec::BatchVector> StTable::SpatialRangeQueryInternalBatch(
    const geo::Mbr& box, QueryStats* stats,
    const std::unordered_set<std::string>* skip_fids,
    const ScanBudget* budget) const {
  JUST_ASSIGN_OR_RETURN(const curve::IndexStrategy* strategy,
                        PickIndex(/*temporal=*/false));
  size_t slot = 0;
  for (size_t i = 0; i < strategies_.size(); ++i) {
    if (strategies_[i].get() == strategy) slot = i;
  }
  auto ranges = WrapRanges(slot, strategy->QueryRanges(box, INT64_MIN,
                                                       INT64_MAX));
  // Table/index prefix (5 bytes) is spliced in after the shard byte.
  int fid_offset = strategy->FidOffset() + 5;
  return RunRangesBatch(ranges, box, /*temporal=*/false, 0, 0, stats,
                        fid_offset, skip_fids, budget);
}

Result<exec::DataFrame> StTable::SpatialRangeQueryInternal(
    const geo::Mbr& box, QueryStats* stats,
    const std::unordered_set<std::string>* skip_fids) const {
  JUST_ASSIGN_OR_RETURN(
      auto batches, SpatialRangeQueryInternalBatch(box, stats, skip_fids));
  return exec::BatchesToDataFrame(meta_.MakeSchema(), batches);
}

Result<exec::BatchVector> StTable::StRangeQueryBatch(
    const geo::Mbr& box, TimestampMs t_min, TimestampMs t_max,
    QueryStats* stats, const ScanBudget* budget) const {
  JUST_ASSIGN_OR_RETURN(const curve::IndexStrategy* strategy,
                        PickIndex(/*temporal=*/true));
  size_t slot = 0;
  for (size_t i = 0; i < strategies_.size(); ++i) {
    if (strategies_[i].get() == strategy) slot = i;
  }
  auto ranges = WrapRanges(slot, strategy->QueryRanges(box, t_min, t_max));
  return RunRangesBatch(ranges, box, /*temporal=*/true, t_min, t_max, stats,
                        strategy->FidOffset() + 5, nullptr, budget);
}

Result<exec::DataFrame> StTable::StRangeQuery(const geo::Mbr& box,
                                              TimestampMs t_min,
                                              TimestampMs t_max,
                                              QueryStats* stats) const {
  JUST_ASSIGN_OR_RETURN(auto batches,
                        StRangeQueryBatch(box, t_min, t_max, stats));
  return exec::BatchesToDataFrame(meta_.MakeSchema(), batches);
}

Result<exec::DataFrame> StTable::KnnQuery(const geo::Point& q, int k,
                                          QueryStats* stats) const {
  // Algorithm 1. cq: max-heap of (distance, row) keeping the k nearest;
  // aq: min-heap of areas ordered by dA(q, a) (Eq. 4).
  struct Candidate {
    double dist;
    exec::Row row;
    bool operator<(const Candidate& o) const { return dist < o.dist; }
  };
  std::priority_queue<Candidate> cq;  // top = farthest kept
  struct Area {
    double dist;
    geo::Mbr box;
    bool operator<(const Area& o) const { return dist > o.dist; }  // min-heap
  };
  std::priority_queue<Area> aq;
  aq.push(Area{0.0, geo::Mbr::World()});
  double dmax = 0;
  std::unordered_set<std::string> seen_fids;
  // Degenerate-input guard: when k approaches the table size the expansion
  // cannot prune and would enumerate the whole quadtree; fall back to a
  // sequential scan after a bounded number of area queries.
  constexpr size_t kMaxAreaQueries = 1024;
  size_t area_queries = 0;

  while (!aq.empty()) {
    Area a = aq.top();
    aq.pop();
    if (static_cast<int>(cq.size()) == k && a.dist > dmax) {
      break;  // Lemma 1: area pruning
    }
    if (area_queries >= kMaxAreaQueries) {
      JUST_ASSIGN_OR_RETURN(auto all, FullScan());
      for (const exec::Row& row : all.rows()) {
        std::string fid =
            fid_col_ >= 0 ? row[fid_col_].ToString() : std::string();
        if (!fid.empty() && seen_fids.count(fid) != 0) continue;
        double dist = 0;
        if (geom_col_ >= 0) {
          const exec::Value& g = row[geom_col_];
          if (g.type() == exec::DataType::kGeometry) {
            dist = g.geometry_value().Distance(q);
          } else if (g.type() == exec::DataType::kTrajectory &&
                     g.trajectory_value() != nullptr) {
            dist = g.trajectory_value()->Bounds().MinDistance(q);
          }
        }
        if (static_cast<int>(cq.size()) < k) {
          cq.push(Candidate{dist, row});
        } else if (dist < cq.top().dist) {
          cq.pop();
          cq.push(Candidate{dist, row});
        }
      }
      break;
    }
    if (a.box.Width() > kMinKnnAreaDeg || a.box.Height() > kMinKnnAreaDeg) {
      double lng_mid = (a.box.lng_min + a.box.lng_max) / 2;
      double lat_mid = (a.box.lat_min + a.box.lat_max) / 2;
      geo::Mbr children[4] = {
          {a.box.lng_min, a.box.lat_min, lng_mid, lat_mid},
          {lng_mid, a.box.lat_min, a.box.lng_max, lat_mid},
          {a.box.lng_min, lat_mid, lng_mid, a.box.lat_max},
          {lng_mid, lat_mid, a.box.lng_max, a.box.lat_max},
      };
      for (const geo::Mbr& child : children) {
        aq.push(Area{child.MinDistance(q), child});
      }
      continue;
    }
    ++area_queries;
    JUST_ASSIGN_OR_RETURN(
        auto partial, SpatialRangeQueryInternal(a.box, stats, &seen_fids));
    for (const exec::Row& row : partial.rows()) {
      std::string fid =
          fid_col_ >= 0 ? row[fid_col_].ToString() : std::string();
      if (!fid.empty() && !seen_fids.insert(fid).second) continue;
      double dist = 0;
      if (geom_col_ >= 0) {
        const exec::Value& g = row[geom_col_];
        if (g.type() == exec::DataType::kGeometry) {
          dist = g.geometry_value().Distance(q);
        } else if (g.type() == exec::DataType::kTrajectory &&
                   g.trajectory_value() != nullptr) {
          dist = g.trajectory_value()->Bounds().MinDistance(q);
        }
      }
      if (static_cast<int>(cq.size()) < k) {
        cq.push(Candidate{dist, row});
        dmax = cq.top().dist;
      } else if (dist < cq.top().dist) {
        cq.pop();
        cq.push(Candidate{dist, row});
        dmax = cq.top().dist;
      }
    }
  }

  std::vector<exec::Row> rows;
  rows.reserve(cq.size());
  while (!cq.empty()) {
    rows.push_back(cq.top().row);
    cq.pop();
  }
  std::reverse(rows.begin(), rows.end());  // nearest first
  return exec::DataFrame(meta_.MakeSchema(), std::move(rows));
}

Result<exec::BatchVector> StTable::FullScanBatch(
    QueryStats* stats, const ScanBudget* budget) const {
  if (strategies_.empty()) {
    return Status::InvalidArgument("table " + meta_.name + " has no indexes");
  }
  std::vector<curve::KeyRange> ranges;
  int shards = strategies_[0]->options().num_shards;
  for (int shard = 0; shard < shards; ++shard) {
    curve::KeyRange range;
    range.start.push_back(static_cast<char>(shard));
    range.start += IndexPrefix(0);
    range.end.push_back(static_cast<char>(shard));
    std::string end_prefix = IndexPrefix(0);
    // Successor of the 5-byte prefix: bump the index-slot byte.
    end_prefix.back() = static_cast<char>(end_prefix.back() + 1);
    range.end += end_prefix;
    ranges.push_back(std::move(range));
  }
  // Plain full scans stay counter-silent (they have no pruning story to
  // account); budgeted ones record how little they scanned — that *is* the
  // LIMIT-pushdown regression signal.
  return ScanRangesToBatches(ranges, /*refine=*/nullptr, stats, budget,
                             /*dedupe_keys=*/false, /*fid_offset=*/0,
                             /*skip_fids=*/nullptr,
                             /*record_counters=*/budget != nullptr);
}

Result<exec::DataFrame> StTable::FullScan() const {
  JUST_ASSIGN_OR_RETURN(auto batches, FullScanBatch());
  return exec::BatchesToDataFrame(meta_.MakeSchema(), batches);
}

}  // namespace just::core
