#ifndef JUST_CORE_PLUGINS_H_
#define JUST_CORE_PLUGINS_H_

#include <string>

#include "common/status.h"
#include "meta/catalog.h"

namespace just::core {

/// Plugin tables (Section IV-D) predefine the storage schema and default
/// indexes of a data structure so users "reuse the codes to the maximum
/// extent". The implicit `item` field carries the complete entity.
///
/// The preset "trajectory" plugin matches Figure 6: trajectory id, moving
/// object id, start/end times, and the GPS list (st_series, gzip-compressed
/// by default), indexed by XZ2 (spatial) and XZ2T (spatio-temporal) on the
/// MBR and start time — the Traj storage settings of Table III.
Result<meta::TableMeta> MakePluginTable(const std::string& plugin_name,
                                        const std::string& user,
                                        const std::string& table_name);

/// True if `plugin_name` is a known plugin ("trajectory", "point_series").
bool IsKnownPlugin(const std::string& plugin_name);

}  // namespace just::core

#endif  // JUST_CORE_PLUGINS_H_
