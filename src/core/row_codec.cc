#include "core/row_codec.h"

#include "common/bytes.h"
#include "compress/codec.h"

namespace just::core {

namespace {
constexpr char kTrajRaw = 'R';
constexpr char kTrajDelta = 'D';

// Cell payload for an st_series value: [format tag][oid lp][gps bytes].
std::string EncodeTrajectoryCell(const exec::Value& value, bool compact) {
  std::string out;
  const auto& t = value.trajectory_value();
  out.push_back(compact ? kTrajDelta : kTrajRaw);
  if (t == nullptr) {
    PutLengthPrefixed(&out, "");
    PutLengthPrefixed(&out, "");
    return out;
  }
  PutLengthPrefixed(&out, t->oid());
  PutLengthPrefixed(&out, compact ? t->SerializeDelta() : t->SerializeRaw());
  return out;
}

Result<exec::Value> DecodeTrajectoryCell(std::string_view cell) {
  if (cell.empty()) return Status::Corruption("empty st_series cell");
  char tag = cell[0];
  const char* p = cell.data() + 1;
  const char* limit = cell.data() + cell.size();
  std::string_view oid, payload;
  if (!GetLengthPrefixed(&p, limit, &oid) ||
      !GetLengthPrefixed(&p, limit, &payload)) {
    return Status::Corruption("bad st_series cell");
  }
  traj::Trajectory t;
  if (tag == kTrajDelta) {
    JUST_ASSIGN_OR_RETURN(
        t, traj::Trajectory::DeserializeDelta(std::string(oid), payload));
  } else if (tag == kTrajRaw) {
    JUST_ASSIGN_OR_RETURN(
        t, traj::Trajectory::DeserializeRaw(std::string(oid), payload));
  } else {
    return Status::Corruption("unknown st_series format tag");
  }
  return exec::Value::TrajectoryVal(
      std::make_shared<const traj::Trajectory>(std::move(t)));
}
}  // namespace

Result<std::string> EncodeRow(const meta::TableMeta& table,
                              const exec::Row& row) {
  if (row.size() != table.columns.size()) {
    return Status::InvalidArgument(
        "row width " + std::to_string(row.size()) + " != table width " +
        std::to_string(table.columns.size()));
  }
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    const meta::ColumnDef& col = table.columns[i];
    bool compressed = !col.compress.empty();
    const compress::Codec* codec = compress::NoneCodec();
    if (compressed) {
      JUST_ASSIGN_OR_RETURN(codec, compress::GetCodec(col.compress));
    }
    std::string cell_raw;
    if (col.type == exec::DataType::kTrajectory &&
        row[i].type() == exec::DataType::kTrajectory) {
      cell_raw = EncodeTrajectoryCell(row[i], /*compact=*/compressed);
    } else {
      row[i].SerializeTo(&cell_raw);
    }
    std::string cell = compress::EncodeCell(*codec, cell_raw);
    PutLengthPrefixed(&out, cell);
  }
  return out;
}

Result<exec::Row> DecodeRow(const meta::TableMeta& table,
                            std::string_view bytes) {
  exec::Row row;
  row.reserve(table.columns.size());
  const char* p = bytes.data();
  const char* limit = p + bytes.size();
  for (const meta::ColumnDef& col : table.columns) {
    std::string_view cell;
    if (!GetLengthPrefixed(&p, limit, &cell)) {
      return Status::Corruption("truncated row for table " + table.name);
    }
    JUST_ASSIGN_OR_RETURN(std::string cell_raw, compress::DecodeCell(cell));
    if (col.type == exec::DataType::kTrajectory && !cell_raw.empty() &&
        (cell_raw[0] == kTrajRaw || cell_raw[0] == kTrajDelta)) {
      JUST_ASSIGN_OR_RETURN(auto value, DecodeTrajectoryCell(cell_raw));
      row.push_back(std::move(value));
    } else {
      const char* q = cell_raw.data();
      JUST_ASSIGN_OR_RETURN(
          auto value,
          exec::Value::Deserialize(&q, cell_raw.data() + cell_raw.size()));
      row.push_back(std::move(value));
    }
  }
  return row;
}

BatchRowDecoder::BatchRowDecoder(const meta::TableMeta& table)
    : table_(table) {
  is_trajectory_.reserve(table.columns.size());
  for (const meta::ColumnDef& col : table.columns) {
    is_trajectory_.push_back(col.type == exec::DataType::kTrajectory);
  }
}

Status BatchRowDecoder::DecodeInto(std::string_view bytes,
                                   exec::ColumnBatch* batch) const {
  using Storage = exec::ColumnVector::Storage;
  const char* p = bytes.data();
  const char* limit = p + bytes.size();
  for (size_t i = 0; i < table_.columns.size(); ++i) {
    std::string_view cell;
    if (!GetLengthPrefixed(&p, limit, &cell)) {
      return Status::Corruption("truncated row for table " + table_.name);
    }
    JUST_ASSIGN_OR_RETURN(std::string cell_raw, compress::DecodeCell(cell));
    exec::ColumnVector& col = batch->column(i);
    if (is_trajectory_[i] && !cell_raw.empty() &&
        (cell_raw[0] == kTrajRaw || cell_raw[0] == kTrajDelta)) {
      JUST_ASSIGN_OR_RETURN(auto value, DecodeTrajectoryCell(cell_raw));
      col.AppendValue(std::move(value));
      continue;
    }
    const char* q = cell_raw.data();
    const char* qlimit = q + cell_raw.size();
    if (q >= qlimit) return Status::Corruption("empty cell");
    const auto wire = static_cast<exec::DataType>(*q);
    // Typed fast paths: parse the wire payload straight into the column's
    // storage, skipping the Value round-trip.
    bool decoded = false;
    if (wire == exec::DataType::kNull && col.storage() != Storage::kObject) {
      col.AppendNull();
      decoded = true;
    } else if (wire == col.declared_type()) {
      ++q;  // type byte
      switch (col.storage()) {
        case Storage::kInt64:
          if (wire == exec::DataType::kBool) {
            if (q >= qlimit) return Status::Corruption("truncated bool");
            col.AppendInt64(*q != 0);
            decoded = true;
          } else {  // kInt / kTimestamp
            int64_t v;
            if (!GetVarintSigned(&q, qlimit, &v)) {
              return Status::Corruption("truncated int");
            }
            col.AppendInt64(v);
            decoded = true;
          }
          break;
        case Storage::kDouble: {
          if (qlimit - q < 8) return Status::Corruption("truncated double");
          col.AppendDouble(OrderedBitsToDouble(GetFixed64(q)));
          decoded = true;
          break;
        }
        case Storage::kString: {
          std::string_view s;
          if (!GetLengthPrefixed(&q, qlimit, &s)) {
            return Status::Corruption("truncated string");
          }
          col.AppendString(std::string(s));
          decoded = true;
          break;
        }
        case Storage::kObject:
          break;  // generic path below
      }
    }
    if (!decoded) {
      const char* r = cell_raw.data();
      JUST_ASSIGN_OR_RETURN(auto value, exec::Value::Deserialize(&r, qlimit));
      col.AppendValue(std::move(value));
    }
  }
  batch->FinishRow();
  return Status::OK();
}

}  // namespace just::core
