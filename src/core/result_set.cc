#include "core/result_set.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>

#include "common/bytes.h"

namespace just::core {

namespace {
std::atomic<uint64_t> g_spill_counter{0};

Status WriteChunk(const std::string& path, const exec::Row* rows,
                  size_t count) {
  std::string buffer;
  PutVarint64(&buffer, count);
  for (size_t i = 0; i < count; ++i) {
    PutVarint64(&buffer, rows[i].size());
    for (const exec::Value& v : rows[i]) v.SerializeTo(&buffer);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create chunk " + path);
  size_t written = std::fwrite(buffer.data(), 1, buffer.size(), f);
  if (std::fclose(f) != 0 || written != buffer.size()) {
    return Status::IOError("chunk write failed: " + path);
  }
  return Status::OK();
}

Result<std::vector<exec::Row>> ReadChunk(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open chunk " + path);
  std::string buffer;
  char tmp[1 << 16];
  size_t n;
  while ((n = std::fread(tmp, 1, sizeof(tmp), f)) > 0) buffer.append(tmp, n);
  std::fclose(f);
  const char* p = buffer.data();
  const char* limit = p + buffer.size();
  uint64_t count;
  if (!GetVarint64(&p, limit, &count)) {
    return Status::Corruption("bad chunk header");
  }
  std::vector<exec::Row> rows;
  rows.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t width;
    if (!GetVarint64(&p, limit, &width)) {
      return Status::Corruption("bad chunk row");
    }
    exec::Row row;
    row.reserve(width);
    for (uint64_t c = 0; c < width; ++c) {
      JUST_ASSIGN_OR_RETURN(auto value, exec::Value::Deserialize(&p, limit));
      row.push_back(std::move(value));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}
}  // namespace

Result<std::unique_ptr<ResultSet>> ResultSet::Make(exec::DataFrame frame,
                                                   const Options& options) {
  auto rs = std::unique_ptr<ResultSet>(new ResultSet());
  rs->schema_ = frame.schema_ptr();
  rs->total_rows_ = frame.num_rows();
  if (frame.num_rows() <= options.direct_row_limit) {
    rs->direct_rows_ = std::move(*frame.mutable_rows());
    return rs;
  }
  std::error_code ec;
  std::filesystem::create_directories(options.spill_dir, ec);
  if (ec) return Status::IOError("cannot create spill dir: " + ec.message());
  const auto& rows = frame.rows();
  uint64_t session = g_spill_counter.fetch_add(1);
  for (size_t start = 0; start < rows.size();
       start += options.rows_per_chunk) {
    size_t count = std::min(options.rows_per_chunk, rows.size() - start);
    std::string path = options.spill_dir + "/rs_" + std::to_string(session) +
                       "_" + std::to_string(rs->chunk_paths_.size()) +
                       ".chunk";
    JUST_RETURN_NOT_OK(WriteChunk(path, rows.data() + start, count));
    rs->chunk_paths_.push_back(std::move(path));
  }
  return rs;
}

ResultSet::~ResultSet() {
  for (const std::string& path : chunk_paths_) ::unlink(path.c_str());
}

Status ResultSet::LoadChunk(size_t chunk_index) {
  JUST_ASSIGN_OR_RETURN(current_chunk_, ReadChunk(chunk_paths_[chunk_index]));
  current_chunk_index_ = chunk_index;
  cursor_in_chunk_ = 0;
  return Status::OK();
}

bool ResultSet::HasNext() { return delivered_ < total_rows_; }

Result<exec::Row> ResultSet::Next() {
  if (!HasNext()) return Status::InvalidArgument("result set exhausted");
  if (chunk_paths_.empty()) {
    return direct_rows_[delivered_++];
  }
  if (current_chunk_.empty() && cursor_in_chunk_ == 0 && delivered_ == 0) {
    JUST_RETURN_NOT_OK(LoadChunk(0));
  }
  if (cursor_in_chunk_ >= current_chunk_.size()) {
    JUST_RETURN_NOT_OK(LoadChunk(current_chunk_index_ + 1));
  }
  ++delivered_;
  return current_chunk_[cursor_in_chunk_++];
}

Result<exec::DataFrame> ResultSet::ToDataFrame() {
  exec::DataFrame out(schema_);
  while (HasNext()) {
    JUST_ASSIGN_OR_RETURN(auto row, Next());
    out.AddRow(std::move(row));
  }
  return out;
}

}  // namespace just::core
