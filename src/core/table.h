#ifndef JUST_CORE_TABLE_H_
#define JUST_CORE_TABLE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "cluster/region_cluster.h"
#include "common/status.h"
#include "curve/index_strategy.h"
#include "exec/column_batch.h"
#include "exec/dataframe.h"
#include "meta/catalog.h"

namespace just::core {

/// Per-query execution statistics, exposed for the benches and EXPLAIN.
struct QueryStats {
  size_t key_ranges = 0;     ///< SCANs issued
  size_t rows_scanned = 0;   ///< KV pairs read before refinement
  size_t rows_matched = 0;   ///< rows surviving exact refinement
  size_t bytes_scanned = 0;  ///< key+value bytes read (scan-quota charging)
};

/// One bound of an attribute range predicate on a secondary index.
struct AttrBound {
  bool present = false;   ///< false: this side is unbounded
  bool inclusive = true;  ///< >= / <= vs > / <
  exec::Value value;
};

/// A row budget threaded down from LIMIT: the scan stops issuing reads once
/// `limit` rows survive spatio-temporal refinement plus `residual` (the
/// compiled SQL residual predicate, applied per batch by shrinking its
/// selection). Budgeted scans run ranges sequentially with streaming
/// early-stop instead of materializing every range in parallel.
struct ScanBudget {
  size_t limit = 0;
  std::function<Status(exec::ColumnBatch*)> residual;  ///< may be empty
};

/// The in-memory catch-up journal of one online index build. While an index
/// is `building`, every writer appends its index-entry op here *before*
/// issuing the storage write; the builder replays the journal after the
/// backfill scan so writer ops always land after (and therefore win over)
/// any backfill put they raced with. FIFO replay converges: a stale replay
/// of an old op is always followed by the replay of the newer op for the
/// same key. Closed (atomically, once drained) at the `ready` flip.
class IndexBuildJournal {
 public:
  void Append(const kv::WriteOp& op) {
    std::lock_guard<std::mutex> lock(mu_);
    if (accepting_) ops_.push_back(op);
  }

  /// Removes and returns up to `max` ops (empty when drained right now).
  std::vector<kv::WriteOp> Drain(size_t max) {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<kv::WriteOp> out;
    while (!ops_.empty() && out.size() < max) {
      out.push_back(std::move(ops_.front()));
      ops_.pop_front();
    }
    return out;
  }

  /// Atomically stops accepting appends iff the journal is drained. After a
  /// successful close, late writers skip the journal — their direct writes
  /// can no longer race with a backfill put, so this is the commit point.
  bool CloseIfDrained() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!ops_.empty()) return false;
    accepting_ = false;
    return true;
  }

 private:
  std::mutex mu_;
  bool accepting_ = true;
  std::deque<kv::WriteOp> ops_;
};

/// A bound data table: metadata plus its key spaces in the cluster. Each
/// configured index gets its own key space (as each GeoMesa index is its own
/// HBase table); every row is written once per index, keyed per Eq. (2)/(3).
class StTable {
 public:
  StTable(meta::TableMeta meta, cluster::RegionCluster* cluster,
          const curve::IndexOptions& index_options);

  const meta::TableMeta& meta() const { return meta_; }

  /// Upserts one row (insert or historical update: same fid + same
  /// spatio-temporal key overwrites in place; Section I "update-enabled").
  Status Insert(const exec::Row& row);

  /// Upserts many rows in one cluster batch: every index key of every row
  /// is routed and group-committed per server (~1 WAL fsync per server
  /// instead of one per key). The bulk-load path (Section VII).
  Status InsertBatch(const std::vector<exec::Row>& rows);

  /// The streaming variant of InsertBatch: same key fan-out and group
  /// commit, but ops travel as tenant-tagged ingest batches
  /// (RegionCluster::IngestBatch), so out-of-process region servers can
  /// apply their own per-tenant write admission before the WAL append.
  Status InsertBatchStream(const std::vector<exec::Row>& rows);

  /// Removes a previously inserted row (all index entries). The secondary-
  /// index tombstones ride the same group-commit batch as the base-row
  /// tombstones, so there is no window where an index lookup can resurrect
  /// the deleted row.
  Status Remove(const exec::Row& row);

  /// Updates a row in place: tombstones for every index entry of `old_row`
  /// that the new row does not overwrite, plus the puts for `new_row`, all
  /// in one group-commit batch. This is how an attribute change retires the
  /// stale secondary-index entry under the old value atomically.
  Status Replace(const exec::Row& old_row, const exec::Row& new_row);

  /// Spatial range query (Section V-C): records within `box`.
  Result<exec::DataFrame> SpatialRangeQuery(const geo::Mbr& box,
                                            QueryStats* stats = nullptr) const;

  /// Spatio-temporal range query: records within `box` generated in
  /// [t_min, t_max].
  Result<exec::DataFrame> StRangeQuery(const geo::Mbr& box,
                                       TimestampMs t_min, TimestampMs t_max,
                                       QueryStats* stats = nullptr) const;

  // --- Columnar variants (the vectorized executor's scan sources) ---
  // Scanned KV pairs decode straight into ColumnBatches (BatchRowDecoder);
  // exact spatio-temporal refinement runs as column loops that shrink each
  // batch's selection vector instead of materializing Value rows. The
  // DataFrame methods above are thin wrappers over these.

  Result<exec::BatchVector> SpatialRangeQueryBatch(
      const geo::Mbr& box, QueryStats* stats = nullptr,
      const ScanBudget* budget = nullptr) const;
  Result<exec::BatchVector> StRangeQueryBatch(
      const geo::Mbr& box, TimestampMs t_min, TimestampMs t_max,
      QueryStats* stats = nullptr, const ScanBudget* budget = nullptr) const;
  Result<exec::BatchVector> FullScanBatch(
      QueryStats* stats = nullptr, const ScanBudget* budget = nullptr) const;
  Result<exec::BatchVector> AttributeQueryBatch(const std::string& column,
                                                const exec::Value& value,
                                                QueryStats* stats = nullptr)
      const;

  /// Point/range lookup through a CREATE INDEX secondary index. Entries are
  /// covering (the value is the encoded row), so no base-table fetch is
  /// needed. When `box`/`temporal` are given this is the curve-intersection
  /// hybrid path: index entries drive, exact spatio-temporal refinement
  /// filters — equivalent to intersecting the curve and secondary indexes
  /// but without a second key lookup per row.
  Result<exec::BatchVector> SecondaryIndexQueryBatch(
      const meta::SecondaryIndexDef& def, const AttrBound& lower,
      const AttrBound& upper, const geo::Mbr* box, bool temporal,
      TimestampMs t_min, TimestampMs t_max, QueryStats* stats = nullptr,
      const ScanBudget* budget = nullptr) const;

  /// Counts index entries in [lower, upper], stopping at `limit` — the
  /// cardinality probe behind access-path selection.
  Result<size_t> SecondaryIndexProbe(const meta::SecondaryIndexDef& def,
                                     const AttrBound& lower,
                                     const AttrBound& upper,
                                     size_t limit) const;

  /// The one index-entry op (put or tombstone) of `row` in secondary index
  /// `def`; used by the online builder's backfill.
  Result<kv::WriteOp> MakeSecondaryEntryOp(const meta::SecondaryIndexDef& def,
                                           const exec::Row& row,
                                           bool delete_instead) const;

  /// Registers the catch-up journal of an in-progress online build: writer
  /// ops on `index_name` are mirrored into it (before the storage write).
  void AttachBuildJournal(const std::string& index_name,
                          std::shared_ptr<IndexBuildJournal> journal) {
    build_journals_[index_name] = std::move(journal);
  }

  /// Shard fan-out of this table's key spaces.
  int num_shards() const {
    return strategies_.empty() ? 1 : strategies_[0]->options().num_shards;
  }

  /// k-NN query per Algorithm 1 (iterative area expansion with Lemma 1
  /// pruning), built on spatial range queries.
  Result<exec::DataFrame> KnnQuery(const geo::Point& q, int k,
                                   QueryStats* stats = nullptr) const;

  /// Full scan over the primary (first) index.
  Result<exec::DataFrame> FullScan() const;

  /// Equality lookup through a secondary attribute index (Figure 1's
  /// Attribute Indexing). `column` must be listed in the table's
  /// attr_indexes; rows whose column equals `value` are returned.
  Result<exec::DataFrame> AttributeQuery(const std::string& column,
                                         const exec::Value& value,
                                         QueryStats* stats = nullptr) const;

  /// True when `column` carries an attribute index.
  bool HasAttributeIndex(const std::string& column) const;

  /// Chooses the index used for a query: `temporal` requests a
  /// spatio-temporal strategy. Falls back across categories when the ideal
  /// kind is absent. Exposed for tests and the optimizer.
  Result<const curve::IndexStrategy*> PickIndex(bool temporal) const;

  /// Key-space prefix for index slot `i` (after the shard byte).
  std::string IndexPrefix(size_t index_slot) const;

 private:
  Status WriteKeys(const exec::Row& row, bool delete_instead);
  /// Shared body of InsertBatch / InsertBatchStream; `stream` routes chunks
  /// through the tenant-tagged ingest path instead of plain WriteBatch.
  Status InsertBatchImpl(const std::vector<exec::Row>& rows, bool stream);
  /// Appends every index entry of `row` (one per strategy + one per
  /// attribute index) to `ops` as puts or tombstones; shared by the
  /// single-row and batch write paths.
  Status AppendWriteOps(const exec::Row& row, bool delete_instead,
                        std::vector<kv::WriteOp>* ops) const;
  /// Mirrors the ops that land in a `building` secondary index's key space
  /// into that build's catch-up journal. Must be called immediately before
  /// the cluster WriteBatch carrying `ops` (append-then-write ordering is
  /// what makes journal replay converge).
  void MirrorOpsToBuildJournals(const std::vector<kv::WriteOp>& ops) const;
  Result<curve::RecordRef> MakeRecordRef(const exec::Row& row) const;

  /// Rewrites a strategy key (shard :: rest) as
  /// shard :: table/index prefix :: rest.
  std::string WrapKey(size_t index_slot, std::string_view strategy_key) const;
  std::vector<curve::KeyRange> WrapRanges(
      size_t index_slot, std::vector<curve::KeyRange> ranges) const;

  /// Runs ranges, decodes KV pairs into batches, applies exact
  /// spatio-temporal refinement via each batch's selection vector.
  /// `fid_offset` is the byte position of the fid suffix in scanned keys;
  /// rows whose fid is in `skip_fids` are dropped before decoding (used by
  /// the k-NN expansion to avoid re-decoding records seen in earlier areas).
  Result<exec::BatchVector> RunRangesBatch(
      const std::vector<curve::KeyRange>& ranges, const geo::Mbr& box,
      bool temporal, TimestampMs t_min, TimestampMs t_max, QueryStats* stats,
      int fid_offset,
      const std::unordered_set<std::string>* skip_fids,
      const ScanBudget* budget = nullptr) const;

  /// The shared scan core: runs `ranges` (ParallelScan normally; sequential
  /// streaming RegionCluster::Scan with early-stop when `budget` is set),
  /// decodes KV pairs into batches, applies `refine` (selection shrink) and
  /// then the budget's residual per batch, and accounts stats/counters.
  Result<exec::BatchVector> ScanRangesToBatches(
      const std::vector<curve::KeyRange>& ranges,
      const std::function<void(exec::ColumnBatch*)>& refine,
      QueryStats* stats, const ScanBudget* budget, bool dedupe_keys,
      int fid_offset, const std::unordered_set<std::string>* skip_fids,
      bool record_counters) const;

  /// Row-oriented wrapper over RunRangesBatch.
  Result<exec::DataFrame> RunRanges(const std::vector<curve::KeyRange>& ranges,
                                    const geo::Mbr& box, bool temporal,
                                    TimestampMs t_min, TimestampMs t_max,
                                    QueryStats* stats, int fid_offset,
                                    const std::unordered_set<std::string>*
                                        skip_fids) const;

  /// Exact refinement as column loops: geometry containment / trajectory
  /// intersection plus the temporal check, shrinking `batch`'s selection.
  void RefineBatch(exec::ColumnBatch* batch, const geo::Mbr& box,
                   bool temporal, TimestampMs t_min, TimestampMs t_max) const;

  /// Internal spatial range query with a skip set (see RunRangesBatch).
  Result<exec::BatchVector> SpatialRangeQueryInternalBatch(
      const geo::Mbr& box, QueryStats* stats,
      const std::unordered_set<std::string>* skip_fids,
      const ScanBudget* budget = nullptr) const;
  Result<exec::DataFrame> SpatialRangeQueryInternal(
      const geo::Mbr& box, QueryStats* stats,
      const std::unordered_set<std::string>* skip_fids) const;

  /// Slot id of the attribute index over attr_indexes[i]: SFC indexes come
  /// first, attribute indexes after.
  size_t AttrSlot(size_t attr_pos) const {
    return strategies_.size() + attr_pos;
  }

  /// Per-shard key ranges covering secondary index `def` restricted to
  /// [lower, upper] in the order-preserving attribute encoding.
  std::vector<curve::KeyRange> SecondaryIndexRanges(
      const meta::SecondaryIndexDef& def, const AttrBound& lower,
      const AttrBound& upper) const;

  meta::TableMeta meta_;
  cluster::RegionCluster* cluster_;
  std::vector<std::unique_ptr<curve::IndexStrategy>> strategies_;
  int fid_col_ = -1;
  int geom_col_ = -1;
  int time_col_ = -1;
  /// Catch-up journals of in-progress online builds, by index name.
  std::map<std::string, std::shared_ptr<IndexBuildJournal>> build_journals_;
};

}  // namespace just::core

#endif  // JUST_CORE_TABLE_H_
