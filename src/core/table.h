#ifndef JUST_CORE_TABLE_H_
#define JUST_CORE_TABLE_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "cluster/region_cluster.h"
#include "common/status.h"
#include "curve/index_strategy.h"
#include "exec/column_batch.h"
#include "exec/dataframe.h"
#include "meta/catalog.h"

namespace just::core {

/// Per-query execution statistics, exposed for the benches and EXPLAIN.
struct QueryStats {
  size_t key_ranges = 0;     ///< SCANs issued
  size_t rows_scanned = 0;   ///< KV pairs read before refinement
  size_t rows_matched = 0;   ///< rows surviving exact refinement
};

/// A bound data table: metadata plus its key spaces in the cluster. Each
/// configured index gets its own key space (as each GeoMesa index is its own
/// HBase table); every row is written once per index, keyed per Eq. (2)/(3).
class StTable {
 public:
  StTable(meta::TableMeta meta, cluster::RegionCluster* cluster,
          const curve::IndexOptions& index_options);

  const meta::TableMeta& meta() const { return meta_; }

  /// Upserts one row (insert or historical update: same fid + same
  /// spatio-temporal key overwrites in place; Section I "update-enabled").
  Status Insert(const exec::Row& row);

  /// Upserts many rows in one cluster batch: every index key of every row
  /// is routed and group-committed per server (~1 WAL fsync per server
  /// instead of one per key). The bulk-load path (Section VII).
  Status InsertBatch(const std::vector<exec::Row>& rows);

  /// Removes a previously inserted row (all index entries).
  Status Remove(const exec::Row& row);

  /// Spatial range query (Section V-C): records within `box`.
  Result<exec::DataFrame> SpatialRangeQuery(const geo::Mbr& box,
                                            QueryStats* stats = nullptr) const;

  /// Spatio-temporal range query: records within `box` generated in
  /// [t_min, t_max].
  Result<exec::DataFrame> StRangeQuery(const geo::Mbr& box,
                                       TimestampMs t_min, TimestampMs t_max,
                                       QueryStats* stats = nullptr) const;

  // --- Columnar variants (the vectorized executor's scan sources) ---
  // Scanned KV pairs decode straight into ColumnBatches (BatchRowDecoder);
  // exact spatio-temporal refinement runs as column loops that shrink each
  // batch's selection vector instead of materializing Value rows. The
  // DataFrame methods above are thin wrappers over these.

  Result<exec::BatchVector> SpatialRangeQueryBatch(
      const geo::Mbr& box, QueryStats* stats = nullptr) const;
  Result<exec::BatchVector> StRangeQueryBatch(const geo::Mbr& box,
                                              TimestampMs t_min,
                                              TimestampMs t_max,
                                              QueryStats* stats = nullptr) const;
  Result<exec::BatchVector> FullScanBatch() const;
  Result<exec::BatchVector> AttributeQueryBatch(const std::string& column,
                                                const exec::Value& value,
                                                QueryStats* stats = nullptr)
      const;

  /// k-NN query per Algorithm 1 (iterative area expansion with Lemma 1
  /// pruning), built on spatial range queries.
  Result<exec::DataFrame> KnnQuery(const geo::Point& q, int k,
                                   QueryStats* stats = nullptr) const;

  /// Full scan over the primary (first) index.
  Result<exec::DataFrame> FullScan() const;

  /// Equality lookup through a secondary attribute index (Figure 1's
  /// Attribute Indexing). `column` must be listed in the table's
  /// attr_indexes; rows whose column equals `value` are returned.
  Result<exec::DataFrame> AttributeQuery(const std::string& column,
                                         const exec::Value& value,
                                         QueryStats* stats = nullptr) const;

  /// True when `column` carries an attribute index.
  bool HasAttributeIndex(const std::string& column) const;

  /// Chooses the index used for a query: `temporal` requests a
  /// spatio-temporal strategy. Falls back across categories when the ideal
  /// kind is absent. Exposed for tests and the optimizer.
  Result<const curve::IndexStrategy*> PickIndex(bool temporal) const;

  /// Key-space prefix for index slot `i` (after the shard byte).
  std::string IndexPrefix(size_t index_slot) const;

 private:
  Status WriteKeys(const exec::Row& row, bool delete_instead);
  /// Appends every index entry of `row` (one per strategy + one per
  /// attribute index) to `ops` as puts or tombstones; shared by the
  /// single-row and batch write paths.
  Status AppendWriteOps(const exec::Row& row, bool delete_instead,
                        std::vector<kv::WriteOp>* ops) const;
  Result<curve::RecordRef> MakeRecordRef(const exec::Row& row) const;

  /// Rewrites a strategy key (shard :: rest) as
  /// shard :: table/index prefix :: rest.
  std::string WrapKey(size_t index_slot, std::string_view strategy_key) const;
  std::vector<curve::KeyRange> WrapRanges(
      size_t index_slot, std::vector<curve::KeyRange> ranges) const;

  /// Runs ranges, decodes KV pairs into batches, applies exact
  /// spatio-temporal refinement via each batch's selection vector.
  /// `fid_offset` is the byte position of the fid suffix in scanned keys;
  /// rows whose fid is in `skip_fids` are dropped before decoding (used by
  /// the k-NN expansion to avoid re-decoding records seen in earlier areas).
  Result<exec::BatchVector> RunRangesBatch(
      const std::vector<curve::KeyRange>& ranges, const geo::Mbr& box,
      bool temporal, TimestampMs t_min, TimestampMs t_max, QueryStats* stats,
      int fid_offset,
      const std::unordered_set<std::string>* skip_fids) const;

  /// Row-oriented wrapper over RunRangesBatch.
  Result<exec::DataFrame> RunRanges(const std::vector<curve::KeyRange>& ranges,
                                    const geo::Mbr& box, bool temporal,
                                    TimestampMs t_min, TimestampMs t_max,
                                    QueryStats* stats, int fid_offset,
                                    const std::unordered_set<std::string>*
                                        skip_fids) const;

  /// Exact refinement as column loops: geometry containment / trajectory
  /// intersection plus the temporal check, shrinking `batch`'s selection.
  void RefineBatch(exec::ColumnBatch* batch, const geo::Mbr& box,
                   bool temporal, TimestampMs t_min, TimestampMs t_max) const;

  /// Internal spatial range query with a skip set (see RunRangesBatch).
  Result<exec::BatchVector> SpatialRangeQueryInternalBatch(
      const geo::Mbr& box, QueryStats* stats,
      const std::unordered_set<std::string>* skip_fids) const;
  Result<exec::DataFrame> SpatialRangeQueryInternal(
      const geo::Mbr& box, QueryStats* stats,
      const std::unordered_set<std::string>* skip_fids) const;

  /// Slot id of the attribute index over attr_indexes[i]: SFC indexes come
  /// first, attribute indexes after.
  size_t AttrSlot(size_t attr_pos) const {
    return strategies_.size() + attr_pos;
  }

  meta::TableMeta meta_;
  cluster::RegionCluster* cluster_;
  std::vector<std::unique_ptr<curve::IndexStrategy>> strategies_;
  int fid_col_ = -1;
  int geom_col_ = -1;
  int time_col_ = -1;
};

}  // namespace just::core

#endif  // JUST_CORE_TABLE_H_
