#ifndef JUST_CORE_LOADER_H_
#define JUST_CORE_LOADER_H_

#include <map>
#include <string>

#include "common/status.h"
#include "core/engine.h"

namespace just::core {

/// LOAD ... TO ... CONFIG {...} (Section V-B): maps source fields to table
/// columns, with the preset transform functions the paper lists:
///   - plain column reference:          'fid': 'trajId'
///   - epoch millis to date:            'time': 'long_to_date_ms(ts)'
///   - date text to date:               'time': 'parse_date(ts)'
///   - split coordinates to a point:    'geom': 'lng_lat_to_point(lng, lat)'
///   - WKT text to geometry:            'geom': 'wkt_to_geom(shape)'
struct LoadConfig {
  std::map<std::string, std::string> mapping;  ///< table column -> expr
  char delimiter = ',';
  bool has_header = true;
  long limit = -1;  ///< FILTER '... limit N' simplification; -1 = all
};

/// Loads a CSV file into an existing table; returns rows loaded.
Result<size_t> LoadCsv(JustEngine* engine, const std::string& user,
                       const std::string& table, const std::string& path,
                       const LoadConfig& config);

}  // namespace just::core

#endif  // JUST_CORE_LOADER_H_
